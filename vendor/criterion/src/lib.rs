//! A minimal offline stand-in for the `criterion` benchmark harness,
//! vendored so `cargo build --all-targets` succeeds with no network
//! access. It runs each benchmark body a handful of times through
//! `black_box` and reports nothing — enough to type-check and smoke-run
//! the benches, not to produce statistics.

use std::hint::black_box;
use std::time::Instant;

/// Stand-in for criterion's benchmark manager.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { iters: 3 }
    }
}

impl Criterion {
    /// Run `f` once with a [`Bencher`]; prints a single timing line.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: self.iters };
        let start = Instant::now();
        f(&mut b);
        eprintln!("bench {id}: {:?} for {} iters", start.elapsed(), self.iters);
        self
    }
}

/// Passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Run the measured routine `iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.iters {
            black_box(f());
        }
    }
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
