//! A minimal, deterministic, dependency-free stand-in for the `proptest`
//! property-testing crate, vendored so the workspace builds with no
//! network access.
//!
//! It implements the slice of the proptest 1.x API this repository's tests
//! use — `proptest!`, `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`,
//! `Just`, `any`, integer-range and tuple strategies, `collection::vec`,
//! string generation and `ProptestConfig { cases, .. }` — on top of a
//! seeded splitmix64 generator, so every run explores the same cases.
//! There is no shrinking: a failing case panics with the generated inputs'
//! message, which is enough for the deterministic suites here.

/// Deterministic pseudo-random source and test-case plumbing.
pub mod test_runner {
    /// Run-time configuration; `cases` is the number of generated inputs
    /// per property. (Shrinking is not implemented, the field exists for
    /// struct-update compatibility with real proptest configs.)
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to generate per property.
        pub cases: u32,
        /// Accepted for compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            // like real proptest, a PROPTEST_CASES environment variable
            // overrides the default case count (CI uses this to deepen
            // sweeps without editing the suites)
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(32);
            Config {
                cases,
                max_shrink_iters: 0,
            }
        }
    }

    /// A failed property; `prop_assert!` and friends return this.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// splitmix64, seeded from the property's name: deterministic across
    /// runs and platforms.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded by hashing `name` (FNV-1a).
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`n` must be nonzero).
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty range");
            self.next() % n
        }
    }
}

/// Value generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// Something that can produce values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `strategy.prop_map(f)`.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over the given (non-empty) alternatives.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi - lo) as u128;
                    let v = u128::from(rng.next()) % span;
                    (lo + v as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    let v = u128::from(rng.next()) % span;
                    (lo + v as i128) as $t
                }
            }
        )*};
    }
    int_range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! { (A) (A, B) (A, B, C) (A, B, C, D) }

    /// In real proptest a `&str` is a regex the generated strings match.
    /// This stand-in ignores the pattern and produces arbitrary short
    /// printable-ish text (ASCII, punctuation, some multi-byte chars),
    /// which is what the totality/fuzz properties in this repository need.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            const EXTRA: [char; 8] = ['é', 'λ', '≤', '→', '□', '\n', '\t', '@'];
            let len = rng.below(60) as usize;
            (0..len)
                .map(|_| match rng.below(8) {
                    0 => EXTRA[rng.below(EXTRA.len() as u64) as usize],
                    _ => char::from(32 + rng.below(95) as u8),
                })
                .collect()
        }
    }
}

/// `any::<T>()` — full-domain generation for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Produce an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next() as $t
                }
            }
        )*};
    }
    int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, roughly symmetric around zero; avoids NaN surprises.
            (rng.next() as i64 as f64) / 1e9
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over all of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The usual `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Choose uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)*)
        );
    }};
}

/// Fail the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Define deterministic property tests.
///
/// Supports the subset of the real macro's grammar used here: an optional
/// leading `#![proptest_config(expr)]`, then `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = __outcome {
                        panic!("property {} failed at case {}: {}",
                               stringify!($name), __case, e);
                    }
                }
            }
        )*
    };
}
