//! Streaming beyond numeric kernels: "it was somewhat of a pleasant
//! surprise that streaming appeared in a variety of programs … *cal,
//! compact, od, sort, diff, nroff, yacc*. The uses included copying strings
//! and structures, searching a decoding tree, searching a data structure
//! for a specific item, and initializing an array."
//!
//! This example compiles the text kernels with and without streaming and
//! shows where the optimizer used unbounded (infinite) streams with
//! stream-stop instructions at the loop exits.
//!
//! Run with: `cargo run --example text_streams`

use wm_stream::{Compiler, OptOptions};

fn main() {
    let w = wm_stream::workloads::text_kernels();

    // Pointer-parameter string kernels need the no-alias guarantee the
    // paper's utilities evidently enjoyed.
    let streamed = Compiler::new()
        .options(OptOptions::all().assume_noalias())
        .compile(w.source)
        .expect("compiles");
    let scalar = Compiler::new()
        .options(OptOptions::all().without_streaming().assume_noalias())
        .compile(w.source)
        .expect("compiles");

    for (name, c) in [("copy_string", &streamed), ("find_byte", &streamed)] {
        let stats = c.stats_for(name).unwrap();
        println!(
            "{name}: {} stream(s) in, {} out, {} unbounded",
            stats.streaming.streams_in, stats.streaming.streams_out, stats.streaming.infinite
        );
        let listing = c.listing(name).unwrap();
        for line in listing
            .lines()
            .filter(|l| l.contains("Sin") || l.contains("Sout") || l.contains("Sstop"))
        {
            println!("    {}", line.trim_end());
        }
    }

    let rs = streamed.run_wm("main", &[]).expect("runs");
    let rb = scalar.run_wm("main", &[]).expect("runs");
    w.check(rs.ret_int);
    w.check(rb.ret_int);
    println!(
        "\ntext kernels: scalar {} cycles, streamed {} cycles ({:.1}% reduction)",
        rb.cycles,
        rs.cycles,
        100.0 * (rb.cycles - rs.cycles) as f64 / rb.cycles as f64
    );
}
