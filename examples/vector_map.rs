//! The vector execution unit: "conceptually the iterations of the loop are
//! performed simultaneously by the vector execution unit (VEU)".
//!
//! The paper's compiler "generates code that uses the vector unit" when
//! vector code is possible, and falls back to streaming for recurrences.
//! This example shows both sides: an elementwise map vectorizes (streams
//! feed the VEU's ports, the loop becomes `vld/vld/vop/vst/jNIv` over
//! 32-element groups), while the Livermore recurrence refuses to vectorize
//! and is streamed instead.
//!
//! Run with: `cargo run --release --example vector_map`

use wm_stream::{Compiler, OptOptions};

const MAP: &str = r"
    double a[20000]; double b[20000]; double c[20000];
    int main() {
        int i; double s;
        for (i = 0; i < 20000; i++) { a[i] = i % 9 * 0.5; b[i] = 1.0 + i % 4; }
        for (i = 0; i < 20000; i++) c[i] = a[i] * b[i];
        s = 0.0;
        for (i = 0; i < 20000; i++) s = s + c[i];
        return (int) (s / 1000.0);
    }
";

const RECURRENCE: &str = r"
    double x[20000]; double y[20000]; double z[20000];
    int main() {
        int i;
        for (i = 0; i < 20000; i++) { x[i] = 1.0; y[i] = 2.0; z[i] = 0.5; }
        for (i = 2; i < 20000; i++) x[i] = z[i] * (y[i] - x[i-1]);
        return (int) (x[19999] * 1000.0);
    }
";

fn measure(src: &str, label: &str) {
    let scalar = Compiler::new()
        .options(OptOptions::all().without_streaming())
        .compile(src)
        .expect("compiles");
    let streamed = Compiler::new().compile(src).expect("compiles");
    let vector = Compiler::new()
        .options(OptOptions::all().with_vectorization())
        .compile(src)
        .expect("compiles");

    let rs = scalar.run_wm("main", &[]).expect("runs");
    let rt = streamed.run_wm("main", &[]).expect("runs");
    let rv = vector.run_wm("main", &[]).expect("runs");
    assert_eq!(rs.ret_int, rt.ret_int);
    assert_eq!(rs.ret_int, rv.ret_int);

    let v = vector.stats_for("main").unwrap();
    println!("{label}:");
    println!("  scalar WM   {:>9} cycles", rs.cycles);
    println!("  streamed    {:>9} cycles", rt.cycles);
    println!(
        "  vectorized  {:>9} cycles   ({} loop(s) on the VEU)",
        rv.cycles, v.vector.loops_vectorized
    );
    if v.vector.loops_vectorized > 0 {
        let l = vector.listing("main").unwrap();
        for line in l.lines().filter(|l| {
            l.contains("SinV")
                || l.contains("vld")
                || l.contains("vop")
                || l.contains("vst")
                || l.contains("jNIv")
        }) {
            println!("    {}", line.trim_end());
        }
    }
    println!();
}

fn main() {
    measure(MAP, "elementwise map c[i] = a[i] * b[i]");
    measure(
        RECURRENCE,
        "recurrence x[i] = z[i] * (y[i] - x[i-1]) — \"impossible to vectorize\", streams instead",
    );
}
