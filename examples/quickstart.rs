//! Quickstart: compile a mini-C program for the WM, look at the code the
//! optimizer produced, and execute it on the cycle-level simulator.
//!
//! Run with: `cargo run --example quickstart`

use wm_stream::{Compiler, MachineModel, OptOptions, Target};

const PROGRAM: &str = r"
    double a[1000];
    double b[1000];

    int main() {
        int i;
        double sum;
        for (i = 0; i < 1000; i++) {
            a[i] = i * 0.5;
            b[i] = 2.0;
        }
        sum = 0.0;
        for (i = 0; i < 1000; i++)
            sum = sum + a[i] * b[i];
        return (int) sum;
    }
";

fn main() {
    // Compile for the WM with every optimization on.
    let streamed = Compiler::new().compile(PROGRAM).expect("compiles");
    println!("=== optimized WM code ===");
    println!("{}", streamed.listing("main").unwrap());

    let stats = streamed.stats_for("main").unwrap();
    println!(
        "streams created: {} in, {} out\n",
        stats.streaming.streams_in, stats.streaming.streams_out
    );

    // Run it.
    let run = streamed.run_wm("main", &[]).expect("runs");
    println!(
        "WM (streamed):   {:>8} cycles, result {}",
        run.cycles, run.ret_int
    );

    // Compare against the same program without streaming.
    let scalar = Compiler::new()
        .options(OptOptions::all().without_streaming())
        .compile(PROGRAM)
        .expect("compiles");
    let run2 = scalar.run_wm("main", &[]).expect("runs");
    println!(
        "WM (no streams): {:>8} cycles, result {}",
        run2.cycles, run2.ret_int
    );

    // And against a 1990 workstation.
    let sun = Compiler::new()
        .target(Target::Scalar)
        .compile(PROGRAM)
        .expect("compiles");
    let run3 = sun
        .run_scalar("main", &[], &MachineModel::sun_3_280())
        .expect("runs");
    println!(
        "Sun 3/280:       {:>8} cycles, result {}",
        run3.cycles, run3.ret_int
    );

    assert_eq!(run.ret_int, run2.ret_int);
    assert_eq!(run.ret_int, run3.ret_int);
    println!(
        "\nstreaming saved {:.1}% of WM cycles",
        100.0 * (run2.cycles - run.cycles) as f64 / run2.cycles as f64
    );
}
