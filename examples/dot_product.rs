//! The dot product — the paper's flagship streaming example: "with a
//! relatively simple hardware implementation, the code will produce the dot
//! product in N clock cycles."
//!
//! Demonstrates the key architectural claim: streams decouple address
//! generation from computation, so the streamed loop is nearly insensitive
//! to memory latency while the scalar loop degrades with it.
//!
//! Run with: `cargo run --example dot_product`

use wm_stream::{Compiler, OptOptions, WmConfig};

const PROGRAM: &str = r"
    double a[10000]; double b[10000];
    int main() {
        int i; double sum;
        for (i = 0; i < 10000; i++) { a[i] = 2.0; b[i] = 0.5; }
        sum = 0.0;
        for (i = 0; i < 10000; i++)
            sum = sum + a[i] * b[i];
        return (int) sum;
    }
";

fn main() {
    let streamed = Compiler::new().compile(PROGRAM).expect("compiles");
    let scalar = Compiler::new()
        .options(OptOptions::all().without_streaming())
        .compile(PROGRAM)
        .expect("compiles");

    println!("memory-latency sweep (whole program, 10000-element vectors):\n");
    println!(
        "{:>12} {:>14} {:>14} {:>10}",
        "latency", "scalar cycles", "streamed", "ratio"
    );
    for latency in [2u64, 6, 12, 24, 48] {
        let cfg = WmConfig::default().with_mem_latency(latency);
        let rs = scalar.run_wm_config("main", &[], &cfg).expect("runs");
        let rt = streamed.run_wm_config("main", &[], &cfg).expect("runs");
        assert_eq!(rs.ret_int, 10000);
        assert_eq!(rt.ret_int, 10000);
        println!(
            "{:>12} {:>14} {:>14} {:>9.2}x",
            latency,
            rs.cycles,
            rt.cycles,
            rs.cycles as f64 / rt.cycles as f64
        );
    }
    println!("\nthe streamed loop body:");
    let l = streamed.listing("main").unwrap();
    // print just the lines around the stream loop for orientation
    for line in l.lines().filter(|l| {
        l.contains("Sin") || l.contains("Sout") || l.contains("jNI") || l.contains("f31")
    }) {
        println!("  {line}");
    }
}
