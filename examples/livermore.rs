//! The paper's running example: the fifth Livermore loop
//! (`x[i] = z[i] * (y[i] - x[i-1])`), a tri-diagonal elimination whose
//! loop-carried recurrence makes it "difficult and often impossible to
//! vectorize" — but not to stream.
//!
//! Prints the three compilation stages of the paper's Figures 4, 5 and 7,
//! then measures the effect of each optimization.
//!
//! Run with: `cargo run --example livermore`

use wm_stream::{Compiler, OptOptions};

const KERNEL: &str = r"
    double x[100000]; double y[100000]; double z[100000];
    void loop5(int n) {
        int i;
        for (i = 2; i < n; i++)
            x[i] = z[i] * (y[i] - x[i-1]);
    }
";

const PROGRAM: &str = r"
    double x[20000]; double y[20000]; double z[20000];
    int main() {
        int i; int n;
        n = 20000;
        for (i = 0; i < n; i++) {
            x[i] = i % 7 * 0.25;
            y[i] = 2.0 + i % 5 * 0.5;
            z[i] = 0.5 - i % 3 * 0.125;
        }
        for (i = 2; i < n; i++)
            x[i] = z[i] * (y[i] - x[i-1]);
        return (int) (x[n-1] * 100000.0);
    }
";

fn listing(opts: OptOptions) -> String {
    Compiler::new()
        .options(opts)
        .compile(KERNEL)
        .expect("compiles")
        .listing("loop5")
        .unwrap()
}

fn cycles(opts: OptOptions) -> (u64, i64) {
    let r = Compiler::new()
        .options(opts)
        .compile(PROGRAM)
        .expect("compiles")
        .run_wm("main", &[])
        .expect("runs");
    (r.cycles, r.ret_int)
}

fn main() {
    println!("--- Figure 4: no recurrence optimization, no streaming ---");
    println!(
        "{}",
        listing(OptOptions::all().without_recurrence().without_streaming())
    );
    println!("--- Figure 5: recurrences optimized ---");
    println!("{}", listing(OptOptions::all().without_streaming()));
    println!("--- Figure 7: stream instructions ---");
    println!("{}", listing(OptOptions::all()));

    let (base, r1) = cycles(OptOptions::all().without_recurrence().without_streaming());
    let (rec, r2) = cycles(OptOptions::all().without_streaming());
    let (full, r3) = cycles(OptOptions::all());
    assert_eq!(r1, r2);
    assert_eq!(r1, r3);
    println!("cycles, whole program (n = 20000):");
    println!("  baseline          {base:>9}");
    println!(
        "  + recurrence opt  {rec:>9}  ({:.1}% better)",
        100.0 * (base - rec) as f64 / base as f64
    );
    println!(
        "  + streaming       {full:>9}  ({:.1}% better)",
        100.0 * (base - full) as f64 / base as f64
    );
}
