//! Matrix multiply: streams with non-unit strides.
//!
//! The inner product of row i of A with column j of B walks A with an
//! 8-byte stride and B with an 8·N-byte stride — both are "structured data
//! stored in memory with a known, fixed displacement between successive
//! elements", so both stream. This is the "matrix calculations, where
//! address generation and the fetching and storing of the array elements
//! can be a substantial component of the code" motivation from the paper.
//!
//! Run with: `cargo run --release --example matmul`

use wm_stream::{Compiler, OptOptions};

const N: usize = 40;

fn program() -> String {
    // mini-C has 1-D arrays; matrices are indexed manually (i*N + j),
    // exactly what a C compiler sees after lowering anyway.
    format!(
        r"
        double a[{sq}]; double b[{sq}]; double c[{sq}];
        int main() {{
            int i; int j; int k; int n;
            double sum;
            n = {n};
            for (i = 0; i < n * n; i++) {{
                a[i] = i % 9 * 0.5;
                b[i] = i % 7 * 0.25;
                c[i] = 0.0;
            }}
            for (i = 0; i < n; i++)
                for (j = 0; j < n; j++) {{
                    sum = 0.0;
                    for (k = 0; k < n; k++)
                        sum = sum + a[i * n + k] * b[k * n + j];
                    c[i * n + j] = sum;
                }}
            return (int) (c[{probe}] * 1000.0);
        }}",
        sq = N * N,
        n = N,
        probe = 17 * N + 23,
    )
}

fn reference() -> i64 {
    let n = N;
    let mut a = vec![0.0f64; n * n];
    let mut b = vec![0.0f64; n * n];
    let mut c = vec![0.0f64; n * n];
    for i in 0..n * n {
        a[i] = (i % 9) as f64 * 0.5;
        b[i] = (i % 7) as f64 * 0.25;
    }
    for i in 0..n {
        for j in 0..n {
            let mut sum = 0.0;
            for k in 0..n {
                sum += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = sum;
        }
    }
    (c[17 * n + 23] * 1000.0) as i64
}

fn main() {
    let src = program();
    let streamed = Compiler::new().compile(&src).expect("compiles");
    let scalar = Compiler::new()
        .options(OptOptions::all().without_streaming())
        .compile(&src)
        .expect("compiles");

    let s = streamed.stats_for("main").unwrap();
    println!(
        "streams: {} in, {} out (the inner product streams A by 8 and B by {} bytes)",
        s.streaming.streams_in,
        s.streaming.streams_out,
        8 * N
    );
    for line in streamed
        .listing("main")
        .unwrap()
        .lines()
        .filter(|l| l.contains("SinD") || l.contains("SoutD") || l.contains("jNI"))
    {
        println!("  {}", line.trim_end());
    }

    let rs = streamed.run_wm("main", &[]).expect("runs");
    let rb = scalar.run_wm("main", &[]).expect("runs");
    let want = reference();
    assert_eq!(rs.ret_int, want, "streamed result");
    assert_eq!(rb.ret_int, want, "scalar result");
    println!(
        "\n{N}x{N} matmul: scalar {} cycles, streamed {} cycles ({:.1}% reduction)",
        rb.cycles,
        rs.cycles,
        100.0 * (rb.cycles - rs.cycles) as f64 / rb.cycles as f64
    );
}
