//! Degraded-hardware agreement: the same compiled programs must produce
//! the same results on severely constrained WM configurations — one-entry
//! FIFOs, a single memory port, slow memory, and deterministic fault
//! injection that only delays (never drops) responses. Only cycle counts
//! may change; any result difference or spurious fault/deadlock is a
//! simulator or code-generation bug.

use wm_stream::sim::FaultPlan;
use wm_stream::{Compiler, MemModel, OptOptions, WmConfig};

/// The configuration matrix from the CI degraded-hardware job.
fn degraded_configs() -> Vec<(&'static str, WmConfig)> {
    vec![
        ("fifo_capacity=1", WmConfig::default().with_fifo_capacity(1)),
        ("mem_ports=1", WmConfig::default().with_mem_ports(1)),
        ("mem_latency=24", WmConfig::default().with_mem_latency(24)),
        (
            "fifo=1,ports=1,latency=24",
            WmConfig::default()
                .with_fifo_capacity(1)
                .with_mem_ports(1)
                .with_mem_latency(24),
        ),
        (
            "jitter+delays",
            WmConfig::default()
                .with_fault_plan(FaultPlan::parse("jitter:11:9,delay:3:40,delay:17:40").unwrap()),
        ),
        // The memory hierarchy is timing-only: caches and banked DRAM
        // reshape cycle counts, never results.
        (
            "mem=cache",
            WmConfig::default().with_mem_model(MemModel::parse("cache").unwrap()),
        ),
        (
            "mem=banked",
            WmConfig::default().with_mem_model(MemModel::parse("banked").unwrap()),
        ),
        // Small direct-mapped L1, one MSHR, shallow stream buffers — but
        // enough DRAM bandwidth (banks=4, busy=2) that stream-outs keep
        // pace with producers. A starved-bank configuration can leave a
        // stream-out live into code that scalar-stores to the same FIFO
        // class, which the machine correctly faults as an output
        // conflict; that regime belongs to the fault tests, not to a
        // results-agree matrix.
        (
            "mem=cache-tight",
            WmConfig::default().with_mem_model(
                MemModel::parse("banked:size=256,assoc=1,mshrs=1,sbufs=2,depth=2,banks=4,busy=2")
                    .unwrap(),
            ),
        ),
    ]
}

#[test]
fn workloads_agree_on_degraded_hardware() {
    for w in wm_stream::workloads::table2() {
        let c = Compiler::new().compile(w.source).expect(w.name);
        let base = c
            .run_wm("main", &[])
            .unwrap_or_else(|e| panic!("{} [default]: {e}", w.name));
        for (label, cfg) in degraded_configs() {
            let r = c
                .run_wm_config("main", &[], &cfg)
                .unwrap_or_else(|e| panic!("{} [{label}]: {e}", w.name));
            assert_eq!(r.ret_int, base.ret_int, "{} [{label}]", w.name);
            assert_eq!(
                r.output, base.output,
                "{} [{label}]: output differs",
                w.name
            );
        }
    }
}

#[test]
fn livermore5_agrees_on_degraded_hardware_at_every_opt_level() {
    let expected = wm_stream::workloads::livermore5_expected();
    let src = wm_stream::workloads::livermore5().source;
    for opts in [
        OptOptions::none(),
        OptOptions::all().without_streaming(),
        OptOptions::all(),
    ] {
        let c = Compiler::new().options(opts.clone()).compile(src).unwrap();
        for (label, cfg) in degraded_configs() {
            let r = c
                .run_wm_config("main", &[], &cfg)
                .unwrap_or_else(|e| panic!("[{label}] {opts:?}: {e}"));
            assert_eq!(r.ret_int, expected, "[{label}] {opts:?}");
        }
    }
}

#[test]
fn faults_keep_their_attribution_on_degraded_hardware() {
    // the guard red-zone fault must name the same unit and address no
    // matter how constrained (or delayed) the machine is
    let c = Compiler::new()
        .compile("int u[4]; int main() { u[7] = 5; return 0; }")
        .unwrap();
    for (label, cfg) in degraded_configs() {
        let err = c.run_wm_config("main", &[], &cfg).unwrap_err();
        let fault = err
            .fault()
            .unwrap_or_else(|| panic!("[{label}] expected a fault, got {err}"));
        assert_eq!(fault.unit, wm_stream::sim::FaultUnit::Ieu, "[{label}]");
        assert_eq!(
            fault.addr,
            Some(wm_stream::sim::DATA_BASE + 28),
            "[{label}]"
        );
    }
}

#[test]
fn poisoned_streams_agree_on_degraded_hardware() {
    // a sentinel scan whose stream prefetches past the array: under
    // speculation the poison must stay harmless (never consumed) on every
    // configuration, including single-entry FIFOs that reorder prefetch
    // timing
    const SRC: &str = r"
        int a[16];
        int main() {
            int i;
            for (i = 0; i < 16; i++) a[i] = 1;
            a[15] = 8;
            i = 0;
            while (a[i] != 8) i = i + 1;
            return i;
        }";
    let c = Compiler::new()
        .options(OptOptions::all().with_speculative_streams())
        .compile(SRC)
        .unwrap();
    for (label, cfg) in degraded_configs() {
        let r = c
            .run_wm_config("main", &[], &cfg)
            .unwrap_or_else(|e| panic!("[{label}]: {e}"));
        assert_eq!(r.ret_int, 15, "[{label}]");
    }
}
