//! Differential testing: randomly generated mini-C programs must compute
//! the same results at every optimization level and on both machines.
//! This is the broadest guard against miscompilation by the recurrence,
//! streaming and combining passes.

use proptest::prelude::*;
use wm_stream::{Compiler, MachineModel, OptOptions, Target};

/// A random arithmetic/array program, built from a small grammar that
/// exercises loops, arrays (with in-loop offsets ±2), conditionals and
/// accumulators.
fn arbitrary_program() -> impl Strategy<Value = String> {
    let stmt = prop_oneof![
        // accumulate with an array read at a nearby offset
        (0..3usize, -2i64..=2).prop_map(|(arr, off)| {
            let a = ["u", "v", "w"][arr];
            format!(
                "s = s + {a}[i{}{}];",
                if off >= 0 { "+" } else { "-" },
                off.abs()
            )
        }),
        // array write from the accumulator
        (0..3usize).prop_map(|arr| {
            let a = ["u", "v", "w"][arr];
            format!("{a}[i] = s % 1000 + i;")
        }),
        // recurrence-style update
        (0..3usize, 1i64..=2).prop_map(|(arr, d)| {
            let a = ["u", "v", "w"][arr];
            format!("{a}[i] = {a}[i-{d}] + 1;")
        }),
        // conditional bump
        Just("if (s % 3 == 0) s = s + 7;".to_string()),
        // scalar churn
        (1i64..50).prop_map(|k| format!("t = t * 3 + {k}; s = s + t % 100;")),
    ];
    // 1..5 statements in the loop body
    proptest::collection::vec(stmt, 1..5).prop_map(|body| {
        format!(
            r"
            int u[300]; int v[300]; int w[300];
            int main() {{
                int i; int s; int t;
                s = 1; t = 2;
                for (i = 0; i < 300; i++) {{ u[i] = i; v[i] = 2 * i; w[i] = 3000 - i; }}
                for (i = 2; i < 298; i++) {{
                    {}
                }}
                for (i = 0; i < 300; i++) s = s + u[i] + v[i] + w[i];
                return s % 100000;
            }}",
            body.join("\n                    ")
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case compiles 4 ways and simulates; keep it bounded
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_programs_agree_across_opt_levels_and_machines(src in arbitrary_program()) {
        let reference = Compiler::new()
            .options(OptOptions::none())
            .compile(&src)
            .expect("compiles")
            .run_wm("main", &[])
            .expect("baseline runs");

        for opts in [
            OptOptions::all().without_recurrence().without_streaming(),
            OptOptions::all().without_streaming(),
            OptOptions::all(),
            OptOptions::all().with_vectorization(),
        ] {
            let r = Compiler::new()
                .options(opts.clone())
                .compile(&src)
                .expect("compiles")
                .run_wm("main", &[])
                .expect("runs");
            prop_assert_eq!(r.ret_int, reference.ret_int, "options {:?}\n{}", opts, src);
        }

        let r = Compiler::new()
            .target(Target::Scalar)
            .compile(&src)
            .expect("compiles")
            .run_scalar("main", &[], &MachineModel::m88100())
            .expect("runs");
        prop_assert_eq!(r.ret_int, reference.ret_int, "scalar target\n{}", src);
    }
}
