//! Differential testing: randomly generated mini-C programs must compute
//! the same results at every optimization level and on both machines.
//! This is the broadest guard against miscompilation by the recurrence,
//! streaming and combining passes.
//!
//! The generated loop's upper bound ranges up to the arrays' exact size,
//! so reads at `i+2` can run just past the end: every configuration must
//! then agree on *fault-or-value* — a build that faults where another
//! returns a result is a miscompilation, and so is a spurious fault.

use proptest::prelude::*;
use wm_stream::sim::Engine;
use wm_stream::{Compiler, MachineModel, MemModel, OptOptions, Target, WmConfig};

/// Case count, overridable for deeper CI sweeps.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(24)
}

/// A random arithmetic/array program, built from a small grammar that
/// exercises loops, arrays (with in-loop offsets ±2), conditionals and
/// accumulators. `hi` is the middle loop's bound: at 299/300 the `+2`
/// reads touch `u[300..302)` over `int u[300]` — out of bounds.
fn arbitrary_program() -> impl Strategy<Value = String> {
    let stmt = prop_oneof![
        // accumulate with an array read at a nearby offset
        (0..3usize, -2i64..=2).prop_map(|(arr, off)| {
            let a = ["u", "v", "w"][arr];
            format!(
                "s = s + {a}[i{}{}];",
                if off >= 0 { "+" } else { "-" },
                off.abs()
            )
        }),
        // array write from the accumulator
        (0..3usize).prop_map(|arr| {
            let a = ["u", "v", "w"][arr];
            format!("{a}[i] = s % 1000 + i;")
        }),
        // recurrence-style update
        (0..3usize, 1i64..=2).prop_map(|(arr, d)| {
            let a = ["u", "v", "w"][arr];
            format!("{a}[i] = {a}[i-{d}] + 1;")
        }),
        // conditional bump
        Just("if (s % 3 == 0) s = s + 7;".to_string()),
        // scalar churn
        (1i64..50).prop_map(|k| format!("t = t * 3 + {k}; s = s + t % 100;")),
        // indirect read a[b[i]]: fuses into a gather stream under
        // -noalias when the loop is otherwise eligible. Indexing through
        // u stays in bounds (u[i] = i) until a prior statement mutates
        // it; through v it goes out of bounds past i = 149 (v[i] = 2i),
        // so these draws also exercise poisoned gather entries — every
        // build must agree fault-or-value.
        (0..2usize, 0..3usize).prop_map(|(idx, arr)| {
            let b = ["u", "v"][idx];
            let a = ["u", "v", "w"][arr];
            format!("s = s + {a}[{b}[i]];")
        }),
        // indirect write a[u[i]]: the scatter dual, same in/out-of-bounds
        // story with eager faults on both the scalar and streamed builds
        (0..3usize).prop_map(|arr| {
            let a = ["u", "v", "w"][arr];
            format!("{a}[u[i]] = s % 50 + i;")
        }),
    ];
    // 1..5 statements in the loop body; bound up to the exact array size
    (proptest::collection::vec(stmt, 1..5), 296i64..=300).prop_map(|(body, hi)| {
        format!(
            r"
            int u[300]; int v[300]; int w[300];
            int main() {{
                int i; int s; int t;
                s = 1; t = 2;
                for (i = 0; i < 300; i++) {{ u[i] = i; v[i] = 2 * i; w[i] = 3000 - i; }}
                for (i = 2; i < {hi}; i++) {{
                    {}
                }}
                for (i = 0; i < 300; i++) s = s + u[i] + v[i] + w[i];
                return s % 100000;
            }}",
            body.join("\n                    ")
        )
    })
}

/// Memory-model specs a fuzzed run may draw. The hierarchy is
/// timing-only (tags, no data), so flat, cached and banked runs must all
/// agree on fault-or-value — only cycle counts may differ.
const MEM_SPECS: [&str; 6] = [
    "flat",
    "cache",
    "banked",
    "cache:size=256,assoc=1,mshrs=1,miss=48",
    "banked:banks=1,busy=12,rowhit=8,rowmiss=24",
    "banked:size=512,assoc=2,sbufs=1,depth=2,banks=2",
];

/// Run on the WM at one opt level under the chosen stepping engine and
/// memory model; a memory fault is a legitimate outcome (`Err`),
/// anything else non-Ok (deadlock, timeout) is a test failure.
fn run_wm_level(src: &str, opts: &OptOptions, engine: Engine, mem: &str) -> Result<i64, String> {
    let c = Compiler::new()
        .options(opts.clone())
        .compile(src)
        .expect("compiles");
    let cfg = WmConfig::default()
        .with_engine(engine)
        .with_mem_model(MemModel::parse(mem).expect("valid spec"));
    match c.run_wm_config("main", &[], &cfg) {
        Ok(r) => Ok(r.ret_int),
        Err(e @ wm_stream::sim::SimError::Fault { .. }) => Err(e.to_string()),
        Err(e) => panic!("non-fault failure under {opts:?} ({engine}, mem={mem}): {e}\n{src}"),
    }
}

fn run_scalar(src: &str) -> Result<i64, String> {
    let c = Compiler::new()
        .target(Target::Scalar)
        .compile(src)
        .expect("compiles");
    match c.run_scalar("main", &[], &MachineModel::m88100()) {
        Ok(r) => Ok(r.ret_int),
        Err(e @ wm_stream::machines::ScalarError::Fault(_)) => Err(e.to_string()),
        Err(e) => panic!("non-fault scalar failure: {e}\n{src}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: cases(), // each case compiles 7 ways and simulates; keep it bounded
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_programs_agree_across_opt_levels_and_machines(
        src in arbitrary_program(),
        engines in proptest::collection::vec(0..Engine::ALL.len(), 7),
        mems in proptest::collection::vec(0..MEM_SPECS.len(), 7),
    ) {
        // The reference runs on the per-cycle stepper over flat memory;
        // each opt level draws its engine (cycle, event or compiled) and
        // memory model at random so every fuzzed program also exercises
        // three-engine equivalence and the timing-only-hierarchy
        // guarantee (results must never depend on the cache/DRAM
        // configuration).
        let reference = run_wm_level(&src, &OptOptions::none(), Engine::Cycle, "flat");

        for ((opts, engine_ix), mem_ix) in [
            OptOptions::all().without_recurrence().without_streaming(),
            OptOptions::all().without_streaming(),
            OptOptions::all(),
            OptOptions::all().with_speculative_streams(),
            OptOptions::all().with_vectorization(),
            // sound here — the grammar's arrays are distinct globals —
            // and required for scatter fusion, so this is the level that
            // exercises indirect streams hardest
            OptOptions::all().assume_noalias().with_speculative_streams(),
            // the solver-scheduled kernels must be architecturally
            // invisible too (fallback or not, results never change)
            OptOptions::all().assume_noalias().with_modulo(),
        ]
        .into_iter()
        .zip(engines)
        .zip(mems)
        {
            let engine = Engine::ALL[engine_ix];
            let mem = MEM_SPECS[mem_ix];
            let r = run_wm_level(&src, &opts, engine, mem);
            match (&reference, &r) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "options {:?} mem={}\n{}", opts, mem, src),
                (Err(_), Err(_)) => {} // both fault: agreement
                _ => prop_assert!(
                    false,
                    "fault-or-value disagreement under {:?} (mem={}): reference {:?} vs {:?}\n{}",
                    opts, mem, reference, r, src
                ),
            }
        }

        let r = run_scalar(&src);
        match (&reference, &r) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "scalar target\n{}", src),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(
                false,
                "fault-or-value disagreement on the scalar machine: {:?} vs {:?}\n{}",
                reference, r, src
            ),
        }
    }

    #[test]
    fn random_programs_get_identical_stats_from_all_engines(
        src in arbitrary_program(),
        mem_ix in 0..MEM_SPECS.len(),
        squash_ix in 0..3usize,
    ) {
        // Beyond fault-or-value agreement: on the fully optimized build
        // (noalias + speculative, so gathers, scatters and squashes all
        // occur), all three engines must be bit-identical in every
        // observable — cycles, results, and the complete per-unit
        // counter set — under whichever memory model and squash-recovery
        // penalty the case draws.
        let c = Compiler::new()
            .options(OptOptions::all().assume_noalias().with_speculative_streams())
            .compile(&src)
            .expect("compiles");
        let mem = MemModel::parse(MEM_SPECS[mem_ix]).expect("valid spec");
        let cfg = WmConfig::default()
            .with_mem_model(mem)
            .with_squash_penalty([0, 3, 17][squash_ix]);
        let cycle = c.run_wm_config("main", &[], &cfg.clone().with_engine(Engine::Cycle));
        for engine in [Engine::Event, Engine::Compiled] {
            let other = c.run_wm_config("main", &[], &cfg.clone().with_engine(engine));
            match (&cycle, other) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.cycles, b.cycles, "{} cycle count differs\n{}", engine, &src);
                    prop_assert_eq!(a.ret_int, b.ret_int, "{} result differs\n{}", engine, &src);
                    prop_assert_eq!(&a.stats, &b.stats, "{} SimStats differ\n{}", engine, &src);
                    prop_assert_eq!(&a.perf, &b.perf, "{} counters differ\n{}", engine, &src);
                }
                (Err(a), Err(b)) => prop_assert_eq!(
                    a.to_string(), b.to_string(), "cycle vs {} fail differently\n{}", engine, &src
                ),
                (a, b) => prop_assert!(
                    false,
                    "one engine failed where the other succeeded ({}): {:?} vs {:?}\n{}",
                    engine, a.as_ref().map(|r| r.cycles), b.map(|r| r.cycles), src
                ),
            }
        }
    }
}
