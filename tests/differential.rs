//! Differential testing: randomly generated mini-C programs must compute
//! the same results at every optimization level and on both machines.
//! This is the broadest guard against miscompilation by the recurrence,
//! streaming and combining passes.
//!
//! The generated loop's upper bound ranges up to the arrays' exact size,
//! so reads at `i+2` can run just past the end: every configuration must
//! then agree on *fault-or-value* — a build that faults where another
//! returns a result is a miscompilation, and so is a spurious fault.

use proptest::prelude::*;
use wm_stream::{Compiler, MachineModel, OptOptions, Target};

/// Case count, overridable for deeper CI sweeps.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(24)
}

/// A random arithmetic/array program, built from a small grammar that
/// exercises loops, arrays (with in-loop offsets ±2), conditionals and
/// accumulators. `hi` is the middle loop's bound: at 299/300 the `+2`
/// reads touch `u[300..302)` over `int u[300]` — out of bounds.
fn arbitrary_program() -> impl Strategy<Value = String> {
    let stmt = prop_oneof![
        // accumulate with an array read at a nearby offset
        (0..3usize, -2i64..=2).prop_map(|(arr, off)| {
            let a = ["u", "v", "w"][arr];
            format!(
                "s = s + {a}[i{}{}];",
                if off >= 0 { "+" } else { "-" },
                off.abs()
            )
        }),
        // array write from the accumulator
        (0..3usize).prop_map(|arr| {
            let a = ["u", "v", "w"][arr];
            format!("{a}[i] = s % 1000 + i;")
        }),
        // recurrence-style update
        (0..3usize, 1i64..=2).prop_map(|(arr, d)| {
            let a = ["u", "v", "w"][arr];
            format!("{a}[i] = {a}[i-{d}] + 1;")
        }),
        // conditional bump
        Just("if (s % 3 == 0) s = s + 7;".to_string()),
        // scalar churn
        (1i64..50).prop_map(|k| format!("t = t * 3 + {k}; s = s + t % 100;")),
    ];
    // 1..5 statements in the loop body; bound up to the exact array size
    (proptest::collection::vec(stmt, 1..5), 296i64..=300).prop_map(|(body, hi)| {
        format!(
            r"
            int u[300]; int v[300]; int w[300];
            int main() {{
                int i; int s; int t;
                s = 1; t = 2;
                for (i = 0; i < 300; i++) {{ u[i] = i; v[i] = 2 * i; w[i] = 3000 - i; }}
                for (i = 2; i < {hi}; i++) {{
                    {}
                }}
                for (i = 0; i < 300; i++) s = s + u[i] + v[i] + w[i];
                return s % 100000;
            }}",
            body.join("\n                    ")
        )
    })
}

/// Run on the WM at one opt level; a memory fault is a legitimate outcome
/// (`Err`), anything else non-Ok (deadlock, timeout) is a test failure.
fn run_wm_level(src: &str, opts: &OptOptions) -> Result<i64, String> {
    let c = Compiler::new()
        .options(opts.clone())
        .compile(src)
        .expect("compiles");
    match c.run_wm("main", &[]) {
        Ok(r) => Ok(r.ret_int),
        Err(e @ wm_stream::sim::SimError::Fault { .. }) => Err(e.to_string()),
        Err(e) => panic!("non-fault failure under {opts:?}: {e}\n{src}"),
    }
}

fn run_scalar(src: &str) -> Result<i64, String> {
    let c = Compiler::new()
        .target(Target::Scalar)
        .compile(src)
        .expect("compiles");
    match c.run_scalar("main", &[], &MachineModel::m88100()) {
        Ok(r) => Ok(r.ret_int),
        Err(e @ wm_stream::machines::ScalarError::Fault(_)) => Err(e.to_string()),
        Err(e) => panic!("non-fault scalar failure: {e}\n{src}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: cases(), // each case compiles 6 ways and simulates; keep it bounded
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_programs_agree_across_opt_levels_and_machines(src in arbitrary_program()) {
        let reference = run_wm_level(&src, &OptOptions::none());

        for opts in [
            OptOptions::all().without_recurrence().without_streaming(),
            OptOptions::all().without_streaming(),
            OptOptions::all(),
            OptOptions::all().with_speculative_streams(),
            OptOptions::all().with_vectorization(),
        ] {
            let r = run_wm_level(&src, &opts);
            match (&reference, &r) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "options {:?}\n{}", opts, src),
                (Err(_), Err(_)) => {} // both fault: agreement
                _ => prop_assert!(
                    false,
                    "fault-or-value disagreement under {:?}: reference {:?} vs {:?}\n{}",
                    opts, reference, r, src
                ),
            }
        }

        let r = run_scalar(&src);
        match (&reference, &r) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "scalar target\n{}", src),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(
                false,
                "fault-or-value disagreement on the scalar machine: {:?} vs {:?}\n{}",
                reference, r, src
            ),
        }
    }
}
