//! Feature-level integration tests spanning the whole pipeline: language
//! features through optimization, allocation and simulation.

use wm_stream::{Compiler, MachineModel, OptOptions, Target, WmConfig};

fn run_wm(src: &str) -> wm_stream::RunResult {
    Compiler::new()
        .compile(src)
        .expect("compiles")
        .run_wm("main", &[])
        .expect("runs")
}

#[test]
fn recursion_with_deep_frames() {
    let r = run_wm(
        r"
        int ack(int m, int n) {
            if (m == 0) return n + 1;
            if (n == 0) return ack(m - 1, 1);
            return ack(m - 1, ack(m, n - 1));
        }
        int main() { return ack(2, 3); }
        ",
    );
    assert_eq!(r.ret_int, 9);
}

#[test]
fn mutual_recursion() {
    let r = run_wm(
        r"
        int is_odd(int n);
        int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
        int main() { return is_even(10) * 10 + is_odd(7); }
        ",
    );
    assert_eq!(r.ret_int, 11);
}

#[test]
fn double_precision_behaviour_matches_rust() {
    let r = run_wm(
        r"
        int main() {
            double x; double y; int i;
            x = 1.0; y = 0.0;
            for (i = 0; i < 50; i++) { y = y + x; x = x * 0.5; }
            return (int) (y * 1000000.0);
        }
        ",
    );
    let mut x = 1.0f64;
    let mut y = 0.0f64;
    for _ in 0..50 {
        y += x;
        x *= 0.5;
    }
    assert_eq!(r.ret_int, (y * 1_000_000.0) as i64);
}

#[test]
fn character_and_string_handling() {
    let r = run_wm(
        r#"
        char buf[64];
        int main() {
            int i; int n;
            buf[0] = 'W'; buf[1] = 'M'; buf[2] = 0;
            n = 0;
            while (buf[n]) n = n + 1;
            for (i = 0; i < n; i++) putchar(buf[i]);
            putchar('\n');
            return n;
        }
        "#,
    );
    assert_eq!(r.ret_int, 2);
    assert_eq!(r.output, b"WM\n");
}

#[test]
fn ternary_logical_and_bitwise_operators() {
    let r = run_wm(
        r"
        int main() {
            int a; int b; int c;
            a = 12; b = 10;
            c = (a > b ? a : b) + ((a & b) | (a ^ b)) + (a << 2) + (a >> 1) + !b + ~0;
            if (a > 5 && b < 20) c = c + 100;
            if (a < 5 || b < 20) c = c + 1000;
            return c;
        }
        ",
    );
    let (a, b): (i64, i64) = (12, 10);
    let mut c = ((if a > b { a } else { b }) + ((a & b) | (a ^ b)) + (a << 2) + (a >> 1)) + !0;
    c += 100;
    c += 1000;
    assert_eq!(r.ret_int, c);
}

#[test]
fn negative_strides_stream_downward_loops() {
    let src = r"
        double a[4000]; double b[4000];
        int main() {
            int i;
            for (i = 0; i < 4000; i++) a[i] = i * 1.0;
            for (i = 3999; i >= 0; i--) b[i] = a[i] * 2.0;
            return (int) b[1234];
        }
    ";
    let c = Compiler::new().compile(src).expect("compiles");
    let r = c.run_wm("main", &[]).expect("runs");
    assert_eq!(r.ret_int, 2468);
    // downward loop did stream
    let s = c.stats_for("main").unwrap();
    assert!(
        s.streaming.streams_in >= 1 && s.streaming.streams_out >= 1,
        "{:?}",
        s.streaming
    );
}

#[test]
fn symbolic_stride_loops_stream() {
    let src = r"
        char flags[8191];
        int main() {
            int k; int prime; int sum; int i;
            for (i = 0; i < 8191; i++) flags[i] = 1;
            prime = 17;
            for (k = prime; k < 8191; k = k + prime) flags[k] = 0;
            sum = 0;
            for (i = 0; i < 8191; i++) sum = sum + flags[i];
            return sum;
        }
    ";
    let c = Compiler::new().compile(src).expect("compiles");
    let r = c.run_wm("main", &[]).expect("runs");
    assert_eq!(r.ret_int, 8191 - (8191 - 17 + 16) / 17);
    let s = c.stats_for("main").unwrap();
    assert!(
        s.streaming.streams_out >= 2,
        "init and marking: {:?}",
        s.streaming
    );
}

#[test]
fn scalar_and_wm_targets_agree_everywhere() {
    let src = r"
        int fib[30];
        int main() {
            int i;
            fib[0] = 0; fib[1] = 1;
            for (i = 2; i < 30; i++) fib[i] = fib[i-1] + fib[i-2];
            return fib[29];
        }
    ";
    let wm = Compiler::new()
        .compile(src)
        .unwrap()
        .run_wm("main", &[])
        .unwrap();
    for model in MachineModel::table1_machines() {
        let sc = Compiler::new()
            .target(Target::Scalar)
            .compile(src)
            .unwrap()
            .run_scalar("main", &[], &model)
            .unwrap();
        assert_eq!(sc.ret_int, wm.ret_int, "{}", model.name);
    }
    assert_eq!(wm.ret_int, 514229);
}

#[test]
fn tight_fifo_configurations_still_work() {
    // tiny FIFOs and queues stress back-pressure paths
    let src = wm_stream::workloads::table2()[4].source; // dot-product
    let cfg = WmConfig {
        fifo_capacity: 2,
        cc_capacity: 2,
        iq_capacity: 2,
        store_queue: 2,
        mem_ports: 1,
        ..WmConfig::default()
    };
    let c = Compiler::new().compile(src).expect("compiles");
    let r = c.run_wm_config("main", &[], &cfg).expect("runs");
    assert_eq!(r.ret_int, 1);
}

#[test]
fn single_scu_serializes_but_stays_correct() {
    let src = wm_stream::workloads::livermore5().source;
    let cfg = WmConfig {
        num_scus: 1,
        ..WmConfig::default()
    };
    let c = Compiler::new().compile(src).expect("compiles");
    // With one SCU the second/third stream instructions stall until a unit
    // frees; counted streams never free early, so the compiler's three
    // streams deadlock-detect or run — either way the result must not be
    // silently wrong.
    match c.run_wm_config("main", &[], &cfg) {
        Ok(r) => assert_eq!(r.ret_int, wm_stream::workloads::livermore5_expected()),
        Err(e) => {
            let msg = e.to_string();
            assert!(msg.contains("deadlock"), "unexpected failure mode: {msg}");
        }
    }
}

#[test]
fn optimizer_reports_are_exposed() {
    let c = Compiler::new()
        .options(OptOptions::all())
        .compile(wm_stream::workloads::livermore5().source)
        .unwrap();
    let s = c.stats_for("main").unwrap();
    assert_eq!(s.recurrence.loads_eliminated, 1);
    assert!(s.streaming.streams_in >= 2);
    assert!(s.streaming.streams_out >= 1);
}
