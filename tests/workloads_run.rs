//! End-to-end correctness: every benchmark program must produce its
//! expected result under every optimization level, on the WM simulator and
//! on a scalar machine. Cycle counts must be deterministic.

use wm_stream::{Compiler, MachineModel, OptOptions, Target};

fn opt_levels() -> Vec<(&'static str, OptOptions)> {
    vec![
        ("none", OptOptions::none()),
        (
            "classical",
            OptOptions::all().without_recurrence().without_streaming(),
        ),
        ("recurrence", OptOptions::all().without_streaming()),
        ("full", OptOptions::all()),
        ("full+noalias", OptOptions::all().assume_noalias()),
        ("modulo", OptOptions::all().assume_noalias().with_modulo()),
    ]
}

#[test]
fn every_workload_is_correct_on_the_wm_at_every_opt_level() {
    for w in wm_stream::workloads::table2() {
        for (level, opts) in opt_levels() {
            let c = Compiler::new()
                .options(opts)
                .compile(w.source)
                .unwrap_or_else(|e| panic!("{} [{}]: {e}", w.name, level));
            let r = c
                .run_wm("main", &[])
                .unwrap_or_else(|e| panic!("{} [{}]: {e}", w.name, level));
            if let wm_stream::workloads::Expected::Ret(want) = w.expected_ret {
                assert_eq!(r.ret_int, want, "{} [{}]", w.name, level);
            }
        }
    }
}

#[test]
fn every_workload_is_correct_on_scalar_machines() {
    let models = [MachineModel::sun_3_280(), MachineModel::m88100()];
    for w in wm_stream::workloads::table2() {
        for model in &models {
            let c = Compiler::new()
                .target(Target::Scalar)
                .compile(w.source)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let r = c
                .run_scalar("main", &[], model)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name, model.name));
            if let wm_stream::workloads::Expected::Ret(want) = w.expected_ret {
                assert_eq!(r.ret_int, want, "{} on {}", w.name, model.name);
            }
        }
    }
}

#[test]
fn sparse_workloads_verify_at_every_opt_level_and_stream_indirectly() {
    for w in wm_stream::workloads::sparse() {
        for (level, opts) in opt_levels() {
            let c = Compiler::new()
                .options(opts)
                .compile(w.source)
                .unwrap_or_else(|e| panic!("{} [{}]: {e}", w.name, level));
            let r = c
                .run_wm("main", &[])
                .unwrap_or_else(|e| panic!("{} [{}]: {e}", w.name, level));
            w.check(r.ret_int);
            // The point of these workloads: at full+noalias the indirect
            // reference actually fuses (sparse-matvec's CSR gather,
            // histogram's permutation scatter).
            if level == "full+noalias" {
                let indirect: usize = c
                    .stats
                    .iter()
                    .map(|(_, s)| s.streaming.gathers + s.streaming.scatters)
                    .sum();
                assert!(indirect >= 1, "{}: no gather/scatter fused", w.name);
            }
        }
        // and on a scalar machine
        let r = Compiler::new()
            .target(Target::Scalar)
            .compile(w.source)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name))
            .run_scalar("main", &[], &MachineModel::m88100())
            .unwrap_or_else(|e| panic!("{} scalar: {e}", w.name));
        w.check(r.ret_int);
    }
}

#[test]
fn livermore5_matches_the_rust_reference() {
    let expected = wm_stream::workloads::livermore5_expected();
    let src = wm_stream::workloads::livermore5().source;
    for (level, opts) in opt_levels() {
        let r = Compiler::new()
            .options(opts)
            .compile(src)
            .expect("compiles")
            .run_wm("main", &[])
            .unwrap_or_else(|e| panic!("[{level}]: {e}"));
        assert_eq!(r.ret_int, expected, "[{level}]");
    }
    // and on a scalar model
    let r = Compiler::new()
        .target(Target::Scalar)
        .compile(src)
        .expect("compiles")
        .run_scalar("main", &[], &MachineModel::vax_8600())
        .expect("runs");
    assert_eq!(r.ret_int, expected);
}

#[test]
fn text_kernels_verify_with_infinite_streams() {
    let w = wm_stream::workloads::text_kernels();
    let c = Compiler::new()
        .options(OptOptions::all().assume_noalias())
        .compile(w.source)
        .expect("compiles");
    let r = c.run_wm("main", &[]).expect("runs");
    w.check(r.ret_int);
    // the kernels must actually use streams
    let total: usize = c
        .stats
        .iter()
        .map(|(_, s)| s.streaming.streams_in + s.streaming.streams_out)
        .sum();
    assert!(total >= 3, "expected several streams, got {total}");
}

#[test]
fn cycle_counts_are_deterministic() {
    let w = &wm_stream::workloads::table2()[4]; // dot-product
    let c = Compiler::new().compile(w.source).expect("compiles");
    let a = c.run_wm("main", &[]).expect("runs");
    let b = c.run_wm("main", &[]).expect("runs");
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn outputs_match_across_optimization_levels() {
    // programs that print: banner and cal
    for w in wm_stream::workloads::table2()
        .into_iter()
        .filter(|w| w.name == "banner" || w.name == "cal")
    {
        let base = Compiler::new()
            .options(OptOptions::none())
            .compile(w.source)
            .expect("compiles")
            .run_wm("main", &[])
            .expect("runs");
        let full = Compiler::new()
            .options(OptOptions::all().assume_noalias())
            .compile(w.source)
            .expect("compiles")
            .run_wm("main", &[])
            .expect("runs");
        assert_eq!(
            String::from_utf8_lossy(&base.output),
            String::from_utf8_lossy(&full.output),
            "{} output differs",
            w.name
        );
        assert!(!base.output.is_empty());
    }
}
