//! The `-O modulo` contract, end to end: solver-scheduled kernels are
//! architecturally invisible (same results as the greedy schedule on
//! every engine and memory model), never slower anywhere, and strictly
//! faster on the ordering-limited integer kernels.

use wm_stream::sim::Engine;
use wm_stream::{Compiler, MemModel, OptOptions, WmConfig, Workload};

fn greedy() -> OptOptions {
    OptOptions::all().assume_noalias()
}

fn modulo() -> OptOptions {
    OptOptions::all().assume_noalias().with_modulo()
}

/// The kernels whose steady-state interval is ordering-limited: the
/// solver must find a strictly smaller II than the greedy schedule.
fn winners() -> Vec<Workload> {
    vec![
        wm_stream::workloads::od_kernel(),
        wm_stream::workloads::uuencode(),
        wm_stream::workloads::smooth(),
    ]
}

/// Loops the scheduler must *decline*: iir's interval already sits at
/// the dispatch bound and livermore5/histogram are recurrence-bound, so
/// the fallback has to leave their code (and cycles) untouched.
fn fallbacks() -> Vec<Workload> {
    vec![
        wm_stream::workloads::table2()[5], // iir
        wm_stream::workloads::livermore5(),
        wm_stream::workloads::histogram(),
    ]
}

fn run(c: &wm_stream::Compiled, engine: Engine, mem: &MemModel) -> wm_stream::RunResult {
    let cfg = WmConfig::default()
        .with_engine(engine)
        .with_mem_model(mem.clone());
    c.run_wm_config("main", &[], &cfg).expect("runs")
}

#[test]
fn modulo_matches_greedy_on_every_engine_and_memory_model() {
    let mems = [
        MemModel::parse("flat").unwrap(),
        MemModel::parse("banked").unwrap(),
    ];
    for w in winners().into_iter().chain(fallbacks()) {
        let g = Compiler::new()
            .options(greedy())
            .compile(w.source)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let m = Compiler::new()
            .options(modulo())
            .compile(w.source)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        for mem in &mems {
            let mut cycles_by_engine = Vec::new();
            for engine in Engine::ALL {
                let rg = run(&g, engine, mem);
                let rm = run(&m, engine, mem);
                // Architecturally identical: same return, same output.
                assert_eq!(rm.ret_int, rg.ret_int, "{} ({engine}, {mem})", w.name);
                assert_eq!(rm.output, rg.output, "{} ({engine}, {mem})", w.name);
                w.check(rm.ret_int);
                // Never slower: the fallback is loop-by-loop.
                assert!(
                    rm.cycles <= rg.cycles,
                    "{} ({engine}, {mem}): modulo {} cycles vs greedy {}",
                    w.name,
                    rm.cycles,
                    rg.cycles
                );
                cycles_by_engine.push(rm.cycles);
            }
            // All three engines agree on the scheduled code's cycles.
            assert!(
                cycles_by_engine.windows(2).all(|p| p[0] == p[1]),
                "{} ({mem}): engines disagree: {cycles_by_engine:?}",
                w.name
            );
        }
    }
}

#[test]
fn modulo_strictly_beats_greedy_on_ordering_limited_kernels() {
    let flat = MemModel::parse("flat").unwrap();
    for w in winners() {
        let g = Compiler::new()
            .options(greedy())
            .compile(w.source)
            .expect("compiles");
        let m = Compiler::new()
            .options(modulo())
            .compile(w.source)
            .expect("compiles");
        // The report must show a loop pipelined at II strictly below the
        // greedy interval estimate...
        let pipelined: u32 = m.stats.iter().map(|(_, s)| s.modulo.pipelined).sum();
        assert!(pipelined >= 1, "{}: no loop pipelined", w.name);
        for (_, s) in &m.stats {
            for l in s.modulo.loops() {
                if l.pipelined {
                    assert!(
                        l.ii < l.greedy && l.ii == l.mii,
                        "{}: L{} II {} vs greedy {} (MII {})",
                        w.name,
                        l.label,
                        l.ii,
                        l.greedy,
                        l.mii
                    );
                }
            }
        }
        // ...and the win must be real on the machine, not just estimated.
        let rg = run(&g, Engine::Event, &flat);
        let rm = run(&m, Engine::Event, &flat);
        assert!(
            rm.cycles < rg.cycles,
            "{}: modulo {} cycles is not below greedy {}",
            w.name,
            rm.cycles,
            rg.cycles
        );
    }
}

#[test]
fn modulo_fallback_keeps_bound_loops_bit_identical() {
    let flat = MemModel::parse("flat").unwrap();
    for w in fallbacks() {
        let g = Compiler::new()
            .options(greedy())
            .compile(w.source)
            .expect("compiles");
        let m = Compiler::new()
            .options(modulo())
            .compile(w.source)
            .expect("compiles");
        // Declined loops keep the greedy code, so the whole run is
        // cycle-for-cycle identical, not merely equal in results.
        let rg = run(&g, Engine::Event, &flat);
        let rm = run(&m, Engine::Event, &flat);
        assert_eq!(rm.cycles, rg.cycles, "{}", w.name);
        assert_eq!(rm.stats, rg.stats, "{}", w.name);
        // And the report says why: considered, but nothing pipelined.
        let pipelined: u32 = m.stats.iter().map(|(_, s)| s.modulo.pipelined).sum();
        assert_eq!(pipelined, 0, "{}: expected pure fallback", w.name);
    }
}
