//! Cycle-level simulator of the WM decoupled access/execute architecture.
//!
//! Models the units the paper describes:
//!
//! * an **instruction fetch unit** (IFU) that "fetches instructions
//!   sequentially and dispatches them to the appropriate execution unit
//!   where they are placed in first-in-first-out queues"; unconditional
//!   and resolvable conditional transfers of control are free, and the IFU
//!   stalls when a conditional jump's condition-code FIFO is empty;
//! * **integer and floating-point execution units** (IEU/FEU), each with
//!   32 registers where register 31 reads as zero and register 0 is a pair
//!   of FIFO queues buffering data to and from memory; the paired-ALU
//!   dependency rule ("the result of an instruction is not available as an
//!   operand of the following instruction for the same execution unit") is
//!   modelled as a one-cycle interlock;
//! * **stream control units** (SCUs) that generate the address sequences
//!   of `Sin`/`Sout` instructions concurrently with the execution units;
//! * a **memory system** with configurable access latency and accept ports
//!   per cycle, shared by scalar requests and SCU requests.
//!
//! The simulator produces "exact cycle counts (including memory delays)",
//! which is what Table II of the paper reports.
//!
//! # Example
//!
//! ```
//! use wm_sim::{WmConfig, WmMachine};
//!
//! let module = wm_frontend::compile(
//!     "int main() { return 6 * 7; }",
//! ).unwrap();
//! let mut module = module;
//! // lower to WM form and allocate registers
//! for f in module.functions.iter_mut() {
//!     wm_target::expand_wm(f);
//!     wm_target::allocate_registers(f, wm_target::TargetKind::Wm).unwrap();
//! }
//! let result = WmMachine::run(&module, "main", &[], &WmConfig::default()).unwrap();
//! assert_eq!(result.ret_int, 42);
//! assert!(result.cycles > 0);
//! ```

mod cancel;
mod compiled;
mod config;
mod decode;
mod fastforward;
mod fault;
mod loader;
mod machine;
mod mem;
mod stats;
mod tiled;

pub use cancel::CancelToken;
pub use config::{FaultPlan, WmConfig};
pub use decode::DecodedProgram;
pub use fastforward::{Engine, FfSpan};
pub use fault::{
    json_escape, FaultInfo, FaultKind, FaultUnit, FifoState, MachineState, ScuState, UnitState,
};
pub use loader::{AccessError, AccessKind, MapRegion, MemoryImage, DATA_BASE, GUARD_SIZE};
pub use machine::{RunResult, SimError, SimStats, TraceEvent, WmMachine};
pub use mem::{CacheParams, DramParams, MemModel, MemStats};
pub use stats::{
    DepthSample, FifoHist, Outcome, ScuCounters, Stall, Stats, UnitCounters, FIFO_NAMES, SBUF_TRACK,
};
pub use tiled::{TiledMachine, TiledRunResult};
