//! Fault provenance and machine-state diagnostics.
//!
//! Every terminal simulator error carries a [`MachineState`] snapshot
//! (FIFO occupancies, in-flight memory traffic, per-unit stall state) and
//! faults carry a [`FaultInfo`] naming the unit, the instruction and the
//! address involved, so a miscompilation produces an actionable report
//! instead of an opaque wedge.

use wm_ir::DataFifo;

/// The unit on whose behalf a fault was raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultUnit {
    /// Integer execution unit.
    Ieu,
    /// Floating-point execution unit.
    Feu,
    /// Vector execution unit.
    Veu,
    /// Instruction fetch unit.
    Ifu,
    /// Stream control unit `n`.
    Scu(usize),
}

impl FaultUnit {
    /// Stable machine-readable name (used by the JSON encoding). SCUs
    /// render as `"scu"`; their index travels separately.
    pub fn name(self) -> &'static str {
        match self {
            FaultUnit::Ieu => "ieu",
            FaultUnit::Feu => "feu",
            FaultUnit::Veu => "veu",
            FaultUnit::Ifu => "ifu",
            FaultUnit::Scu(_) => "scu",
        }
    }
}

impl std::fmt::Display for FaultUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultUnit::Ieu => write!(f, "IEU"),
            FaultUnit::Feu => write!(f, "FEU"),
            FaultUnit::Veu => write!(f, "VEU"),
            FaultUnit::Ifu => write!(f, "IFU"),
            FaultUnit::Scu(n) => write!(f, "SCU {n}"),
        }
    }
}

/// What went wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Access to an address no region maps.
    Unmapped,
    /// Store to a read-only region.
    ReadOnly,
    /// An execute unit consumed a FIFO entry whose prefetch had faulted
    /// (deferred stream-fault semantics).
    PoisonConsumed,
    /// Integer division/remainder by zero.
    DivideByZero,
    /// A stream was configured with a non-positive element count.
    BadStreamCount(i64),
    /// A scalar store and a stream-out competed for one output FIFO.
    OutputConflict,
}

impl FaultKind {
    /// Stable machine-readable class name (used by the JSON encoding).
    /// The payload of [`FaultKind::BadStreamCount`] travels separately.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Unmapped => "unmapped",
            FaultKind::ReadOnly => "read-only",
            FaultKind::PoisonConsumed => "poison-consumed",
            FaultKind::DivideByZero => "divide-by-zero",
            FaultKind::BadStreamCount(_) => "bad-stream-count",
            FaultKind::OutputConflict => "output-conflict",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Unmapped => write!(f, "unmapped address"),
            FaultKind::ReadOnly => write!(f, "read-only memory"),
            FaultKind::PoisonConsumed => write!(f, "poisoned stream datum consumed"),
            FaultKind::DivideByZero => write!(f, "integer division by zero"),
            FaultKind::BadStreamCount(n) => write!(f, "stream count {n}"),
            FaultKind::OutputConflict => write!(f, "output FIFO conflict"),
        }
    }
}

/// Full provenance of a fault: which unit, which stream, which
/// instruction, which address.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInfo {
    /// Unit that raised (or consumed) the fault.
    pub unit: FaultUnit,
    /// Violation class.
    pub kind: FaultKind,
    /// Faulting address, when the fault involves memory.
    pub addr: Option<i64>,
    /// The data FIFO involved, for stream faults.
    pub stream: Option<DataFifo>,
    /// The instruction at the head of the unit's queue, in listing
    /// notation (filled in by the execution loop when known).
    pub inst: Option<String>,
    /// Human-readable description (includes the memory-map context for
    /// access faults).
    pub detail: String,
}

impl FaultInfo {
    /// Render the provenance as a stable one-object JSON document:
    /// `unit`/`scu`, `class` (plus `count` for bad stream counts), and —
    /// when known — `addr`, `stream` and `inst`, with the human-readable
    /// `detail` last. Shared by [`crate::SimError::to_json`] and the
    /// `wmd` wire protocol.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"unit\": \"{}\"", self.unit.name());
        if let FaultUnit::Scu(n) = self.unit {
            out.push_str(&format!(", \"scu\": {n}"));
        }
        out.push_str(&format!(", \"class\": \"{}\"", self.kind.name()));
        if let FaultKind::BadStreamCount(n) = self.kind {
            out.push_str(&format!(", \"count\": {n}"));
        }
        if let Some(a) = self.addr {
            out.push_str(&format!(", \"addr\": {a}"));
        }
        if let Some(s) = &self.stream {
            out.push_str(&format!(", \"stream\": \"{s}\""));
        }
        if let Some(i) = &self.inst {
            out.push_str(&format!(", \"inst\": \"{}\"", json_escape(i)));
        }
        out.push_str(&format!(
            ", \"detail\": \"{}\"}}",
            json_escape(&self.detail)
        ));
        out
    }
}

impl std::fmt::Display for FaultInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.unit, self.detail)?;
        if let Some(s) = &self.stream {
            write!(f, " [stream -> {s}]")?;
        }
        if let Some(i) = &self.inst {
            write!(f, " [instruction `{i}`]")?;
        }
        Ok(())
    }
}

impl std::error::Error for FaultInfo {}

/// Escape a string for embedding in a JSON string literal (quotes,
/// backslashes and control characters; everything else passes through).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Occupancy of one input FIFO.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FifoState {
    /// Entries queued.
    pub len: usize,
    /// Memory requests in flight toward the FIFO.
    pub pending: usize,
    /// Whether an SCU is feeding it.
    pub streamed: bool,
    /// Queued entries that are poisoned.
    pub poisoned: usize,
}

/// One execution unit's externally visible state.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitState {
    /// `"IEU"` or `"FEU"`.
    pub name: &'static str,
    /// Instruction-queue depth.
    pub iq: usize,
    /// Head of the instruction queue, in listing notation.
    pub head: Option<String>,
    /// Input FIFOs 0 and 1.
    pub ins: [FifoState; 2],
    /// Output-FIFO depth.
    pub out: usize,
    /// Condition-code FIFO depth.
    pub cc: usize,
    /// Why the unit cannot retire its head, when it cannot.
    pub stall: Option<String>,
}

/// One stream control unit's state.
#[derive(Debug, Clone, PartialEq)]
pub struct ScuState {
    /// Index of the SCU.
    pub index: usize,
    /// Whether a stream is configured and running.
    pub active: bool,
    /// True for in-streams (memory -> FIFO).
    pub dir_in: bool,
    /// Destination/source description (`"i0"`, `"VEU port 1"`).
    pub target: String,
    /// Next address the SCU will issue.
    pub addr: i64,
    /// Elements left (`None` for unbounded streams).
    pub remaining: Option<i64>,
    /// Whether fault injection has disabled this SCU.
    pub disabled: bool,
}

/// A snapshot of the machine, attached to every terminal error.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineState {
    /// Cycle at which the snapshot was taken.
    pub cycle: u64,
    /// Program counter (`None` once the entry function returned).
    pub pc: Option<String>,
    /// IEU then FEU.
    pub units: Vec<UnitState>,
    /// All stream control units.
    pub scus: Vec<ScuState>,
    /// Memory requests in flight.
    pub in_flight: usize,
    /// Scalar stores waiting for data.
    pub store_queue: usize,
    /// VEU instruction-queue depth.
    pub veu_iq: usize,
    /// IFU-side `jNI` dispatch counters, as `(fifo, remaining)`.
    pub dispatch: Vec<(String, i64)>,
    /// Memory responses dropped so far by fault injection.
    pub dropped_responses: u64,
    /// Memory-hierarchy state summary (L1/MSHR/stream-buffer/bank
    /// occupancy; `None` under the flat model).
    pub mem: Option<String>,
}

impl MachineState {
    /// The stalled units, for a one-line culprit summary.
    pub fn culprits(&self) -> Vec<String> {
        self.units
            .iter()
            .filter_map(|u| u.stall.as_ref().map(|s| format!("{}: {s}", u.name)))
            .collect()
    }
}

impl std::fmt::Display for MachineState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "machine state at cycle {} (pc {}):",
            self.cycle,
            self.pc.as_deref().unwrap_or("<returned>")
        )?;
        for u in &self.units {
            writeln!(
                f,
                "  {}: iq={} head={} in0=[{}q+{}p{}{}] in1=[{}q+{}p{}{}] out={} cc={}",
                u.name,
                u.iq,
                u.head.as_deref().unwrap_or("-"),
                u.ins[0].len,
                u.ins[0].pending,
                if u.ins[0].streamed { " streamed" } else { "" },
                if u.ins[0].poisoned > 0 { " POISON" } else { "" },
                u.ins[1].len,
                u.ins[1].pending,
                if u.ins[1].streamed { " streamed" } else { "" },
                if u.ins[1].poisoned > 0 { " POISON" } else { "" },
                u.out,
                u.cc,
            )?;
            if let Some(s) = &u.stall {
                writeln!(f, "       stalled: {s}")?;
            }
        }
        for s in &self.scus {
            if s.active || s.disabled {
                writeln!(
                    f,
                    "  SCU {}: {} {} -> {} addr={:#x} remaining={}{}",
                    s.index,
                    if s.active { "active" } else { "idle" },
                    if s.dir_in { "in" } else { "out" },
                    s.target,
                    s.addr,
                    s.remaining
                        .map(|r| r.to_string())
                        .unwrap_or_else(|| "unbounded".to_string()),
                    if s.disabled {
                        " [DISABLED by fault injection]"
                    } else {
                        ""
                    },
                )?;
            }
        }
        writeln!(
            f,
            "  memory: {} in flight, {} store(s) queued{}",
            self.in_flight,
            self.store_queue,
            if self.dropped_responses > 0 {
                format!(
                    ", {} response(s) dropped by fault injection",
                    self.dropped_responses
                )
            } else {
                String::new()
            }
        )?;
        if let Some(m) = &self.mem {
            writeln!(f, "  memory hierarchy: {m}")?;
        }
        if self.veu_iq > 0 {
            writeln!(f, "  VEU: iq={}", self.veu_iq)?;
        }
        if !self.dispatch.is_empty() {
            let d: Vec<String> = self
                .dispatch
                .iter()
                .map(|(f, n)| format!("{f}={n}"))
                .collect();
            writeln!(f, "  dispatch counters: {}", d.join(" "))?;
        }
        Ok(())
    }
}
