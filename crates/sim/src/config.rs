//! Simulator configuration.

use crate::fastforward::Engine;
use crate::mem::MemModel;

/// Deterministic fault-injection plan: degrade the simulated hardware in
/// reproducible ways to exercise the deadlock detector and the stall
/// accounting rather than only the happy path.
///
/// Memory requests are numbered from 1 in issue order across the whole
/// run; injected delays keep delivery in order (a delayed response blocks
/// younger ones behind it, as the memory system delivers in FIFO order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// `(request #, extra cycles)`: delay the response to a request.
    pub delays: Vec<(u64, u64)>,
    /// Request #s whose response is silently dropped (the machine should
    /// wedge and the deadlock detector should attribute the loss).
    pub drops: Vec<u64>,
    /// `(scu index, cycle)`: the SCU stops issuing requests at the cycle.
    pub disable_scus: Vec<(usize, u64)>,
    /// Seed for deterministic per-request latency jitter (`None` = off).
    pub jitter_seed: Option<u64>,
    /// Maximum extra cycles of jitter per request.
    pub jitter_max: u64,
}

impl FaultPlan {
    /// No injection at all (the default).
    pub fn is_empty(&self) -> bool {
        self.delays.is_empty()
            && self.drops.is_empty()
            && self.disable_scus.is_empty()
            && self.jitter_seed.is_none()
    }

    /// Parse a comma-separated spec: `delay:N:C` (delay request #N by C
    /// cycles), `drop:N` (drop request #N's response), `scu:I:C` (disable
    /// SCU I at cycle C), `jitter:SEED:MAX` (seeded latency jitter up to
    /// MAX extra cycles).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let fields: Vec<&str> = part.split(':').collect();
            let num = |s: &str| -> Result<u64, String> {
                s.parse::<u64>()
                    .map_err(|_| format!("bad number `{s}` in fault spec `{part}`"))
            };
            match fields.as_slice() {
                ["delay", n, c] => plan.delays.push((num(n)?, num(c)?)),
                ["drop", n] => plan.drops.push(num(n)?),
                ["scu", i, c] => plan.disable_scus.push((num(i)? as usize, num(c)?)),
                ["jitter", seed, max] => {
                    plan.jitter_seed = Some(num(seed)?);
                    plan.jitter_max = num(max)?;
                }
                _ => {
                    return Err(format!(
                        "bad fault directive `{part}` (expected delay:N:C, \
                         drop:N, scu:I:C or jitter:SEED:MAX)"
                    ))
                }
            }
        }
        Ok(plan)
    }
}

/// Timing and capacity parameters of the simulated WM implementation.
///
/// The defaults model a plausible early-1990s implementation: a handful of
/// cycles of memory latency, two memory ports (enough to sustain the
/// two-loads-per-cycle dot-product inner loop the paper describes as
/// producing "the dot product in N clock cycles"), and eight-deep data
/// FIFOs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WmConfig {
    /// Cycles from a memory request being accepted to data delivery.
    pub mem_latency: u64,
    /// Memory requests accepted per cycle (scalar units have priority over
    /// the stream control units).
    pub mem_ports: u32,
    /// Capacity of each data FIFO (input and output).
    pub fifo_capacity: usize,
    /// Capacity of each condition-code FIFO.
    pub cc_capacity: usize,
    /// Capacity of each unit's instruction queue.
    pub iq_capacity: usize,
    /// Capacity of each unit's store-address queue.
    pub store_queue: usize,
    /// Cycles an SCU spends latching a stream configuration before its
    /// first memory request (setup cost of `Sin`/`Sout`).
    pub scu_setup: u64,
    /// Number of stream control units.
    pub num_scus: usize,
    /// Vector length N of the VEU's registers (must match the compiler's
    /// `OptOptions::vector_length`).
    pub veu_length: usize,
    /// VEU lanes: elements processed per cycle by one vector instruction.
    pub veu_lanes: usize,
    /// Bytes of simulated memory.
    pub memory_size: usize,
    /// Cycles charged for a builtin I/O call (`putchar`): system-call
    /// overhead on the simulated machine.
    pub io_latency: u64,
    /// Hard cycle limit (guards against runaway programs).
    pub max_cycles: u64,
    /// Cycles an SCU is held busy after a speculative-stream squash —
    /// a `Sstop` that discards fetched-ahead elements (queued or in
    /// flight). `0` (the default) makes squashes free, which keeps the
    /// timing of pre-existing workloads unchanged; nonzero values model
    /// the recovery cost of mis-speculated streams.
    pub squash_penalty: u64,
    /// Deterministic fault injection (empty by default).
    pub fault_plan: FaultPlan,
    /// Stepping engine: per-cycle, or event-driven fast-forward over
    /// all-stalled spans (bit-identical counters, much faster on
    /// latency-dominated configurations).
    pub engine: Engine,
    /// Memory-system model: `flat` (the default; every request costs
    /// `mem_latency`), or a hierarchy with an L1 data cache, stream
    /// buffers and optionally banked DRAM (see [`MemModel`]). Under a
    /// hierarchical model `mem_latency` is ignored; the model's own
    /// timing parameters apply.
    pub mem_model: MemModel,
    /// Number of WM cores in the tiled machine. `1` (the default) is the
    /// plain single-core machine on its existing code path; values above
    /// 1 instantiate a [`TiledMachine`](crate::TiledMachine) with
    /// point-to-point inter-core channels.
    pub tiles: usize,
    /// Cycles for a value to cross the inter-core channel fabric (from a
    /// send being staged to the entry becoming poppable at the receiver).
    pub chan_latency: u64,
    /// Cycles between cross-core synchronization epochs. Messages staged
    /// during an epoch are routed at the barrier that ends it, due
    /// `chan_latency` cycles later — deterministic for any epoch length
    /// and any host thread count.
    pub chan_epoch: u64,
    /// Per-sender receive-queue capacity. A scalar `Csend` ignores
    /// credits, so flooding past this poisons the overflowing entries;
    /// SCU stream sends respect credits and stall instead. Credits are
    /// returned only at epoch barriers, so the capacity bounds a
    /// channel's throughput at `chan_capacity / chan_epoch` elements per
    /// cycle — keep it a few times the epoch length or the channels, not
    /// the cores, become the bottleneck.
    pub chan_capacity: usize,
}

impl Default for WmConfig {
    fn default() -> WmConfig {
        WmConfig {
            mem_latency: 6,
            mem_ports: 2,
            fifo_capacity: 8,
            cc_capacity: 8,
            iq_capacity: 16,
            store_queue: 8,
            scu_setup: 4,
            num_scus: 4,
            veu_length: 32,
            veu_lanes: 4,
            memory_size: 16 << 20,
            io_latency: 20,
            max_cycles: 2_000_000_000,
            squash_penalty: 0,
            fault_plan: FaultPlan::default(),
            engine: Engine::default(),
            mem_model: MemModel::default(),
            tiles: 1,
            chan_latency: 16,
            chan_epoch: 1024,
            chan_capacity: 4096,
        }
    }
}

impl WmConfig {
    /// A configuration with a different memory latency (flat model only;
    /// hierarchical models carry their own timing). Any value is valid —
    /// `0` delivers responses at the start of the next cycle.
    pub fn with_mem_latency(mut self, cycles: u64) -> WmConfig {
        self.mem_latency = cycles;
        self
    }

    /// A configuration with a different number of memory ports.
    ///
    /// Valid range: `ports >= 1` (a machine that can never accept a
    /// memory request cannot run any program).
    ///
    /// # Panics
    ///
    /// Panics if `ports == 0`. (This used to clamp silently to 1, which
    /// hid the configuration error from callers sweeping parameter
    /// ranges.)
    pub fn with_mem_ports(mut self, ports: u32) -> WmConfig {
        assert!(ports >= 1, "with_mem_ports: ports must be >= 1, got 0");
        self.mem_ports = ports;
        self
    }

    /// A configuration with a different cycle limit. Any value is valid;
    /// a limit of `0` times out immediately.
    pub fn with_max_cycles(mut self, cycles: u64) -> WmConfig {
        self.max_cycles = cycles;
        self
    }

    /// A configuration with a different data-FIFO capacity.
    ///
    /// Valid range: `capacity >= 1` (register 0 *is* a FIFO pair; a
    /// zero-capacity FIFO could never transfer a datum).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (previously a silent clamp to 1).
    pub fn with_fifo_capacity(mut self, capacity: usize) -> WmConfig {
        assert!(
            capacity >= 1,
            "with_fifo_capacity: capacity must be >= 1, got 0"
        );
        self.fifo_capacity = capacity;
        self
    }

    /// A configuration with a squash-recovery penalty for speculative
    /// streams. Any value is valid; `0` (the default) makes squashes
    /// free.
    pub fn with_squash_penalty(mut self, cycles: u64) -> WmConfig {
        self.squash_penalty = cycles;
        self
    }

    /// A configuration with a fault-injection plan. Any plan parsed by
    /// [`FaultPlan::parse`] is valid.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> WmConfig {
        self.fault_plan = plan;
        self
    }

    /// A configuration with an explicit stepping engine. Both engines are
    /// always valid (they produce bit-identical results).
    pub fn with_engine(mut self, engine: Engine) -> WmConfig {
        self.engine = engine;
        self
    }

    /// A configuration with an explicit memory-system model. Any model
    /// produced by [`MemModel::parse`] (which validates its parameters)
    /// is valid.
    pub fn with_mem_model(mut self, model: MemModel) -> WmConfig {
        self.mem_model = model;
        self
    }

    /// A configuration with `n` tiles.
    ///
    /// Valid range: `1..=8` (the channel fabric addresses peers with a
    /// 3-bit tile id).
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or above 8.
    pub fn with_tiles(mut self, n: usize) -> WmConfig {
        assert!(
            (1..=8).contains(&n),
            "with_tiles: tiles must be 1..=8, got {n}"
        );
        self.tiles = n;
        self
    }

    /// A configuration with a different channel crossing latency. Any
    /// value is valid; `0` delivers at the routing barrier itself.
    pub fn with_chan_latency(mut self, cycles: u64) -> WmConfig {
        self.chan_latency = cycles;
        self
    }

    /// A configuration with a different synchronization-epoch length.
    ///
    /// Valid range: `epoch >= 1` (a zero-length epoch could never make
    /// progress between barriers).
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0`.
    pub fn with_chan_epoch(mut self, cycles: u64) -> WmConfig {
        assert!(cycles >= 1, "with_chan_epoch: epoch must be >= 1, got 0");
        self.chan_epoch = cycles;
        self
    }

    /// A configuration with a different per-sender channel capacity.
    ///
    /// Valid range: `capacity >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_chan_capacity(mut self, capacity: usize) -> WmConfig {
        assert!(
            capacity >= 1,
            "with_chan_capacity: capacity must be >= 1, got 0"
        );
        self.chan_capacity = capacity;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let c = WmConfig::default()
            .with_mem_latency(12)
            .with_mem_ports(1)
            .with_fifo_capacity(1)
            .with_max_cycles(10)
            .with_mem_model(MemModel::parse("cache").unwrap());
        assert_eq!(c.mem_latency, 12);
        assert_eq!(c.mem_ports, 1);
        assert_eq!(c.fifo_capacity, 1);
        assert_eq!(c.max_cycles, 10);
        assert_eq!(c.mem_model.name(), "cache");
        assert!(
            WmConfig::default().mem_model.is_flat(),
            "flat is the default"
        );
    }

    #[test]
    #[should_panic(expected = "ports must be >= 1")]
    fn zero_mem_ports_is_rejected() {
        let _ = WmConfig::default().with_mem_ports(0);
    }

    #[test]
    #[should_panic(expected = "capacity must be >= 1")]
    fn zero_fifo_capacity_is_rejected() {
        let _ = WmConfig::default().with_fifo_capacity(0);
    }

    #[test]
    fn fault_plan_parses() {
        let p = FaultPlan::parse("delay:3:40,drop:7,scu:1:100,jitter:42:5").unwrap();
        assert_eq!(p.delays, vec![(3, 40)]);
        assert_eq!(p.drops, vec![7]);
        assert_eq!(p.disable_scus, vec![(1, 100)]);
        assert_eq!(p.jitter_seed, Some(42));
        assert_eq!(p.jitter_max, 5);
        assert!(!p.is_empty());
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("delay:x:1").is_err());
        assert!(FaultPlan::parse("explode:now").is_err());
    }
}
