//! Simulator configuration.

/// Timing and capacity parameters of the simulated WM implementation.
///
/// The defaults model a plausible early-1990s implementation: a handful of
/// cycles of memory latency, two memory ports (enough to sustain the
/// two-loads-per-cycle dot-product inner loop the paper describes as
/// producing "the dot product in N clock cycles"), and eight-deep data
/// FIFOs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WmConfig {
    /// Cycles from a memory request being accepted to data delivery.
    pub mem_latency: u64,
    /// Memory requests accepted per cycle (scalar units have priority over
    /// the stream control units).
    pub mem_ports: u32,
    /// Capacity of each data FIFO (input and output).
    pub fifo_capacity: usize,
    /// Capacity of each condition-code FIFO.
    pub cc_capacity: usize,
    /// Capacity of each unit's instruction queue.
    pub iq_capacity: usize,
    /// Capacity of each unit's store-address queue.
    pub store_queue: usize,
    /// Cycles an SCU spends latching a stream configuration before its
    /// first memory request (setup cost of `Sin`/`Sout`).
    pub scu_setup: u64,
    /// Number of stream control units.
    pub num_scus: usize,
    /// Vector length N of the VEU's registers (must match the compiler's
    /// `OptOptions::vector_length`).
    pub veu_length: usize,
    /// VEU lanes: elements processed per cycle by one vector instruction.
    pub veu_lanes: usize,
    /// Bytes of simulated memory.
    pub memory_size: usize,
    /// Cycles charged for a builtin I/O call (`putchar`): system-call
    /// overhead on the simulated machine.
    pub io_latency: u64,
    /// Hard cycle limit (guards against runaway programs).
    pub max_cycles: u64,
}

impl Default for WmConfig {
    fn default() -> WmConfig {
        WmConfig {
            mem_latency: 6,
            mem_ports: 2,
            fifo_capacity: 8,
            cc_capacity: 8,
            iq_capacity: 16,
            store_queue: 8,
            scu_setup: 4,
            num_scus: 4,
            veu_length: 32,
            veu_lanes: 4,
            memory_size: 16 << 20,
            io_latency: 20,
            max_cycles: 2_000_000_000,
        }
    }
}

impl WmConfig {
    /// A configuration with a different memory latency.
    pub fn with_mem_latency(mut self, cycles: u64) -> WmConfig {
        self.mem_latency = cycles;
        self
    }

    /// A configuration with a different number of memory ports.
    pub fn with_mem_ports(mut self, ports: u32) -> WmConfig {
        self.mem_ports = ports.max(1);
        self
    }

    /// A configuration with a different cycle limit.
    pub fn with_max_cycles(mut self, cycles: u64) -> WmConfig {
        self.max_cycles = cycles;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let c = WmConfig::default()
            .with_mem_latency(12)
            .with_mem_ports(0)
            .with_max_cycles(10);
        assert_eq!(c.mem_latency, 12);
        assert_eq!(c.mem_ports, 1, "ports clamp to at least one");
        assert_eq!(c.max_cycles, 10);
    }
}
