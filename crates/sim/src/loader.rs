//! Module loading: lay out global data in simulated memory, together with
//! a permission map over the layout.
//!
//! The map keeps the null page and a red-zone after every global unmapped,
//! marks read-only globals as such, and leaves a large unmapped gap between
//! the data segment and the stack, so that wild loads and stores fault at a
//! precise address instead of silently reading zeros or corrupting a
//! neighbouring object.

use std::collections::HashMap;

use wm_ir::{GlobalKind, Module, SymId, Width};

use crate::machine::SimError;

/// Base address of the first global (addresses below are kept unmapped so
/// null-pointer bugs fault).
pub const DATA_BASE: i64 = 0x1000;

/// Unmapped red-zone after every global, so small out-of-bounds offsets
/// fault instead of landing in the next object.
pub const GUARD_SIZE: i64 = 32;

/// A mapped, permission-tagged address range `start..end`.
#[derive(Debug, Clone, PartialEq)]
pub struct MapRegion {
    /// First mapped address.
    pub start: i64,
    /// One past the last mapped address.
    pub end: i64,
    /// Whether stores are allowed.
    pub writable: bool,
    /// Human-readable name used in fault reports ("global \`u\`", "stack").
    pub label: String,
}

/// Why an access was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// No region maps the accessed range.
    Unmapped,
    /// The region is mapped but not writable.
    ReadOnly,
}

/// A refused memory access: what was attempted and where the address lies
/// relative to the mapped regions.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessError {
    /// Faulting address.
    pub addr: i64,
    /// Access size in bytes.
    pub len: i64,
    /// True for stores, false for loads.
    pub write: bool,
    /// Protection violation class.
    pub kind: AccessKind,
    /// Description of the address relative to the memory map.
    pub context: String,
}

impl std::fmt::Display for AccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let dir = if self.write { "store" } else { "load" };
        let kind = match self.kind {
            AccessKind::Unmapped => "unmapped address",
            AccessKind::ReadOnly => "read-only memory",
        };
        write!(
            f,
            "{dir} of {} byte(s) at {:#x}: {kind} ({})",
            self.len, self.addr, self.context
        )
    }
}

impl std::error::Error for AccessError {}

/// A loaded memory image: global data placed at fixed addresses with guard
/// red-zones between objects, the stack at the top, and everything else
/// unmapped.
#[derive(Debug, Clone)]
pub struct MemoryImage {
    /// The memory bytes.
    pub bytes: Vec<u8>,
    /// Address of each data symbol.
    pub addresses: HashMap<SymId, i64>,
    /// Initial stack pointer (top of memory, 16-byte aligned, minus slack).
    pub initial_sp: i64,
    /// Mapped regions, sorted by start address.
    regions: Vec<MapRegion>,
    /// Index of the region that satisfied the last permission check — a
    /// one-entry cache. Scalar references and stream cursors have strong
    /// spatial locality, so most checks re-hit the same region and skip
    /// the binary search.
    last_region: std::cell::Cell<usize>,
}

impl MemoryImage {
    /// Lay out `module`'s globals in `size` bytes of memory.
    ///
    /// Returns [`SimError::BadProgram`] when the data segment would collide
    /// with the stack region reserved at the top of memory.
    pub fn new(module: &Module, size: usize) -> Result<MemoryImage, SimError> {
        let mut bytes = vec![0u8; size];
        let mut addresses = HashMap::new();
        let mut regions: Vec<MapRegion> = Vec::new();
        let initial_sp = (size as i64 - 64) & !15;
        let stack_base = (size as i64 - (size as i64 / 4).min(4 << 20)) & !15;
        let mut cursor = DATA_BASE;
        for (i, g) in module.globals.iter().enumerate() {
            if let GlobalKind::Data {
                size: gsize,
                align,
                init,
            } = &g.kind
            {
                let align = (*align).max(1) as i64;
                cursor = (cursor + align - 1) / align * align;
                let addr = cursor;
                let end = addr + *gsize as i64;
                if end > stack_base {
                    return Err(SimError::BadProgram(format!(
                        "global data does not fit in simulated memory: \
                         global `{}` would end at {:#x}, past the stack \
                         region starting at {:#x} (memory_size = {size})",
                        g.name, end, stack_base
                    )));
                }
                bytes[addr as usize..addr as usize + init.len()].copy_from_slice(init);
                addresses.insert(SymId(i as u32), addr);
                regions.push(MapRegion {
                    start: addr,
                    end,
                    writable: !g.readonly,
                    label: format!("global `{}`", g.name),
                });
                cursor = end + GUARD_SIZE;
            }
        }
        regions.push(MapRegion {
            start: stack_base,
            end: size as i64,
            writable: true,
            label: "stack".to_string(),
        });
        Ok(MemoryImage {
            bytes,
            addresses,
            initial_sp,
            regions,
            last_region: std::cell::Cell::new(usize::MAX),
        })
    }

    /// The mapped regions, sorted by start address.
    pub fn regions(&self) -> &[MapRegion] {
        &self.regions
    }

    /// The region containing `addr`, if any.
    pub fn region_of(&self, addr: i64) -> Option<&MapRegion> {
        self.region_index_of(addr).map(|i| &self.regions[i])
    }

    /// Index of the region containing `addr`, by binary search.
    fn region_index_of(&self, addr: i64) -> Option<usize> {
        let idx = self.regions.partition_point(|r| r.start <= addr);
        let i = idx.checked_sub(1)?;
        (addr < self.regions[i].end).then_some(i)
    }

    /// Check that `len` bytes at `addr` may be accessed (written, when
    /// `write` is set). On refusal, the error names the nearest region.
    pub fn check(&self, addr: i64, len: i64, write: bool) -> Result<(), AccessError> {
        // one-entry region cache: a hit answers without the binary search
        if let Some(r) = self.regions.get(self.last_region.get()) {
            if addr >= r.start && addr + len <= r.end {
                if write && !r.writable {
                    return Err(AccessError {
                        addr,
                        len,
                        write,
                        kind: AccessKind::ReadOnly,
                        context: format!("{} is read-only", r.label),
                    });
                }
                return Ok(());
            }
        }
        if let Some(i) = self.region_index_of(addr) {
            self.last_region.set(i);
            let r = &self.regions[i];
            if addr + len <= r.end {
                if write && !r.writable {
                    return Err(AccessError {
                        addr,
                        len,
                        write,
                        kind: AccessKind::ReadOnly,
                        context: format!("{} is read-only", r.label),
                    });
                }
                return Ok(());
            }
            return Err(AccessError {
                addr,
                len,
                write,
                kind: AccessKind::Unmapped,
                context: format!(
                    "runs {} byte(s) off the end of {}",
                    addr + len - r.end,
                    r.label
                ),
            });
        }
        Err(AccessError {
            addr,
            len,
            write,
            kind: AccessKind::Unmapped,
            context: self.describe_unmapped(addr),
        })
    }

    /// Where an unmapped address lies, for fault reports.
    fn describe_unmapped(&self, addr: i64) -> String {
        if addr < 0 || addr >= self.bytes.len() as i64 {
            return "outside simulated memory".to_string();
        }
        if addr < DATA_BASE {
            return "in the null page below the data segment".to_string();
        }
        let idx = self.regions.partition_point(|r| r.start <= addr);
        match idx.checked_sub(1).map(|i| &self.regions[i]) {
            Some(r) => {
                let off = addr - r.end;
                if off < GUARD_SIZE {
                    format!("{off} byte(s) past {} (guard red-zone)", r.label)
                } else {
                    format!(
                        "{off} byte(s) past {}, in the unmapped gap below the stack",
                        r.label
                    )
                }
            }
            None => "in the unmapped gap below the stack".to_string(),
        }
    }

    /// Read `width` bytes at `addr` as a sign/zero-extended integer.
    pub fn read_int(&self, addr: i64, width: Width) -> Result<i64, AccessError> {
        self.check(addr, width.bytes(), false)?;
        let a = addr as usize;
        let slice = &self.bytes[a..a + width.bytes() as usize];
        Ok(match width {
            Width::B1 => slice[0] as i64,
            Width::W4 => i32::from_le_bytes(slice.try_into().unwrap()) as i64,
            Width::D8 => i64::from_le_bytes(slice.try_into().unwrap()),
        })
    }

    /// Read a double at `addr`.
    pub fn read_flt(&self, addr: i64) -> Result<f64, AccessError> {
        self.check(addr, 8, false)?;
        let a = addr as usize;
        Ok(f64::from_le_bytes(self.bytes[a..a + 8].try_into().unwrap()))
    }

    /// Write an integer of `width` bytes.
    pub fn write_int(&mut self, addr: i64, width: Width, v: i64) -> Result<(), AccessError> {
        self.check(addr, width.bytes(), true)?;
        let a = addr as usize;
        let slice = &mut self.bytes[a..a + width.bytes() as usize];
        match width {
            Width::B1 => slice[0] = v as u8,
            Width::W4 => slice.copy_from_slice(&(v as i32).to_le_bytes()),
            Width::D8 => slice.copy_from_slice(&v.to_le_bytes()),
        }
        Ok(())
    }

    /// Write a double.
    pub fn write_flt(&mut self, addr: i64, v: f64) -> Result<(), AccessError> {
        self.check(addr, 8, true)?;
        let a = addr as usize;
        self.bytes[a..a + 8].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_ir::Width;

    #[test]
    fn layout_respects_alignment_and_inits() {
        let mut m = Module::new();
        let a = m.add_data("a", 3, 1, vec![1, 2, 3]);
        let b = m.add_data("b", 16, 8, vec![]);
        let img = MemoryImage::new(&m, 1 << 20).unwrap();
        let aa = img.addresses[&a];
        let ba = img.addresses[&b];
        assert_eq!(aa, DATA_BASE);
        assert_eq!(ba % 8, 0);
        assert!(ba >= aa + 3 + GUARD_SIZE, "guard red-zone between globals");
        assert_eq!(img.read_int(aa, Width::B1), Ok(1));
        assert_eq!(img.read_int(aa + 2, Width::B1), Ok(3));
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = Module::new();
        let g = m.add_data("g", 16, 8, vec![]);
        let mut img = MemoryImage::new(&m, 1 << 16).unwrap();
        let ga = img.addresses[&g];
        assert!(img.write_int(ga, Width::W4, -5).is_ok());
        assert_eq!(img.read_int(ga, Width::W4), Ok(-5));
        assert!(img.write_flt(ga + 8, 2.5).is_ok());
        assert_eq!(img.read_flt(ga + 8), Ok(2.5));
        // out of simulated memory entirely
        assert!(img.write_int(1 << 20, Width::W4, 0).is_err());
        assert!(img.read_int(-4, Width::W4).is_err());
        assert!(img.read_int((1 << 16) - 2, Width::W4).is_err());
    }

    #[test]
    fn guard_red_zone_and_null_page_fault() {
        let mut m = Module::new();
        let g = m.add_data("g", 8, 8, vec![]);
        let img = MemoryImage::new(&m, 1 << 16).unwrap();
        let ga = img.addresses[&g];
        // one past the end: guard red-zone
        let err = img.read_int(ga + 8, Width::W4).unwrap_err();
        assert_eq!(err.kind, AccessKind::Unmapped);
        assert!(err.context.contains("guard red-zone"), "{}", err.context);
        // straddling the end of the object
        let err = img.read_int(ga + 6, Width::W4).unwrap_err();
        assert!(err.context.contains("off the end of global `g`"));
        // the null page
        let err = img.read_int(0, Width::D8).unwrap_err();
        assert!(err.context.contains("null page"), "{}", err.context);
    }

    #[test]
    fn readonly_globals_refuse_stores() {
        let mut m = Module::new();
        let t = m.add_rodata("tab", 8, 8, vec![7; 8]);
        let mut img = MemoryImage::new(&m, 1 << 16).unwrap();
        let ta = img.addresses[&t];
        assert_eq!(img.read_int(ta, Width::B1), Ok(7));
        let err = img.write_int(ta, Width::W4, 0).unwrap_err();
        assert_eq!(err.kind, AccessKind::ReadOnly);
        assert!(err.context.contains("tab"), "{}", err.context);
    }

    #[test]
    fn oversized_data_is_a_bad_program_not_a_panic() {
        let mut m = Module::new();
        m.add_data("huge", 1 << 20, 8, vec![]);
        match MemoryImage::new(&m, 1 << 16) {
            Err(SimError::BadProgram(msg)) => {
                assert!(msg.contains("does not fit"), "{msg}")
            }
            other => panic!("expected BadProgram, got {other:?}"),
        }
    }

    #[test]
    fn stack_pointer_is_aligned_and_mapped() {
        let m = Module::new();
        let img = MemoryImage::new(&m, 1 << 16).unwrap();
        assert_eq!(img.initial_sp % 16, 0);
        assert!(img.initial_sp < (1 << 16));
        assert!(img.check(img.initial_sp - 8, 8, true).is_ok());
        let r = img.region_of(img.initial_sp).unwrap();
        assert_eq!(r.label, "stack");
    }
}
