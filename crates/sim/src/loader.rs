//! Module loading: lay out global data in simulated memory.

use std::collections::HashMap;

use wm_ir::{GlobalKind, Module, SymId};

/// A loaded memory image: global data placed at fixed addresses, the rest
/// zero, with the stack at the top.
#[derive(Debug, Clone)]
pub struct MemoryImage {
    /// The memory bytes.
    pub bytes: Vec<u8>,
    /// Address of each data symbol.
    pub addresses: HashMap<SymId, i64>,
    /// Initial stack pointer (top of memory, 16-byte aligned, minus slack).
    pub initial_sp: i64,
}

/// Base address of the first global (addresses below are kept unmapped so
/// null-pointer bugs fault).
pub const DATA_BASE: i64 = 0x1000;

impl MemoryImage {
    /// Lay out `module`'s globals in `size` bytes of memory.
    ///
    /// # Panics
    ///
    /// Panics if the data does not fit in `size`.
    pub fn new(module: &Module, size: usize) -> MemoryImage {
        let mut bytes = vec![0u8; size];
        let mut addresses = HashMap::new();
        let mut cursor = DATA_BASE;
        for (i, g) in module.globals.iter().enumerate() {
            if let GlobalKind::Data {
                size: gsize,
                align,
                init,
            } = &g.kind
            {
                let align = (*align).max(1) as i64;
                cursor = (cursor + align - 1) / align * align;
                let addr = cursor;
                cursor += *gsize as i64;
                assert!(
                    (cursor as usize) < size / 2,
                    "global data does not fit in simulated memory"
                );
                bytes[addr as usize..addr as usize + init.len()].copy_from_slice(init);
                addresses.insert(SymId(i as u32), addr);
            }
        }
        let initial_sp = (size as i64 - 64) & !15;
        MemoryImage {
            bytes,
            addresses,
            initial_sp,
        }
    }

    /// Read `width` bytes at `addr` as a sign/zero-extended integer.
    /// Returns `None` when out of bounds.
    pub fn read_int(&self, addr: i64, width: wm_ir::Width) -> Option<i64> {
        let a = usize::try_from(addr).ok()?;
        let n = width.bytes() as usize;
        let slice = self.bytes.get(a..a + n)?;
        Some(match width {
            wm_ir::Width::B1 => slice[0] as i64,
            wm_ir::Width::W4 => i32::from_le_bytes(slice.try_into().unwrap()) as i64,
            wm_ir::Width::D8 => i64::from_le_bytes(slice.try_into().unwrap()),
        })
    }

    /// Read a double at `addr`.
    pub fn read_flt(&self, addr: i64) -> Option<f64> {
        let a = usize::try_from(addr).ok()?;
        let slice = self.bytes.get(a..a + 8)?;
        Some(f64::from_le_bytes(slice.try_into().unwrap()))
    }

    /// Write an integer of `width` bytes. Returns false when out of bounds.
    pub fn write_int(&mut self, addr: i64, width: wm_ir::Width, v: i64) -> bool {
        let Ok(a) = usize::try_from(addr) else {
            return false;
        };
        let n = width.bytes() as usize;
        let Some(slice) = self.bytes.get_mut(a..a + n) else {
            return false;
        };
        match width {
            wm_ir::Width::B1 => slice[0] = v as u8,
            wm_ir::Width::W4 => slice.copy_from_slice(&(v as i32).to_le_bytes()),
            wm_ir::Width::D8 => slice.copy_from_slice(&v.to_le_bytes()),
        }
        true
    }

    /// Write a double. Returns false when out of bounds.
    pub fn write_flt(&mut self, addr: i64, v: f64) -> bool {
        let Ok(a) = usize::try_from(addr) else {
            return false;
        };
        let Some(slice) = self.bytes.get_mut(a..a + 8) else {
            return false;
        };
        slice.copy_from_slice(&v.to_le_bytes());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_ir::Width;

    #[test]
    fn layout_respects_alignment_and_inits() {
        let mut m = Module::new();
        let a = m.add_data("a", 3, 1, vec![1, 2, 3]);
        let b = m.add_data("b", 16, 8, vec![]);
        let img = MemoryImage::new(&m, 1 << 20);
        let aa = img.addresses[&a];
        let ba = img.addresses[&b];
        assert_eq!(aa, DATA_BASE);
        assert_eq!(ba % 8, 0);
        assert!(ba >= aa + 3);
        assert_eq!(img.read_int(aa, Width::B1), Some(1));
        assert_eq!(img.read_int(aa + 2, Width::B1), Some(3));
    }

    #[test]
    fn read_write_roundtrip() {
        let m = Module::new();
        let mut img = MemoryImage::new(&m, 1 << 16);
        assert!(img.write_int(0x2000, Width::W4, -5));
        assert_eq!(img.read_int(0x2000, Width::W4), Some(-5));
        assert!(img.write_flt(0x2008, 2.5));
        assert_eq!(img.read_flt(0x2008), Some(2.5));
        // out of bounds
        assert!(!img.write_int(1 << 20, Width::W4, 0));
        assert_eq!(img.read_int(-4, Width::W4), None);
        assert_eq!(img.read_int((1 << 16) - 2, Width::W4), None);
    }

    #[test]
    fn stack_pointer_is_aligned() {
        let m = Module::new();
        let img = MemoryImage::new(&m, 1 << 16);
        assert_eq!(img.initial_sp % 16, 0);
        assert!(img.initial_sp < (1 << 16));
    }
}
