//! Cooperative cancellation of in-progress simulations.
//!
//! A [`CancelToken`] is a cheap, clonable flag shared between a running
//! [`crate::WmMachine`] and whoever supervises it (a wall-clock watchdog
//! thread, a service deadline enforcer, a user-facing `--deadline-ms`
//! flag). The stepping loop polls the flag between steps and returns
//! [`crate::SimError::Cancelled`] — carrying the usual machine-state
//! snapshot — as soon as it observes the cancellation.
//!
//! Cancellation is *cooperative*: it never interrupts a cycle mid-flight,
//! so a machine that is cancelled and then inspected is always in a
//! consistent inter-cycle state, and a run that is never cancelled is
//! bit-identical to one simulated without a token at all (the poll has no
//! observable effect on timing or statistics).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Clones observe the same flag; cancelling
/// is idempotent and irreversible.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Any simulation polling this token stops at
    /// its next step boundary.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        assert!(!u.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
        u.cancel(); // idempotent
        assert!(u.is_cancelled());
    }

    #[test]
    fn crosses_threads() {
        let t = CancelToken::new();
        let u = t.clone();
        std::thread::spawn(move || u.cancel()).join().unwrap();
        assert!(t.is_cancelled());
    }
}
