//! The WM machine model.

use std::collections::{HashMap, VecDeque};

use wm_ir::{
    BinOp, DataFifo, GlobalKind, InstKind, Module, Operand, RExpr, Reg, RegClass, SymId, UnOp,
    Width,
};

use crate::cancel::CancelToken;
use crate::config::WmConfig;
use crate::decode::DecodedProgram;
use crate::fastforward::{CycleOutcomes, Engine, FfSpan};
use crate::fault::{FaultInfo, FaultKind, FaultUnit, FifoState, MachineState, ScuState, UnitState};
use crate::loader::{AccessError, AccessKind, MemoryImage};
use crate::mem::{Access, MemStats, MemSystem};
use crate::stats::{DepthSample, Outcome, Stall, Stats, FIFO_NAMES, SBUF_TRACK};

/// Cycles without progress before the run is declared wedged. The
/// fast-forward engine clamps its jumps to this horizon so both engines
/// report [`SimError::Deadlock`] at the identical cycle.
pub(crate) const DEADLOCK_WINDOW: u64 = 10_000;

/// A simulation failure. Terminal errors carry a [`MachineState`]
/// snapshot; faults additionally carry [`FaultInfo`] provenance.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The cycle limit was reached.
    Timeout {
        cycles: u64,
        state: Box<MachineState>,
    },
    /// No unit made progress for a long time; the machine state is wedged
    /// (usually a miscompilation — e.g. a FIFO imbalance).
    Deadlock {
        cycle: u64,
        detail: String,
        state: Box<MachineState>,
    },
    /// A memory fault or illegal operation.
    Fault {
        cycle: u64,
        fault: FaultInfo,
        state: Box<MachineState>,
    },
    /// The run was cancelled through its [`CancelToken`] (a wall-clock
    /// deadline, a supervisor shutdown) before completing. Distinct from
    /// [`SimError::Timeout`], which is the *simulated-cycle* limit.
    Cancelled {
        cycle: u64,
        state: Box<MachineState>,
    },
    /// The module cannot be executed (missing entry, virtual registers…).
    BadProgram(String),
}

impl SimError {
    /// The machine-state snapshot attached to the error, if any.
    pub fn state(&self) -> Option<&MachineState> {
        match self {
            SimError::Timeout { state, .. }
            | SimError::Deadlock { state, .. }
            | SimError::Fault { state, .. }
            | SimError::Cancelled { state, .. } => Some(state),
            SimError::BadProgram(_) => None,
        }
    }

    /// The fault provenance, for faults.
    pub fn fault(&self) -> Option<&FaultInfo> {
        match self {
            SimError::Fault { fault, .. } => Some(fault),
            _ => None,
        }
    }

    /// Stable machine-readable class name, used by [`SimError::to_json`]
    /// and the `wmd` wire protocol.
    pub fn kind_name(&self) -> &'static str {
        match self {
            SimError::Timeout { .. } => "timeout",
            SimError::Deadlock { .. } => "deadlock",
            SimError::Fault { .. } => "fault",
            SimError::Cancelled { .. } => "cancelled",
            SimError::BadProgram(_) => "bad-program",
        }
    }

    /// Render the error — class, cycle, human-readable message and, for
    /// faults, the full [`FaultInfo`] provenance — as a stable one-object
    /// JSON document. This is the encoding shared by `wmcc --error-json`
    /// and the `wmd` wire protocol; the machine-state dump is deliberately
    /// omitted (it is a debugging aid, not part of the wire contract).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"error\": \"{}\", \"message\": \"{}\"",
            self.kind_name(),
            crate::fault::json_escape(&self.to_string())
        ));
        match self {
            SimError::Timeout { cycles, .. } => {
                out.push_str(&format!(", \"cycles\": {cycles}"));
            }
            SimError::Deadlock { cycle, detail, .. } => {
                out.push_str(&format!(
                    ", \"cycle\": {cycle}, \"detail\": \"{}\"",
                    crate::fault::json_escape(detail)
                ));
            }
            SimError::Fault { cycle, fault, .. } => {
                out.push_str(&format!(", \"cycle\": {cycle}, \"fault\": "));
                out.push_str(&fault.to_json());
            }
            SimError::Cancelled { cycle, .. } => {
                out.push_str(&format!(", \"cycle\": {cycle}"));
            }
            SimError::BadProgram(detail) => {
                out.push_str(&format!(
                    ", \"detail\": \"{}\"",
                    crate::fault::json_escape(detail)
                ));
            }
        }
        out.push('}');
        out
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Timeout { cycles, .. } => write!(f, "cycle limit {cycles} exceeded"),
            SimError::Deadlock { cycle, detail, .. } => {
                write!(f, "deadlock at cycle {cycle}: {detail}")
            }
            SimError::Fault { cycle, fault, .. } => write!(f, "fault at cycle {cycle}: {fault}"),
            SimError::Cancelled { cycle, .. } => write!(f, "cancelled at cycle {cycle}"),
            SimError::BadProgram(d) => write!(f, "bad program: {d}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Fault { fault, .. } => Some(fault),
            _ => None,
        }
    }
}

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Instructions executed by the integer execution unit.
    pub insts_ieu: u64,
    /// Instructions executed by the floating-point execution unit.
    pub insts_feu: u64,
    /// Control instructions handled by the instruction fetch unit.
    pub insts_ifu: u64,
    /// Scalar memory reads issued.
    pub mem_reads: u64,
    /// Memory writes issued (scalar and stream-out).
    pub mem_writes: u64,
    /// Stream-in reads issued by the SCUs.
    pub stream_reads: u64,
    /// Stream-out writes issued by the SCUs.
    pub stream_writes: u64,
    /// Cycles the IFU spent stalled (empty CC FIFO, full queue, sync).
    pub ifu_stalls: u64,
    /// Function calls executed.
    pub calls: u64,
}

impl SimStats {
    /// Total instructions executed across all units.
    pub fn instructions(&self) -> u64 {
        self.insts_ieu + self.insts_feu + self.insts_ifu
    }
}

/// The result of a completed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Exact cycle count, including memory delays.
    pub cycles: u64,
    /// Integer return value of the entry function (`r2`).
    pub ret_int: i64,
    /// Floating-point return value (`f2`).
    pub ret_flt: f64,
    /// Bytes written through `putchar`.
    pub output: Vec<u8>,
    /// Detailed statistics.
    pub stats: SimStats,
    /// Cycle-accounted performance counters: per-unit stall attribution
    /// (exact by construction), FIFO occupancy histograms, memory-port
    /// utilization and per-SCU element counts.
    pub perf: Stats,
    /// The stepping engine that produced this result. Every engine yields
    /// bit-identical cycles and counters; this records which one ran.
    pub engine: Engine,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Val {
    I(i64),
    F(f64),
}

impl Val {
    pub(crate) fn as_i(self) -> i64 {
        match self {
            Val::I(v) => v,
            Val::F(v) => v as i64,
        }
    }
    pub(crate) fn as_f(self) -> f64 {
        match self {
            Val::I(v) => v as f64,
            Val::F(v) => v,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Pc {
    pub(crate) func: usize,
    pub(crate) block: usize,
    pub(crate) inst: usize,
}

/// Result of attempting to issue a unit's head instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Exec {
    /// The instruction retired; the payload is the destination register
    /// the paired-ALU interlock must delay, if any.
    Retired(Option<u8>),
    /// A structural stall, with its attributed reason.
    Stall(Stall),
}

/// Why a FIFO entry is poisoned: the stream prefetch that produced it
/// faulted. The fault is deferred — raised only if the entry is consumed.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Poison {
    pub(crate) addr: i64,
    pub(crate) scu: usize,
    pub(crate) error: String,
}

/// One FIFO entry: a value, possibly carrying a deferred stream fault.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Slot {
    val: Val,
    poison: Option<Box<Poison>>,
}

/// One value staged toward another tile's receive queue. Staged sends
/// accumulate during an epoch and are routed by the tile scheduler at
/// the barrier that ends the epoch.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ChanMsg {
    pub(crate) dst: usize,
    pub(crate) val: Val,
    /// Poison travels through the channel unchanged: a poisoned datum
    /// forwarded core-to-core keeps its provenance and faults only at
    /// consumption, wherever in the tiled machine that happens.
    pub(crate) poison: Option<Box<Poison>>,
}

/// One delivered channel entry, poppable once `due` is reached.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RxEntry {
    pub(crate) due: u64,
    pub(crate) val: Val,
    pub(crate) poison: Option<Box<Poison>>,
}

#[derive(Debug, Default)]
pub(crate) struct InFifo {
    pub(crate) q: VecDeque<Slot>,
    /// Requests in flight toward this FIFO.
    pub(crate) pending: usize,
    /// Generation: bumped by stream stop so stale arrivals are dropped.
    pub(crate) gen: u32,
    /// Is an SCU currently feeding this FIFO?
    pub(crate) streamed: bool,
    /// Scalar-load elements the owning unit has yet to dequeue. jNI
    /// early branch resolution lets the IEU configure a channel-send
    /// SCU on this FIFO while the FEU still owes pops of loop-body
    /// load data; the send must not steal those elements, so it
    /// drains only while this is zero.
    pub(crate) owed: usize,
}

/// A scalar execution unit (IEU/FEU). The instruction queue holds `u32`
/// indices into the machine's [`DecodedProgram`] table — for every
/// engine; the interpreters resolve an index back to its [`InstKind`]
/// through the table, so nothing is cloned at dispatch.
#[derive(Debug)]
pub(crate) struct Unit {
    pub(crate) regs: [Val; 32],
    pub(crate) iq: VecDeque<u32>,
    pub(crate) ins: [InFifo; 2],
    pub(crate) out: VecDeque<Val>,
    pub(crate) cc: VecDeque<bool>,
    pub(crate) prev_dst: Option<u8>,
    pub(crate) prev_cycle: u64,
    pub(crate) busy: u64,
    /// Address latch for an indirect scalar load whose memory issue was
    /// refused (MSHRs exhausted, DRAM bank busy). Evaluating the address
    /// expression consumes its FIFO operand, so the computed address must
    /// be held here across retry cycles — re-evaluating on the retry
    /// would dequeue from a now-empty FIFO and wedge the machine.
    pub(crate) latched_load: Option<i64>,
}

impl Unit {
    fn new(class: RegClass) -> Unit {
        let zero = match class {
            RegClass::Int => Val::I(0),
            RegClass::Flt => Val::F(0.0),
        };
        Unit {
            regs: [zero; 32],
            iq: VecDeque::new(),
            ins: [InFifo::default(), InFifo::default()],
            out: VecDeque::new(),
            cc: VecDeque::new(),
            prev_dst: None,
            prev_cycle: 0,
            busy: 0,
            latched_load: None,
        }
    }
}

/// The vector execution unit: 8 vector registers of N doubles, two input
/// stream ports and one output FIFO.
#[derive(Debug)]
pub(crate) struct Veu {
    pub(crate) iq: VecDeque<u32>,
    vregs: Vec<Vec<f64>>,
    pub(crate) ports: [VecDeque<f64>; 2],
    /// requests in flight toward each port
    pub(crate) pending: [usize; 2],
    pub(crate) out: VecDeque<f64>,
    pub(crate) busy: u64,
}

impl Veu {
    fn new(n: usize) -> Veu {
        Veu {
            iq: VecDeque::new(),
            vregs: vec![vec![0.0; n]; 8],
            ports: [VecDeque::new(), VecDeque::new()],
            pending: [0, 0],
            out: VecDeque::new(),
            busy: 0,
        }
    }
}

/// Where a stream delivers / takes its data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StreamTarget {
    /// A scalar unit's FIFO-mapped register 0/1.
    Fifo(DataFifo),
    /// A VEU input port (in-streams) or the VEU output FIFO (out-streams).
    Veu(u8),
}

/// Addressing mode of a stream control unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ScuKind {
    /// `base + k*stride`: the classic affine stream.
    Affine,
    /// Index-fed load stream: the SCU fetches an affine index stream
    /// itself and issues `base + (idx << shift)` data reads.
    Gather,
    /// Index-fed store stream: the scatter dual, writing the unit's
    /// output FIFO to `base + (idx << shift)`.
    Scatter,
    /// Channel send: pop the target FIFO's *input* side and push each
    /// element toward a peer tile (no memory traffic, no port use).
    Send,
    /// Channel receive: pop due entries from a peer tile's channel into
    /// the target FIFO's input side (no memory traffic, no port use).
    Recv,
}

/// Entries of an indirect SCU's internal index ring (fetched indices
/// waiting to become data requests). Four is enough to cover the index
/// stream's buffer-hit latency without letting one SCU hoard ports.
pub(crate) const IDX_RING: usize = 4;

#[derive(Debug, Clone, Copy)]
pub(crate) struct Scu {
    pub(crate) active: bool,
    dir_in: bool,
    kind: ScuKind,
    fifo: DataFifo,
    target: StreamTarget,
    addr: i64,
    stride: i64,
    remaining: Option<i64>,
    width: Width,
    gen: u32,
    /// Cycle at which the SCU may issue its first request.
    pub(crate) ready_at: u64,
    /// Configuration order: an in-stream's prefetch must wait for
    /// overlapping writes of out-streams configured *before* it (they
    /// precede it in program order), but not for younger ones (a
    /// read-modify-write loop configures its in-stream first).
    seq: u64,
    /// Log2 byte scale applied to index values (indirect kinds).
    shift: u8,
    /// Index-stream cursor (indirect kinds).
    iaddr: i64,
    istride: i64,
    iwidth: Width,
    /// Scatter only: conservative byte extent of the scattered region
    /// `[addr, addr+span)`, used for memory-ordering checks (the exact
    /// write set is data-dependent).
    span: i64,
    /// Fetched indices waiting to issue as data requests, in fetch
    /// order. An entry is `(value, false)`, or `(index address, true)`
    /// when the index fetch itself faulted (gather defers that fault
    /// into the data entry's poison; scatter faults eagerly instead).
    idx_ring: [(i64, bool); IDX_RING],
    ring_head: u8,
    ring_len: u8,
    /// Index fetches in flight toward the ring.
    idx_pending: u8,
    /// Index fetches left to issue (mirrors `remaining`).
    idx_remaining: Option<i64>,
    /// An `Sstop` that discarded speculatively fetched elements holds
    /// the slot busy until this cycle (squash recovery; see
    /// [`crate::config::WmConfig::squash_penalty`]).
    pub(crate) squash_until: u64,
    /// Peer tile of a channel stream (`Send`/`Recv` kinds only).
    peer: u8,
}

impl Scu {
    /// The reset state of an SCU slot — also the template every
    /// configuration starts from, via functional update.
    fn inert() -> Scu {
        Scu {
            active: false,
            dir_in: true,
            kind: ScuKind::Affine,
            fifo: DataFifo::new(RegClass::Int, 0),
            target: StreamTarget::Fifo(DataFifo::new(RegClass::Int, 0)),
            addr: 0,
            stride: 0,
            remaining: None,
            width: Width::W4,
            gen: 0,
            ready_at: 0,
            seq: 0,
            shift: 0,
            iaddr: 0,
            istride: 0,
            iwidth: Width::W4,
            span: 0,
            idx_ring: [(0, false); IDX_RING],
            ring_head: 0,
            ring_len: 0,
            idx_pending: 0,
            idx_remaining: None,
            squash_until: 0,
            peer: 0,
        }
    }
}

#[derive(Debug)]
pub(crate) enum MemOp {
    ReadFifo {
        target: StreamTarget,
        addr: i64,
        width: Width,
        gen: u32,
        /// A deferred stream fault travelling through the memory system:
        /// the delivered FIFO entry is poisoned instead of carrying data.
        poison: Option<Box<Poison>>,
    },
    /// An indirect SCU's index fetch, delivered into the SCU's internal
    /// index ring rather than an architectural FIFO. Matched back to its
    /// issuer by `(scu, seq)`; a stale response (the stream was stopped
    /// or the slot reconfigured) is dropped.
    ReadIndex {
        scu: usize,
        seq: u64,
        addr: i64,
        width: Width,
        /// The index fetch itself faulted: deliver a poison marker
        /// (carrying `addr`) instead of a value.
        poison: bool,
    },
    Write {
        addr: i64,
        width: Width,
        val: Val,
    },
}

/// A memory request in flight.
#[derive(Debug)]
pub(crate) struct Flight {
    /// Delivery cycle (includes injected delay and jitter).
    pub(crate) due: u64,
    pub(crate) op: MemOp,
    /// Fault injection: the response is discarded at delivery time.
    dropped: bool,
    /// The request holds a memory-hierarchy MSHR until delivery.
    mshr: bool,
}

/// A pending scalar store: the address is known, the data comes from the
/// named unit's output FIFO.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingStore {
    pub(crate) addr: i64,
    pub(crate) width: Width,
    pub(crate) class: RegClass,
}

/// One executed instruction, recorded when tracing is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle of execution.
    pub cycle: u64,
    /// Which unit executed it (`"IEU"`, `"FEU"`, `"IFU"`).
    pub unit: &'static str,
    /// The instruction, rendered in listing notation.
    pub text: String,
}

/// The simulated machine. Use [`WmMachine::run`] for the common case.
pub struct WmMachine<'m> {
    pub(crate) module: &'m Module,
    /// The module pre-decoded into flat dispatch tables (see
    /// [`crate::decode`]); the unit instruction queues hold indices into
    /// it, and the compiled engine executes it directly.
    pub(crate) prog: DecodedProgram<'m>,
    pub(crate) config: WmConfig,
    pub(crate) mem: MemoryImage,
    pub(crate) ieu: Unit,
    pub(crate) feu: Unit,
    pub(crate) veu: Veu,
    pub(crate) scus: Vec<Scu>,
    pub(crate) store_q: VecDeque<PendingStore>,
    pub(crate) in_flight: VecDeque<Flight>,
    /// Number of [`MemOp::Write`] entries in `in_flight` (dropped or
    /// not), so the per-load ordering checks can skip the queue scans
    /// when no write is outstanding — the overwhelmingly common case.
    pub(crate) writes_in_flight: usize,
    pub(crate) pc: Option<Pc>,
    pub(crate) ret_stack: Vec<Pc>,
    /// IFU-side per-stream dispatch counters for `jNI` jumps.
    pub(crate) dispatch: HashMap<DataFifo, i64>,
    /// IFU-side vector-termination counter for `jNIv` jumps.
    pub(crate) dispatch_vec: Option<i64>,
    pub(crate) output: Vec<u8>,
    pub(crate) stats: SimStats,
    pub(crate) cycle: u64,
    pub(crate) last_progress: u64,
    pub(crate) ports_used: u32,
    /// The IFU is held (e.g. by builtin I/O) until this cycle.
    pub(crate) ifu_hold: u64,
    /// Monotonic stream-configuration counter (see `Scu::seq`).
    scu_seq: u64,
    /// Memory requests issued so far (fault injection numbers requests
    /// from 1 in issue order).
    req_counter: u64,
    /// Responses discarded by fault injection.
    dropped_responses: u64,
    /// Execution trace (populated only when enabled).
    trace: Vec<TraceEvent>,
    pub(crate) trace_enabled: bool,
    /// Performance counters (always on; cheap enough to keep hot).
    pub(crate) perf: Stats,
    /// FIFO-depth change points (populated only when enabled).
    timeline: Vec<DepthSample>,
    pub(crate) timeline_enabled: bool,
    /// Last recorded depth per tracked FIFO (timeline compression).
    last_depths: [usize; FIFO_NAMES.len()],
    /// The memory hierarchy (a transparent pass-through under the flat
    /// model). All of its state mutates only on progress cycles, which
    /// is what lets the fast-forward engine skip stall spans over it.
    pub(crate) memsys: MemSystem,
    /// Last recorded stream-buffer occupancy (timeline compression).
    last_sb_occ: usize,
    /// What every unit did in the cycle just simulated (consulted by the
    /// fast-forward engine to decide whether the state can repeat).
    pub(crate) last_outcomes: CycleOutcomes,
    /// Fast-forwarded spans (collected only when tracing/timeline is on;
    /// exported as coalesced stall spans in the Chrome trace).
    pub(crate) ff_spans: Vec<FfSpan>,
    /// Cooperative cancellation flag, polled between steps (see
    /// [`WmMachine::set_cancel_token`]). `None` costs nothing.
    cancel: Option<CancelToken>,
    /// This core's index in a tiled machine (0 when untiled).
    pub(crate) tile_id: usize,
    /// Staged outbound channel messages, drained by the tile scheduler
    /// at each epoch barrier. Always empty on an untiled machine.
    pub(crate) chan_tx: Vec<ChanMsg>,
    /// Inbound channel queues, indexed by sender tile. Empty — no
    /// allocation at all — on an untiled machine.
    pub(crate) chan_rx: Vec<VecDeque<RxEntry>>,
    /// Send credits toward each destination tile: channel capacity minus
    /// the receiver's backlog, recomputed at every barrier. Stream sends
    /// stall on zero; scalar `Csend` ignores credits (and can overrun).
    pub(crate) chan_credits: Vec<u32>,
    /// Fast-forward horizon: the tile scheduler bounds event jumps to
    /// the end of the current epoch. `u64::MAX` (untiled) leaves every
    /// engine bit-identical to the pre-tiling simulator.
    pub(crate) ff_horizon: u64,
}

impl<'m> WmMachine<'m> {
    /// Build a machine around a compiled module (WM form, physical
    /// registers only).
    pub fn new(module: &'m Module, config: &WmConfig) -> Result<WmMachine<'m>, SimError> {
        for f in &module.functions {
            for inst in f.insts() {
                if inst
                    .kind
                    .uses()
                    .into_iter()
                    .chain(inst.kind.defs())
                    .any(|r| r.is_virt())
                {
                    return Err(SimError::BadProgram(format!(
                        "function {} still has virtual registers",
                        f.name
                    )));
                }
                if matches!(inst.kind, InstKind::GLoad { .. } | InstKind::GStore { .. }) {
                    return Err(SimError::BadProgram(format!(
                        "function {} has generic memory references; expand to WM form first",
                        f.name
                    )));
                }
            }
        }
        let mem = MemoryImage::new(module, config.memory_size)?;
        // Pre-decode for every engine: the unit queues carry indices into
        // this table, so even the interpreters dispatch without cloning.
        let prog = DecodedProgram::decode(module, &mem.addresses);
        let mut ieu = Unit::new(RegClass::Int);
        ieu.regs[30] = Val::I(mem.initial_sp);
        let memsys = MemSystem::new(&config.mem_model, config.mem_latency);
        let mut perf = Stats::new(
            config.num_scus,
            config.fifo_capacity,
            config.cc_capacity,
            config.mem_ports,
        );
        if !config.mem_model.is_flat() {
            perf.mem = Some(MemStats::new(memsys.sb_capacity()));
        }
        Ok(WmMachine {
            module,
            prog,
            config: config.clone(),
            mem,
            ieu,
            feu: Unit::new(RegClass::Flt),
            veu: Veu::new(config.veu_length),
            scus: vec![Scu::inert(); config.num_scus],
            store_q: VecDeque::new(),
            in_flight: VecDeque::new(),
            writes_in_flight: 0,
            pc: None,
            ret_stack: Vec::new(),
            dispatch: HashMap::new(),
            dispatch_vec: None,
            output: Vec::new(),
            stats: SimStats::default(),
            cycle: 0,
            last_progress: 0,
            ports_used: 0,
            ifu_hold: 0,
            scu_seq: 0,
            req_counter: 0,
            dropped_responses: 0,
            trace: Vec::new(),
            trace_enabled: false,
            perf,
            timeline: Vec::new(),
            timeline_enabled: false,
            last_depths: [0; FIFO_NAMES.len()],
            memsys,
            last_sb_occ: 0,
            last_outcomes: CycleOutcomes::new(config.num_scus),
            ff_spans: Vec::new(),
            cancel: None,
            tile_id: 0,
            chan_tx: Vec::new(),
            chan_rx: Vec::new(),
            chan_credits: Vec::new(),
            ff_horizon: u64::MAX,
        })
    }

    /// Compile-and-go entry point: run `entry` with integer `args` until it
    /// returns, and report exact cycle counts.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for faults, deadlocks, cycle-limit timeouts or
    /// unexecutable modules.
    pub fn run(
        module: &Module,
        entry: &str,
        args: &[i64],
        config: &WmConfig,
    ) -> Result<RunResult, SimError> {
        let mut m = WmMachine::new(module, config)?;
        m.start(entry, args)?;
        m.run_to_completion()
    }

    /// Enable instruction tracing: every executed instruction is recorded
    /// with its cycle and unit. Costly; intended for debugging.
    pub fn set_trace(&mut self, enabled: bool) {
        self.trace_enabled = enabled;
    }

    /// The execution trace collected so far (empty unless tracing was
    /// enabled with [`WmMachine::set_trace`]).
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Enable FIFO-depth timeline recording: every change of a tracked
    /// FIFO's occupancy is recorded as a [`DepthSample`]. Used by the
    /// Chrome trace export.
    pub fn set_timeline(&mut self, enabled: bool) {
        self.timeline_enabled = enabled;
    }

    /// The FIFO-depth change points collected so far (empty unless enabled
    /// with [`WmMachine::set_timeline`]).
    pub fn timeline(&self) -> &[DepthSample] {
        &self.timeline
    }

    /// The performance counters accumulated so far (always collected).
    pub fn perf(&self) -> &Stats {
        &self.perf
    }

    /// The module's pre-decoded dispatch tables (built at construction;
    /// see [`DecodedProgram::verify_roundtrip`]).
    pub fn decoded_program(&self) -> &DecodedProgram<'m> {
        &self.prog
    }

    /// The fast-forwarded spans collected so far (empty unless the event
    /// engine ran with tracing or the timeline enabled). Consumed by the
    /// Chrome trace exporter, which renders each as one coalesced stall
    /// span per unit.
    pub fn ff_spans(&self) -> &[FfSpan] {
        &self.ff_spans
    }

    pub(crate) fn record(&mut self, unit: &'static str, kind: &InstKind) {
        if self.trace_enabled {
            self.trace.push(TraceEvent {
                cycle: self.cycle,
                unit,
                text: kind.to_string(),
            });
        }
    }

    /// Position the machine at the entry of `entry` with `args` in the
    /// argument registers.
    pub fn start(&mut self, entry: &str, args: &[i64]) -> Result<(), SimError> {
        let sym = self
            .module
            .lookup(entry)
            .ok_or_else(|| SimError::BadProgram(format!("no entry symbol {entry}")))?;
        let fidx = match self.module.global(sym).kind {
            GlobalKind::Func(i) => i,
            _ => return Err(SimError::BadProgram(format!("{entry} is not a function"))),
        };
        for (i, a) in args.iter().enumerate() {
            if 2 + i > 7 {
                return Err(SimError::BadProgram("too many entry arguments".into()));
            }
            self.ieu.regs[2 + i] = Val::I(*a);
        }
        self.pc = Some(Pc {
            func: fidx,
            block: 0,
            inst: 0,
        });
        Ok(())
    }

    /// Attach a cooperative cancellation token: [`WmMachine::run_to_completion`]
    /// polls it between steps and returns [`SimError::Cancelled`] once it
    /// is cancelled. A run that is never cancelled is bit-identical to
    /// one without a token.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Simulate until the entry function returns, stepping with the
    /// engine selected by [`WmConfig::engine`].
    pub fn run_to_completion(&mut self) -> Result<RunResult, SimError> {
        let engine = self.config.engine;
        while !self.halted() {
            if let Some(t) = &self.cancel {
                if t.is_cancelled() {
                    return Err(SimError::Cancelled {
                        cycle: self.cycle,
                        state: Box::new(self.snapshot()),
                    });
                }
            }
            match engine {
                Engine::Cycle => self.step()?,
                Engine::Event => self.step_event()?,
                Engine::Compiled => self.step_compiled()?,
            }
            if self.cycle >= self.config.max_cycles {
                return Err(SimError::Timeout {
                    cycles: self.config.max_cycles,
                    state: Box::new(self.snapshot()),
                });
            }
            if self.cycle - self.last_progress > DEADLOCK_WINDOW {
                return Err(SimError::Deadlock {
                    cycle: self.cycle,
                    detail: self.diagnose(),
                    state: Box::new(self.snapshot()),
                });
            }
        }
        self.stats.cycles = self.cycle;
        self.perf.cycles = self.cycle;
        Ok(RunResult {
            cycles: self.cycle,
            ret_int: self.ieu.regs[2].as_i(),
            ret_flt: self.feu.regs[2].as_f(),
            output: self.output.clone(),
            stats: self.stats,
            perf: self.perf.clone(),
            engine,
        })
    }

    /// Wire this core into a tiled machine as tile `tile_id` of `tiles`:
    /// allocate the channel queues and the per-destination credits. An
    /// untiled machine never calls this, so `--tiles 1` allocates no
    /// tile structures at all (asserted by the stats tests).
    pub(crate) fn init_tile(&mut self, tile_id: usize, tiles: usize) {
        self.tile_id = tile_id;
        self.chan_rx = vec![VecDeque::new(); tiles];
        self.chan_credits = vec![self.config.chan_capacity as u32; tiles];
    }

    /// Has any inter-core channel state been allocated or armed? Untiled
    /// runs must answer `false`: the `--tiles 1` path is byte-for-byte
    /// the pre-tiling code path.
    pub fn channel_state_allocated(&self) -> bool {
        !self.chan_rx.is_empty()
            || !self.chan_tx.is_empty()
            || !self.chan_credits.is_empty()
            || self.ff_horizon != u64::MAX
            || self.tile_id != 0
    }

    /// Step this tile up to (at most) cycle `target`, returning early if
    /// it halts or faults. The tile scheduler calls this between epoch
    /// barriers; the fast-forward horizon keeps the event and compiled
    /// engines from jumping past the epoch's end. Deadlock and timeout
    /// are *global* properties of a tiled machine (a tile stalled on a
    /// channel is not wedged if its peer is still computing), so the
    /// scheduler checks them at the barrier — not here.
    pub(crate) fn run_epoch(&mut self, target: u64) -> Result<(), SimError> {
        self.ff_horizon = target;
        let engine = self.config.engine;
        while self.cycle < target && !self.halted() {
            match engine {
                Engine::Cycle => self.step()?,
                Engine::Event => self.step_event()?,
                Engine::Compiled => self.step_compiled()?,
            }
        }
        Ok(())
    }

    /// Package the current state as a completed run — the tile
    /// scheduler's per-tile equivalent of `run_to_completion`'s tail.
    pub(crate) fn take_result(&mut self) -> RunResult {
        self.stats.cycles = self.cycle;
        self.perf.cycles = self.cycle;
        RunResult {
            cycles: self.cycle,
            ret_int: self.ieu.regs[2].as_i(),
            ret_flt: self.feu.regs[2].as_f(),
            output: self.output.clone(),
            stats: self.stats,
            perf: self.perf.clone(),
            engine: self.config.engine,
        }
    }

    pub(crate) fn halted(&mut self) -> bool {
        if self.pc.is_some() {
            return false;
        }
        // Stop prefetching once the program has returned *and* the units
        // have drained (queued instructions may still consume stream data).
        // An in-stream whose FIFO feeds a still-active channel send is a
        // producer for that send's remaining elements, not a stale
        // prefetch — it must keep running until the send drains it.
        if self.ieu.iq.is_empty() && self.feu.iq.is_empty() {
            for i in 0..self.scus.len() {
                let scu = self.scus[i];
                if scu.active && scu.dir_in {
                    let feeds_send = self
                        .scus
                        .iter()
                        .any(|s| s.active && matches!(s.kind, ScuKind::Send) && s.fifo == scu.fifo);
                    if !feeds_send {
                        self.scus[i].active = false;
                    }
                }
            }
        }
        self.ieu.iq.is_empty()
            && self.feu.iq.is_empty()
            && self.veu.iq.is_empty()
            && self.store_q.is_empty()
            && self.in_flight.is_empty()
            && !self.scus.iter().any(|s| s.active && !s.dir_in)
    }

    /// A diagnostic snapshot of the machine (attached to terminal errors).
    pub fn snapshot(&self) -> MachineState {
        let unit_state = |class: RegClass, name: &'static str| -> UnitState {
            let u = self.unit(class);
            UnitState {
                name,
                iq: u.iq.len(),
                head: u
                    .iq
                    .front()
                    .map(|&i| self.prog.insts[i as usize].kind.to_string()),
                ins: [0, 1].map(|i| FifoState {
                    len: u.ins[i].q.len(),
                    pending: u.ins[i].pending,
                    streamed: u.ins[i].streamed,
                    poisoned: u.ins[i].q.iter().filter(|s| s.poison.is_some()).count(),
                }),
                out: u.out.len(),
                cc: u.cc.len(),
                stall: self.stall_reason(class),
            }
        };
        MachineState {
            cycle: self.cycle,
            pc: self.pc.map(|pc| {
                format!(
                    "{}, block {}, instruction {}",
                    self.module.functions[pc.func].name, pc.block, pc.inst
                )
            }),
            units: vec![
                unit_state(RegClass::Int, "IEU"),
                unit_state(RegClass::Flt, "FEU"),
            ],
            scus: self
                .scus
                .iter()
                .enumerate()
                .map(|(i, s)| ScuState {
                    index: i,
                    active: s.active,
                    dir_in: s.dir_in,
                    target: {
                        let t = match s.target {
                            StreamTarget::Fifo(f) => f.to_string(),
                            StreamTarget::Veu(p) => format!("VEU port {p}"),
                        };
                        match s.kind {
                            ScuKind::Affine => t,
                            ScuKind::Gather => format!("{t} (gather)"),
                            ScuKind::Scatter => format!("{t} (scatter)"),
                            ScuKind::Send => format!("{t} -> tile {}", s.peer),
                            ScuKind::Recv => format!("{t} <- tile {}", s.peer),
                        }
                    },
                    addr: s.addr,
                    remaining: s.remaining,
                    disabled: self.scu_disabled(i),
                })
                .collect(),
            in_flight: self.in_flight.len(),
            store_queue: self.store_q.len(),
            veu_iq: self.veu.iq.len(),
            dispatch: self
                .dispatch
                .iter()
                .map(|(f, n)| (f.to_string(), *n))
                .collect(),
            dropped_responses: self.dropped_responses,
            mem: self.memsys.summary(self.cycle),
        }
    }

    /// Has fault injection disabled SCU `i` by the current cycle?
    pub(crate) fn scu_disabled(&self, i: usize) -> bool {
        self.config
            .fault_plan
            .disable_scus
            .iter()
            .any(|&(idx, c)| idx == i && self.cycle >= c)
    }

    /// Why the unit's head instruction cannot retire, if it cannot.
    fn stall_reason(&self, class: RegClass) -> Option<String> {
        let u = self.unit(class);
        let head = self.prog.insts[*u.iq.front()? as usize].kind;
        if u.busy > 0 {
            return Some(format!("busy for {} more cycle(s)", u.busy));
        }
        let need = fifo_need(class, head);
        for (i, &needed) in need.iter().enumerate() {
            if needed > u.ins[i].q.len() {
                let f = &u.ins[i];
                let fifo = DataFifo::new(class, i as u8);
                let why = if let Some(k) = self
                    .scus
                    .iter()
                    .position(|s| s.active && s.dir_in && s.target == StreamTarget::Fifo(fifo))
                {
                    if self.scu_disabled(k) {
                        format!("fed by SCU {k}, which fault injection disabled")
                    } else {
                        format!("fed by SCU {k}")
                    }
                } else if f.pending > 0 {
                    if self.dropped_responses > 0 {
                        format!(
                            "{} request(s) outstanding, {} response(s) dropped by fault injection",
                            f.pending, self.dropped_responses
                        )
                    } else {
                        format!("{} request(s) in flight", f.pending)
                    }
                } else if self.dropped_responses > 0 {
                    format!(
                        "no stream feeding it; {} memory response(s) dropped by fault injection",
                        self.dropped_responses
                    )
                } else {
                    "no stream feeding it and no requests in flight".to_string()
                };
                return Some(format!("head `{head}` waits on empty FIFO {fifo} ({why})"));
            }
        }
        if let InstKind::ChanRecv { peer, .. } = head {
            return Some(format!(
                "head `{head}` waits on the channel from tile {peer} (no message due)"
            ));
        }
        Some(format!(
            "head `{head}` cannot issue (ports, capacity or memory ordering)"
        ))
    }

    /// Attribute a wedge: name the stalled units and what starves them.
    pub(crate) fn diagnose(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (class, name) in [(RegClass::Int, "IEU"), (RegClass::Flt, "FEU")] {
            if let Some(s) = self.stall_reason(class) {
                parts.push(format!("{name}: {s}"));
            }
        }
        if let Some(st) = self.store_q.front() {
            if self.unit(st.class).out.is_empty() {
                let name = match st.class {
                    RegClass::Int => "IEU",
                    RegClass::Flt => "FEU",
                };
                parts.push(format!(
                    "a store to {:#x} waits for data in the empty {name} output FIFO",
                    st.addr
                ));
            }
        }
        if let Some(pc) = self.pc {
            let func = &self.module.functions[pc.func];
            if let Some(inst) = func.blocks.get(pc.block).and_then(|b| b.insts.get(pc.inst)) {
                match &inst.kind {
                    InstKind::Branch { class, .. } if self.unit(*class).cc.is_empty() => {
                        parts.push(format!(
                            "IFU: `{}` waits on an empty condition-code FIFO",
                            inst.kind
                        ));
                    }
                    InstKind::BranchStream { fifo, .. } if !self.dispatch.contains_key(fifo) => {
                        parts.push(format!(
                            "IFU: `{}` waits for a stream on {fifo} that was never configured",
                            inst.kind
                        ));
                    }
                    _ => {}
                }
            }
        }
        for i in 0..self.scus.len() {
            if self.scus[i].active && self.scu_disabled(i) {
                parts.push(format!(
                    "SCU {i} was disabled by fault injection with its stream unfinished"
                ));
            }
        }
        for (i, s) in self.scus.iter().enumerate() {
            if !s.active || self.scu_disabled(i) {
                continue;
            }
            let p = s.peer as usize;
            match s.kind {
                ScuKind::Recv => {
                    let due = self
                        .chan_rx
                        .get(p)
                        .and_then(|q| q.front())
                        .is_some_and(|e| e.due <= self.cycle);
                    if !due {
                        parts.push(format!(
                            "SCU {i} waits on the channel from tile {p} \
                             (no message due; the sender tile may be wedged or killed)"
                        ));
                    }
                }
                ScuKind::Send if self.chan_credits.get(p) == Some(&0) => {
                    parts.push(format!(
                        "SCU {i} is out of channel credits toward tile {p} \
                         (receiver backlog at capacity)"
                    ));
                }
                _ => {}
            }
        }
        if parts.is_empty() {
            parts.push("no unit can make progress".to_string());
        }
        parts.join("; ")
    }

    /// Build a fault error with the current snapshot attached.
    pub(crate) fn fault(
        &self,
        unit: FaultUnit,
        kind: FaultKind,
        addr: Option<i64>,
        stream: Option<DataFifo>,
        detail: String,
    ) -> SimError {
        SimError::Fault {
            cycle: self.cycle,
            fault: FaultInfo {
                unit,
                kind,
                addr,
                stream,
                inst: None,
                detail,
            },
            state: Box::new(self.snapshot()),
        }
    }

    /// Build a fault from a refused memory access.
    pub(crate) fn access_fault(
        &self,
        unit: FaultUnit,
        stream: Option<DataFifo>,
        e: &AccessError,
    ) -> SimError {
        let kind = match e.kind {
            AccessKind::Unmapped => FaultKind::Unmapped,
            AccessKind::ReadOnly => FaultKind::ReadOnly,
        };
        self.fault(unit, kind, Some(e.addr), stream, e.to_string())
    }

    /// Advance one cycle.
    pub fn step(&mut self) -> Result<(), SimError> {
        self.cycle += 1;
        self.ports_used = 0;
        self.deliver_memory()?;
        self.unit_step(RegClass::Int)?;
        self.unit_step(RegClass::Flt)?;
        self.veu_step()?;
        self.drain_stores()?;
        self.scu_step()?;
        self.ifu_step()?;
        self.sample_perf();
        Ok(())
    }

    /// Occupancy of every tracked FIFO, in [`FIFO_NAMES`] order.
    pub(crate) fn fifo_depths(&self) -> [usize; FIFO_NAMES.len()] {
        [
            self.ieu.ins[0].q.len(),
            self.ieu.ins[1].q.len(),
            self.ieu.out.len(),
            self.ieu.cc.len(),
            self.feu.ins[0].q.len(),
            self.feu.ins[1].q.len(),
            self.feu.out.len(),
            self.feu.cc.len(),
        ]
    }

    /// End-of-cycle bookkeeping: FIFO occupancy histograms, memory-port
    /// utilization and (when enabled) the FIFO-depth timeline.
    pub(crate) fn sample_perf(&mut self) {
        self.perf.cycles = self.cycle;
        let depths = self.fifo_depths();
        for (h, &d) in self.perf.fifos.iter_mut().zip(depths.iter()) {
            h.sample(d);
        }
        let p = (self.ports_used as usize).min(self.perf.ports.len() - 1);
        self.perf.ports[p] += 1;
        if self.perf.mem.is_some() {
            let occ = self.memsys.occupancy();
            if let Some(m) = self.perf.mem.as_mut() {
                m.sample_occupancy_n(occ, 1);
            }
            if self.timeline_enabled && self.last_sb_occ != occ {
                self.last_sb_occ = occ;
                self.timeline.push(DepthSample {
                    cycle: self.cycle,
                    fifo: SBUF_TRACK,
                    depth: occ,
                });
            }
        }
        if self.timeline_enabled {
            for (k, &d) in depths.iter().enumerate() {
                if self.last_depths[k] != d {
                    self.last_depths[k] = d;
                    self.timeline.push(DepthSample {
                        cycle: self.cycle,
                        fifo: FIFO_NAMES[k],
                        depth: d,
                    });
                }
            }
        }
    }

    // ---- memory ----

    pub(crate) fn deliver_memory(&mut self) -> Result<(), SimError> {
        while let Some(f) = self.in_flight.front() {
            if f.due > self.cycle {
                break;
            }
            let Flight {
                op, dropped, mshr, ..
            } = self.in_flight.pop_front().unwrap();
            if matches!(op, MemOp::Write { .. }) {
                self.writes_in_flight -= 1;
            }
            if mshr {
                // The miss's response has arrived (or was dropped): its
                // MSHR can track a new miss from the next reference on.
                self.memsys.release_mshr();
            }
            if dropped {
                // Fault injection: the response vanishes. Whoever waits for
                // it (pending counters, the deadlock detector's progress
                // clock) stays starved; the wedge diagnosis names the loss.
                self.dropped_responses += 1;
                continue;
            }
            self.last_progress = self.cycle;
            match op {
                MemOp::ReadFifo {
                    target,
                    addr,
                    width,
                    gen,
                    poison,
                } => {
                    let is_flt = match target {
                        StreamTarget::Fifo(f) => f.class == RegClass::Flt,
                        StreamTarget::Veu(_) => true,
                    };
                    // Accesses are permission-checked at issue time; a
                    // poisoned request carries no data.
                    let val = if poison.is_some() {
                        if is_flt {
                            Val::F(0.0)
                        } else {
                            Val::I(0)
                        }
                    } else {
                        match (is_flt, width) {
                            (true, Width::D8) => self.mem.read_flt(addr).map(Val::F),
                            _ => self.mem.read_int(addr, width).map(Val::I),
                        }
                        .map_err(|e| self.access_fault(FaultUnit::Ieu, None, &e))?
                    };
                    match target {
                        StreamTarget::Fifo(fifo) => {
                            let unit = self.unit_mut(fifo.class);
                            let f = &mut unit.ins[fifo.index as usize];
                            if f.gen == gen {
                                f.q.push_back(Slot { val, poison });
                                f.pending = f.pending.saturating_sub(1);
                            }
                            // stale data (stopped stream) is dropped
                        }
                        StreamTarget::Veu(port) => {
                            // VEU streams fault eagerly at issue, so a
                            // poisoned read never targets a VEU port.
                            let p = port as usize;
                            self.veu.ports[p].push_back(val.as_f());
                            self.veu.pending[p] = self.veu.pending[p].saturating_sub(1);
                        }
                    }
                }
                MemOp::ReadIndex {
                    scu,
                    seq,
                    addr,
                    width,
                    poison,
                } => {
                    // Matched to the issuing configuration: the stream may
                    // have been stopped (squash) or the slot reused since
                    // the fetch was issued — stale indices are dropped.
                    if self.scus[scu].active && self.scus[scu].seq == seq {
                        let entry = if poison {
                            (addr, true)
                        } else {
                            let v = self
                                .mem
                                .read_int(addr, width)
                                .map_err(|e| self.access_fault(FaultUnit::Scu(scu), None, &e))?;
                            (v, false)
                        };
                        let s = &mut self.scus[scu];
                        s.idx_pending = s.idx_pending.saturating_sub(1);
                        let pos = (s.ring_head as usize + s.ring_len as usize) % IDX_RING;
                        s.idx_ring[pos] = entry;
                        s.ring_len += 1;
                    }
                }
                MemOp::Write { addr, width, val } => {
                    let res = match val {
                        Val::F(v) if width == Width::D8 => self.mem.write_flt(addr, v),
                        v => self.mem.write_int(addr, width, v.as_i()),
                    };
                    if let Err(e) = res {
                        return Err(self.access_fault(FaultUnit::Ieu, None, &e));
                    }
                }
            }
        }
        Ok(())
    }

    /// Issue `op` through the memory hierarchy. The caller must have
    /// checked `memsys.accepts(&acc, ..)` this cycle (scalar paths stall
    /// on a refusal; stream requests are never refused).
    pub(crate) fn issue_mem(&mut self, op: MemOp, acc: &Access) {
        self.req_counter += 1;
        let n = self.req_counter;
        let issued = self.memsys.access(acc, self.cycle, self.perf.mem.as_mut());
        let plan = &self.config.fault_plan;
        let mut latency = issued.latency;
        // Fault injection models DRAM-level misbehavior, so jitter,
        // delays and drops only apply to requests that reach the DRAM
        // level. Under the flat model every request does, which keeps
        // flat runs bit-identical to the pre-hierarchy simulator.
        if issued.dram {
            if let Some(seed) = plan.jitter_seed {
                if plan.jitter_max > 0 {
                    latency += jitter(seed, n) % (plan.jitter_max + 1);
                }
            }
            latency += plan
                .delays
                .iter()
                .filter(|&&(r, _)| r == n)
                .map(|&(_, c)| c)
                .sum::<u64>();
        }
        let dropped = issued.dram && plan.drops.contains(&n);
        if matches!(op, MemOp::Write { .. }) {
            self.writes_in_flight += 1;
        }
        self.in_flight.push_back(Flight {
            due: self.cycle + latency,
            op,
            dropped,
            mshr: issued.mshr,
        });
        self.ports_used += 1;
        self.last_progress = self.cycle;
    }

    pub(crate) fn ports_free(&self) -> bool {
        self.ports_used < self.config.mem_ports
    }

    /// Would a read of `[addr, addr+width)` overlap a store whose write has
    /// not yet reached memory? Loads must wait for such stores (the
    /// load/store ordering a decoupled access/execute machine enforces with
    /// its store-address queue).
    pub(crate) fn conflicts_with_pending_writes(&self, addr: i64, width: Width) -> bool {
        if self.store_q.is_empty() && self.writes_in_flight == 0 {
            return false; // nothing queued, nothing travelling: no scan
        }
        let end = addr + width.bytes();
        let overlap = |a: i64, w: Width| a < end && addr < a + w.bytes();
        self.store_q.iter().any(|s| overlap(s.addr, s.width))
            || self.in_flight.iter().any(|f| match &f.op {
                MemOp::Write {
                    addr: a, width: w, ..
                } => overlap(*a, *w),
                MemOp::ReadFifo { .. } | MemOp::ReadIndex { .. } => false,
            })
    }

    /// Does an active out-stream with a configuration number below `seq`
    /// still have `[addr, addr+width)` in its unwritten range?
    fn older_out_stream_overlaps(&self, seq: u64, addr: i64, width: Width) -> bool {
        let end = addr + width.bytes();
        self.scus.iter().any(|s| {
            if !s.active || s.dir_in || s.seq >= seq {
                return false;
            }
            // A scatter's write set is data-dependent; its declared span
            // is the conservative unwritten range.
            if s.kind == ScuKind::Scatter {
                return s.addr < end && addr < s.addr + s.span;
            }
            match s.remaining {
                Some(n) => {
                    let lo = s.addr.min(s.addr + s.stride * (n - 1).max(0));
                    let hi = s.addr.max(s.addr + s.stride * (n - 1).max(0)) + s.width.bytes();
                    lo < end && addr < hi
                }
                None => {
                    if s.stride >= 0 {
                        s.addr < end
                    } else {
                        addr < s.addr + s.width.bytes()
                    }
                }
            }
        })
    }

    /// Does a *scalar* load of `[addr, addr+width)` fall inside the range an
    /// active out-stream has yet to write? Scalar loads follow the stream's
    /// writes in program order, so they must wait; stream-in prefetches must
    /// not (their reads precede the overlapping writes in program order).
    pub(crate) fn conflicts_with_out_streams(&self, addr: i64, width: Width) -> bool {
        let end = addr + width.bytes();
        self.scus.iter().any(|s| {
            if !s.active || s.dir_in {
                return false;
            }
            if s.kind == ScuKind::Scatter {
                return s.addr < end && addr < s.addr + s.span;
            }
            match s.remaining {
                Some(n) => {
                    let lo = s.addr.min(s.addr + s.stride * (n - 1).max(0));
                    let hi = s.addr.max(s.addr + s.stride * (n - 1).max(0)) + s.width.bytes();
                    lo < end && addr < hi
                }
                // unbounded stream: everything from the cursor onward (in
                // stride direction) may still be written
                None => {
                    if s.stride >= 0 {
                        s.addr < end
                    } else {
                        addr < s.addr + s.width.bytes()
                    }
                }
            }
        })
    }

    // ---- execution units ----

    pub(crate) fn unit(&self, class: RegClass) -> &Unit {
        match class {
            RegClass::Int => &self.ieu,
            RegClass::Flt => &self.feu,
        }
    }

    pub(crate) fn unit_mut(&mut self, class: RegClass) -> &mut Unit {
        match class {
            RegClass::Int => &mut self.ieu,
            RegClass::Flt => &mut self.feu,
        }
    }

    fn unit_step(&mut self, class: RegClass) -> Result<(), SimError> {
        let outcome = self.unit_step_inner(class)?;
        match class {
            RegClass::Int => {
                self.perf.ieu.record(outcome);
                self.last_outcomes.ieu = outcome;
            }
            RegClass::Flt => {
                self.perf.feu.record(outcome);
                self.last_outcomes.feu = outcome;
            }
        }
        Ok(())
    }

    fn unit_step_inner(&mut self, class: RegClass) -> Result<Outcome, SimError> {
        if self.unit(class).busy > 0 {
            self.unit_mut(class).busy -= 1;
            return Ok(Outcome::Active);
        }
        // The queue holds indices into the decoded table; the kind lives
        // in the module (`&'m`), so peeking borrows nothing from `self`
        // and stall cycles (interlock, FIFO-empty) never clone.
        let head: &'m InstKind = {
            let u = self.unit(class);
            let Some(&idx) = u.iq.front() else {
                return Ok(Outcome::Idle);
            };
            let head = self.prog.insts[idx as usize].kind;
            // paired-ALU dependency interlock: the previous instruction's
            // result is not available to the immediately following
            // instruction
            if let Some(prev) = u.prev_dst {
                if u.prev_cycle + 1 == self.cycle && reads_phys(head, class, prev) {
                    return Ok(Outcome::Stall(Stall::Interlock)); // one-cycle bubble
                }
            }
            head
        };
        // FIFO data availability for every dequeue in the instruction
        if !self.fifo_ready(class, head) {
            return Ok(Outcome::Stall(Stall::FifoEmpty));
        }
        let executed_dst = match self.exec_unit_head(class, head) {
            Ok(Exec::Retired(dst)) => dst,
            Ok(Exec::Stall(s)) => return Ok(Outcome::Stall(s)), // retry next cycle
            Err(e) => return Err(attach_inst(e, head)),
        };
        self.record(
            match class {
                RegClass::Int => "IEU",
                RegClass::Flt => "FEU",
            },
            head,
        );
        let now = self.cycle;
        let u = self.unit_mut(class);
        u.iq.pop_front();
        u.prev_dst = executed_dst;
        u.prev_cycle = now;
        match class {
            RegClass::Int => {
                self.stats.insts_ieu += 1;
                self.perf.ieu.retired += 1;
            }
            RegClass::Flt => {
                self.stats.insts_feu += 1;
                self.perf.feu.retired += 1;
            }
        }
        self.last_progress = self.cycle;
        Ok(Outcome::Active)
    }

    /// Execute the unit's head instruction if it can issue this cycle.
    ///
    /// [`Exec::Stall`] is a structural stall (full queue, busy port, memory
    /// ordering) with its attributed reason; [`Exec::Retired`] means the
    /// instruction retired, carrying the register the paired-ALU interlock
    /// must delay.
    pub(crate) fn exec_unit_head(
        &mut self,
        class: RegClass,
        head: &InstKind,
    ) -> Result<Exec, SimError> {
        let mut executed_dst: Option<u8> = None;
        match head {
            InstKind::Assign { dst, src } => {
                if dst.phys_num() == Some(0)
                    && self.unit(class).out.len() >= self.config.fifo_capacity
                {
                    return Ok(Exec::Stall(Stall::OutFull)); // output FIFO full
                }
                let v = self.eval_expr(class, src)?;
                self.write_reg(class, *dst, v)?;
                if !dst.is_fifo() && !dst.is_zero() {
                    executed_dst = dst.phys_num();
                }
            }
            InstKind::LoadAddr { dst, sym, disp } => {
                let addr = self.sym_addr(*sym)? + disp;
                self.write_reg(class, *dst, Val::I(addr))?;
                executed_dst = dst.phys_num();
                // the llh/sll pair is two 32-bit instructions
                self.unit_mut(class).busy = 1;
            }
            InstKind::Compare { op, a, b, .. } => {
                if self.unit(class).cc.len() >= self.config.cc_capacity {
                    return Ok(Exec::Stall(Stall::CcFull));
                }
                let va = self.read_operand(class, *a)?;
                let vb = self.read_operand(class, *b)?;
                let r = match class {
                    RegClass::Int => op.eval_int(va.as_i(), vb.as_i()),
                    RegClass::Flt => op.eval_flt(va.as_f(), vb.as_f()),
                };
                self.unit_mut(class).cc.push_back(r);
            }
            InstKind::WLoad { fifo, addr, width } => {
                if !self.ports_free() {
                    return Ok(Exec::Stall(Stall::PortBusy));
                }
                {
                    let tf = &self.unit(fifo.class).ins[fifo.index as usize];
                    // A scalar load must not interleave its datum with an
                    // active stream's: stall until the stream's last
                    // request has been issued (the hardware interlock).
                    if tf.streamed {
                        return Ok(Exec::Stall(Stall::ScuBusy));
                    }
                    if tf.q.len() + tf.pending >= self.config.fifo_capacity {
                        return Ok(Exec::Stall(Stall::FifoFull));
                    }
                }
                let a = if let Some(a) = self.unit(class).latched_load {
                    // Retry of a refused indirect load: the index was
                    // dequeued when the address was first computed. Only
                    // the ordering check re-runs (the other unit may have
                    // queued a conflicting store while we were latched).
                    if self.conflicts_with_pending_writes(a, *width)
                        || self.conflicts_with_out_streams(a, *width)
                    {
                        return Ok(Exec::Stall(Stall::MemOrder));
                    }
                    a
                } else {
                    match self.eval_expr_pure(class, addr) {
                        Some(a)
                            if self.conflicts_with_pending_writes(a, *width)
                                || self.conflicts_with_out_streams(a, *width) =>
                        {
                            // wait for the conflicting store
                            return Ok(Exec::Stall(Stall::MemOrder));
                        }
                        None if !self.store_q.is_empty() || self.writes_in_flight > 0 => {
                            // unanalyzable address: drain stores first
                            return Ok(Exec::Stall(Stall::MemOrder));
                        }
                        _ => {}
                    }
                    let a = self.eval_expr(class, addr)?.as_i();
                    // scalar loads fault eagerly, with precise attribution
                    if let Err(e) = self.mem.check(a, width.bytes(), false) {
                        return Err(self.access_fault(FaultUnit::Ieu, None, &e));
                    }
                    a
                };
                // the memory hierarchy may refuse the reference (MSHRs
                // exhausted, target DRAM bank busy): retry next cycle
                let acc = Access::scalar(a, false);
                if let Err(refusal) = self.memsys.accepts(&acc, self.cycle) {
                    // If the address expression consumed a FIFO operand,
                    // hold the computed address in the unit's latch so the
                    // retry does not re-dequeue. The dequeue is a state
                    // flip on a stall cycle, so pin progress (fast-forward
                    // soundness rule).
                    if addr.regs().any(|r| r.is_fifo()) {
                        self.unit_mut(class).latched_load = Some(a);
                        self.last_progress = self.cycle;
                    }
                    return Ok(Exec::Stall(refusal.stall()));
                }
                self.unit_mut(class).latched_load = None;
                let gen = self.unit(fifo.class).ins[fifo.index as usize].gen;
                {
                    let f = &mut self.unit_mut(fifo.class).ins[fifo.index as usize];
                    f.pending += 1;
                    f.owed += 1;
                }
                self.issue_mem(
                    MemOp::ReadFifo {
                        target: StreamTarget::Fifo(*fifo),
                        addr: a,
                        width: *width,
                        gen,
                        poison: None,
                    },
                    &acc,
                );
                self.stats.mem_reads += 1;
            }
            InstKind::WStore { unit, addr, width } => {
                if self.store_q.len() >= self.config.store_queue {
                    return Ok(Exec::Stall(Stall::StoreQFull));
                }
                let a = self.eval_expr(class, addr)?.as_i();
                // stores fault at issue time, before entering the store
                // queue, so the report names the faulting instruction
                if let Err(e) = self.mem.check(a, width.bytes(), true) {
                    return Err(self.access_fault(FaultUnit::Ieu, None, &e));
                }
                self.store_q.push_back(PendingStore {
                    addr: a,
                    width: *width,
                    class: *unit,
                });
            }
            InstKind::StreamIn {
                fifo,
                base,
                count,
                stride,
                width,
                tested,
            } => {
                if !self.configure_scu(true, *fifo, *base, *count, *stride, *width, *tested)? {
                    return Ok(Exec::Stall(Stall::ScuBusy)); // no free SCU
                }
            }
            InstKind::StreamOut {
                fifo,
                base,
                count,
                stride,
                width,
            } => {
                if !self.configure_scu(false, *fifo, *base, *count, *stride, *width, false)? {
                    return Ok(Exec::Stall(Stall::ScuBusy));
                }
            }
            InstKind::StreamGather {
                fifo,
                base,
                shift,
                width,
                ibase,
                istride,
                iwidth,
                count,
                tested,
            } => {
                if !self.configure_indirect(
                    true, *fifo, *base, *shift, *width, *ibase, *istride, *iwidth, *count, *tested,
                    0,
                )? {
                    return Ok(Exec::Stall(Stall::ScuBusy));
                }
            }
            InstKind::StreamScatter {
                fifo,
                base,
                shift,
                width,
                ibase,
                istride,
                iwidth,
                count,
                span,
            } => {
                if !self.configure_indirect(
                    false, *fifo, *base, *shift, *width, *ibase, *istride, *iwidth, *count, false,
                    *span,
                )? {
                    return Ok(Exec::Stall(Stall::ScuBusy));
                }
            }
            InstKind::VStreamIn {
                port,
                base,
                count,
                stride,
                vectors,
            } => {
                let Some(slot) = self.free_scu_slot() else {
                    return Ok(Exec::Stall(Stall::ScuBusy));
                };
                let addr = self.read_operand(RegClass::Int, *base)?.as_i();
                let n = self.read_operand(RegClass::Int, *count)?.as_i();
                let st = self.read_operand(RegClass::Int, *stride)?.as_i();
                let v = self.read_operand(RegClass::Int, *vectors)?.as_i();
                if n < 0 || v < 0 {
                    return Err(self.fault(
                        FaultUnit::Ieu,
                        FaultKind::BadStreamCount(n.min(v)),
                        None,
                        None,
                        format!("vector stream configured with count {n}/{v}"),
                    ));
                }
                // a previous vector loop's stream into this port must
                // drain before the port is reused
                if self
                    .scus
                    .iter()
                    .any(|u| u.active && u.dir_in && u.target == StreamTarget::Veu(*port))
                {
                    return Ok(Exec::Stall(Stall::ScuBusy));
                }
                self.scu_seq += 1;
                self.scus[slot] = Scu {
                    active: n > 0,
                    dir_in: true,
                    fifo: DataFifo::new(RegClass::Flt, 0), // unused for VEU targets
                    target: StreamTarget::Veu(*port),
                    addr,
                    stride: st,
                    remaining: Some(n),
                    width: Width::D8,
                    ready_at: self.cycle + self.config.scu_setup,
                    seq: self.scu_seq,
                    ..Scu::inert()
                };
                // only the stream carrying a positive `vectors` operand
                // loads the termination counter (one per vector loop);
                // re-setting it from a second port would corrupt a count
                // the IFU is already consuming
                if v > 0 {
                    self.dispatch_vec = Some(v);
                }
            }
            InstKind::VStreamOut {
                base,
                count,
                stride,
            } => {
                let Some(slot) = self.free_scu_slot() else {
                    return Ok(Exec::Stall(Stall::ScuBusy));
                };
                let addr = self.read_operand(RegClass::Int, *base)?.as_i();
                let n = self.read_operand(RegClass::Int, *count)?.as_i();
                let st = self.read_operand(RegClass::Int, *stride)?.as_i();
                if self
                    .scus
                    .iter()
                    .any(|u| u.active && !u.dir_in && u.target == StreamTarget::Veu(0))
                {
                    return Ok(Exec::Stall(Stall::ScuBusy));
                }
                self.scu_seq += 1;
                self.scus[slot] = Scu {
                    active: n > 0,
                    dir_in: false,
                    fifo: DataFifo::new(RegClass::Flt, 0),
                    target: StreamTarget::Veu(0),
                    addr,
                    stride: st,
                    remaining: Some(n),
                    width: Width::D8,
                    ready_at: self.cycle + self.config.scu_setup,
                    seq: self.scu_seq,
                    ..Scu::inert()
                };
            }
            InstKind::StreamStop { fifo } => {
                // stopping an out-stream must not strand enqueued data:
                // wait until the SCU has drained the output FIFO
                let draining = self
                    .scus
                    .iter()
                    .any(|s| s.active && !s.dir_in && s.fifo == *fifo)
                    && !self.unit(fifo.class).out.is_empty();
                if draining {
                    return Ok(Exec::Stall(Stall::ScuBusy));
                }
                self.stop_stream(*fifo);
            }
            InstKind::ChanSend { peer, src, .. } => {
                let dst = self.chan_peer(*peer)?;
                let v = self.read_operand(class, *src)?;
                // Fire-and-forget: a scalar send never checks credits, so
                // a runaway sender can overrun the receiver. The routing
                // barrier poisons the overflowing entry, and the fault
                // surfaces — with provenance — at the *consuming* tile.
                self.chan_tx.push(ChanMsg {
                    dst,
                    val: v,
                    poison: None,
                });
            }
            InstKind::ChanRecv { peer, dst } => {
                if dst.phys_num() == Some(0)
                    && self.unit(class).out.len() >= self.config.fifo_capacity
                {
                    return Ok(Exec::Stall(Stall::OutFull)); // output FIFO full
                }
                let p = self.chan_peer(*peer)?;
                let due = self.chan_rx[p].front().is_some_and(|e| e.due <= self.cycle);
                if !due {
                    return Ok(Exec::Stall(Stall::ChanEmpty));
                }
                let e = self.chan_rx[p].pop_front().expect("checked non-empty");
                if let Some(poison) = e.poison {
                    let unit = match class {
                        RegClass::Int => FaultUnit::Ieu,
                        RegClass::Flt => FaultUnit::Feu,
                    };
                    return Err(self.fault(
                        unit,
                        FaultKind::PoisonConsumed,
                        Some(poison.addr),
                        None,
                        format!(
                            "consumed a poisoned channel datum from tile {p}: {}",
                            poison.error
                        ),
                    ));
                }
                self.write_reg(class, *dst, e.val)?;
                if !dst.is_fifo() && !dst.is_zero() {
                    executed_dst = dst.phys_num();
                }
            }
            InstKind::StreamSend { peer, fifo, count } => {
                if !self.configure_chan_scu(false, *peer, *fifo, *count, false)? {
                    return Ok(Exec::Stall(Stall::ScuBusy));
                }
            }
            InstKind::StreamRecv {
                peer,
                fifo,
                count,
                tested,
            } => {
                if !self.configure_chan_scu(true, *peer, *fifo, *count, *tested)? {
                    return Ok(Exec::Stall(Stall::ScuBusy));
                }
            }
            other => {
                return Err(SimError::BadProgram(format!(
                    "instruction reached an execution unit: {other}"
                )))
            }
        }
        Ok(Exec::Retired(executed_dst))
    }

    /// Do the FIFO reads of `kind` have data available?
    pub(crate) fn fifo_ready(&self, class: RegClass, kind: &InstKind) -> bool {
        let u = self.unit(class);
        // A latched load already performed its dequeues when the address
        // was computed; its retry must not wait on the (possibly empty)
        // FIFO it consumed from.
        if u.latched_load.is_some() {
            return true;
        }
        let need = fifo_need(class, kind);
        need[0] <= u.ins[0].q.len() && need[1] <= u.ins[1].q.len()
    }

    /// First SCU slot that is both inactive and past any squash recovery.
    fn free_scu_slot(&self) -> Option<usize> {
        self.scus
            .iter()
            .position(|s| !s.active && self.cycle >= s.squash_until)
    }

    #[allow(clippy::too_many_arguments)] // mirrors the stream-instruction fields
    fn configure_scu(
        &mut self,
        dir_in: bool,
        fifo: DataFifo,
        base: Operand,
        count: Option<Operand>,
        stride: Operand,
        width: Width,
        tested: bool,
    ) -> Result<bool, SimError> {
        let Some(slot) = self.free_scu_slot() else {
            return Ok(false);
        };
        let addr = self.read_operand(RegClass::Int, base)?.as_i();
        let stride = self.read_operand(RegClass::Int, stride)?.as_i();
        let remaining = match count {
            Some(c) => {
                let n = self.read_operand(RegClass::Int, c)?.as_i();
                if n <= 0 {
                    return Err(self.fault(
                        FaultUnit::Ieu,
                        FaultKind::BadStreamCount(n),
                        None,
                        Some(fifo),
                        format!("stream configured with count {n}"),
                    ));
                }
                Some(n)
            }
            None => None,
        };
        let gen = if dir_in {
            // The previous loop's stream may still be draining (the IEU
            // runs ahead of the consuming unit): wait for it rather than
            // overlap two streams on one FIFO.
            if self.unit(fifo.class).ins[fifo.index as usize].streamed {
                return Ok(false);
            }
            let f = &mut self.unit_mut(fifo.class).ins[fifo.index as usize];
            f.streamed = true;
            f.gen
        } else {
            // likewise for an out-stream still draining the output FIFO
            if self
                .scus
                .iter()
                .any(|u| u.active && !u.dir_in && u.target == StreamTarget::Fifo(fifo))
            {
                return Ok(false);
            }
            0
        };
        self.scu_seq += 1;
        self.scus[slot] = Scu {
            active: true,
            dir_in,
            fifo,
            target: StreamTarget::Fifo(fifo),
            addr,
            stride,
            remaining,
            width,
            gen,
            ready_at: self.cycle + self.config.scu_setup,
            seq: self.scu_seq,
            ..Scu::inert()
        };
        // Register the dispatch counter for jNI jumps — but only for the
        // stream the compiler marked as tested. Registering any other
        // stream would leave a stale counter behind (its jNI never drains
        // it), corrupting a later loop's termination test on the same FIFO.
        if dir_in && tested {
            if let Some(n) = remaining {
                self.dispatch.insert(fifo, n);
            }
        }
        Ok(true)
    }

    /// Validate a channel peer operand: channel instructions are only
    /// legal on a tiled machine, and only toward *another* live tile.
    fn chan_peer(&self, peer: u8) -> Result<usize, SimError> {
        let p = peer as usize;
        if self.chan_rx.is_empty() {
            return Err(SimError::BadProgram(
                "channel instruction on a single-tile machine".into(),
            ));
        }
        if p >= self.chan_rx.len() || p == self.tile_id {
            return Err(SimError::BadProgram(format!(
                "channel peer t{peer} is out of range for a {}-tile machine (this is tile {})",
                self.chan_rx.len(),
                self.tile_id
            )));
        }
        Ok(p)
    }

    /// Configure a channel-stream SCU (`Ssend`/`Srecv`): the port-free
    /// dual of [`WmMachine::configure_scu`], moving FIFO elements
    /// core-to-core instead of to or from memory.
    fn configure_chan_scu(
        &mut self,
        dir_in: bool,
        peer: u8,
        fifo: DataFifo,
        count: Operand,
        tested: bool,
    ) -> Result<bool, SimError> {
        let p = self.chan_peer(peer)?;
        let Some(slot) = self.free_scu_slot() else {
            return Ok(false);
        };
        let n = self.read_operand(RegClass::Int, count)?.as_i();
        if n <= 0 {
            return Err(self.fault(
                FaultUnit::Ieu,
                FaultKind::BadStreamCount(n),
                None,
                Some(fifo),
                format!("channel stream configured with count {n}"),
            ));
        }
        if dir_in {
            // A receive delivers into the FIFO's input side, so it takes
            // the same exclusive-feeder slot as an affine in-stream.
            if self.unit(fifo.class).ins[fifo.index as usize].streamed {
                return Ok(false);
            }
            self.unit_mut(fifo.class).ins[fifo.index as usize].streamed = true;
        } else {
            // A send *drains* the FIFO's input side: one drain at a time.
            if self
                .scus
                .iter()
                .any(|u| u.active && u.kind == ScuKind::Send && u.fifo == fifo)
            {
                return Ok(false);
            }
        }
        self.scu_seq += 1;
        self.scus[slot] = Scu {
            active: true,
            dir_in,
            kind: if dir_in { ScuKind::Recv } else { ScuKind::Send },
            fifo,
            target: StreamTarget::Fifo(fifo),
            remaining: Some(n),
            peer: p as u8,
            ready_at: self.cycle + self.config.scu_setup,
            seq: self.scu_seq,
            ..Scu::inert()
        };
        if dir_in && tested {
            self.dispatch.insert(fifo, n);
        }
        Ok(true)
    }

    /// Configure an index-fed stream (gather in, scatter out): the SCU
    /// fetches its own affine index stream `[ibase, ibase+istride, ..)`
    /// and issues `base + (idx << shift)` data references. Returns
    /// `Ok(false)` when no SCU slot (or the target FIFO) is free.
    #[allow(clippy::too_many_arguments)] // mirrors the stream-instruction fields
    fn configure_indirect(
        &mut self,
        dir_in: bool,
        fifo: DataFifo,
        base: Operand,
        shift: u8,
        width: Width,
        ibase: Operand,
        istride: Operand,
        iwidth: Width,
        count: Operand,
        tested: bool,
        span: i64,
    ) -> Result<bool, SimError> {
        let Some(slot) = self.free_scu_slot() else {
            return Ok(false);
        };
        let addr = self.read_operand(RegClass::Int, base)?.as_i();
        let iaddr = self.read_operand(RegClass::Int, ibase)?.as_i();
        let istride = self.read_operand(RegClass::Int, istride)?.as_i();
        let n = self.read_operand(RegClass::Int, count)?.as_i();
        if n <= 0 {
            return Err(self.fault(
                FaultUnit::Ieu,
                FaultKind::BadStreamCount(n),
                None,
                Some(fifo),
                format!("indirect stream configured with count {n}"),
            ));
        }
        let gen = if dir_in {
            if self.unit(fifo.class).ins[fifo.index as usize].streamed {
                return Ok(false);
            }
            let f = &mut self.unit_mut(fifo.class).ins[fifo.index as usize];
            f.streamed = true;
            f.gen
        } else {
            if self
                .scus
                .iter()
                .any(|u| u.active && !u.dir_in && u.target == StreamTarget::Fifo(fifo))
            {
                return Ok(false);
            }
            0
        };
        self.scu_seq += 1;
        self.scus[slot] = Scu {
            active: true,
            dir_in,
            kind: if dir_in {
                ScuKind::Gather
            } else {
                ScuKind::Scatter
            },
            fifo,
            target: StreamTarget::Fifo(fifo),
            addr,
            remaining: Some(n),
            width,
            gen,
            ready_at: self.cycle + self.config.scu_setup,
            seq: self.scu_seq,
            shift,
            iaddr,
            istride,
            iwidth,
            span,
            idx_remaining: Some(n),
            ..Scu::inert()
        };
        if dir_in && tested {
            self.dispatch.insert(fifo, n);
        }
        Ok(true)
    }

    /// Stop every stream on `fifo`, discarding data fetched ahead of the
    /// consumer. For a speculative stream this is the squash: the
    /// discarded elements (queued, in flight, and an indirect SCU's
    /// buffered/pending indices) are counted per SCU, and a nonzero
    /// [`WmConfig::squash_penalty`](crate::config::WmConfig) holds the
    /// slot in recovery for that many cycles.
    fn stop_stream(&mut self, fifo: DataFifo) {
        let penalty = self.config.squash_penalty;
        let cycle = self.cycle;
        let mut flush_in: Option<usize> = None;
        for (k, scu) in self.scus.iter_mut().enumerate() {
            if scu.active && scu.fifo == fifo {
                scu.active = false;
                let leftover = scu.ring_len as u64 + scu.idx_pending as u64;
                scu.ring_len = 0;
                scu.ring_head = 0;
                scu.idx_pending = 0;
                self.perf.scus[k].squashed += leftover;
                if penalty > 0 && leftover > 0 {
                    scu.squash_until = cycle + penalty;
                }
                if scu.dir_in {
                    flush_in = Some(k);
                }
            }
        }
        if let Some(k) = flush_in {
            let f = &mut self.unit_mut(fifo.class).ins[fifo.index as usize];
            let leftover = (f.q.len() + f.pending) as u64;
            f.q.clear();
            f.pending = 0;
            f.owed = 0;
            f.gen = f.gen.wrapping_add(1);
            f.streamed = false;
            self.perf.scus[k].squashed += leftover;
            if penalty > 0 && leftover > 0 {
                self.scus[k].squash_until = cycle + penalty;
            }
        }
        self.dispatch.remove(&fifo);
    }

    pub(crate) fn drain_stores(&mut self) -> Result<(), SimError> {
        while self.ports_free() {
            let Some(&PendingStore { addr, width, class }) = self.store_q.front() else {
                break;
            };
            // An active out-stream on the same unit owns the output
            // FIFO: the next `remaining` pushes are its data, in push
            // order, so a scalar store must hold until the stream
            // retires (jNI early branch resolution lets the IEU queue a
            // post-loop store's address while the FEU is still feeding
            // the stream — the tiled write-back drain does exactly
            // this). A store that can never be satisfied surfaces as an
            // attributed deadlock rather than an eager fault. A channel
            // send is `dir_in == false` but drains the *input* side, so
            // it never owns the output FIFO — and must not block the
            // store (its feeding in-stream may be waiting on us).
            if self.scus.iter().any(|s| {
                s.active
                    && !s.dir_in
                    && s.kind != ScuKind::Send
                    && s.fifo.class == class
                    && s.remaining != Some(0)
            }) {
                break;
            }
            // the hierarchy may refuse the store (write-allocate miss
            // with no MSHR / busy bank): leave it queued and retry
            let acc = Access::scalar(addr, true);
            if self.memsys.accepts(&acc, self.cycle).is_err() {
                break;
            }
            let Some(val) = self.unit_mut(class).out.pop_front() else {
                break; // data not produced yet
            };
            self.store_q.pop_front();
            self.issue_mem(MemOp::Write { addr, width, val }, &acc);
            self.stats.mem_writes += 1;
        }
        Ok(())
    }

    pub(crate) fn scu_step(&mut self) -> Result<(), SimError> {
        for i in 0..self.scus.len() {
            let outcome = self.scu_step_one(i)?;
            self.perf.scus[i].unit.record(outcome);
            self.last_outcomes.scus[i] = outcome;
        }
        Ok(())
    }

    /// Advance SCU `i` by one cycle and attribute what it did. The checks
    /// run in the same order as the pre-instrumentation loop (ports first,
    /// then activity/setup/injection, then back-pressure and ordering), so
    /// issue behavior is cycle-identical; only the attribution is new.
    fn scu_step_one(&mut self, i: usize) -> Result<Outcome, SimError> {
        // An inactive SCU is idle whether or not a port is free, so the
        // common case skips the arbitration checks (and the state copy).
        if !self.scus[i].active {
            // ... unless it is recovering from a speculative-stream
            // squash, which holds the slot busy.
            if self.cycle < self.scus[i].squash_until {
                return Ok(Outcome::Stall(Stall::SpecSquash));
            }
            return Ok(Outcome::Idle);
        }
        let scu = self.scus[i];
        // Channel SCUs move data tile-to-tile without touching memory, so
        // they never contend for a port: dispatch them before arbitration
        // (a `PortBusy` charge here would be spurious). The disable and
        // setup checks keep their usual precedence.
        if matches!(scu.kind, ScuKind::Send | ScuKind::Recv) {
            if self.scu_disabled(i) {
                return Ok(Outcome::Stall(Stall::Disabled));
            }
            if self.cycle < scu.ready_at {
                return Ok(Outcome::Stall(Stall::Setup));
            }
            return match scu.kind {
                ScuKind::Send => self.send_step(i, &scu),
                _ => self.recv_step(i, &scu),
            };
        }
        if !self.ports_free() {
            // No port: even stream termination waits (as the original
            // arbitration loop broke out before deactivating).
            return Ok(if self.scu_disabled(i) {
                Outcome::Stall(Stall::Disabled)
            } else if self.cycle < scu.ready_at {
                Outcome::Stall(Stall::Setup)
            } else {
                Outcome::Stall(Stall::PortBusy)
            });
        }
        if self.scu_disabled(i) {
            return Ok(Outcome::Stall(Stall::Disabled));
        }
        if self.cycle < scu.ready_at {
            return Ok(Outcome::Stall(Stall::Setup));
        }
        match scu.kind {
            ScuKind::Affine => {}
            ScuKind::Gather => return self.gather_step(i, &scu),
            ScuKind::Scatter => return self.scatter_step(i, &scu),
            // dispatched above, before port arbitration
            ScuKind::Send | ScuKind::Recv => unreachable!(),
        }
        if scu.dir_in {
            if scu.remaining == Some(0) {
                self.scus[i].active = false;
                if let StreamTarget::Fifo(fifo) = scu.target {
                    let f = &mut self.unit_mut(fifo.class).ins[fifo.index as usize];
                    f.streamed = false;
                }
                return Ok(Outcome::Idle);
            }
            // back-pressure: respect the destination's capacity
            match scu.target {
                StreamTarget::Fifo(fifo) => {
                    let f = &self.unit(fifo.class).ins[fifo.index as usize];
                    if f.q.len() + f.pending >= self.config.fifo_capacity {
                        return Ok(Outcome::Stall(Stall::FifoFull));
                    }
                }
                StreamTarget::Veu(port) => {
                    let p = port as usize;
                    if self.veu.ports[p].len() + self.veu.pending[p] >= 2 * self.config.veu_length {
                        return Ok(Outcome::Stall(Stall::FifoFull));
                    }
                }
            }
            if self.conflicts_with_pending_writes(scu.addr, scu.width) {
                return Ok(Outcome::Stall(Stall::MemOrder)); // hold until the store lands
            }
            // an out-stream configured earlier (program order) may
            // still owe a write to this address: wait until its cursor
            // passes
            if self.older_out_stream_overlaps(scu.seq, scu.addr, scu.width) {
                return Ok(Outcome::Stall(Stall::MemOrder));
            }
            // Permission check at issue. A refused prefetch into a scalar
            // FIFO *poisons* the entry instead of faulting: the SCU runs
            // ahead of the consumer, and an over-fetch that is never
            // consumed must be harmless (deferred-speculation semantics).
            // The VEU consumes whole vectors unconditionally, so its
            // refused prefetches fault eagerly.
            let poison = match self.mem.check(scu.addr, scu.width.bytes(), false) {
                Ok(()) => None,
                Err(e) => match scu.target {
                    StreamTarget::Fifo(_) => Some(Box::new(Poison {
                        addr: scu.addr,
                        scu: i,
                        error: e.to_string(),
                    })),
                    StreamTarget::Veu(_) => {
                        return Err(self.access_fault(FaultUnit::Scu(i), None, &e))
                    }
                },
            };
            if poison.is_some() {
                self.perf.scus[i].poisoned += 1;
            }
            match scu.target {
                StreamTarget::Fifo(fifo) => {
                    self.unit_mut(fifo.class).ins[fifo.index as usize].pending += 1
                }
                StreamTarget::Veu(port) => self.veu.pending[port as usize] += 1,
            }
            self.issue_mem(
                MemOp::ReadFifo {
                    target: scu.target,
                    addr: scu.addr,
                    width: scu.width,
                    gen: scu.gen,
                    poison,
                },
                // the stream-buffer bypass path: never refused, and
                // prefetching ahead along the stride is what hides the
                // miss latency scalar code pays
                &Access::stream(scu.addr, false, i, scu.stride),
            );
            self.stats.stream_reads += 1;
            self.perf.scus[i].elements_in += 1;
            self.perf.scus[i].unit.retired += 1;
            let s = &mut self.scus[i];
            s.addr += s.stride;
            if let Some(r) = s.remaining.as_mut() {
                *r -= 1;
                if *r == 0 {
                    // the last request is out: release the FIFO so
                    // scalar loads may follow immediately (ordering is
                    // preserved by the memory system's FIFO delivery)
                    s.active = false;
                    if let StreamTarget::Fifo(fifo) = s.target {
                        self.unit_mut(fifo.class).ins[fifo.index as usize].streamed = false;
                    }
                }
            }
            Ok(Outcome::Active)
        } else {
            if scu.remaining == Some(0) {
                // Deactivation can flip a younger stream's ordering check
                // (`older_out_stream_overlaps`) next cycle, so this cycle
                // must not be fast-forwarded over even though nothing
                // retires.
                self.scus[i].active = false;
                self.last_progress = self.cycle;
                return Ok(Outcome::Idle);
            }
            let popped = match scu.target {
                StreamTarget::Fifo(fifo) => self.unit_mut(fifo.class).out.pop_front(),
                StreamTarget::Veu(_) => self.veu.out.pop_front().map(Val::F),
            };
            let Some(val) = popped else {
                // the producing unit has not filled the output FIFO yet
                return Ok(Outcome::Stall(Stall::FifoEmpty));
            };
            // out-stream writes fault eagerly at issue: the datum was
            // produced, so the store is architecturally committed
            if let Err(e) = self.mem.check(scu.addr, scu.width.bytes(), true) {
                let stream = match scu.target {
                    StreamTarget::Fifo(f) => Some(f),
                    StreamTarget::Veu(_) => None,
                };
                return Err(self.access_fault(FaultUnit::Scu(i), stream, &e));
            }
            self.issue_mem(
                MemOp::Write {
                    addr: scu.addr,
                    width: scu.width,
                    val,
                },
                // stream-out writes bypass the L1 (invalidating any
                // cached copy) straight to the backing store
                &Access::stream(scu.addr, true, i, scu.stride),
            );
            self.stats.stream_writes += 1;
            self.stats.mem_writes += 1;
            self.perf.scus[i].elements_out += 1;
            self.perf.scus[i].unit.retired += 1;
            let s = &mut self.scus[i];
            s.addr += s.stride;
            if let Some(r) = s.remaining.as_mut() {
                *r -= 1;
            }
            Ok(Outcome::Active)
        }
    }

    /// One cycle of a channel-send SCU: pop one element from the target
    /// FIFO's input side and stage it toward the peer tile. No memory
    /// port is used; back-pressure is the channel credit count.
    fn send_step(&mut self, i: usize, scu: &Scu) -> Result<Outcome, SimError> {
        if scu.remaining == Some(0) {
            // Deactivation is what lets the machine halt (a send SCU
            // drains like an out-stream), so the state flip must never
            // be fast-forwarded over.
            self.scus[i].active = false;
            self.last_progress = self.cycle;
            return Ok(Outcome::Idle);
        }
        let dst = scu.peer as usize;
        if self.chan_credits[dst] == 0 {
            // receiver backlog at capacity: wait for the barrier to
            // return credits
            return Ok(Outcome::Stall(Stall::ChanFull));
        }
        let fifo = scu.fifo;
        if self.unit(fifo.class).ins[fifo.index as usize].owed > 0 {
            // Program-order-earlier scalar loads still feed this FIFO
            // and their data belongs to the execution unit, not the
            // channel — jNI early branch resolution configured this
            // send while the FEU is still consuming the loop body.
            // Draining now would steal the unit's operands.
            return Ok(Outcome::Stall(Stall::MemOrder));
        }
        let Some(slot) = self.unit_mut(fifo.class).ins[fifo.index as usize]
            .q
            .pop_front()
        else {
            // the feeding stream (or unit) has not produced yet
            return Ok(Outcome::Stall(Stall::FifoEmpty));
        };
        // Poison forwards through the channel with its provenance intact:
        // it faults only if some tile eventually consumes it.
        self.chan_tx.push(ChanMsg {
            dst,
            val: slot.val,
            poison: slot.poison,
        });
        self.chan_credits[dst] -= 1;
        self.perf.scus[i].elements_out += 1;
        self.perf.scus[i].unit.retired += 1;
        self.last_progress = self.cycle;
        let s = &mut self.scus[i];
        if let Some(r) = s.remaining.as_mut() {
            *r -= 1;
            if *r == 0 {
                s.active = false;
            }
        }
        Ok(Outcome::Active)
    }

    /// One cycle of a channel-receive SCU: pop the earliest due entry
    /// from the peer tile's channel queue into the target FIFO's input
    /// side. No memory traffic — the element was read (or computed) on
    /// the sending tile.
    fn recv_step(&mut self, i: usize, scu: &Scu) -> Result<Outcome, SimError> {
        let fifo = scu.fifo;
        if scu.remaining == Some(0) {
            // normally unreachable (the last delivery deactivates
            // eagerly); kept as a belt, and marked as progress so the
            // state flip is never fast-forwarded over
            self.scus[i].active = false;
            self.unit_mut(fifo.class).ins[fifo.index as usize].streamed = false;
            self.last_progress = self.cycle;
            return Ok(Outcome::Idle);
        }
        {
            let f = &self.unit(fifo.class).ins[fifo.index as usize];
            // Ordering: scalar loads issued before this receive was
            // configured are still in flight through the memory
            // system. Their data reaches the FIFO in issue order only
            // because the memory path is FIFO-ordered — the channel
            // path is not, so a push now would jump the queue and the
            // unit would pop channel data as load results. Hold until
            // every outstanding load has landed.
            if f.pending > 0 {
                return Ok(Outcome::Stall(Stall::MemOrder));
            }
            // back-pressure: respect the destination FIFO's capacity
            if f.q.len() >= self.config.fifo_capacity {
                return Ok(Outcome::Stall(Stall::FifoFull));
            }
        }
        let p = scu.peer as usize;
        let due = self.chan_rx[p].front().is_some_and(|e| e.due <= self.cycle);
        if !due {
            // nothing due from the peer: it may still be computing, may
            // be wedged, or (fault injection) may have been killed — the
            // global deadlock check at the epoch barrier attributes that
            return Ok(Outcome::Stall(Stall::ChanEmpty));
        }
        let e = self.chan_rx[p].pop_front().expect("checked non-empty");
        if e.poison.is_some() {
            self.perf.scus[i].poisoned += 1;
        }
        self.unit_mut(fifo.class).ins[fifo.index as usize]
            .q
            .push_back(Slot {
                val: e.val,
                poison: e.poison,
            });
        self.perf.scus[i].elements_in += 1;
        self.perf.scus[i].unit.retired += 1;
        self.last_progress = self.cycle;
        let s = &mut self.scus[i];
        if let Some(r) = s.remaining.as_mut() {
            *r -= 1;
            if *r == 0 {
                // last element delivered: release the FIFO immediately
                s.active = false;
                self.unit_mut(fifo.class).ins[fifo.index as usize].streamed = false;
            }
        }
        Ok(Outcome::Active)
    }

    /// One cycle of an index-fed gather SCU. The data side has priority:
    /// a buffered index becomes one `base + (idx << shift)` read into the
    /// target FIFO (a poisoned index, or a data address that fails the
    /// permission check, becomes a poisoned entry — FIFO order is
    /// preserved either way). Otherwise the SCU fetches the next index
    /// along its affine index stream into the internal ring; with fetches
    /// outstanding but nothing buffered it reports `IndexFifoEmpty`.
    fn gather_step(&mut self, i: usize, scu: &Scu) -> Result<Outcome, SimError> {
        if scu.remaining == Some(0) {
            // normally unreachable (the last data issue deactivates
            // eagerly); kept as a belt, and marked as progress so the
            // state flip is never fast-forwarded over
            self.scus[i].active = false;
            if let StreamTarget::Fifo(fifo) = scu.target {
                self.unit_mut(fifo.class).ins[fifo.index as usize].streamed = false;
            }
            self.last_progress = self.cycle;
            return Ok(Outcome::Idle);
        }
        let StreamTarget::Fifo(fifo) = scu.target else {
            unreachable!("gather streams always target a scalar FIFO");
        };
        let mut data_stall: Option<Stall> = None;
        if scu.ring_len > 0 {
            let f = &self.unit(fifo.class).ins[fifo.index as usize];
            if f.q.len() + f.pending >= self.config.fifo_capacity {
                data_stall = Some(Stall::FifoFull);
            } else {
                let (iv, idx_poisoned) = scu.idx_ring[scu.ring_head as usize];
                let daddr = scu.addr.wrapping_add(iv.wrapping_shl(scu.shift as u32));
                if !idx_poisoned
                    && (self.conflicts_with_pending_writes(daddr, scu.width)
                        || self.older_out_stream_overlaps(scu.seq, daddr, scu.width))
                {
                    data_stall = Some(Stall::MemOrder); // hold until the store lands
                } else {
                    let poison = if idx_poisoned {
                        // the index fetch itself faulted; the data entry
                        // inherits the deferred fault (there is no valid
                        // address to gather)
                        Some(Box::new(Poison {
                            addr: iv,
                            scu: i,
                            error: format!("gather index fetch at {iv:#x} faulted"),
                        }))
                    } else {
                        match self.mem.check(daddr, scu.width.bytes(), false) {
                            Ok(()) => None,
                            Err(e) => Some(Box::new(Poison {
                                addr: daddr,
                                scu: i,
                                error: e.to_string(),
                            })),
                        }
                    };
                    if poison.is_some() {
                        self.perf.scus[i].poisoned += 1;
                    }
                    self.unit_mut(fifo.class).ins[fifo.index as usize].pending += 1;
                    self.issue_mem(
                        MemOp::ReadFifo {
                            target: scu.target,
                            addr: daddr,
                            width: scu.width,
                            gen: scu.gen,
                            poison,
                        },
                        // data-dependent addresses defeat the stream
                        // buffers' stride prediction: gathers go straight
                        // to the backing store (and must not flush this
                        // SCU's own index-stream buffer)
                        &Access::gather(daddr, i),
                    );
                    self.stats.stream_reads += 1;
                    self.perf.scus[i].elements_in += 1;
                    self.perf.scus[i].unit.retired += 1;
                    let s = &mut self.scus[i];
                    s.ring_head = (s.ring_head + 1) % IDX_RING as u8;
                    s.ring_len -= 1;
                    if let Some(r) = s.remaining.as_mut() {
                        *r -= 1;
                        if *r == 0 {
                            s.active = false;
                            self.unit_mut(fifo.class).ins[fifo.index as usize].streamed = false;
                        }
                    }
                    return Ok(Outcome::Active);
                }
            }
        }
        // Index side: keep the ring primed while the data side is blocked
        // or has nothing buffered.
        if scu.idx_remaining != Some(0) && scu.ring_len + scu.idx_pending < IDX_RING as u8 {
            if self.conflicts_with_pending_writes(scu.iaddr, scu.iwidth)
                || self.older_out_stream_overlaps(scu.seq, scu.iaddr, scu.iwidth)
            {
                return Ok(Outcome::Stall(data_stall.unwrap_or(Stall::MemOrder)));
            }
            // an unmapped index address delivers a poison marker instead
            // of a value (deferred like any other gather fault)
            let poison = self
                .mem
                .check(scu.iaddr, scu.iwidth.bytes(), false)
                .is_err();
            self.issue_mem(
                MemOp::ReadIndex {
                    scu: i,
                    seq: scu.seq,
                    addr: scu.iaddr,
                    width: scu.iwidth,
                    poison,
                },
                // the index stream is affine: it prefetches through its
                // stream buffer like any in-stream
                &Access::stream(scu.iaddr, false, i, scu.istride),
            );
            self.stats.stream_reads += 1;
            self.perf.scus[i].index_fetches += 1;
            self.perf.scus[i].unit.retired += 1;
            let s = &mut self.scus[i];
            s.idx_pending += 1;
            s.iaddr += s.istride;
            if let Some(r) = s.idx_remaining.as_mut() {
                *r -= 1;
            }
            return Ok(Outcome::Active);
        }
        if let Some(s) = data_stall {
            return Ok(Outcome::Stall(s));
        }
        Ok(Outcome::Stall(Stall::IndexFifoEmpty))
    }

    /// One cycle of an index-fed scatter SCU: pop one value from the
    /// unit's output FIFO and one buffered index, and write
    /// `base + (idx << shift)`. Scatter stores are architectural, so
    /// every fault (index fetch or data write) is raised eagerly; a
    /// scatter is never speculative.
    fn scatter_step(&mut self, i: usize, scu: &Scu) -> Result<Outcome, SimError> {
        if scu.remaining == Some(0) {
            // normally unreachable (the last store deactivates eagerly);
            // kept as a belt, and marked as progress so the state flip
            // is never fast-forwarded over
            self.scus[i].active = false;
            self.last_progress = self.cycle;
            return Ok(Outcome::Idle);
        }
        let StreamTarget::Fifo(fifo) = scu.target else {
            unreachable!("scatter streams always drain a scalar FIFO");
        };
        let mut data_stall: Option<Stall> = None;
        if scu.ring_len > 0 {
            if self.unit(fifo.class).out.is_empty() {
                // the producing unit has not filled the output FIFO yet
                data_stall = Some(Stall::FifoEmpty);
            } else {
                let (iv, _) = scu.idx_ring[scu.ring_head as usize];
                let daddr = scu.addr.wrapping_add(iv.wrapping_shl(scu.shift as u32));
                if let Err(e) = self.mem.check(daddr, scu.width.bytes(), true) {
                    return Err(self.access_fault(FaultUnit::Scu(i), Some(fifo), &e));
                }
                let val = self
                    .unit_mut(fifo.class)
                    .out
                    .pop_front()
                    .expect("checked non-empty");
                self.issue_mem(
                    MemOp::Write {
                        addr: daddr,
                        width: scu.width,
                        val,
                    },
                    &Access::stream(daddr, true, i, 0),
                );
                self.stats.stream_writes += 1;
                self.stats.mem_writes += 1;
                self.perf.scus[i].elements_out += 1;
                self.perf.scus[i].unit.retired += 1;
                let s = &mut self.scus[i];
                s.ring_head = (s.ring_head + 1) % IDX_RING as u8;
                s.ring_len -= 1;
                if let Some(r) = s.remaining.as_mut() {
                    *r -= 1;
                    if *r == 0 {
                        // the last store is out: the declared span no
                        // longer blocks younger streams (the in-flight
                        // writes still order through the pending-write
                        // set until they land)
                        s.active = false;
                    }
                }
                return Ok(Outcome::Active);
            }
        }
        if scu.idx_remaining != Some(0) && scu.ring_len + scu.idx_pending < IDX_RING as u8 {
            if self.conflicts_with_pending_writes(scu.iaddr, scu.iwidth)
                || self.older_out_stream_overlaps(scu.seq, scu.iaddr, scu.iwidth)
            {
                return Ok(Outcome::Stall(data_stall.unwrap_or(Stall::MemOrder)));
            }
            if let Err(e) = self.mem.check(scu.iaddr, scu.iwidth.bytes(), false) {
                return Err(self.access_fault(FaultUnit::Scu(i), Some(fifo), &e));
            }
            self.issue_mem(
                MemOp::ReadIndex {
                    scu: i,
                    seq: scu.seq,
                    addr: scu.iaddr,
                    width: scu.iwidth,
                    poison: false,
                },
                &Access::stream(scu.iaddr, false, i, scu.istride),
            );
            self.stats.stream_reads += 1;
            self.perf.scus[i].index_fetches += 1;
            self.perf.scus[i].unit.retired += 1;
            let s = &mut self.scus[i];
            s.idx_pending += 1;
            s.iaddr += s.istride;
            if let Some(r) = s.idx_remaining.as_mut() {
                *r -= 1;
            }
            return Ok(Outcome::Active);
        }
        if let Some(s) = data_stall {
            return Ok(Outcome::Stall(s));
        }
        Ok(Outcome::Stall(Stall::IndexFifoEmpty))
    }

    // ---- vector execution unit ----

    pub(crate) fn veu_step(&mut self) -> Result<(), SimError> {
        let outcome = self.veu_step_inner()?;
        self.perf.veu.record(outcome);
        self.last_outcomes.veu = outcome;
        Ok(())
    }

    fn veu_step_inner(&mut self) -> Result<Outcome, SimError> {
        if self.veu.busy > 0 {
            self.veu.busy -= 1;
            self.last_progress = self.cycle;
            return Ok(Outcome::Active);
        }
        let Some(&idx) = self.veu.iq.front() else {
            return Ok(Outcome::Idle);
        };
        let head: &'m InstKind = self.prog.insts[idx as usize].kind;
        let n = self.config.veu_length;
        let lanes = self.config.veu_lanes.max(1);
        let op_cycles = (n as u64).div_ceil(lanes as u64);
        match head {
            InstKind::VLoad { vreg, port } => {
                let p = *port as usize;
                if self.veu.ports[p].len() < n {
                    return Ok(Outcome::Stall(Stall::FifoEmpty)); // wait for a full group
                }
                for k in 0..n {
                    let v = self.veu.ports[p].pop_front().expect("checked length");
                    self.veu.vregs[*vreg as usize][k] = v;
                }
                self.veu.busy = op_cycles;
            }
            InstKind::VStore { vreg } => {
                if self.veu.out.len() + n > 4 * n {
                    return Ok(Outcome::Stall(Stall::OutFull)); // output FIFO full
                }
                for k in 0..n {
                    let v = self.veu.vregs[*vreg as usize][k];
                    self.veu.out.push_back(v);
                }
                self.veu.busy = op_cycles;
            }
            InstKind::VecBin { op, dst, a, b } => {
                for k in 0..n {
                    let x = self.veu.vregs[*a as usize][k];
                    let y = self.veu.vregs[*b as usize][k];
                    self.veu.vregs[*dst as usize][k] = match op {
                        BinOp::FAdd => x + y,
                        BinOp::FSub => x - y,
                        BinOp::FMul => x * y,
                        BinOp::FDiv => x / y,
                        other => {
                            return Err(SimError::BadProgram(format!(
                                "vector operator {other} is not floating point"
                            )))
                        }
                    };
                }
                self.veu.busy = op_cycles;
            }
            InstKind::VecBroadcast { dst, value } => {
                for k in 0..n {
                    self.veu.vregs[*dst as usize][k] = *value;
                }
                self.veu.busy = 1;
            }
            other => {
                return Err(SimError::BadProgram(format!(
                    "instruction reached the VEU: {other}"
                )))
            }
        }
        self.record("VEU", head);
        self.veu.iq.pop_front();
        self.stats.insts_feu += 1; // counted with the FP work
        self.perf.veu.retired += 1;
        self.last_progress = self.cycle;
        Ok(Outcome::Active)
    }

    // ---- operand evaluation ----

    pub(crate) fn sym_addr(&self, sym: SymId) -> Result<i64, SimError> {
        self.mem.addresses.get(&sym).copied().ok_or_else(|| {
            SimError::BadProgram(format!(
                "address taken of non-data symbol {}",
                self.module.sym_name(sym)
            ))
        })
    }

    pub(crate) fn read_operand(&mut self, class: RegClass, op: Operand) -> Result<Val, SimError> {
        match op {
            Operand::Imm(v) => Ok(Val::I(v)),
            Operand::FImm(v) => Ok(Val::F(v)),
            Operand::Reg(r) => {
                if r.class != class {
                    return Err(SimError::BadProgram(format!(
                        "cross-unit register read of {r} on the {class} unit"
                    )));
                }
                let n = r.phys_num().expect("physical registers only") as usize;
                if n == 31 {
                    return Ok(match class {
                        RegClass::Int => Val::I(0),
                        RegClass::Flt => Val::F(0.0),
                    });
                }
                if n <= 1 {
                    // dequeue (availability pre-checked by fifo_ready)
                    return self.pop_fifo(class, n);
                }
                Ok(self.unit(class).regs[n])
            }
        }
    }

    /// Dequeue one datum from input FIFO `n` of the `class` unit. The
    /// caller must have established availability (`fifo_ready`, or the
    /// decoded tables' precomputed demand pair); a deferred stream fault
    /// travelling in the slot surfaces here, at consumption.
    #[inline]
    pub(crate) fn pop_fifo(&mut self, class: RegClass, n: usize) -> Result<Val, SimError> {
        self.unit_mut(class).ins[n].owed = self.unit(class).ins[n].owed.saturating_sub(1);
        let Some(slot) = self.unit_mut(class).ins[n].q.pop_front() else {
            return Err(SimError::Deadlock {
                cycle: self.cycle,
                detail: format!("dequeue from empty FIFO {}{n}", class.prefix()),
                state: Box::new(self.snapshot()),
            });
        };
        if let Some(p) = slot.poison {
            // the deferred stream fault surfaces only here, at
            // consumption — an unconsumed over-fetch is harmless
            let unit = match class {
                RegClass::Int => FaultUnit::Ieu,
                RegClass::Flt => FaultUnit::Feu,
            };
            return Err(self.fault(
                unit,
                FaultKind::PoisonConsumed,
                Some(p.addr),
                Some(DataFifo::new(class, n as u8)),
                format!(
                    "consumed a poisoned stream datum prefetched by SCU {}: {}",
                    p.scu, p.error
                ),
            ));
        }
        Ok(slot.val)
    }

    pub(crate) fn write_reg(&mut self, class: RegClass, r: Reg, v: Val) -> Result<(), SimError> {
        if r.class != class {
            return Err(SimError::BadProgram(format!(
                "cross-unit register write of {r} on the {class} unit"
            )));
        }
        let n = r.phys_num().expect("physical registers only") as usize;
        match n {
            31 => Ok(()), // writes to the zero register are discarded
            0 => {
                self.unit_mut(class).out.push_back(v);
                Ok(())
            }
            1 => Err(SimError::BadProgram(
                "register 1 is read-only FIFO-mapped".into(),
            )),
            _ => {
                self.unit_mut(class).regs[n] = v;
                Ok(())
            }
        }
    }

    /// Evaluate an expression without side effects; `None` if it reads a
    /// FIFO (whose dequeue cannot be previewed).
    fn eval_expr_pure(&self, class: RegClass, e: &RExpr) -> Option<i64> {
        if e.regs().any(|r| r.is_fifo()) {
            return None;
        }
        let read = |op: Operand| -> Option<i64> {
            match op {
                Operand::Imm(v) => Some(v),
                Operand::FImm(_) => None,
                Operand::Reg(r) => {
                    if r.class != class {
                        return None;
                    }
                    let n = r.phys_num()? as usize;
                    if n == 31 {
                        Some(0)
                    } else {
                        Some(self.unit(class).regs[n].as_i())
                    }
                }
            }
        };
        match e {
            RExpr::Op(a) => read(*a),
            RExpr::Un(..) => None,
            RExpr::Bin(op, a, b) => op.fold_int(read(*a)?, read(*b)?),
            RExpr::Dual {
                inner,
                a,
                b,
                outer,
                c,
            } => outer.fold_int(inner.fold_int(read(*a)?, read(*b)?)?, read(*c)?),
        }
    }

    fn eval_expr(&mut self, class: RegClass, e: &RExpr) -> Result<Val, SimError> {
        match e {
            RExpr::Op(a) => self.read_operand(class, *a),
            RExpr::Un(op, a) => {
                let v = self.read_operand(class, *a)?;
                self.eval_un(*op, v)
            }
            RExpr::Bin(op, a, b) => {
                let va = self.read_operand(class, *a)?;
                let vb = self.read_operand(class, *b)?;
                self.eval_bin(class, *op, va, vb)
            }
            RExpr::Dual {
                inner,
                a,
                b,
                outer,
                c,
            } => {
                let va = self.read_operand(class, *a)?;
                let vb = self.read_operand(class, *b)?;
                let vab = self.eval_bin(class, *inner, va, vb)?;
                let vc = self.read_operand(class, *c)?;
                self.eval_bin(class, *outer, vab, vc)
            }
        }
    }

    pub(crate) fn eval_un(&self, op: UnOp, v: Val) -> Result<Val, SimError> {
        Ok(match op {
            UnOp::Neg => Val::I(v.as_i().wrapping_neg()),
            UnOp::Not => Val::I(!v.as_i()),
            UnOp::FNeg => Val::F(-v.as_f()),
            UnOp::IntToFlt => Val::F(v.as_i() as f64),
            UnOp::FltToInt => Val::I(v.as_f() as i64),
        })
    }

    pub(crate) fn eval_bin(
        &self,
        class: RegClass,
        op: BinOp,
        a: Val,
        b: Val,
    ) -> Result<Val, SimError> {
        if op.is_float() {
            let (x, y) = (a.as_f(), b.as_f());
            return Ok(Val::F(match op {
                BinOp::FAdd => x + y,
                BinOp::FSub => x - y,
                BinOp::FMul => x * y,
                BinOp::FDiv => x / y,
                _ => unreachable!(),
            }));
        }
        let (x, y) = (a.as_i(), b.as_i());
        if matches!(op, BinOp::Div | BinOp::Rem) && y == 0 {
            let unit = match class {
                RegClass::Int => FaultUnit::Ieu,
                RegClass::Flt => FaultUnit::Feu,
            };
            return Err(self.fault(
                unit,
                FaultKind::DivideByZero,
                None,
                None,
                "integer division by zero".into(),
            ));
        }
        Ok(Val::I(op.fold_int(x, y).expect("integer operator")))
    }

    // ---- instruction fetch unit ----

    /// Fetch and dispatch. Control transfers are free (bounded per cycle);
    /// one instruction is dispatched to a unit queue per cycle.
    fn ifu_step(&mut self) -> Result<(), SimError> {
        let before = self.stats.insts_ifu;
        let outcome = self.ifu_step_inner()?;
        // control instructions the IFU itself executed this cycle
        self.perf.ifu.retired += self.stats.insts_ifu - before;
        self.perf.ifu.record(outcome);
        self.last_outcomes.ifu = outcome;
        Ok(())
    }

    /// One IFU cycle, attributing it: a cycle that performed any transfer,
    /// dispatch or IFU-executed instruction is active; otherwise the
    /// reason the fetch could not proceed is named.
    fn ifu_step_inner(&mut self) -> Result<Outcome, SimError> {
        if self.cycle < self.ifu_hold {
            self.stats.ifu_stalls += 1;
            return Ok(Outcome::Stall(Stall::Sync));
        }
        let module = self.module;
        let mut transfers = 0;
        // a stall after free transfers still did useful work this cycle
        let stall_after = |transfers: i32, s: Stall| {
            if transfers > 0 {
                Outcome::Active
            } else {
                Outcome::Stall(s)
            }
        };
        loop {
            let Some(pc) = self.pc else {
                return Ok(if transfers > 0 {
                    Outcome::Active
                } else {
                    Outcome::Idle
                });
            };
            let func = &module.functions[pc.func];
            if pc.block >= func.blocks.len() {
                return Err(SimError::BadProgram(format!(
                    "control fell off the end of function {}",
                    func.name
                )));
            }
            let block = &func.blocks[pc.block];
            if pc.inst >= block.insts.len() {
                // implicit fallthrough to the next block in layout order
                self.pc = Some(Pc {
                    func: pc.func,
                    block: pc.block + 1,
                    inst: 0,
                });
                continue;
            }
            // `self.module` outlives `self`, so the head can be inspected
            // by reference; only the dispatch arms clone (the clone used
            // to happen every fetch attempt, including every stall).
            let kind: &'m InstKind = &block.insts[pc.inst].kind;
            let label_of = |l: wm_ir::Label| -> usize { func.block_index(l) };
            match kind {
                InstKind::Nop => {
                    self.advance();
                }
                InstKind::Jump { target } => {
                    let target = *target;
                    self.record("IFU", &InstKind::Jump { target });
                    let b = label_of(target);
                    self.pc = Some(Pc {
                        func: pc.func,
                        block: b,
                        inst: 0,
                    });
                    self.stats.insts_ifu += 1;
                    self.last_progress = self.cycle;
                    transfers += 1;
                    if transfers > 16 {
                        return Ok(Outcome::Active); // runaway control; consume the cycle
                    }
                }
                InstKind::Branch {
                    class,
                    when,
                    target,
                    els,
                } => {
                    let Some(cond) = self.unit_mut(*class).cc.pop_front() else {
                        self.stats.ifu_stalls += 1;
                        // stall until the compare executes
                        return Ok(stall_after(transfers, Stall::CcEmpty));
                    };
                    let b = label_of(if cond == *when { *target } else { *els });
                    self.pc = Some(Pc {
                        func: pc.func,
                        block: b,
                        inst: 0,
                    });
                    self.stats.insts_ifu += 1;
                    self.last_progress = self.cycle;
                    transfers += 1;
                    if transfers > 16 {
                        return Ok(Outcome::Active);
                    }
                }
                InstKind::BranchStream { fifo, target, els } => {
                    let Some(count) = self.dispatch.get_mut(fifo) else {
                        // the stream instruction has not executed yet
                        self.stats.ifu_stalls += 1;
                        return Ok(stall_after(transfers, Stall::StreamWait));
                    };
                    *count -= 1;
                    let taken = *count > 0;
                    if !taken {
                        self.dispatch.remove(fifo);
                    }
                    let b = label_of(if taken { *target } else { *els });
                    self.pc = Some(Pc {
                        func: pc.func,
                        block: b,
                        inst: 0,
                    });
                    self.stats.insts_ifu += 1;
                    self.last_progress = self.cycle;
                    transfers += 1;
                    if transfers > 16 {
                        return Ok(Outcome::Active);
                    }
                }
                InstKind::Call { callee, .. } => {
                    let callee = *callee;
                    match &self.module.global(callee).kind {
                        GlobalKind::Func(fi) => {
                            let fi = *fi;
                            self.ret_stack.push(Pc {
                                func: pc.func,
                                block: pc.block,
                                inst: pc.inst + 1,
                            });
                            self.pc = Some(Pc {
                                func: fi,
                                block: 0,
                                inst: 0,
                            });
                            self.stats.insts_ifu += 1;
                            self.stats.calls += 1;
                            self.last_progress = self.cycle;
                            return Ok(Outcome::Active); // calls consume the fetch slot
                        }
                        GlobalKind::Builtin => {
                            // builtins read register state directly: the
                            // units must be synchronized first
                            if !self.quiescent() {
                                self.stats.ifu_stalls += 1;
                                return Ok(stall_after(transfers, Stall::Sync));
                            }
                            let name = self.module.sym_name(callee).to_string();
                            self.exec_builtin(&name)?;
                            self.ifu_hold = self.cycle + self.config.io_latency;
                            self.advance();
                            self.stats.insts_ifu += 1;
                            self.stats.calls += 1;
                            self.last_progress = self.cycle;
                            return Ok(Outcome::Active);
                        }
                        GlobalKind::Data { .. } => {
                            return Err(SimError::BadProgram(format!(
                                "call to data symbol {}",
                                self.module.sym_name(callee)
                            )))
                        }
                    }
                }
                InstKind::Ret => {
                    self.pc = self.ret_stack.pop();
                    self.stats.insts_ifu += 1;
                    self.last_progress = self.cycle;
                    return Ok(Outcome::Active);
                }
                // cross-unit conversions are executed by the IFU after
                // synchronizing the execution units
                InstKind::Assign {
                    dst,
                    src: RExpr::Un(op @ (UnOp::IntToFlt | UnOp::FltToInt), a),
                } => {
                    if !self.quiescent() {
                        self.stats.ifu_stalls += 1;
                        return Ok(stall_after(transfers, Stall::Sync));
                    }
                    let (op, a, dst) = (*op, *a, *dst);
                    let src_class = if op == UnOp::IntToFlt {
                        RegClass::Int
                    } else {
                        RegClass::Flt
                    };
                    // a forwarded FIFO dequeue must wait for its datum
                    if let Operand::Reg(r) = a {
                        if r.is_fifo()
                            && self.unit(src_class).ins[r.phys_num().unwrap() as usize]
                                .q
                                .is_empty()
                        {
                            self.stats.ifu_stalls += 1;
                            return Ok(stall_after(transfers, Stall::FifoEmpty));
                        }
                    }
                    let v = self.read_operand(src_class, a)?;
                    let v = self.eval_un(op, v)?;
                    self.write_reg(dst.class, dst, v)?;
                    self.advance();
                    self.stats.insts_ifu += 1;
                    self.last_progress = self.cycle;
                    return Ok(Outcome::Active);
                }
                InstKind::BranchVec { target, els } => {
                    let Some(count) = self.dispatch_vec.as_mut() else {
                        self.stats.ifu_stalls += 1;
                        return Ok(stall_after(transfers, Stall::StreamWait));
                    };
                    *count -= 1;
                    let taken = *count > 0;
                    if !taken {
                        self.dispatch_vec = None;
                    }
                    let b = label_of(if taken { *target } else { *els });
                    self.pc = Some(Pc {
                        func: pc.func,
                        block: b,
                        inst: 0,
                    });
                    self.stats.insts_ifu += 1;
                    self.last_progress = self.cycle;
                    transfers += 1;
                    if transfers > 16 {
                        return Ok(Outcome::Active);
                    }
                }
                InstKind::VLoad { .. }
                | InstKind::VStore { .. }
                | InstKind::VecBin { .. }
                | InstKind::VecBroadcast { .. } => {
                    if self.veu.iq.len() >= self.config.iq_capacity {
                        self.stats.ifu_stalls += 1;
                        return Ok(stall_after(transfers, Stall::IqFull));
                    }
                    let idx = self.prog.index_of(pc.func, pc.block, pc.inst);
                    self.veu.iq.push_back(idx);
                    self.advance();
                    self.last_progress = self.cycle;
                    return Ok(Outcome::Active);
                }
                // everything else is dispatched to an execution unit
                other => {
                    let class = dispatch_class(other);
                    if self.unit(class).iq.len() >= self.config.iq_capacity {
                        self.stats.ifu_stalls += 1;
                        return Ok(stall_after(transfers, Stall::IqFull));
                    }
                    let idx = self.prog.index_of(pc.func, pc.block, pc.inst);
                    self.unit_mut(class).iq.push_back(idx);
                    self.advance();
                    self.last_progress = self.cycle;
                    return Ok(Outcome::Active);
                }
            }
        }
    }

    pub(crate) fn advance(&mut self) {
        if let Some(pc) = self.pc.as_mut() {
            pc.inst += 1;
        }
    }

    /// Are the execution units drained (for IFU-synchronized operations)?
    /// Register state is final once both instruction queues are empty;
    /// outstanding memory traffic does not affect registers, so the IFU
    /// need not wait for it.
    pub(crate) fn quiescent(&self) -> bool {
        self.ieu.iq.is_empty() && self.feu.iq.is_empty()
    }

    pub(crate) fn exec_builtin(&mut self, name: &str) -> Result<(), SimError> {
        match name {
            "putchar" => {
                let c = self.ieu.regs[2].as_i();
                self.output.push(c as u8);
                Ok(())
            }
            other => Err(SimError::BadProgram(format!("unknown builtin {other}"))),
        }
    }
}

/// How many entries `kind` dequeues from each input FIFO of `class`.
/// Does `kind` read physical register `phys` of `class`?
///
/// Allocation-free equivalent of `kind.uses().contains(..)` for the
/// per-cycle interlock check: the common instruction kinds are matched
/// directly so no `Vec` of registers is built on the hot path.
fn reads_phys(kind: &InstKind, class: RegClass, phys: u8) -> bool {
    let hit = |r: Reg| r.class == class && r.phys_num() == Some(phys);
    match kind {
        InstKind::Assign { src, .. } => src.regs().any(hit),
        InstKind::Compare { a, b, .. } => a.reg().is_some_and(hit) || b.reg().is_some_and(hit),
        InstKind::WLoad { addr, .. } | InstKind::WStore { addr, .. } => addr.regs().any(hit),
        other => other.uses().into_iter().any(hit),
    }
}

pub(crate) fn fifo_need(class: RegClass, kind: &InstKind) -> [usize; 2] {
    let mut need = [0usize; 2];
    // This runs for every queued instruction every cycle: keep it
    // allocation-free (a `Vec` of expressions here shows up in profiles).
    let expr: Option<&RExpr> = match kind {
        InstKind::Assign { src, .. } => Some(src),
        InstKind::WLoad { addr, .. } | InstKind::WStore { addr, .. } => Some(addr),
        _ => None,
    };
    if let Some(e) = expr {
        for r in e.regs() {
            if r.class == class && r.is_fifo() {
                need[r.phys_num().unwrap() as usize] += 1;
            }
        }
    }
    // operands of Compare may also dequeue
    if let InstKind::Compare { a, b, .. } = kind {
        for op in [a, b] {
            if let Operand::Reg(r) = op {
                if r.class == class && r.is_fifo() {
                    need[r.phys_num().unwrap() as usize] += 1;
                }
            }
        }
    }
    // a scalar channel send may drain a FIFO operand
    if let InstKind::ChanSend {
        src: Operand::Reg(r),
        ..
    } = kind
    {
        if r.class == class && r.is_fifo() {
            need[r.phys_num().unwrap() as usize] += 1;
        }
    }
    need
}

/// Fill in the faulting instruction's listing text when the fault lacks it.
pub(crate) fn attach_inst(mut e: SimError, head: &InstKind) -> SimError {
    if let SimError::Fault { fault, .. } = &mut e {
        if fault.inst.is_none() {
            fault.inst = Some(head.to_string());
        }
    }
    e
}

/// Deterministic per-request latency jitter: xorshift64* over the seed
/// mixed with the request number, so runs with equal seeds are identical.
fn jitter(seed: u64, n: u64) -> u64 {
    let mut x = seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    if x == 0 {
        x = 0x9E37_79B9_7F4A_7C15;
    }
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Which unit executes a dispatched (non-control) instruction.
pub(crate) fn dispatch_class(kind: &InstKind) -> RegClass {
    match kind {
        InstKind::Assign { dst, .. } => dst.class,
        InstKind::Compare { class, .. } => *class,
        // "All simple load and store instructions (for both integer and
        // floating-point data) are executed by the IEU" — as are the
        // stream-configuration instructions and address formation.
        InstKind::LoadAddr { .. }
        | InstKind::WLoad { .. }
        | InstKind::WStore { .. }
        | InstKind::StreamIn { .. }
        | InstKind::StreamOut { .. }
        | InstKind::StreamGather { .. }
        | InstKind::StreamScatter { .. }
        | InstKind::VStreamIn { .. }
        | InstKind::VStreamOut { .. }
        | InstKind::StreamStop { .. }
        | InstKind::StreamSend { .. }
        | InstKind::StreamRecv { .. } => RegClass::Int,
        InstKind::ChanSend { class, .. } => *class,
        InstKind::ChanRecv { dst, .. } => dst.class,
        other => unreachable!("not a unit instruction: {other}"),
    }
}
