//! The compiled stepping engine: threaded dispatch over pre-decoded
//! tables.
//!
//! [`WmMachine::step_compiled`] simulates one cycle like the reference
//! stepper, but the per-unit issue path executes [`DecodedInst`] records
//! instead of interpreting [`wm_ir::InstKind`]: the FIFO demand and
//! interlock register set are precomputed bit tests, operands are flat
//! slots, and the instruction's behavior is an indirect call through its
//! exec function pointer — no match on the instruction kind in the hot
//! loop. The IFU walks the same tables with branch targets and call
//! destinations pre-resolved.
//!
//! Bit-identity with the cycle/event engines is structural:
//!
//! * every exec handler mirrors the corresponding interpreter arm
//!   check-for-check, in the same order, mutating the same state and
//!   counters;
//! * anything the decode tables cannot express exactly (stream
//!   configuration, FIFO-mapped register corner cases, cross-class
//!   operands, unresolvable symbols) carries the interpreter fallback
//!   handler, which calls [`WmMachine::exec_unit_head`] on the original
//!   instruction;
//! * FIFO reads delegate to [`WmMachine::read_operand`], so dequeue,
//!   poison-consumption and deadlock semantics are literally the same
//!   code;
//! * the shared per-cycle phases (memory delivery, VEU, store drain,
//!   SCUs, perf sampling) and the fast-forward tail are the same
//!   functions the other engines run.
//!
//! `tests/engine_equiv.rs` and the differential fuzzer enforce full
//! `Stats`/`SimError` equality across all three engines.

use wm_ir::{Operand, RegClass, UnOp};

use crate::decode::{DecExpr, DecodedInst, Dst, IfuOp, Payload, Src};
use crate::fault::FaultUnit;
use crate::machine::{
    attach_inst, Exec, MemOp, Pc, PendingStore, SimError, StreamTarget, Val, WmMachine,
};
use crate::mem::Access;
use crate::stats::{Outcome, Stall};

impl<'m> WmMachine<'m> {
    /// Advance one cycle with the pre-decoded dispatch tables, then
    /// fast-forward over any all-stalled span (the same tail the event
    /// engine uses).
    ///
    /// Behaves exactly like [`WmMachine::step`] — same cycle counts, same
    /// counters, same faults — but the scalar-unit and IFU hot paths run
    /// the decoded tables instead of interpreting the IR.
    ///
    /// # Errors
    ///
    /// Exactly the errors [`WmMachine::step`] reports, at the same cycle.
    pub fn step_compiled(&mut self) -> Result<(), SimError> {
        self.cycle += 1;
        self.ports_used = 0;
        self.deliver_memory()?;
        self.unit_step_c(RegClass::Int)?;
        self.unit_step_c(RegClass::Flt)?;
        self.veu_step()?;
        self.drain_stores()?;
        self.scu_step()?;
        self.ifu_step_c()?;
        self.sample_perf();
        self.fast_forward();
        Ok(())
    }

    /// Decoded counterpart of the interpreter's per-unit step: identical
    /// outcome recording, decoded issue path.
    fn unit_step_c(&mut self, class: RegClass) -> Result<(), SimError> {
        let outcome = self.unit_step_c_inner(class)?;
        match class {
            RegClass::Int => {
                self.perf.ieu.record(outcome);
                self.last_outcomes.ieu = outcome;
            }
            RegClass::Flt => {
                self.perf.feu.record(outcome);
                self.last_outcomes.feu = outcome;
            }
        }
        Ok(())
    }

    fn unit_step_c_inner(&mut self, class: RegClass) -> Result<Outcome, SimError> {
        if self.unit(class).busy > 0 {
            self.unit_mut(class).busy -= 1;
            return Ok(Outcome::Active);
        }
        // `DecodedInst` is `Copy`: lift it out of the table so the exec
        // handler can take `&mut self`.
        let d: DecodedInst<'m> = {
            let u = self.unit(class);
            let Some(&idx) = u.iq.front() else {
                return Ok(Outcome::Idle);
            };
            let d = self.prog.insts[idx as usize];
            // paired-ALU dependency interlock, as a precomputed bit test
            if let Some(prev) = u.prev_dst {
                if u.prev_cycle + 1 == self.cycle && d.read_mask & (1u32 << prev) != 0 {
                    return Ok(Outcome::Stall(Stall::Interlock)); // one-cycle bubble
                }
            }
            // FIFO data availability, as a precomputed demand pair. A
            // latched load already performed its dequeues when its address
            // was computed; its retry must not wait on the FIFO it drained.
            if u.latched_load.is_none()
                && ((d.need[0] as usize) > u.ins[0].q.len()
                    || (d.need[1] as usize) > u.ins[1].q.len())
            {
                return Ok(Outcome::Stall(Stall::FifoEmpty));
            }
            d
        };
        let ex = (d.exec)(self, &d);
        let executed_dst = match ex {
            Ok(Exec::Retired(dst)) => dst,
            Ok(Exec::Stall(s)) => return Ok(Outcome::Stall(s)), // retry next cycle
            Err(e) => return Err(attach_inst(e, d.kind)),
        };
        self.record(
            match class {
                RegClass::Int => "IEU",
                RegClass::Flt => "FEU",
            },
            d.kind,
        );
        let now = self.cycle;
        let u = self.unit_mut(class);
        u.iq.pop_front();
        u.prev_dst = executed_dst;
        u.prev_cycle = now;
        match class {
            RegClass::Int => {
                self.stats.insts_ieu += 1;
                self.perf.ieu.retired += 1;
            }
            RegClass::Flt => {
                self.stats.insts_feu += 1;
                self.perf.feu.retired += 1;
            }
        }
        self.last_progress = self.cycle;
        Ok(Outcome::Active)
    }

    /// Decoded counterpart of the interpreter's IFU step.
    fn ifu_step_c(&mut self) -> Result<(), SimError> {
        let before = self.stats.insts_ifu;
        let outcome = self.ifu_step_c_inner()?;
        self.perf.ifu.retired += self.stats.insts_ifu - before;
        self.perf.ifu.record(outcome);
        self.last_outcomes.ifu = outcome;
        Ok(())
    }

    /// One IFU cycle over the decoded tables, mirroring the interpreter's
    /// fetch loop arm-for-arm (same stall reasons, same free-transfer
    /// accounting, same runaway-control cap).
    fn ifu_step_c_inner(&mut self) -> Result<Outcome, SimError> {
        if self.cycle < self.ifu_hold {
            self.stats.ifu_stalls += 1;
            return Ok(Outcome::Stall(Stall::Sync));
        }
        let mut transfers = 0;
        // a stall after free transfers still did useful work this cycle
        let stall_after = |transfers: i32, s: Stall| {
            if transfers > 0 {
                Outcome::Active
            } else {
                Outcome::Stall(s)
            }
        };
        loop {
            let Some(pc) = self.pc else {
                return Ok(if transfers > 0 {
                    Outcome::Active
                } else {
                    Outcome::Idle
                });
            };
            let blocks = &self.prog.funcs[pc.func].blocks;
            if pc.block >= blocks.len() {
                return Err(SimError::BadProgram(format!(
                    "control fell off the end of function {}",
                    self.module.functions[pc.func].name
                )));
            }
            let (start, len) = blocks[pc.block];
            if pc.inst >= len as usize {
                // implicit fallthrough to the next block in layout order
                self.pc = Some(Pc {
                    func: pc.func,
                    block: pc.block + 1,
                    inst: 0,
                });
                continue;
            }
            let idx = start + pc.inst as u32;
            let d = self.prog.insts[idx as usize];
            match d.ifu {
                IfuOp::Nop => {
                    self.advance();
                }
                IfuOp::Jump { block } => {
                    self.record("IFU", d.kind);
                    self.pc = Some(Pc {
                        func: pc.func,
                        block: block as usize,
                        inst: 0,
                    });
                    self.stats.insts_ifu += 1;
                    self.last_progress = self.cycle;
                    transfers += 1;
                    if transfers > 16 {
                        return Ok(Outcome::Active); // runaway control; consume the cycle
                    }
                }
                IfuOp::Branch { class, when, t, e } => {
                    let Some(cond) = self.unit_mut(class).cc.pop_front() else {
                        self.stats.ifu_stalls += 1;
                        // stall until the compare executes
                        return Ok(stall_after(transfers, Stall::CcEmpty));
                    };
                    let b = if cond == when { t } else { e };
                    self.pc = Some(Pc {
                        func: pc.func,
                        block: b as usize,
                        inst: 0,
                    });
                    self.stats.insts_ifu += 1;
                    self.last_progress = self.cycle;
                    transfers += 1;
                    if transfers > 16 {
                        return Ok(Outcome::Active);
                    }
                }
                IfuOp::BranchStream { fifo, t, e } => {
                    let Some(count) = self.dispatch.get_mut(&fifo) else {
                        // the stream instruction has not executed yet
                        self.stats.ifu_stalls += 1;
                        return Ok(stall_after(transfers, Stall::StreamWait));
                    };
                    *count -= 1;
                    let taken = *count > 0;
                    if !taken {
                        self.dispatch.remove(&fifo);
                    }
                    let b = if taken { t } else { e };
                    self.pc = Some(Pc {
                        func: pc.func,
                        block: b as usize,
                        inst: 0,
                    });
                    self.stats.insts_ifu += 1;
                    self.last_progress = self.cycle;
                    transfers += 1;
                    if transfers > 16 {
                        return Ok(Outcome::Active);
                    }
                }
                IfuOp::BranchVec { t, e } => {
                    let Some(count) = self.dispatch_vec.as_mut() else {
                        self.stats.ifu_stalls += 1;
                        return Ok(stall_after(transfers, Stall::StreamWait));
                    };
                    *count -= 1;
                    let taken = *count > 0;
                    if !taken {
                        self.dispatch_vec = None;
                    }
                    let b = if taken { t } else { e };
                    self.pc = Some(Pc {
                        func: pc.func,
                        block: b as usize,
                        inst: 0,
                    });
                    self.stats.insts_ifu += 1;
                    self.last_progress = self.cycle;
                    transfers += 1;
                    if transfers > 16 {
                        return Ok(Outcome::Active);
                    }
                }
                IfuOp::CallFunc { func } => {
                    self.ret_stack.push(Pc {
                        func: pc.func,
                        block: pc.block,
                        inst: pc.inst + 1,
                    });
                    self.pc = Some(Pc {
                        func: func as usize,
                        block: 0,
                        inst: 0,
                    });
                    self.stats.insts_ifu += 1;
                    self.stats.calls += 1;
                    self.last_progress = self.cycle;
                    return Ok(Outcome::Active); // calls consume the fetch slot
                }
                IfuOp::CallBuiltin { callee } => {
                    // builtins read register state directly: the units
                    // must be synchronized first
                    if !self.quiescent() {
                        self.stats.ifu_stalls += 1;
                        return Ok(stall_after(transfers, Stall::Sync));
                    }
                    let name = self.module.sym_name(callee).to_string();
                    self.exec_builtin(&name)?;
                    self.ifu_hold = self.cycle + self.config.io_latency;
                    self.advance();
                    self.stats.insts_ifu += 1;
                    self.stats.calls += 1;
                    self.last_progress = self.cycle;
                    return Ok(Outcome::Active);
                }
                IfuOp::CallBad { callee } => {
                    return Err(SimError::BadProgram(format!(
                        "call to data symbol {}",
                        self.module.sym_name(callee)
                    )))
                }
                IfuOp::Ret => {
                    self.pc = self.ret_stack.pop();
                    self.stats.insts_ifu += 1;
                    self.last_progress = self.cycle;
                    return Ok(Outcome::Active);
                }
                // cross-unit conversions are executed by the IFU after
                // synchronizing the execution units
                IfuOp::Convert { op, a, dst } => {
                    if !self.quiescent() {
                        self.stats.ifu_stalls += 1;
                        return Ok(stall_after(transfers, Stall::Sync));
                    }
                    let src_class = if op == UnOp::IntToFlt {
                        RegClass::Int
                    } else {
                        RegClass::Flt
                    };
                    // a forwarded FIFO dequeue must wait for its datum
                    if let Operand::Reg(r) = a {
                        if r.is_fifo()
                            && self.unit(src_class).ins[r.phys_num().unwrap() as usize]
                                .q
                                .is_empty()
                        {
                            self.stats.ifu_stalls += 1;
                            return Ok(stall_after(transfers, Stall::FifoEmpty));
                        }
                    }
                    let v = self.read_operand(src_class, a)?;
                    let v = self.eval_un(op, v)?;
                    self.write_reg(dst.class, dst, v)?;
                    self.advance();
                    self.stats.insts_ifu += 1;
                    self.last_progress = self.cycle;
                    return Ok(Outcome::Active);
                }
                IfuOp::DispatchVeu => {
                    if self.veu.iq.len() >= self.config.iq_capacity {
                        self.stats.ifu_stalls += 1;
                        return Ok(stall_after(transfers, Stall::IqFull));
                    }
                    self.veu.iq.push_back(idx);
                    self.advance();
                    self.last_progress = self.cycle;
                    return Ok(Outcome::Active);
                }
                // everything else is dispatched to an execution unit
                IfuOp::Dispatch => {
                    if self.unit(d.class).iq.len() >= self.config.iq_capacity {
                        self.stats.ifu_stalls += 1;
                        return Ok(stall_after(transfers, Stall::IqFull));
                    }
                    self.unit_mut(d.class).iq.push_back(idx);
                    self.advance();
                    self.last_progress = self.cycle;
                    return Ok(Outcome::Active);
                }
            }
        }
    }
}

// ---- exec handlers (the decoded replacements for the interpreter's
// `exec_unit_head` match arms; each mirrors its arm check-for-check) ----

/// Read one decoded source slot. FIFO slots dequeue through the shared
/// [`WmMachine::pop_fifo`] (the same code `read_operand` runs), so
/// poison and deadlock semantics cannot diverge; the decode-time slot
/// classification just skips `read_operand`'s re-derivation of what the
/// operand is.
fn read_slot<'m>(m: &mut WmMachine<'m>, class: RegClass, s: Src) -> Result<Val, SimError> {
    match s {
        Src::Imm(v) => Ok(Val::I(v)),
        Src::FImm(v) => Ok(Val::F(v)),
        Src::Zero => Ok(match class {
            RegClass::Int => Val::I(0),
            RegClass::Flt => Val::F(0.0),
        }),
        Src::Reg(n) => Ok(m.unit(class).regs[n as usize]),
        Src::Fifo(n) => m.pop_fifo(class, n as usize),
    }
}

/// Write a decoded destination slot (register 1 is never decoded, so
/// this cannot fail).
fn write_dst(m: &mut WmMachine<'_>, class: RegClass, d: Dst, v: Val) {
    match d {
        Dst::Zero => {} // writes to the zero register are discarded
        Dst::Out => m.unit_mut(class).out.push_back(v),
        Dst::Reg(n) => m.unit_mut(class).regs[n as usize] = v,
    }
}

/// Evaluate a decoded expression with the interpreter's operand order
/// and fault semantics (FIFO dequeues happen in a, b, c order; division
/// by zero faults from `eval_bin`).
fn eval_dec<'m>(m: &mut WmMachine<'m>, class: RegClass, e: &DecExpr) -> Result<Val, SimError> {
    match *e {
        DecExpr::Op(a) => read_slot(m, class, a),
        DecExpr::Un(op, a) => {
            let v = read_slot(m, class, a)?;
            m.eval_un(op, v)
        }
        DecExpr::Bin(op, a, b) => {
            let va = read_slot(m, class, a)?;
            let vb = read_slot(m, class, b)?;
            m.eval_bin(class, op, va, vb)
        }
        DecExpr::Dual {
            inner,
            a,
            b,
            outer,
            c,
        } => {
            let va = read_slot(m, class, a)?;
            let vb = read_slot(m, class, b)?;
            let vab = m.eval_bin(class, inner, va, vb)?;
            let vc = read_slot(m, class, c)?;
            m.eval_bin(class, outer, vab, vc)
        }
    }
}

/// Side-effect-free preview of a decoded address expression; `None` when
/// it reads a FIFO or cannot fold — exactly when the interpreter's
/// `eval_expr_pure` returns `None` on the original expression (decode
/// folds only immediate pairs that `fold_int` accepts, so a fold never
/// turns an unanalyzable address into an analyzable one or vice versa).
fn eval_dec_pure(m: &WmMachine<'_>, class: RegClass, e: &DecExpr) -> Option<i64> {
    let read = |s: Src| -> Option<i64> {
        match s {
            Src::Imm(v) => Some(v),
            Src::FImm(_) | Src::Fifo(_) => None,
            Src::Zero => Some(0),
            Src::Reg(n) => Some(m.unit(class).regs[n as usize].as_i()),
        }
    };
    match *e {
        DecExpr::Op(a) => read(a),
        DecExpr::Un(..) => None,
        DecExpr::Bin(op, a, b) => op.fold_int(read(a)?, read(b)?),
        DecExpr::Dual {
            inner,
            a,
            b,
            outer,
            c,
        } => outer.fold_int(inner.fold_int(read(a)?, read(b)?)?, read(c)?),
    }
}

/// Decoded `Assign`: output-FIFO capacity check, evaluate, write.
pub(crate) fn exec_assign<'m>(
    m: &mut WmMachine<'m>,
    d: &DecodedInst<'m>,
) -> Result<Exec, SimError> {
    let Payload::Assign {
        dst,
        src,
        executed_dst,
    } = d.payload
    else {
        unreachable!("exec_assign wired to a non-Assign payload");
    };
    if dst == Dst::Out && m.unit(d.class).out.len() >= m.config.fifo_capacity {
        return Ok(Exec::Stall(Stall::OutFull)); // output FIFO full
    }
    let v = eval_dec(m, d.class, &src)?;
    write_dst(m, d.class, dst, v);
    Ok(Exec::Retired(executed_dst))
}

/// Decoded `LoadAddr`: the address was folded at decode time; the
/// llh/sll pair still occupies the unit for an extra cycle.
pub(crate) fn exec_loadaddr<'m>(
    m: &mut WmMachine<'m>,
    d: &DecodedInst<'m>,
) -> Result<Exec, SimError> {
    let Payload::LoadAddr {
        dst,
        addr,
        executed_dst,
    } = d.payload
    else {
        unreachable!("exec_loadaddr wired to a non-LoadAddr payload");
    };
    write_dst(m, d.class, dst, Val::I(addr));
    // the llh/sll pair is two 32-bit instructions
    m.unit_mut(d.class).busy = 1;
    Ok(Exec::Retired(executed_dst))
}

/// Decoded `Compare`: CC-FIFO capacity check, evaluate, push.
pub(crate) fn exec_compare<'m>(
    m: &mut WmMachine<'m>,
    d: &DecodedInst<'m>,
) -> Result<Exec, SimError> {
    let Payload::Compare { op, a, b } = d.payload else {
        unreachable!("exec_compare wired to a non-Compare payload");
    };
    if m.unit(d.class).cc.len() >= m.config.cc_capacity {
        return Ok(Exec::Stall(Stall::CcFull));
    }
    let va = read_slot(m, d.class, a)?;
    let vb = read_slot(m, d.class, b)?;
    let r = match d.class {
        RegClass::Int => op.eval_int(va.as_i(), vb.as_i()),
        RegClass::Flt => op.eval_flt(va.as_f(), vb.as_f()),
    };
    m.unit_mut(d.class).cc.push_back(r);
    Ok(Exec::Retired(None))
}

/// Decoded `WLoad`: same port/stream/capacity/ordering checks as the
/// interpreter arm, in the same order.
pub(crate) fn exec_wload<'m>(m: &mut WmMachine<'m>, d: &DecodedInst<'m>) -> Result<Exec, SimError> {
    let Payload::WLoad { fifo, addr, width } = d.payload else {
        unreachable!("exec_wload wired to a non-WLoad payload");
    };
    if !m.ports_free() {
        return Ok(Exec::Stall(Stall::PortBusy));
    }
    {
        let tf = &m.unit(fifo.class).ins[fifo.index as usize];
        // A scalar load must not interleave its datum with an active
        // stream's: stall until the stream's last request has been
        // issued (the hardware interlock).
        if tf.streamed {
            return Ok(Exec::Stall(Stall::ScuBusy));
        }
        if tf.q.len() + tf.pending >= m.config.fifo_capacity {
            return Ok(Exec::Stall(Stall::FifoFull));
        }
    }
    let a = if let Some(a) = m.unit(d.class).latched_load {
        // Retry of a refused indirect load: the index was dequeued when
        // the address was first computed. Only the ordering check
        // re-runs (the other unit may have queued a conflicting store
        // while we were latched).
        if m.conflicts_with_pending_writes(a, width) || m.conflicts_with_out_streams(a, width) {
            return Ok(Exec::Stall(Stall::MemOrder));
        }
        a
    } else {
        let previewed = eval_dec_pure(m, d.class, &addr);
        match previewed {
            Some(a)
                if m.conflicts_with_pending_writes(a, width)
                    || m.conflicts_with_out_streams(a, width) =>
            {
                // wait for the conflicting store
                return Ok(Exec::Stall(Stall::MemOrder));
            }
            None if !m.store_q.is_empty() || m.writes_in_flight > 0 => {
                // unanalyzable address: drain stores first
                return Ok(Exec::Stall(Stall::MemOrder));
            }
            _ => {}
        }
        // A successful integer-unit preview read no FIFO and every fold
        // succeeded, so re-evaluating is side-effect-free, cannot fault and
        // produces the same address: reuse it instead of running `eval_dec`
        // again (the interpreter re-evaluates; the value is identical by
        // construction). Float-unit address arithmetic is not previewable
        // that way, so it always re-evaluates.
        let a = match previewed {
            Some(a) if d.class == RegClass::Int => a,
            _ => eval_dec(m, d.class, &addr)?.as_i(),
        };
        // scalar loads fault eagerly, with precise attribution
        if let Err(e) = m.mem.check(a, width.bytes(), false) {
            return Err(m.access_fault(FaultUnit::Ieu, None, &e));
        }
        a
    };
    // the memory hierarchy may refuse the reference (MSHRs exhausted,
    // target DRAM bank busy): retry next cycle
    let acc = Access::scalar(a, false);
    if let Err(refusal) = m.memsys.accepts(&acc, m.cycle) {
        // If the address expression consumed a FIFO operand (d.need is
        // the precomputed dequeue count), hold the computed address in
        // the unit's latch so the retry does not re-dequeue. The dequeue
        // is a state flip on a stall cycle, so pin progress
        // (fast-forward soundness rule).
        if d.need != [0, 0] {
            m.unit_mut(d.class).latched_load = Some(a);
            m.last_progress = m.cycle;
        }
        return Ok(Exec::Stall(refusal.stall()));
    }
    m.unit_mut(d.class).latched_load = None;
    let gen = m.unit(fifo.class).ins[fifo.index as usize].gen;
    {
        let f = &mut m.unit_mut(fifo.class).ins[fifo.index as usize];
        f.pending += 1;
        f.owed += 1;
    }
    m.issue_mem(
        MemOp::ReadFifo {
            target: StreamTarget::Fifo(fifo),
            addr: a,
            width,
            gen,
            poison: None,
        },
        &acc,
    );
    m.stats.mem_reads += 1;
    Ok(Exec::Retired(None))
}

/// Decoded `WStore`: store-queue capacity check, evaluate, enqueue.
pub(crate) fn exec_wstore<'m>(
    m: &mut WmMachine<'m>,
    d: &DecodedInst<'m>,
) -> Result<Exec, SimError> {
    let Payload::WStore { unit, addr, width } = d.payload else {
        unreachable!("exec_wstore wired to a non-WStore payload");
    };
    if m.store_q.len() >= m.config.store_queue {
        return Ok(Exec::Stall(Stall::StoreQFull));
    }
    let a = eval_dec(m, d.class, &addr)?.as_i();
    // stores fault at issue time, before entering the store queue, so
    // the report names the faulting instruction
    if let Err(e) = m.mem.check(a, width.bytes(), true) {
        return Err(m.access_fault(FaultUnit::Ieu, None, &e));
    }
    m.store_q.push_back(PendingStore {
        addr: a,
        width,
        class: unit,
    });
    Ok(Exec::Retired(None))
}

/// The interpreter fallback: run the reference `exec_unit_head` arm on
/// the original instruction. Carried by every instruction the decode
/// tables cannot express exactly (stream configuration, FIFO-mapped
/// destination corner cases, cross-class operands, unresolvable
/// symbols), which makes those paths bit-identical by construction.
pub(crate) fn exec_fallback<'m>(
    m: &mut WmMachine<'m>,
    d: &DecodedInst<'m>,
) -> Result<Exec, SimError> {
    m.exec_unit_head(d.class, d.kind)
}
