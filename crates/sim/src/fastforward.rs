//! The event-driven fast-forward engine.
//!
//! PR 3's stall attribution showed that on latency-dominated
//! configurations (24-cycle memory, single-entry FIFOs) the large
//! majority of simulated cycles end with *every* unit stalled or idle:
//! the machine's architectural state does not change at all, yet the
//! per-cycle stepper still walks every unit, every SCU and the memory
//! system once per cycle. This module makes those spans O(1): after a
//! cycle in which no unit made progress, [`WmMachine::step_event`]
//! computes the **next-event cycle** — the earliest future cycle at which
//! anything *can* change — and jumps there in one bulk update.
//!
//! The jump is exact, not approximate. A no-progress cycle is only
//! skippable when its per-unit outcomes are provably constant until the
//! next event, and the bulk update adds the skipped span to exactly the
//! same counters the per-cycle stepper would have touched: each unit's
//! idle/stall bucket, `ifu_stalls`, the FIFO-occupancy histograms at the
//! (unchanging) current depths, and the zero-requests memory-port bucket.
//! Every counter in [`crate::Stats`], every cycle count, every fault and
//! deadlock (down to the reported cycle and machine-state dump) is
//! **bit-identical** between the two engines; the differential suite in
//! `tests/engine_equiv.rs` and the fuzzer enforce this.
//!
//! Events that bound a jump:
//!
//! * the next memory delivery (`in_flight` is drained in FIFO order, so
//!   the head's due cycle — which already includes injected delays and
//!   jitter — is the next delivery);
//! * the end of an SCU's configuration setup (`ready_at`);
//! * a fault-injection SCU kill whose cycle has not arrived yet (the
//!   SCU's attribution flips to `Stall::Disabled` at that exact cycle);
//! * the expiry of an IFU hold (builtin I/O latency);
//! * a DRAM bank becoming free under the `banked` memory model (a
//!   scalar miss refused with `Stall::BankBusy` can retry then; MSHR
//!   releases need no extra event — they coincide with response
//!   delivery, which the in-flight queue head already bounds);
//! * the per-cycle deadlock horizon and the `max_cycles` timeout, so a
//!   wedged machine reports the identical terminal error.

use crate::machine::{WmMachine, DEADLOCK_WINDOW};
use crate::stats::{Outcome, Stall};
use crate::SimError;

/// Which stepping engine drives the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Step every unit every cycle (the reference stepper).
    Cycle,
    /// Fast-forward over spans where no unit can make progress before the
    /// next event. Bit-identical counters; the default.
    #[default]
    Event,
    /// Execute the pre-decoded threaded-dispatch tables (see
    /// [`DecodedProgram`](crate::DecodedProgram)) with the same
    /// fast-forward tail. Bit-identical to the other engines; the
    /// fastest.
    Compiled,
}

impl Engine {
    /// Stable machine-readable name (`"cycle"` / `"event"` /
    /// `"compiled"`).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Cycle => "cycle",
            Engine::Event => "event",
            Engine::Compiled => "compiled",
        }
    }

    /// Parse a name as accepted by `wmcc --engine`.
    ///
    /// # Errors
    ///
    /// Returns a usage message for anything but `cycle`, `event` or
    /// `compiled`.
    pub fn parse(s: &str) -> Result<Engine, String> {
        match s {
            "cycle" => Ok(Engine::Cycle),
            "event" => Ok(Engine::Event),
            "compiled" => Ok(Engine::Compiled),
            other => Err(format!(
                "unknown engine `{other}` (expected cycle, event or compiled)"
            )),
        }
    }

    /// All engines, for exhaustive differential sweeps.
    pub const ALL: [Engine; 3] = [Engine::Cycle, Engine::Event, Engine::Compiled];
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What every unit did during one simulated cycle; captured each step so
/// the fast-forward engine can bulk-account a span of identical cycles.
#[derive(Debug, Clone)]
pub(crate) struct CycleOutcomes {
    pub(crate) ieu: Outcome,
    pub(crate) feu: Outcome,
    pub(crate) veu: Outcome,
    pub(crate) ifu: Outcome,
    pub(crate) scus: Vec<Outcome>,
}

impl CycleOutcomes {
    pub(crate) fn new(num_scus: usize) -> CycleOutcomes {
        CycleOutcomes {
            ieu: Outcome::Idle,
            feu: Outcome::Idle,
            veu: Outcome::Idle,
            ifu: Outcome::Idle,
            scus: vec![Outcome::Idle; num_scus],
        }
    }
}

/// One fast-forwarded span: `len` consecutive cycles starting at `start`
/// during which every unit repeated the recorded outcome. Collected only
/// when tracing or the timeline is enabled, and rendered by the Chrome
/// trace exporter as one coalesced stall span per unit instead of
/// thousands of per-cycle events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FfSpan {
    /// First skipped cycle.
    pub start: u64,
    /// Number of skipped cycles.
    pub len: u64,
    /// IEU outcome over the whole span.
    pub ieu: Outcome,
    /// FEU outcome over the whole span.
    pub feu: Outcome,
    /// VEU outcome over the whole span.
    pub veu: Outcome,
    /// IFU outcome over the whole span.
    pub ifu: Outcome,
    /// Per-SCU outcomes over the whole span.
    pub scus: Vec<Outcome>,
}

/// Is this outcome guaranteed to repeat until the next event?
///
/// `Active` means progress (the span is not a stall span at all) and
/// `Stall(Interlock)` lasts exactly one cycle by construction
/// (`prev_cycle + 1 == cycle`), so neither is skippable. Every other
/// stall reason and `Idle` depend only on machine state that cannot
/// change without some unit making progress or an event firing.
fn repeats(o: Outcome) -> bool {
    match o {
        Outcome::Active => false,
        Outcome::Idle => true,
        Outcome::Stall(s) => s != Stall::Interlock,
    }
}

impl<'m> WmMachine<'m> {
    /// Advance one cycle, then fast-forward to just before the next event
    /// if the cycle ended with no unit able to make progress.
    ///
    /// Behaves exactly like running [`WmMachine::step`] in a loop — same
    /// cycle counts, same counters, same faults — but skips all-stalled
    /// spans in one bulk update.
    ///
    /// # Errors
    ///
    /// Exactly the errors [`WmMachine::step`] reports, at the same cycle.
    pub fn step_event(&mut self) -> Result<(), SimError> {
        self.step()?;
        self.fast_forward();
        Ok(())
    }

    /// The shared fast-forward tail: if the cycle just simulated ended
    /// with no unit able to make progress, jump to just before the next
    /// event in one bulk update. Used by both the event engine (after
    /// [`WmMachine::step`]) and the compiled engine (after its decoded
    /// step); a no-op when the cycle made progress or an outcome is not
    /// provably constant.
    pub(crate) fn fast_forward(&mut self) {
        if !self.can_fast_forward() {
            return;
        }
        let Some(target) = self.fast_forward_target() else {
            return;
        };
        let skipped = target - self.cycle;
        self.bulk_account(skipped);
        if self.trace_enabled || self.timeline_enabled {
            let o = &self.last_outcomes;
            self.ff_spans.push(FfSpan {
                start: self.cycle + 1,
                len: skipped,
                ieu: o.ieu,
                feu: o.feu,
                veu: o.veu,
                ifu: o.ifu,
                scus: o.scus.clone(),
            });
        }
        self.cycle = target;
        self.perf.cycles = target;
    }

    /// Did the cycle that just completed change no architectural state,
    /// with every unit's outcome constant until the next event?
    fn can_fast_forward(&self) -> bool {
        // Progress (an instruction retired, a request issued or delivered,
        // a store drained, an IFU transfer) means the next cycle differs.
        if self.last_progress == self.cycle {
            return false;
        }
        let o = &self.last_outcomes;
        repeats(o.ieu)
            && repeats(o.feu)
            && repeats(o.veu)
            && repeats(o.ifu)
            && o.scus.iter().all(|&s| repeats(s))
    }

    /// The last cycle that is provably identical to the one just
    /// simulated: one before the next event, clamped so the deadlock
    /// detector and the cycle-limit timeout fire at exactly the cycle the
    /// per-cycle stepper would report. `None` when there is nothing to
    /// skip.
    fn fast_forward_target(&self) -> Option<u64> {
        let mut next = u64::MAX;
        // Memory responses are delivered in FIFO order (injected delays
        // hold younger responses behind them), so the head of the
        // in-flight queue is the next delivery — including dropped
        // responses, which are discarded (and counted) at their due cycle.
        if let Some(f) = self.in_flight.front() {
            next = next.min(f.due);
        }
        // Builtin I/O releases the IFU at `ifu_hold`.
        if self.ifu_hold > self.cycle {
            next = next.min(self.ifu_hold);
        }
        // A busy DRAM bank freeing can flip a memory-hierarchy refusal
        // (`Stall::BankBusy`, or a silently-held store drain) to accept.
        if let Some(t) = self.memsys.next_event(self.cycle) {
            next = next.min(t);
        }
        for (i, s) in self.scus.iter().enumerate() {
            // An SCU leaving configuration setup starts issuing requests.
            // (A disabled SCU never leaves `Stall::Disabled`, so its
            // `ready_at` is not an event.)
            if s.active && !self.scu_disabled(i) && s.ready_at > self.cycle {
                next = next.min(s.ready_at);
            }
            // A squashed slot leaving recovery flips `Stall::SpecSquash`
            // to `Idle` — and lets a stalled stream configuration claim
            // the slot — even if nothing else changes.
            if !s.active && s.squash_until > self.cycle {
                next = next.min(s.squash_until);
            }
        }
        for &(i, c) in &self.config.fault_plan.disable_scus {
            // A pending SCU kill flips that SCU's attribution to
            // `Stall::Disabled` at cycle `c` even if nothing else changes.
            if c > self.cycle && self.scus.get(i).is_some_and(|s| s.active) {
                next = next.min(c);
            }
        }
        // A channel entry coming due lets a stalled receive — SCU or
        // scalar `Crecv` — pop it (untiled machines have no queues).
        for q in &self.chan_rx {
            if let Some(e) = q.front() {
                if e.due > self.cycle {
                    next = next.min(e.due);
                }
            }
        }
        // The step *at* the event cycle must be simulated normally; only
        // the strictly-identical cycles before it are skipped.
        let mut target = next.saturating_sub(1).min(self.config.max_cycles);
        if self.ff_horizon == u64::MAX {
            // the per-cycle run reports Deadlock at last_progress +
            // DEADLOCK_WINDOW + 1 and Timeout at max_cycles; never jump
            // past either, so terminal errors carry identical cycles
            target = target.min(self.last_progress + DEADLOCK_WINDOW + 1);
        } else {
            // Tiled: deadlock is a *global* property judged at epoch
            // barriers, so the per-tile clamp would only degrade long
            // channel waits to per-cycle stepping. Bound the jump to the
            // end of the current epoch instead.
            target = target.min(self.ff_horizon);
        }
        (target > self.cycle).then_some(target)
    }

    /// Account `n` skipped cycles exactly as `n` repetitions of the cycle
    /// just simulated: same per-unit outcome buckets, same IFU stall
    /// counter, same FIFO-depth and memory-port histogram cells.
    fn bulk_account(&mut self, n: u64) {
        let o = &self.last_outcomes;
        self.perf.ieu.record_n(o.ieu, n);
        self.perf.feu.record_n(o.feu, n);
        self.perf.veu.record_n(o.veu, n);
        self.perf.ifu.record_n(o.ifu, n);
        for (i, scu) in self.perf.scus.iter_mut().enumerate() {
            scu.unit.record_n(o.scus[i], n);
        }
        // every IFU stall outcome increments `ifu_stalls` exactly once
        // per cycle in the per-cycle stepper
        if matches!(o.ifu, Outcome::Stall(_)) {
            self.stats.ifu_stalls += n;
        }
        // FIFO depths cannot change in a no-progress span (so the
        // timeline, which records change points only, stays untouched),
        // and no memory request is accepted (ports bucket 0).
        let depths = self.fifo_depths();
        for (h, &d) in self.perf.fifos.iter_mut().zip(depths.iter()) {
            h.sample_n(d, n);
        }
        self.perf.ports[0] += n;
        // Stream-buffer occupancy only changes when a request is
        // accepted (a progress cycle), so the whole span sits at the
        // current occupancy — mirroring the FIFO-depth histograms.
        if let Some(m) = self.perf.mem.as_mut() {
            m.sample_occupancy_n(self.memsys.occupancy(), n);
        }
    }
}
