//! Hierarchical memory-system model: L1 data cache, banked DRAM and
//! stream buffers.
//!
//! The paper's central claim is that stream control units decouple
//! *access* from *execute* so streams hide memory latency that scalar
//! loads must eat. A flat `mem_latency` cannot exhibit that asymmetry:
//! every reference costs the same. This subsystem models the asymmetry
//! directly:
//!
//! * **Scalar** references (`WLoad`, scalar stores) go through a
//!   configurable L1 data cache (write-back, write-allocate, LRU, with a
//!   bounded number of MSHRs limiting outstanding misses).
//! * **Stream** references (SCU in/out requests) *bypass* the L1 through
//!   dedicated stream buffers that prefetch ahead along the stream's
//!   stride — exactly the paper's mechanism: the SCU knows the address
//!   sequence, so the memory system can run ahead of the consumer while a
//!   scalar machine pays the miss latency on demand.
//! * Optionally (`banked`), everything below the L1/stream buffers is a
//!   **banked DRAM** with open-row timing and a per-bank busy window, so
//!   bandwidth — not just latency — becomes a modelled resource.
//!
//! The model is **timing-only**: architectural data always lives in the
//! single [`crate::MemoryImage`], and the hierarchy only decides *when* a
//! request's response is delivered. That makes the key invariant trivial
//! to uphold: results can never depend on the memory model, only cycle
//! counts can (the differential fuzzer enforces this).
//!
//! Two-phase interface, required for engine equivalence:
//!
//! * [`MemSystem::accepts`] is **pure** — it is consulted on stall cycles
//!   (which the fast-forward engine may bulk-skip) and must not mutate
//!   any state or counter.
//! * [`MemSystem::access`] mutates tags, buffers, banks and
//!   [`MemStats`], and is only called on the cycle a request actually
//!   issues (a progress cycle, which the fast-forward engine never
//!   skips).

mod cache;
mod dram;
mod stream_buffer;

use crate::stats::Stall;
use cache::L1;
use dram::Dram;
use stream_buffer::{Backing, StreamBuffer};

/// L1 data-cache and stream-buffer parameters (the `cache` preset, and
/// the cache level of `banked`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Latency of an L1 hit (and of a stream-buffer lookup).
    pub hit_latency: u64,
    /// Latency of a miss serviced by the backing store (`cache` preset
    /// only; under `banked` the DRAM timing replaces it).
    pub miss_latency: u64,
    /// Miss-status holding registers: maximum scalar misses outstanding.
    pub mshrs: usize,
    /// Number of stream buffers (SCU `i` maps to buffer `i % sbufs`).
    pub sbufs: usize,
    /// Lines each stream buffer holds (prefetch depth).
    pub sb_depth: usize,
    /// Cycles between consecutive prefetch arrivals into one stream
    /// buffer (models the fill path's transfer bandwidth).
    pub transfer: u64,
}

impl Default for CacheParams {
    fn default() -> CacheParams {
        CacheParams {
            size: 8192,
            assoc: 2,
            line: 32,
            hit_latency: 2,
            miss_latency: 24,
            mshrs: 4,
            sbufs: 4,
            sb_depth: 8,
            transfer: 2,
        }
    }
}

/// Banked-DRAM parameters (the memory behind the L1 and the stream
/// buffers in the `banked` preset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramParams {
    /// Number of interleaved banks (lines are striped line-by-line).
    pub banks: usize,
    /// Bytes per DRAM row (the open-row granule of one bank).
    pub row_bytes: usize,
    /// Access latency when the bank's open row already matches.
    pub t_row_hit: u64,
    /// Access latency when the bank must close and re-open a row.
    pub t_row_miss: u64,
    /// Cycles a bank stays busy after accepting an access (its
    /// occupancy, which bounds per-bank bandwidth).
    pub busy: u64,
}

impl Default for DramParams {
    fn default() -> DramParams {
        DramParams {
            banks: 8,
            row_bytes: 2048,
            t_row_hit: 12,
            t_row_miss: 30,
            busy: 4,
        }
    }
}

/// Which memory-system model the simulator runs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum MemModel {
    /// The original flat model: every request costs `mem_latency`. The
    /// default; keeps all historical cycle counts bit-identical.
    #[default]
    Flat,
    /// L1 data cache + stream buffers over a fixed-latency backing store.
    Cache(CacheParams),
    /// L1 data cache + stream buffers over banked open-row DRAM.
    Banked(CacheParams, DramParams),
}

impl MemModel {
    /// Stable preset name (`"flat"` / `"cache"` / `"banked"`).
    pub fn name(&self) -> &'static str {
        match self {
            MemModel::Flat => "flat",
            MemModel::Cache(_) => "cache",
            MemModel::Banked(..) => "banked",
        }
    }

    /// Is this the flat (historical) model?
    pub fn is_flat(&self) -> bool {
        matches!(self, MemModel::Flat)
    }

    /// Parse a `wmcc --mem` spec: `PRESET[:k=v,...]`.
    ///
    /// Presets: `flat` (no parameters), `cache`, `banked`.
    /// Cache keys: `size`, `assoc`, `line`, `hit`, `miss`, `mshrs`,
    /// `sbufs`, `depth`, `transfer`. Additional `banked` keys: `banks`,
    /// `row`, `rowhit`, `rowmiss`, `busy`.
    ///
    /// # Errors
    ///
    /// Returns a usage message for unknown presets, unknown or malformed
    /// keys, and parameter combinations that do not describe a valid
    /// cache (e.g. `size` not a multiple of `line * assoc`).
    pub fn parse(spec: &str) -> Result<MemModel, String> {
        let (preset, params) = match spec.split_once(':') {
            Some((p, rest)) => (p, rest),
            None => (spec, ""),
        };
        let banked = match preset {
            "flat" => {
                if !params.is_empty() {
                    return Err("the flat model takes no parameters".into());
                }
                return Ok(MemModel::Flat);
            }
            "cache" => false,
            "banked" => true,
            other => Err(format!(
                "unknown memory model `{other}` (expected flat, cache or banked)"
            ))?,
        };
        let mut c = CacheParams::default();
        let mut d = DramParams::default();
        for part in params.split(',').filter(|p| !p.is_empty()) {
            let Some((key, val)) = part.split_once('=') else {
                return Err(format!("bad parameter `{part}` (expected key=value)"));
            };
            let n = val
                .parse::<u64>()
                .map_err(|_| format!("bad number `{val}` for `{key}`"))?;
            match key {
                "size" => c.size = n as usize,
                "assoc" => c.assoc = n as usize,
                "line" => c.line = n as usize,
                "hit" => c.hit_latency = n,
                "miss" => c.miss_latency = n,
                "mshrs" => c.mshrs = n as usize,
                "sbufs" => c.sbufs = n as usize,
                "depth" => c.sb_depth = n as usize,
                "transfer" => c.transfer = n,
                "banks" | "row" | "rowhit" | "rowmiss" | "busy" if !banked => {
                    return Err(format!("`{key}` only applies to the banked model"));
                }
                "banks" => d.banks = n as usize,
                "row" => d.row_bytes = n as usize,
                "rowhit" => d.t_row_hit = n,
                "rowmiss" => d.t_row_miss = n,
                "busy" => d.busy = n,
                other => return Err(format!("unknown memory parameter `{other}`")),
            }
        }
        let model = if banked {
            MemModel::Banked(c, d)
        } else {
            MemModel::Cache(c)
        };
        model.validate()?;
        Ok(model)
    }

    /// Check that the parameters describe a realizable memory system.
    fn validate(&self) -> Result<(), String> {
        let (c, d) = match self {
            MemModel::Flat => return Ok(()),
            MemModel::Cache(c) => (c, None),
            MemModel::Banked(c, d) => (c, Some(d)),
        };
        if c.assoc == 0 {
            return Err("assoc must be at least 1".into());
        }
        if c.line < 8 {
            return Err("line must be at least 8 bytes (the widest element)".into());
        }
        if c.size < c.line * c.assoc || c.size % (c.line * c.assoc) != 0 {
            return Err(format!(
                "size {} is not a multiple of line*assoc = {}",
                c.size,
                c.line * c.assoc
            ));
        }
        if c.mshrs == 0 {
            return Err("mshrs must be at least 1".into());
        }
        if c.sbufs == 0 || c.sb_depth == 0 {
            return Err("sbufs and depth must be at least 1".into());
        }
        if let Some(d) = d {
            if d.banks == 0 {
                return Err("banks must be at least 1".into());
            }
            if d.row_bytes < c.line || d.row_bytes % c.line != 0 {
                return Err(format!(
                    "row {} is not a multiple of the line size {}",
                    d.row_bytes, c.line
                ));
            }
            if d.t_row_miss < d.t_row_hit {
                return Err("rowmiss must be at least rowhit".into());
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for MemModel {
    /// Canonical round-trippable spec (`cache:size=8192,assoc=2,...`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemModel::Flat => f.write_str("flat"),
            MemModel::Cache(c) => write!(
                f,
                "cache:size={},assoc={},line={},hit={},miss={},mshrs={},sbufs={},depth={},transfer={}",
                c.size, c.assoc, c.line, c.hit_latency, c.miss_latency, c.mshrs, c.sbufs,
                c.sb_depth, c.transfer
            ),
            MemModel::Banked(c, d) => write!(
                f,
                "banked:size={},assoc={},line={},hit={},mshrs={},sbufs={},depth={},transfer={},\
                 banks={},row={},rowhit={},rowmiss={},busy={}",
                c.size, c.assoc, c.line, c.hit_latency, c.mshrs, c.sbufs, c.sb_depth, c.transfer,
                d.banks, d.row_bytes, d.t_row_hit, d.t_row_miss, d.busy
            ),
        }
    }
}

/// Memory-hierarchy event counters, carried on [`crate::Stats`] as
/// `Stats::mem` (absent under the flat model, so flat output stays
/// bit-identical to the pre-hierarchy simulator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemStats {
    /// Scalar L1 hits.
    pub hits: u64,
    /// Scalar L1 misses.
    pub misses: u64,
    /// Valid lines replaced by a fill.
    pub evictions: u64,
    /// Evicted-dirty lines written back to the backing store.
    pub writebacks: u64,
    /// L1 lines invalidated by stream writes (stream-out coherence).
    pub invalidations: u64,
    /// Stream requests satisfied by a stream buffer.
    pub sb_hits: u64,
    /// Stream requests that went to the backing store on demand.
    pub sb_misses: u64,
    /// Lines prefetched ahead into stream buffers.
    pub sb_prefetches: u64,
    /// Accesses that found their DRAM bank busy (wait folded into the
    /// access latency).
    pub bank_conflicts: u64,
    /// DRAM accesses hitting the bank's open row.
    pub row_hits: u64,
    /// DRAM accesses that re-opened a row.
    pub row_misses: u64,
    /// Cycles at each aggregate stream-buffer occupancy (in lines),
    /// length `sbufs * depth + 1`; sums to the run's cycle count.
    pub sb_occupancy: Vec<u64>,
}

impl MemStats {
    /// Fresh counters for a hierarchy whose stream buffers hold
    /// `sb_capacity` lines in total.
    pub fn new(sb_capacity: usize) -> MemStats {
        MemStats {
            hits: 0,
            misses: 0,
            evictions: 0,
            writebacks: 0,
            invalidations: 0,
            sb_hits: 0,
            sb_misses: 0,
            sb_prefetches: 0,
            bank_conflicts: 0,
            row_hits: 0,
            row_misses: 0,
            sb_occupancy: vec![0; sb_capacity + 1],
        }
    }

    /// Record `n` consecutive cycles at aggregate stream-buffer occupancy
    /// `occ` (bulk form used by the fast-forward engine; occupancy cannot
    /// change during a no-progress span).
    pub fn sample_occupancy_n(&mut self, occ: usize, n: u64) {
        let i = occ.min(self.sb_occupancy.len() - 1);
        self.sb_occupancy[i] += n;
    }

    /// Mean stream-buffer occupancy over the run, in lines.
    pub fn occupancy_mean(&self) -> f64 {
        let total: u64 = self.sb_occupancy.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .sb_occupancy
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        weighted as f64 / total as f64
    }

    /// Scalar hit rate in `[0, 1]` (1 when there were no references).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 1.0;
        }
        self.hits as f64 / total as f64
    }
}

/// One memory reference presented to the hierarchy.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Access {
    /// Byte address of the reference.
    pub addr: i64,
    /// True for stores.
    pub write: bool,
    /// `Some((scu, stride))` for SCU stream requests, which take the
    /// stream-buffer bypass path; `None` for scalar references.
    pub stream: Option<(usize, i64)>,
    /// An index-fed gather data read: the address sequence has no stride,
    /// so it must not go through a stream buffer (a strideless request
    /// would flush the buffer the same SCU's *index* stream prefetches
    /// into). Gathers go straight to the backing store.
    pub gather: bool,
}

impl Access {
    /// A scalar (L1-path) reference.
    pub fn scalar(addr: i64, write: bool) -> Access {
        Access {
            addr,
            write,
            stream: None,
            gather: false,
        }
    }

    /// A stream (buffer-bypass) reference from SCU `scu` with `stride`.
    pub fn stream(addr: i64, write: bool, scu: usize, stride: i64) -> Access {
        Access {
            addr,
            write,
            stream: Some((scu, stride)),
            gather: false,
        }
    }

    /// A gather data read from SCU `scu`: stream-class for acceptance
    /// (never refused), but serviced by the backing store directly.
    pub fn gather(addr: i64, scu: usize) -> Access {
        Access {
            addr,
            write: false,
            stream: Some((scu, 0)),
            gather: true,
        }
    }
}

/// Why the hierarchy refuses to accept a reference this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Refusal {
    /// All MSHRs hold outstanding scalar misses.
    MshrFull,
    /// The miss's DRAM bank is still busy with a previous access.
    BankBusy,
}

impl Refusal {
    /// The stall bucket this refusal is attributed to.
    pub fn stall(self) -> Stall {
        match self {
            Refusal::MshrFull => Stall::MshrFull,
            Refusal::BankBusy => Stall::BankBusy,
        }
    }
}

/// The outcome of an accepted reference.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Issued {
    /// Cycles until the response is delivered.
    pub latency: u64,
    /// Whether the reference reached the DRAM level (fault injection —
    /// jitter, delays, drops — applies only to these; under the flat
    /// model every reference does).
    pub dram: bool,
    /// Whether the reference holds an MSHR until its response delivers.
    pub mshr: bool,
}

/// The memory hierarchy of one simulated machine.
///
/// Purely a *timing* model: see the module docs. All mutation happens in
/// [`MemSystem::access`] and [`MemSystem::release_mshr`], which the
/// machine only calls on progress cycles — the property the event-driven
/// fast-forward engine relies on.
pub(crate) struct MemSystem {
    flat_latency: u64,
    hier: Option<Hier>,
}

struct Hier {
    p: CacheParams,
    l1: L1,
    dram: Option<Dram>,
    sbufs: Vec<StreamBuffer>,
    /// Scalar misses currently holding an MSHR.
    outstanding: usize,
}

impl MemSystem {
    /// Build the hierarchy for `model` (`flat_latency` is the historical
    /// `WmConfig::mem_latency`, used only by the flat model).
    pub fn new(model: &MemModel, flat_latency: u64) -> MemSystem {
        let hier = match model {
            MemModel::Flat => None,
            MemModel::Cache(c) => Some((c.clone(), None)),
            MemModel::Banked(c, d) => Some((c.clone(), Some(d.clone()))),
        }
        .map(|(c, d)| Hier {
            l1: L1::new(&c),
            dram: d.map(|d| Dram::new(&d, c.line)),
            sbufs: vec![StreamBuffer::new(c.sb_depth); c.sbufs],
            outstanding: 0,
            p: c,
        });
        MemSystem { flat_latency, hier }
    }

    /// Total lines the stream buffers can hold (0 for flat) — the
    /// occupancy histogram's capacity.
    pub fn sb_capacity(&self) -> usize {
        self.hier.as_ref().map_or(0, |h| h.p.sbufs * h.p.sb_depth)
    }

    /// Can this reference be accepted this cycle? **Pure**: called on
    /// stall cycles, so it must not mutate hierarchy state or counters.
    ///
    /// # Errors
    ///
    /// The [`Refusal`] naming the structural resource that is exhausted.
    pub fn accepts(&self, acc: &Access, now: u64) -> Result<(), Refusal> {
        let Some(h) = &self.hier else { return Ok(()) };
        // Stream references are never refused: the stream buffers absorb
        // bank waits (folded into delivery latency) and do not use MSHRs.
        if acc.stream.is_some() {
            return Ok(());
        }
        let line = h.l1.line_of(acc.addr);
        if h.l1.probe(line) {
            return Ok(());
        }
        if h.outstanding >= h.p.mshrs {
            return Err(Refusal::MshrFull);
        }
        if let Some(d) = &h.dram {
            if d.busy(line, now) {
                return Err(Refusal::BankBusy);
            }
        }
        Ok(())
    }

    /// Accept a reference (the caller must have seen [`MemSystem::accepts`]
    /// return `Ok` this cycle) and compute its delivery latency, updating
    /// tags, buffers, bank timers and `stats`.
    pub fn access(&mut self, acc: &Access, now: u64, stats: Option<&mut MemStats>) -> Issued {
        let Some(h) = &mut self.hier else {
            return Issued {
                latency: self.flat_latency,
                dram: true,
                mshr: false,
            };
        };
        let st = stats.expect("hierarchical models carry MemStats");
        let line = h.l1.line_of(acc.addr);
        if let Some((scu, stride)) = acc.stream {
            let mut bk = Backing {
                dram: h.dram.as_mut(),
                miss_latency: h.p.miss_latency,
            };
            if acc.write {
                // Stream-out writes bypass the L1 straight to memory; a
                // cached copy of the line is stale afterwards, so drop it
                // (timing-only: the architectural write lands in the
                // MemoryImage at delivery regardless).
                if h.l1.invalidate(line) {
                    st.invalidations += 1;
                }
                return Issued {
                    latency: bk.fetch(line, now, st),
                    dram: true,
                    mshr: false,
                };
            }
            if acc.gather {
                // Index-fed gather: no stride to prefetch along, so the
                // read is a demand fetch from the backing store (bank
                // pressure and row locality apply; the L1 and the stream
                // buffers are not consulted).
                return Issued {
                    latency: bk.fetch(line, now, st),
                    dram: true,
                    mshr: false,
                };
            }
            let sb = &mut h.sbufs[scu % h.p.sbufs];
            let (latency, dram) = sb.request(
                acc.addr,
                stride,
                now,
                h.p.hit_latency,
                h.p.transfer,
                h.p.line as i64,
                &mut bk,
                st,
            );
            return Issued {
                latency,
                dram,
                mshr: false,
            };
        }
        // Scalar path: through the L1.
        if h.l1.touch(line, acc.write) {
            st.hits += 1;
            return Issued {
                latency: h.p.hit_latency,
                dram: false,
                mshr: false,
            };
        }
        st.misses += 1;
        let mut bk = Backing {
            dram: h.dram.as_mut(),
            miss_latency: h.p.miss_latency,
        };
        // Demand fetch first (accepts() guaranteed the bank is idle, so
        // the demand never waits), then retire the victim: the writeback
        // is buffered behind the critical fill.
        let latency = bk.fetch(line, now, st);
        if let Some((victim, dirty)) = h.l1.insert(line, acc.write) {
            st.evictions += 1;
            if dirty {
                st.writebacks += 1;
                bk.fetch(victim, now, st);
            }
        }
        h.outstanding += 1;
        Issued {
            latency,
            dram: true,
            mshr: true,
        }
    }

    /// A scalar miss's response was delivered (or dropped by fault
    /// injection): its MSHR is free again.
    pub fn release_mshr(&mut self) {
        if let Some(h) = &mut self.hier {
            h.outstanding = h.outstanding.saturating_sub(1);
        }
    }

    /// The earliest future cycle at which the hierarchy itself can change
    /// an `accepts` verdict: the next bank becoming free. (MSHR releases
    /// are tied to response delivery, which the fast-forward engine
    /// already treats as an event via the in-flight queue.)
    pub fn next_event(&self, now: u64) -> Option<u64> {
        self.hier
            .as_ref()
            .and_then(|h| h.dram.as_ref())
            .and_then(|d| d.next_free(now))
    }

    /// Aggregate stream-buffer occupancy in lines (sampled every cycle
    /// into [`MemStats::sb_occupancy`]).
    pub fn occupancy(&self) -> usize {
        self.hier
            .as_ref()
            .map_or(0, |h| h.sbufs.iter().map(|s| s.len()).sum())
    }

    /// One-line state summary for machine-state dumps (`None` for flat).
    pub fn summary(&self, now: u64) -> Option<String> {
        let h = self.hier.as_ref()?;
        let mut s = format!(
            "L1 {} line(s) valid, {}/{} MSHR(s) in use; stream buffers {}/{} line(s)",
            h.l1.valid_lines(),
            h.outstanding,
            h.p.mshrs,
            self.occupancy(),
            h.p.sbufs * h.p.sb_depth,
        );
        if let Some(d) = &h.dram {
            s.push_str(&format!(
                "; {}/{} bank(s) busy",
                d.busy_banks(now),
                d.banks()
            ));
        }
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_presets_and_keys() {
        assert_eq!(MemModel::parse("flat").unwrap(), MemModel::Flat);
        let c = MemModel::parse("cache").unwrap();
        assert_eq!(c, MemModel::Cache(CacheParams::default()));
        let c = MemModel::parse("cache:size=16384,assoc=4,miss=64").unwrap();
        match &c {
            MemModel::Cache(p) => {
                assert_eq!(p.size, 16384);
                assert_eq!(p.assoc, 4);
                assert_eq!(p.miss_latency, 64);
            }
            other => panic!("wrong model {other:?}"),
        }
        let b = MemModel::parse("banked:banks=4,busy=8").unwrap();
        match &b {
            MemModel::Banked(_, d) => {
                assert_eq!(d.banks, 4);
                assert_eq!(d.busy, 8);
            }
            other => panic!("wrong model {other:?}"),
        }
        // canonical Display round-trips
        for spec in ["cache:size=4096,assoc=1", "banked:banks=2", "flat"] {
            let m = MemModel::parse(spec).unwrap();
            assert_eq!(MemModel::parse(&m.to_string()).unwrap(), m);
        }
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(MemModel::parse("l3").is_err());
        assert!(MemModel::parse("flat:size=1").is_err());
        assert!(
            MemModel::parse("cache:banks=4").is_err(),
            "bank key on cache"
        );
        assert!(
            MemModel::parse("cache:size=100").is_err(),
            "not line*assoc multiple"
        );
        assert!(MemModel::parse("cache:mshrs=0").is_err());
        assert!(MemModel::parse("cache:assoc=0").is_err());
        assert!(MemModel::parse("cache:nope=1").is_err());
        assert!(MemModel::parse("cache:size=x").is_err());
        assert!(
            MemModel::parse("banked:row=24").is_err(),
            "row not line multiple"
        );
        assert!(MemModel::parse("banked:rowhit=10,rowmiss=5").is_err());
    }

    #[test]
    fn flat_system_is_transparent() {
        let sys = MemSystem::new(&MemModel::Flat, 6);
        let acc = Access::scalar(0x1000, false);
        assert!(sys.accepts(&acc, 0).is_ok());
        let mut sys = sys;
        let issued = sys.access(&acc, 0, None);
        assert_eq!(issued.latency, 6);
        assert!(issued.dram);
        assert!(!issued.mshr);
        assert_eq!(sys.sb_capacity(), 0);
        assert!(sys.summary(0).is_none());
    }

    #[test]
    fn scalar_misses_then_hits() {
        let model = MemModel::parse("cache:hit=2,miss=20").unwrap();
        let mut sys = MemSystem::new(&model, 6);
        let mut st = MemStats::new(sys.sb_capacity());
        let acc = Access::scalar(0x1000, false);
        let miss = sys.access(&acc, 0, Some(&mut st));
        assert_eq!(miss.latency, 20);
        assert!(miss.dram && miss.mshr);
        let hit = sys.access(&acc, 1, Some(&mut st));
        assert_eq!(hit.latency, 2);
        assert!(!hit.dram && !hit.mshr);
        // same line, different word: still a hit
        let hit2 = sys.access(&Access::scalar(0x1004, false), 2, Some(&mut st));
        assert_eq!(hit2.latency, 2);
        assert_eq!((st.hits, st.misses), (2, 1));
        sys.release_mshr();
    }

    #[test]
    fn mshr_exhaustion_refuses_scalar_misses() {
        let model = MemModel::parse("cache:mshrs=1").unwrap();
        let mut sys = MemSystem::new(&model, 6);
        let mut st = MemStats::new(sys.sb_capacity());
        let a = Access::scalar(0x1000, false);
        let b = Access::scalar(0x8000, false);
        assert!(sys.accepts(&a, 0).is_ok());
        sys.access(&a, 0, Some(&mut st));
        assert_eq!(sys.accepts(&b, 1), Err(Refusal::MshrFull));
        // a hit is still acceptable while the MSHR is held
        assert!(sys.accepts(&a, 1).is_ok());
        sys.release_mshr();
        assert!(sys.accepts(&b, 2).is_ok());
    }

    #[test]
    fn stream_buffers_prefetch_ahead() {
        let model = MemModel::parse("cache:miss=20,depth=4,transfer=2").unwrap();
        let mut sys = MemSystem::new(&model, 6);
        let mut st = MemStats::new(sys.sb_capacity());
        // first element: demand miss, prefetches launched behind it
        let first = sys.access(&Access::stream(0x1000, false, 0, 4), 0, Some(&mut st));
        assert_eq!(first.latency, 20);
        assert!(first.dram && !first.mshr);
        assert_eq!(st.sb_misses, 1);
        assert!(st.sb_prefetches > 0);
        assert!(sys.occupancy() > 0);
        // same line later: buffered, and by now fully arrived
        let hit = sys.access(&Access::stream(0x1004, false, 0, 4), 40, Some(&mut st));
        assert_eq!(hit.latency, 2);
        assert!(!hit.dram);
        // next line was prefetched: far cheaper than the 20-cycle miss
        let next = sys.access(&Access::stream(0x1020, false, 0, 4), 41, Some(&mut st));
        assert!(next.latency < 20, "prefetched line cost {}", next.latency);
        assert!(st.sb_hits >= 2);
    }

    #[test]
    fn gather_reads_bypass_stream_buffers() {
        let model = MemModel::parse("cache:miss=20,depth=4,transfer=2").unwrap();
        let mut sys = MemSystem::new(&model, 6);
        let mut st = MemStats::new(sys.sb_capacity());
        let g = sys.access(&Access::gather(0x1000, 0), 0, Some(&mut st));
        assert_eq!(g.latency, 20, "gather pays the demand-fetch cost");
        assert!(g.dram && !g.mshr);
        assert_eq!(sys.occupancy(), 0, "no prefetch launched for a gather");
        // The same SCU's *index* stream keeps its buffer intact across
        // interleaved gathers (the point of the bypass).
        sys.access(&Access::stream(0x4000, false, 0, 4), 1, Some(&mut st));
        let occ = sys.occupancy();
        assert!(occ > 0, "index stream prefetches ahead");
        sys.access(&Access::gather(0x9000, 0), 2, Some(&mut st));
        assert_eq!(sys.occupancy(), occ, "gather left the index buffer alone");
        assert!(sys.accepts(&Access::gather(0x9000, 0), 3).is_ok());
    }

    #[test]
    fn stream_writes_invalidate_cached_lines() {
        let model = MemModel::parse("cache").unwrap();
        let mut sys = MemSystem::new(&model, 6);
        let mut st = MemStats::new(sys.sb_capacity());
        sys.access(&Access::scalar(0x2000, false), 0, Some(&mut st));
        sys.release_mshr();
        let w = sys.access(&Access::stream(0x2000, true, 1, 4), 5, Some(&mut st));
        assert!(w.dram);
        assert_eq!(st.invalidations, 1);
        // the line is gone: the next scalar reference misses again
        assert_eq!(st.misses, 1);
        sys.access(&Access::scalar(0x2000, false), 10, Some(&mut st));
        assert_eq!(st.misses, 2);
    }

    #[test]
    fn banked_banks_refuse_while_busy() {
        let model = MemModel::parse("banked:banks=1,busy=10,rowhit=4,rowmiss=8").unwrap();
        let mut sys = MemSystem::new(&model, 6);
        let mut st = MemStats::new(sys.sb_capacity());
        let a = Access::scalar(0x1000, false);
        assert!(sys.accepts(&a, 0).is_ok());
        let first = sys.access(&a, 0, Some(&mut st));
        assert_eq!(first.latency, 8, "first touch re-opens the row");
        // the single bank is now busy: a different line cannot start
        let b = Access::scalar(0x9000, false);
        assert_eq!(sys.accepts(&b, 5), Err(Refusal::BankBusy));
        assert!(sys.next_event(5).is_some());
        assert!(sys.accepts(&b, 10).is_ok(), "bank free after busy window");
        // a stream to the same busy bank is accepted with the wait folded
        sys.access(&Access::stream(0x4000, false, 0, 8), 5, Some(&mut st));
        assert!(st.bank_conflicts > 0);
    }

    #[test]
    fn dirty_evictions_write_back() {
        // direct-mapped single-set cache: two lines alias
        let model = MemModel::parse("cache:size=32,assoc=1,line=32").unwrap();
        let mut sys = MemSystem::new(&model, 6);
        let mut st = MemStats::new(sys.sb_capacity());
        sys.access(&Access::scalar(0x1000, true), 0, Some(&mut st));
        sys.release_mshr();
        sys.access(&Access::scalar(0x2000, false), 1, Some(&mut st));
        sys.release_mshr();
        assert_eq!(st.evictions, 1);
        assert_eq!(st.writebacks, 1, "dirty victim written back");
        sys.access(&Access::scalar(0x3000, false), 2, Some(&mut st));
        assert_eq!(st.evictions, 2);
        assert_eq!(st.writebacks, 1, "clean victim dropped");
    }

    #[test]
    fn occupancy_histogram_bookkeeping() {
        let mut st = MemStats::new(4);
        st.sample_occupancy_n(0, 3);
        st.sample_occupancy_n(2, 1);
        st.sample_occupancy_n(99, 2); // clamped into the last bucket
        assert_eq!(st.sb_occupancy, vec![3, 0, 1, 0, 2]);
        assert!((st.occupancy_mean() - 10.0 / 6.0).abs() < 1e-12);
        assert!((MemStats::new(1).occupancy_mean() - 0.0).abs() < 1e-12);
    }
}
