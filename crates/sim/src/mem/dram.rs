//! Banked DRAM with open-row timing.
//!
//! Lines are interleaved across banks line-by-line (`bank = line mod
//! banks`), the classic layout that lets a unit-stride stream sweep all
//! banks. Each bank remembers its open row: an access to the same row
//! costs `t_row_hit`, switching rows costs `t_row_miss`, and after
//! accepting an access the bank stays busy for `busy` cycles — the
//! per-bank bandwidth limit that makes bank conflicts a modelled
//! resource.

use super::{DramParams, MemStats};

pub(crate) struct Dram {
    banks: usize,
    lines_per_row: i64,
    t_row_hit: u64,
    t_row_miss: u64,
    busy: u64,
    /// Cycle at which each bank finishes its current access.
    free_at: Vec<u64>,
    /// The row each bank currently holds open.
    open_row: Vec<Option<i64>>,
}

impl Dram {
    pub fn new(p: &DramParams, line_bytes: usize) -> Dram {
        Dram {
            banks: p.banks,
            lines_per_row: (p.row_bytes / line_bytes) as i64,
            t_row_hit: p.t_row_hit,
            t_row_miss: p.t_row_miss,
            busy: p.busy,
            free_at: vec![0; p.banks],
            open_row: vec![None; p.banks],
        }
    }

    pub fn banks(&self) -> usize {
        self.banks
    }

    fn bank_of(&self, line_no: i64) -> usize {
        line_no.rem_euclid(self.banks as i64) as usize
    }

    /// The row `line_no` lives in within its bank (consecutive lines of
    /// one bank share a row until `lines_per_row` of them pass).
    fn row_of(&self, line_no: i64) -> i64 {
        line_no
            .div_euclid(self.banks as i64)
            .div_euclid(self.lines_per_row)
    }

    /// Is the line's bank still busy at `now`? Pure — consulted by the
    /// acceptance check on stall cycles.
    pub fn busy(&self, line_no: i64, now: u64) -> bool {
        self.free_at[self.bank_of(line_no)] > now
    }

    /// Perform an access to `line_no` at `now`, folding any remaining
    /// bank-busy wait into the returned latency (callers that must not
    /// wait check [`Dram::busy`] first, so their wait is always zero).
    pub fn access(&mut self, line_no: i64, now: u64, st: &mut MemStats) -> u64 {
        let b = self.bank_of(line_no);
        let wait = self.free_at[b].saturating_sub(now);
        if wait > 0 {
            st.bank_conflicts += 1;
        }
        let row = self.row_of(line_no);
        let t = if self.open_row[b] == Some(row) {
            st.row_hits += 1;
            self.t_row_hit
        } else {
            st.row_misses += 1;
            self.t_row_miss
        };
        self.open_row[b] = Some(row);
        self.free_at[b] = now + wait + self.busy;
        wait + t
    }

    /// The earliest cycle after `now` at which some busy bank frees (a
    /// fast-forward wake event: a refused scalar miss can retry then).
    pub fn next_free(&self, now: u64) -> Option<u64> {
        self.free_at.iter().copied().filter(|&f| f > now).min()
    }

    /// Banks still busy at `now` (for state dumps).
    pub fn busy_banks(&self, now: u64) -> usize {
        self.free_at.iter().filter(|&&f| f > now).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram(banks: usize) -> Dram {
        Dram::new(
            &DramParams {
                banks,
                row_bytes: 128, // 4 lines per row
                t_row_hit: 4,
                t_row_miss: 10,
                busy: 6,
            },
            32,
        )
    }

    #[test]
    fn open_row_hits_are_cheaper() {
        let mut d = dram(1);
        let mut st = MemStats::new(0);
        assert_eq!(d.access(0, 0, &mut st), 10, "cold bank re-opens the row");
        assert_eq!(d.access(1, 10, &mut st), 4, "same row stays open");
        assert_eq!(d.access(4, 20, &mut st), 10, "line 4 is the next row");
        assert_eq!((st.row_hits, st.row_misses), (1, 2));
    }

    #[test]
    fn busy_window_folds_into_latency() {
        let mut d = dram(2);
        let mut st = MemStats::new(0);
        d.access(0, 0, &mut st); // bank 0 busy until cycle 6
        assert!(d.busy(0, 5));
        assert!(!d.busy(1, 5), "other bank unaffected");
        assert!(!d.busy(0, 6));
        let lat = d.access(2, 3, &mut st); // bank 0 again, 3 cycles early
        assert_eq!(lat, 3 + 4, "wait + open-row hit");
        assert_eq!(st.bank_conflicts, 1);
        assert_eq!(d.next_free(3), Some(12), "start(3) + wait(3) + busy(6)");
    }

    #[test]
    fn interleaves_lines_across_banks() {
        let d = dram(4);
        assert_eq!(d.bank_of(0), 0);
        assert_eq!(d.bank_of(5), 1);
        assert_eq!(d.bank_of(-1), 3, "negative lines wrap consistently");
        // rows advance once a bank has seen lines_per_row of *its* lines
        assert_eq!(
            d.row_of(0),
            d.row_of(12),
            "lines 0,4,8,12 share bank 0 row 0"
        );
        assert_eq!(d.row_of(16), 1);
    }

    #[test]
    fn next_free_reports_earliest_busy_bank() {
        let mut d = dram(2);
        let mut st = MemStats::new(0);
        assert_eq!(d.next_free(0), None);
        d.access(0, 0, &mut st);
        d.access(1, 2, &mut st);
        assert_eq!(d.next_free(0), Some(6));
        assert_eq!(d.next_free(6), Some(8));
        assert_eq!(d.next_free(8), None);
        assert_eq!(d.busy_banks(5), 2);
    }
}
