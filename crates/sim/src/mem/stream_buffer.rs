//! Stream buffers: the SCU bypass path around the L1.
//!
//! Each buffer is a small FIFO of prefetched lines following one
//! stream's stride (Jouppi-style, but stride-directed because the SCU
//! *tells* us the stride — the paper's access/execute advantage). On a
//! demand miss the buffer flushes, fetches the demanded line, and tops
//! itself up ahead of the stream; subsequent stream requests hit
//! buffered lines whose fills are already in flight or complete, so a
//! stream's steady-state cost approaches the buffer lookup latency while
//! scalar code pays the full miss latency on every cold line.
//!
//! Indirect (gather/scatter) streams interact with the buffers in two
//! ways. The *index* stream is affine — the SCU walks `ibase + k*istride`
//! — so it maps onto a buffer like any other stream and its prefetches
//! run ahead normally. The *data* side is not: gather addresses
//! `base + (idx << shift)` follow the index values, so stride-directed
//! prefetch cannot anticipate them. Gather data requests therefore take
//! the stream bypass path (they never allocate into the L1, and stream
//! writes still invalidate matching L1 lines for coherence) but pay the
//! backing store's latency per access; on `banked` memory their cost is
//! whatever row locality the index pattern happens to have. This split —
//! cheap, ahead-of-use index fetches feeding latency-exposed data
//! fetches the SCU still issues ahead of consumption — is what the
//! memsweep latency sweep measures on `sparse-matvec`.

use std::collections::VecDeque;

use super::dram::Dram;
use super::MemStats;

/// What sits behind the buffers: banked DRAM (`banked`) or a fixed
/// `miss_latency` backing store (`cache`).
pub(crate) struct Backing<'a> {
    pub dram: Option<&'a mut Dram>,
    pub miss_latency: u64,
}

impl Backing<'_> {
    /// Fetch `line_no`, returning the access latency (bank waits folded).
    pub fn fetch(&mut self, line_no: i64, now: u64, st: &mut MemStats) -> u64 {
        match &mut self.dram {
            Some(d) => d.access(line_no, now, st),
            None => self.miss_latency,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct SbEntry {
    line: i64,
    /// Cycle the line's fill completes; a request for it before then
    /// waits out the remainder.
    ready_at: u64,
}

/// One stream buffer: a FIFO of `depth` prefetched lines.
#[derive(Debug, Clone)]
pub(crate) struct StreamBuffer {
    depth: usize,
    entries: VecDeque<SbEntry>,
    /// The next *address* the prefetcher will extend toward.
    next_pf: i64,
    /// Stride of the stream currently mapped onto this buffer.
    stride: i64,
}

/// Prefetch-advance budget per request: enough for any sane
/// stride/line-size ratio to refill a whole buffer, while bounding the
/// walk for degenerate strides.
const TOP_UP_STEPS: usize = 4096;

impl StreamBuffer {
    pub fn new(depth: usize) -> StreamBuffer {
        StreamBuffer {
            depth,
            entries: VecDeque::with_capacity(depth),
            next_pf: 0,
            stride: 0,
        }
    }

    /// Lines currently buffered (in flight or ready).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Service one stream request for `addr`. Returns `(latency,
    /// went_to_dram)`: a buffered line costs `hit_latency` plus whatever
    /// remains of its fill; an unbuffered line flushes the buffer and
    /// pays the full backing-store access. Either way the buffer then
    /// prefetches ahead along `stride`, staggered by `transfer` cycles
    /// per line (the fill path's bandwidth).
    #[allow(clippy::too_many_arguments)]
    pub fn request(
        &mut self,
        addr: i64,
        stride: i64,
        now: u64,
        hit_latency: u64,
        transfer: u64,
        line_bytes: i64,
        bk: &mut Backing<'_>,
        st: &mut MemStats,
    ) -> (u64, bool) {
        let line = addr.div_euclid(line_bytes);
        self.stride = stride;
        if let Some(pos) = self.entries.iter().position(|e| e.line == line) {
            // Passed-over lines (pos > 0 happens when a stream skips a
            // buffered line, e.g. large strides) are freed on the way.
            for _ in 0..pos {
                self.entries.pop_front();
            }
            st.sb_hits += 1;
            let ready = self.entries.front().expect("position found").ready_at;
            let latency = hit_latency + ready.saturating_sub(now);
            self.top_up(now, transfer, line_bytes, bk, st);
            (latency, false)
        } else {
            // Demand miss: the buffered run is useless for this stream
            // position — flush and restart at the demanded line.
            st.sb_misses += 1;
            self.entries.clear();
            let latency = bk.fetch(line, now, st);
            self.entries.push_back(SbEntry {
                line,
                ready_at: now + latency,
            });
            self.next_pf = addr.wrapping_add(stride);
            self.top_up(now, transfer, line_bytes, bk, st);
            (latency, true)
        }
    }

    /// Extend the buffer toward `depth` lines ahead along the stride.
    fn top_up(
        &mut self,
        now: u64,
        transfer: u64,
        line_bytes: i64,
        bk: &mut Backing<'_>,
        st: &mut MemStats,
    ) {
        if self.stride == 0 {
            return; // a strideless stream re-reads one address: nothing to run ahead to
        }
        let mut steps = 0;
        while self.entries.len() < self.depth && steps < TOP_UP_STEPS {
            steps += 1;
            let line = self.next_pf.div_euclid(line_bytes);
            self.next_pf = self.next_pf.wrapping_add(self.stride);
            if self.entries.iter().any(|e| e.line == line) {
                continue; // still inside an already-buffered line
            }
            let latency = bk.fetch(line, now, st);
            // Fills arrive at most one per `transfer` cycles: later
            // prefetches queue behind earlier ones on the fill path.
            let after = self.entries.back().map_or(0, |e| e.ready_at + transfer);
            self.entries.push_back(SbEntry {
                line,
                ready_at: (now + latency).max(after),
            });
            st.sb_prefetches += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_backing() -> Backing<'static> {
        Backing {
            dram: None,
            miss_latency: 20,
        }
    }

    #[test]
    fn sequential_stream_settles_into_hits() {
        let mut sb = StreamBuffer::new(4);
        let mut st = MemStats::new(0);
        let mut bk = flat_backing();
        let (lat, dram) = sb.request(0, 4, 0, 2, 2, 32, &mut bk, &mut st);
        assert_eq!((lat, dram), (20, true), "cold start pays the miss");
        assert_eq!(sb.len(), 4, "topped up to depth");
        assert_eq!(st.sb_prefetches, 3);
        // every subsequent element of the swept range is buffered
        // (starting at cycle 60, by which everything has arrived)
        for (now, addr) in (60..).zip((4..256).step_by(4)) {
            let (lat, dram) = sb.request(addr, 4, now, 2, 2, 32, &mut bk, &mut st);
            assert_eq!((lat, dram), (2, false), "addr {addr} should be buffered");
        }
        assert_eq!(st.sb_misses, 1);
    }

    #[test]
    fn fills_stagger_by_transfer_bandwidth() {
        let mut sb = StreamBuffer::new(4);
        let mut st = MemStats::new(0);
        let mut bk = flat_backing();
        sb.request(0, 4, 0, 2, 5, 32, &mut bk, &mut st);
        // entries ready at 20, then spaced >= 5 apart: 25, 30
        let (lat, _) = sb.request(32, 4, 21, 2, 5, 32, &mut bk, &mut st);
        assert_eq!(lat, 2 + (25 - 21), "second line still 4 cycles out");
    }

    #[test]
    fn redirect_flushes_stale_run() {
        let mut sb = StreamBuffer::new(4);
        let mut st = MemStats::new(0);
        let mut bk = flat_backing();
        sb.request(0, 4, 0, 2, 2, 32, &mut bk, &mut st);
        // a new stream on the same buffer, elsewhere, descending
        let (lat, dram) = sb.request(0x4000, -8, 100, 2, 2, 32, &mut bk, &mut st);
        assert_eq!((lat, dram), (20, true));
        // prefetches now run downward
        let (lat, dram) = sb.request(0x4000 - 32, -8, 200, 2, 2, 32, &mut bk, &mut st);
        assert_eq!(
            (lat, dram),
            (2, false),
            "descending neighbour was prefetched"
        );
    }

    #[test]
    fn zero_stride_does_not_prefetch() {
        let mut sb = StreamBuffer::new(4);
        let mut st = MemStats::new(0);
        let mut bk = flat_backing();
        sb.request(64, 0, 0, 2, 2, 32, &mut bk, &mut st);
        assert_eq!(sb.len(), 1, "only the demanded line");
        assert_eq!(st.sb_prefetches, 0);
        let (lat, _) = sb.request(64, 0, 50, 2, 2, 32, &mut bk, &mut st);
        assert_eq!(lat, 2, "the one line keeps hitting");
    }

    #[test]
    fn large_strides_skip_lines_without_stalling() {
        let mut sb = StreamBuffer::new(2);
        let mut st = MemStats::new(0);
        let mut bk = flat_backing();
        // stride of 4 lines: every prefetch is a distinct line
        sb.request(0, 128, 0, 2, 2, 32, &mut bk, &mut st);
        assert_eq!(sb.len(), 2);
        let (_, dram) = sb.request(128, 128, 60, 2, 2, 32, &mut bk, &mut st);
        assert!(!dram, "next stride target was prefetched");
    }
}
