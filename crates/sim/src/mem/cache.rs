//! The L1 data cache: set-associative tags with LRU replacement,
//! write-back + write-allocate.
//!
//! Timing-only — the cache holds *tags*, never data (architectural state
//! stays in the [`crate::MemoryImage`]). A line's `dirty` bit exists
//! solely to decide whether its eviction costs a writeback access to the
//! backing store.

use super::CacheParams;

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    line_no: i64,
    /// LRU timestamp: monotonically increasing touch counter.
    lru: u64,
}

/// Set-associative tag array.
pub(crate) struct L1 {
    sets: usize,
    assoc: usize,
    line_bytes: i64,
    /// `sets * assoc` entries, set-major.
    lines: Vec<Line>,
    /// Monotonic touch counter driving LRU (deterministic, so both
    /// stepping engines see identical replacement decisions).
    tick: u64,
}

impl L1 {
    pub fn new(p: &CacheParams) -> L1 {
        let sets = p.size / (p.line * p.assoc);
        L1 {
            sets,
            assoc: p.assoc,
            line_bytes: p.line as i64,
            lines: vec![Line::default(); sets * p.assoc],
            tick: 0,
        }
    }

    /// The line number containing `addr` (`div_euclid`, so negative
    /// addresses — which over-fetching streams can produce — index
    /// consistently instead of panicking).
    pub fn line_of(&self, addr: i64) -> i64 {
        addr.div_euclid(self.line_bytes)
    }

    fn set_of(&self, line_no: i64) -> usize {
        line_no.rem_euclid(self.sets as i64) as usize
    }

    fn ways(&self, line_no: i64) -> std::ops::Range<usize> {
        let s = self.set_of(line_no) * self.assoc;
        s..s + self.assoc
    }

    /// Is `line_no` present? Pure (no LRU update): used by the
    /// acceptance check, which runs on stall cycles.
    pub fn probe(&self, line_no: i64) -> bool {
        self.ways(line_no)
            .any(|w| self.lines[w].valid && self.lines[w].line_no == line_no)
    }

    /// Reference `line_no`: on a hit, refresh its LRU position (and set
    /// `dirty` for a write). Returns whether it hit.
    pub fn touch(&mut self, line_no: i64, write: bool) -> bool {
        self.tick += 1;
        for w in self.ways(line_no) {
            let l = &mut self.lines[w];
            if l.valid && l.line_no == line_no {
                l.lru = self.tick;
                l.dirty |= write;
                return true;
            }
        }
        false
    }

    /// Fill `line_no` (write-allocate: `dirty` for a write miss),
    /// evicting the set's LRU way if the set is full. Returns the evicted
    /// `(line_no, dirty)` when a valid line was displaced.
    pub fn insert(&mut self, line_no: i64, dirty: bool) -> Option<(i64, bool)> {
        self.tick += 1;
        let victim = self
            .ways(line_no)
            .min_by_key(|&w| (self.lines[w].valid, self.lines[w].lru))
            .expect("assoc >= 1");
        let evicted = {
            let l = self.lines[victim];
            l.valid.then_some((l.line_no, l.dirty))
        };
        self.lines[victim] = Line {
            valid: true,
            dirty,
            line_no,
            lru: self.tick,
        };
        evicted
    }

    /// Drop `line_no` if present (stream-write coherence). The copy is
    /// discarded without a writeback — the architectural data lives in
    /// the memory image, so only the timing fiction is dropped. Returns
    /// whether a line was invalidated.
    pub fn invalidate(&mut self, line_no: i64) -> bool {
        for w in self.ways(line_no) {
            let l = &mut self.lines[w];
            if l.valid && l.line_no == line_no {
                l.valid = false;
                l.dirty = false;
                return true;
            }
        }
        false
    }

    /// Valid lines currently held (for state dumps).
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> L1 {
        // 2 sets x 2 ways x 32-byte lines
        L1::new(&CacheParams {
            size: 128,
            assoc: 2,
            line: 32,
            ..CacheParams::default()
        })
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut c = tiny();
        // lines 0, 2, 4 all map to set 0 (even line numbers)
        assert!(c.insert(0, false).is_none());
        assert!(c.insert(2, false).is_none());
        assert!(c.touch(0, false), "line 0 refreshed");
        let evicted = c.insert(4, false).expect("set full");
        assert_eq!(evicted, (2, false), "line 2 was least recent");
        assert!(c.probe(0) && c.probe(4) && !c.probe(2));
    }

    #[test]
    fn dirty_travels_through_eviction() {
        let mut c = tiny();
        c.insert(0, false);
        assert!(c.touch(0, true), "write hit marks dirty");
        c.insert(2, false);
        let (line, dirty) = c.insert(4, false).unwrap();
        assert_eq!((line, dirty), (0, true));
    }

    #[test]
    fn invalidate_clears_only_the_named_line() {
        let mut c = tiny();
        c.insert(0, true);
        c.insert(2, false);
        assert!(c.invalidate(0));
        assert!(!c.invalidate(0), "already gone");
        assert!(!c.probe(0) && c.probe(2));
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn negative_addresses_index_consistently() {
        let c = tiny();
        let l = c.line_of(-1);
        assert_eq!(l, -1, "addresses -32..0 share line -1");
        assert_eq!(c.line_of(-32), -1);
        assert_eq!(c.line_of(-33), -2);
        // and map to an in-range set either way
        let mut c = c;
        assert!(c.insert(l, false).is_none());
        assert!(c.probe(l));
    }
}
