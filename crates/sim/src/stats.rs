//! Cycle-accounted performance counters.
//!
//! The paper's evaluation is an argument about *where cycles go*: which
//! memory references retire through stream control units and which through
//! the execute pipeline. This module gives the simulator hardware-style
//! observability: every unit (IEU, FEU, VEU, IFU and each SCU) attributes
//! **every simulated cycle to exactly one bucket** — active, idle, or one
//! named stall reason — so per-unit `active + idle + Σ stalls == cycles`
//! holds exactly, by construction. On top of the cycle attribution the
//! machine keeps FIFO-occupancy histograms, memory-port utilization and
//! per-SCU element counts (including poisoned over-fetch deliveries).
//!
//! [`Stats`] is carried on [`crate::RunResult`] as the `perf` field, is
//! rendered human-readably by its `Display` impl (`wmcc --stats`) and
//! machine-readably by [`Stats::to_json`] (`wmcc --stats-json`).

use std::fmt;

use crate::mem::MemStats;

/// Why a unit could not do useful work in a cycle.
///
/// The names mirror the hardware structures of the WM: data FIFOs,
/// condition-code FIFOs, instruction queues, memory ports, the
/// store-address queue and the stream control units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stall {
    /// An input data FIFO the head instruction dequeues is empty.
    FifoEmpty,
    /// The destination FIFO (a load's target, an SCU's back-pressured
    /// sink) is at capacity.
    FifoFull,
    /// The unit's output FIFO is full.
    OutFull,
    /// The condition-code FIFO is full (a compare cannot retire).
    CcFull,
    /// IFU: a conditional jump waits on an empty condition-code FIFO.
    CcEmpty,
    /// The paired-ALU one-cycle dependency interlock.
    Interlock,
    /// No memory port is free this cycle.
    PortBusy,
    /// A load/prefetch is held by memory ordering (pending stores or an
    /// older out-stream that still owes a write to the range).
    MemOrder,
    /// The store-address queue is full.
    StoreQFull,
    /// No free SCU, or a previous stream on the FIFO is still draining.
    ScuBusy,
    /// IFU: a stream-termination jump's counter is not yet configured.
    StreamWait,
    /// IFU: the dispatch target's instruction queue is full.
    IqFull,
    /// IFU: waiting for unit quiescence (builtins, conversions) or held
    /// by builtin I/O latency.
    Sync,
    /// SCU: latching a stream configuration (`scu_setup` cycles).
    Setup,
    /// SCU: disabled by fault injection with its stream unfinished.
    Disabled,
    /// All MSHRs hold outstanding misses: the memory hierarchy cannot
    /// accept another scalar miss (`cache`/`banked` models only).
    MshrFull,
    /// The miss's DRAM bank is busy with a previous access (`banked`
    /// model only).
    BankBusy,
    /// Gather/scatter SCU: the internal index FIFO is empty — every
    /// buffered index has been consumed and the outstanding index fetches
    /// have not returned yet.
    IndexFifoEmpty,
    /// SCU: recovering from a speculative-stream squash (a stream was
    /// stopped with fetched-ahead elements still undelivered, and
    /// `squash_penalty` cycles are charged before the slot frees).
    SpecSquash,
    /// Tiled machine: a channel receive waits on a peer tile that has
    /// not sent (or whose message is still crossing the fabric).
    ChanEmpty,
    /// Tiled machine: a channel stream send is out of credits (the
    /// receiver's queue for this sender is at capacity).
    ChanFull,
}

impl Stall {
    /// Every stall reason, in rendering order.
    pub const ALL: [Stall; 21] = [
        Stall::FifoEmpty,
        Stall::FifoFull,
        Stall::OutFull,
        Stall::CcFull,
        Stall::CcEmpty,
        Stall::Interlock,
        Stall::PortBusy,
        Stall::MemOrder,
        Stall::StoreQFull,
        Stall::ScuBusy,
        Stall::StreamWait,
        Stall::IqFull,
        Stall::Sync,
        Stall::Setup,
        Stall::Disabled,
        Stall::MshrFull,
        Stall::BankBusy,
        Stall::IndexFifoEmpty,
        Stall::SpecSquash,
        Stall::ChanEmpty,
        Stall::ChanFull,
    ];

    /// Stable machine-readable name (used by the JSON rendering).
    pub fn name(self) -> &'static str {
        match self {
            Stall::FifoEmpty => "fifo-empty",
            Stall::FifoFull => "fifo-full",
            Stall::OutFull => "out-full",
            Stall::CcFull => "cc-full",
            Stall::CcEmpty => "cc-empty",
            Stall::Interlock => "interlock",
            Stall::PortBusy => "port-busy",
            Stall::MemOrder => "mem-order",
            Stall::StoreQFull => "storeq-full",
            Stall::ScuBusy => "scu-busy",
            Stall::StreamWait => "stream-wait",
            Stall::IqFull => "iq-full",
            Stall::Sync => "sync",
            Stall::Setup => "setup",
            Stall::Disabled => "disabled",
            Stall::MshrFull => "mshr-full",
            Stall::BankBusy => "bank-busy",
            Stall::IndexFifoEmpty => "index-fifo-empty",
            Stall::SpecSquash => "spec-squash",
            Stall::ChanEmpty => "chan-empty",
            Stall::ChanFull => "chan-full",
        }
    }
}

/// What one unit did in one cycle. The machine records exactly one
/// outcome per unit per cycle, which is what makes the attribution exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Retired an instruction, issued a request, or executed part of a
    /// multi-cycle operation.
    Active,
    /// Nothing to do (empty queue / inactive stream).
    Idle,
    /// Had work but could not make progress, for the named reason.
    Stall(Stall),
}

/// Cycle attribution and retirement count for one unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnitCounters {
    /// Instructions retired (for SCUs: elements transferred). The IFU can
    /// retire several free control transfers per cycle, so this is *not*
    /// bounded by `active`.
    pub retired: u64,
    /// Cycles doing useful work.
    pub active: u64,
    /// Cycles with nothing to do.
    pub idle: u64,
    /// Cycles stalled, indexed by [`Stall::ALL`] order.
    pub stall: [u64; Stall::ALL.len()],
}

impl UnitCounters {
    /// Record one cycle's outcome.
    pub fn record(&mut self, outcome: Outcome) {
        self.record_n(outcome, 1);
    }

    /// Record `n` consecutive cycles with the same outcome (the
    /// fast-forward engine's bulk accounting of a skipped stall span).
    pub fn record_n(&mut self, outcome: Outcome, n: u64) {
        match outcome {
            Outcome::Active => self.active += n,
            Outcome::Idle => self.idle += n,
            Outcome::Stall(s) => self.stall[s as usize] += n,
        }
    }

    /// Total stalled cycles across all reasons.
    pub fn stalled(&self) -> u64 {
        self.stall.iter().sum()
    }

    /// Cycles attributed in total; equals the run's cycle count when the
    /// attribution is exact.
    pub fn attributed(&self) -> u64 {
        self.active + self.idle + self.stalled()
    }

    /// Cycles stalled for one reason.
    pub fn stalled_on(&self, s: Stall) -> u64 {
        self.stall[s as usize]
    }
}

/// Counters for one stream control unit: cycle attribution plus element
/// accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScuCounters {
    /// Cycle attribution (`retired` counts elements transferred).
    pub unit: UnitCounters,
    /// Elements fetched from memory (stream-in requests issued).
    pub elements_in: u64,
    /// Elements stored to memory (stream-out writes issued).
    pub elements_out: u64,
    /// Poisoned FIFO entries delivered (over-fetch past a permission
    /// boundary under deferred-speculation semantics).
    pub poisoned: u64,
    /// Index elements fetched by a gather/scatter stream (the internal
    /// index FIFO's traffic; the dependent data accesses are counted in
    /// `elements_in`/`elements_out`).
    pub index_fetches: u64,
    /// Fetched-ahead elements discarded when a speculative stream was
    /// squashed (stopped with queued or in-flight data undelivered).
    pub squashed: u64,
}

/// Occupancy histogram of one FIFO: `depth[d]` is the number of cycles the
/// FIFO held `d` entries (the last bucket also absorbs deeper states).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FifoHist {
    /// FIFO name (`"ieu.in0"`, `"feu.cc"`, …).
    pub name: &'static str,
    /// Cycles at each depth, length `capacity + 1`.
    pub depth: Vec<u64>,
}

impl FifoHist {
    /// Record one cycle at `depth` (clamped into the last bucket).
    pub fn sample(&mut self, depth: usize) {
        self.sample_n(depth, 1);
    }

    /// Record `n` consecutive cycles at the same `depth` (bulk accounting
    /// for fast-forwarded spans, during which no FIFO depth changes).
    pub fn sample_n(&mut self, depth: usize, n: u64) {
        let i = depth.min(self.depth.len() - 1);
        self.depth[i] += n;
    }

    /// Mean occupancy over the sampled cycles.
    pub fn mean(&self) -> f64 {
        let total: u64 = self.depth.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .depth
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        weighted as f64 / total as f64
    }
}

/// The FIFOs the machine samples every cycle, in histogram order.
pub const FIFO_NAMES: [&str; 8] = [
    "ieu.in0", "ieu.in1", "ieu.out", "ieu.cc", "feu.in0", "feu.in1", "feu.out", "feu.cc",
];

/// Timeline-track name for the aggregate stream-buffer occupancy
/// (rendered by the Chrome trace exporter as one more counter track,
/// alongside the [`FIFO_NAMES`] tracks; emitted only under hierarchical
/// memory models).
pub const SBUF_TRACK: &str = "sbuf";

/// One change-point of a FIFO's depth, collected when the machine's
/// timeline recording is enabled (see `WmMachine::set_timeline`). The
/// sequence of samples for one FIFO is a step function of its occupancy,
/// which is what a Chrome `trace_event` counter track renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthSample {
    /// Cycle at which the depth changed.
    pub cycle: u64,
    /// FIFO name (one of [`FIFO_NAMES`]).
    pub fifo: &'static str,
    /// The new depth.
    pub depth: usize,
}

/// The full performance-counter state of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stats {
    /// Total cycles simulated (the denominator of every attribution).
    pub cycles: u64,
    /// Integer execution unit.
    pub ieu: UnitCounters,
    /// Floating-point execution unit.
    pub feu: UnitCounters,
    /// Vector execution unit.
    pub veu: UnitCounters,
    /// Instruction fetch unit.
    pub ifu: UnitCounters,
    /// One entry per stream control unit.
    pub scus: Vec<ScuCounters>,
    /// Occupancy histograms in [`FIFO_NAMES`] order.
    pub fifos: Vec<FifoHist>,
    /// Memory-port utilization: `ports[n]` is the number of cycles with
    /// exactly `n` memory requests accepted.
    pub ports: Vec<u64>,
    /// Memory-hierarchy counters (`None` under the flat model, keeping
    /// flat output bit-identical to the pre-hierarchy simulator).
    pub mem: Option<MemStats>,
}

impl Stats {
    /// Fresh counters for a machine with `num_scus` stream units,
    /// data/cc FIFO capacities, and `mem_ports` memory ports.
    pub fn new(num_scus: usize, fifo_capacity: usize, cc_capacity: usize, mem_ports: u32) -> Stats {
        let fifos = FIFO_NAMES
            .iter()
            .map(|&name| {
                let cap = if name.ends_with(".cc") {
                    cc_capacity
                } else {
                    fifo_capacity
                };
                FifoHist {
                    name,
                    depth: vec![0; cap + 1],
                }
            })
            .collect();
        Stats {
            cycles: 0,
            ieu: UnitCounters::default(),
            feu: UnitCounters::default(),
            veu: UnitCounters::default(),
            ifu: UnitCounters::default(),
            scus: vec![ScuCounters::default(); num_scus],
            fifos,
            ports: vec![0; mem_ports as usize + 1],
            mem: None,
        }
    }

    /// Named units with their counters, in rendering order.
    pub fn units(&self) -> [(&'static str, &UnitCounters); 4] {
        [
            ("IEU", &self.ieu),
            ("FEU", &self.feu),
            ("VEU", &self.veu),
            ("IFU", &self.ifu),
        ]
    }

    /// Verify the exactness invariant: every unit (and every SCU) has
    /// attributed exactly [`Stats::cycles`] cycles.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first unit whose attribution differs
    /// from the cycle count.
    pub fn check_attribution(&self) -> Result<(), String> {
        for (name, u) in self.units() {
            if u.attributed() != self.cycles {
                return Err(format!(
                    "{name} attributed {} of {} cycles",
                    u.attributed(),
                    self.cycles
                ));
            }
        }
        for (i, s) in self.scus.iter().enumerate() {
            if s.unit.attributed() != self.cycles {
                return Err(format!(
                    "SCU {i} attributed {} of {} cycles",
                    s.unit.attributed(),
                    self.cycles
                ));
            }
        }
        let port_cycles: u64 = self.ports.iter().sum();
        if port_cycles != self.cycles {
            return Err(format!(
                "port histogram covers {port_cycles} of {} cycles",
                self.cycles
            ));
        }
        if let Some(m) = &self.mem {
            let occ_cycles: u64 = m.sb_occupancy.iter().sum();
            if occ_cycles != self.cycles {
                return Err(format!(
                    "stream-buffer occupancy histogram covers {occ_cycles} of {} cycles",
                    self.cycles
                ));
            }
        }
        Ok(())
    }

    /// Render as a machine-readable JSON document (no external
    /// dependencies; see `wm-bench`'s hand parser for the inverse).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str(&format!("  \"cycles\": {},\n", self.cycles));
        out.push_str("  \"units\": {\n");
        let units = self.units();
        for (k, (name, u)) in units.iter().enumerate() {
            out.push_str(&format!("    \"{name}\": "));
            push_unit_json(&mut out, u, "    ");
            out.push_str(if k + 1 < units.len() { ",\n" } else { "\n" });
        }
        out.push_str("  },\n");
        out.push_str("  \"scus\": [\n");
        for (i, s) in self.scus.iter().enumerate() {
            out.push_str("    {\"unit\": ");
            push_unit_json(&mut out, &s.unit, "    ");
            out.push_str(&format!(
                ", \"elements_in\": {}, \"elements_out\": {}, \"poisoned\": {}, \
                 \"index_fetches\": {}, \"squashed\": {}}}",
                s.elements_in, s.elements_out, s.poisoned, s.index_fetches, s.squashed
            ));
            out.push_str(if i + 1 < self.scus.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"fifos\": {\n");
        for (i, f) in self.fifos.iter().enumerate() {
            out.push_str(&format!("    \"{}\": {}", f.name, json_u64_array(&f.depth)));
            out.push_str(if i + 1 < self.fifos.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  },\n");
        if let Some(m) = &self.mem {
            out.push_str(&format!(
                "  \"mem\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
                 \"writebacks\": {}, \"invalidations\": {}, \"sb_hits\": {}, \
                 \"sb_misses\": {}, \"sb_prefetches\": {}, \"bank_conflicts\": {}, \
                 \"row_hits\": {}, \"row_misses\": {}, \"sb_occupancy\": {}}},\n",
                m.hits,
                m.misses,
                m.evictions,
                m.writebacks,
                m.invalidations,
                m.sb_hits,
                m.sb_misses,
                m.sb_prefetches,
                m.bank_conflicts,
                m.row_hits,
                m.row_misses,
                json_u64_array(&m.sb_occupancy)
            ));
        }
        out.push_str(&format!("  \"ports\": {}\n", json_u64_array(&self.ports)));
        out.push_str("}\n");
        out
    }
}

fn json_u64_array(v: &[u64]) -> String {
    let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn push_unit_json(out: &mut String, u: &UnitCounters, _indent: &str) {
    out.push_str(&format!(
        "{{\"retired\": {}, \"active\": {}, \"idle\": {}, \"stalls\": {{",
        u.retired, u.active, u.idle
    ));
    let mut first = true;
    for s in Stall::ALL {
        let n = u.stalled_on(s);
        if n > 0 {
            if !first {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {n}", s.name()));
            first = false;
        }
    }
    out.push_str("}}");
}

fn fmt_stalls(u: &UnitCounters) -> String {
    let parts: Vec<String> = Stall::ALL
        .iter()
        .filter(|&&s| u.stalled_on(s) > 0)
        .map(|&s| format!("{} {}", s.name(), u.stalled_on(s)))
        .collect();
    if parts.is_empty() {
        "—".to_string()
    } else {
        parts.join(", ")
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "performance counters ({} cycles)", self.cycles)?;
        writeln!(
            f,
            "{:<6} {:>12} {:>12} {:>12} {:>12}  stall breakdown",
            "unit", "retired", "active", "idle", "stalled"
        )?;
        for (name, u) in self.units() {
            writeln!(
                f,
                "{:<6} {:>12} {:>12} {:>12} {:>12}  {}",
                name,
                u.retired,
                u.active,
                u.idle,
                u.stalled(),
                fmt_stalls(u)
            )?;
        }
        for (i, s) in self.scus.iter().enumerate() {
            writeln!(
                f,
                "{:<6} {:>12} {:>12} {:>12} {:>12}  {}",
                format!("SCU{i}"),
                s.unit.retired,
                s.unit.active,
                s.unit.idle,
                s.unit.stalled(),
                fmt_stalls(&s.unit)
            )?;
        }
        let busy = |s: &ScuCounters| {
            s.elements_in + s.elements_out + s.poisoned + s.index_fetches + s.squashed > 0
        };
        let streaming: Vec<&ScuCounters> = self.scus.iter().filter(|s| busy(s)).collect();
        if !streaming.is_empty() {
            writeln!(f, "streams:")?;
            for (i, s) in self.scus.iter().enumerate() {
                if busy(s) {
                    write!(
                        f,
                        "  SCU{i}: {} elements in, {} out, {} poisoned",
                        s.elements_in, s.elements_out, s.poisoned
                    )?;
                    if s.index_fetches > 0 {
                        write!(f, ", {} index fetches", s.index_fetches)?;
                    }
                    if s.squashed > 0 {
                        write!(f, ", {} squashed", s.squashed)?;
                    }
                    writeln!(f)?;
                }
            }
        }
        writeln!(f, "fifo occupancy (mean; cycles per depth 0..cap):")?;
        for h in &self.fifos {
            let total: u64 = h.depth.iter().sum();
            if total == 0 || h.depth[0] == total {
                continue; // never occupied: omit for brevity
            }
            let cells: Vec<String> = h.depth.iter().map(|c| c.to_string()).collect();
            writeln!(f, "  {:<8} {:.2}  [{}]", h.name, h.mean(), cells.join(" "))?;
        }
        writeln!(f, "memory ports (cycles with n requests accepted):")?;
        let cells: Vec<String> = self
            .ports
            .iter()
            .enumerate()
            .map(|(n, c)| format!("{n}: {c}"))
            .collect();
        writeln!(f, "  {}", cells.join(", "))?;
        if let Some(m) = &self.mem {
            writeln!(f, "memory hierarchy:")?;
            writeln!(
                f,
                "  L1: {} hits, {} misses ({:.1}% hit rate), {} evictions ({} writebacks), \
                 {} stream invalidations",
                m.hits,
                m.misses,
                m.hit_rate() * 100.0,
                m.evictions,
                m.writebacks,
                m.invalidations
            )?;
            writeln!(
                f,
                "  stream buffers: {} hits, {} misses, {} prefetches; mean occupancy {:.2} line(s)",
                m.sb_hits,
                m.sb_misses,
                m.sb_prefetches,
                m.occupancy_mean()
            )?;
            if m.row_hits + m.row_misses > 0 {
                writeln!(
                    f,
                    "  banks: {} conflicts, {} row hits, {} row misses",
                    m.bank_conflicts, m.row_hits, m.row_misses
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_is_per_cycle_exact() {
        let mut s = Stats::new(2, 8, 8, 2);
        for _ in 0..10 {
            s.cycles += 1;
            s.ieu.record(Outcome::Active);
            s.feu.record(Outcome::Idle);
            s.veu.record(Outcome::Idle);
            s.ifu.record(Outcome::Stall(Stall::CcEmpty));
            for scu in &mut s.scus {
                scu.unit.record(Outcome::Idle);
            }
            s.ports[0] += 1;
        }
        s.check_attribution().unwrap();
        assert_eq!(s.ifu.stalled_on(Stall::CcEmpty), 10);
        assert_eq!(s.ifu.stalled(), 10);
        // one miscounted cycle breaks the invariant
        s.ieu.record(Outcome::Active);
        assert!(s.check_attribution().is_err());
    }

    #[test]
    fn fifo_histogram_clamps_and_averages() {
        let mut h = FifoHist {
            name: "ieu.in0",
            depth: vec![0; 5],
        };
        h.sample(0);
        h.sample(2);
        h.sample(400); // clamped into the last bucket
        assert_eq!(h.depth, vec![1, 0, 1, 0, 1]);
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mem_counters_render_and_extend_the_invariant() {
        let mut s = Stats::new(1, 2, 2, 1);
        for _ in 0..4 {
            s.cycles += 1;
            s.ieu.record(Outcome::Idle);
            s.feu.record(Outcome::Idle);
            s.veu.record(Outcome::Idle);
            s.ifu.record(Outcome::Stall(Stall::MshrFull));
            s.scus[0].unit.record(Outcome::Idle);
            s.ports[0] += 1;
        }
        // flat: no mem section anywhere
        assert!(!s.to_json().contains("\"mem\""));
        assert!(!s.to_string().contains("memory hierarchy"));
        s.check_attribution().unwrap();
        // hierarchical: section present, occupancy joins the invariant
        let mut m = MemStats::new(4);
        m.hits = 3;
        m.misses = 1;
        m.sample_occupancy_n(2, 4);
        s.mem = Some(m);
        s.check_attribution().unwrap();
        assert!(s.to_json().contains("\"mem\""));
        assert!(s.to_json().contains("\"sb_occupancy\": [0, 0, 4, 0, 0]"));
        assert!(s.to_string().contains("memory hierarchy"));
        assert_eq!(s.ifu.stalled_on(Stall::MshrFull), 4);
        // an under-sampled occupancy histogram breaks the invariant
        s.mem.as_mut().unwrap().sb_occupancy[2] -= 1;
        assert!(s.check_attribution().is_err());
    }

    #[test]
    fn json_has_stable_shape() {
        let mut s = Stats::new(1, 2, 2, 1);
        s.cycles = 3;
        s.ieu.record(Outcome::Stall(Stall::FifoEmpty));
        let j = s.to_json();
        assert!(j.contains("\"cycles\": 3"));
        assert!(j.contains("\"IEU\""));
        assert!(j.contains("\"fifo-empty\": 1"));
        assert!(j.contains("\"ieu.in0\""));
        assert!(j.contains("\"ports\""));
    }
}
