//! Pre-decoded instruction tables for the compiled stepping engine.
//!
//! The per-cycle and event engines interpret [`InstKind`] with a match on
//! every issue attempt: operands are re-classified (register? FIFO? zero?
//! immediate?), FIFO demands and interlock register sets are recomputed,
//! branch labels are resolved by a linear block scan, and global symbols
//! are looked up per execution. `DecodedProgram` does all of that work
//! once, at machine construction:
//!
//! * every instruction slot gets a [`DecodedInst`] — a `Copy` record with
//!   an indirect **exec function pointer** ([`ExecFn`]) replacing the
//!   interpreter's match, its FIFO demand (`need`) and interlock register
//!   set (`read_mask`) precomputed, and its operands resolved to flat
//!   array slots ([`Src`]/[`Dst`]);
//! * immediate-only subexpressions are folded (integer folds skip
//!   division by zero so the runtime fault is preserved; float folds use
//!   the identical `f64` operations, so results stay bit-identical);
//! * control flow is resolved: branch targets become block indices,
//!   `Call` targets become function indices, and `LoadAddr` symbols are
//!   folded to absolute addresses;
//! * instructions the table cannot express exactly (stream configuration,
//!   FIFO-mapped or cross-class corner cases) decode to a **fallback**
//!   exec that calls the reference interpreter arm for that one
//!   instruction, so behavior is bit-identical by construction.
//!
//! The unit instruction queues hold `u32` indices into this table (for
//! every engine — a dispatched instruction is identified by its slot, not
//! by a clone), and [`DecodedInst::kind`] points back at the module's
//! original [`InstKind`] for traces, fault reports and the fallback path.

use std::collections::HashMap;

use wm_ir::{
    BinOp, CmpOp, DataFifo, GlobalKind, InstKind, Module, Operand, RExpr, Reg, RegClass, SymId,
    UnOp, Width,
};

use crate::compiled::{
    exec_assign, exec_compare, exec_fallback, exec_loadaddr, exec_wload, exec_wstore,
};
use crate::machine::{dispatch_class, fifo_need, Exec, SimError, WmMachine};

/// An exec handler for one decoded instruction: the compiled engine's
/// replacement for the interpreter's match on [`InstKind`].
pub(crate) type ExecFn =
    for<'a, 'm> fn(&'a mut WmMachine<'m>, &DecodedInst<'m>) -> Result<Exec, SimError>;

/// A source operand resolved to a flat slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Src {
    /// Integer immediate (possibly the result of decode-time folding).
    Imm(i64),
    /// Float immediate (possibly folded; folds are bit-identical).
    FImm(f64),
    /// An ordinary register: a direct index into the unit's register file.
    Reg(u8),
    /// FIFO-mapped register 0 or 1: reading dequeues.
    Fifo(u8),
    /// Register 31: reads as zero.
    Zero,
}

/// A destination register resolved to a flat slot. Writes to register 1
/// (read-only FIFO) are not representable — such instructions fall back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Dst {
    /// Register 0: push onto the unit's output FIFO.
    Out,
    /// Register 31: the write is discarded.
    Zero,
    /// An ordinary register.
    Reg(u8),
}

/// A pre-decoded right-hand-side expression (mirrors [`RExpr`] with
/// operands resolved and immediate-only subtrees folded).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum DecExpr {
    Op(Src),
    Un(UnOp, Src),
    Bin(BinOp, Src, Src),
    Dual {
        inner: BinOp,
        a: Src,
        b: Src,
        outer: BinOp,
        c: Src,
    },
}

/// The decoded execution-unit payload, matched (once, at decode time)
/// from the instruction kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Payload {
    Assign {
        dst: Dst,
        src: DecExpr,
        /// The register the paired-ALU interlock must delay (`None` for
        /// FIFO/zero destinations) — precomputed from the interpreter's
        /// retire bookkeeping.
        executed_dst: Option<u8>,
    },
    LoadAddr {
        dst: Dst,
        /// Absolute address: symbol base + displacement, folded at decode.
        addr: i64,
        executed_dst: Option<u8>,
    },
    Compare {
        op: CmpOp,
        a: Src,
        b: Src,
    },
    WLoad {
        fifo: DataFifo,
        addr: DecExpr,
        width: Width,
    },
    WStore {
        unit: RegClass,
        addr: DecExpr,
        width: Width,
    },
    /// No decoded payload: the exec handler is the interpreter fallback.
    None,
}

/// What the IFU does with this instruction, with control-flow targets
/// pre-resolved to block / function indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum IfuOp {
    Nop,
    Jump {
        block: u32,
    },
    Branch {
        class: RegClass,
        when: bool,
        t: u32,
        e: u32,
    },
    BranchStream {
        fifo: DataFifo,
        t: u32,
        e: u32,
    },
    BranchVec {
        t: u32,
        e: u32,
    },
    CallFunc {
        func: u32,
    },
    CallBuiltin {
        callee: SymId,
    },
    /// Call of a data symbol: a [`SimError::BadProgram`] at execution.
    CallBad {
        callee: SymId,
    },
    Ret,
    /// IFU-executed cross-unit conversion (`IntToFlt`/`FltToInt` assign).
    Convert {
        op: UnOp,
        a: Operand,
        dst: Reg,
    },
    /// Enqueue on the VEU's instruction queue.
    DispatchVeu,
    /// Enqueue on the IEU/FEU instruction queue selected by `class`.
    Dispatch,
}

/// One pre-decoded instruction slot. `Copy` so the hot loop can lift it
/// out of the table before calling the exec handler with `&mut` machine.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DecodedInst<'m> {
    /// The module's original instruction (for traces, fault reports and
    /// the interpreter fallback).
    pub(crate) kind: &'m InstKind,
    /// The exec handler the compiled engine calls instead of matching.
    pub(crate) exec: ExecFn,
    /// Entries dequeued from each input FIFO (precomputed `fifo_need`).
    pub(crate) need: [u8; 2],
    /// Bit `n` set iff the instruction reads physical register `n` of its
    /// dispatch class (precomputed paired-ALU interlock test).
    pub(crate) read_mask: u32,
    /// The unit that executes a dispatched instruction.
    pub(crate) class: RegClass,
    /// The decoded execution payload.
    pub(crate) payload: Payload,
    /// The decoded IFU action.
    pub(crate) ifu: IfuOp,
}

/// Per-function block table: `(start, len)` ranges into the flat
/// instruction table, in block layout order.
#[derive(Debug)]
pub(crate) struct DecFunc {
    pub(crate) blocks: Vec<(u32, u32)>,
}

/// The whole module, pre-decoded. Built once by [`WmMachine::new`] and
/// shared by all three engines: the interpreters use it to resolve queued
/// instruction indices back to [`InstKind`]s, the compiled engine
/// executes it directly.
#[derive(Debug)]
pub struct DecodedProgram<'m> {
    pub(crate) funcs: Vec<DecFunc>,
    pub(crate) insts: Vec<DecodedInst<'m>>,
}

impl<'m> DecodedProgram<'m> {
    /// Pre-decode every function of `module`. `addrs` maps data symbols
    /// to their loaded addresses (used to fold `LoadAddr`).
    pub(crate) fn decode(module: &'m Module, addrs: &HashMap<SymId, i64>) -> DecodedProgram<'m> {
        let mut insts = Vec::new();
        let mut funcs = Vec::with_capacity(module.functions.len());
        for f in &module.functions {
            let mut blocks = Vec::with_capacity(f.blocks.len());
            for b in &f.blocks {
                let start = insts.len() as u32;
                for inst in &b.insts {
                    insts.push(decode_inst(module, f, addrs, &inst.kind));
                }
                blocks.push((start, b.insts.len() as u32));
            }
            funcs.push(DecFunc { blocks });
        }
        DecodedProgram { funcs, insts }
    }

    /// Flat table index of the instruction at (`func`, `block`, `inst`).
    #[inline]
    pub(crate) fn index_of(&self, func: usize, block: usize, inst: usize) -> u32 {
        self.funcs[func].blocks[block].0 + inst as u32
    }

    /// Number of decoded instruction slots.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Is the table empty (a module with no function bodies)?
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Check that the decode tables round-trip to the original RTL: every
    /// decoded operand slot must map back to the operand at the same
    /// position in the original instruction, every folded immediate must
    /// equal the fold of the original immediates, every pre-resolved
    /// control target must match a fresh label/symbol resolution, and the
    /// precomputed FIFO demands and interlock masks must match the
    /// interpreter's per-cycle computation. Returns the number of
    /// instruction slots checked.
    ///
    /// # Errors
    ///
    /// A description of the first mismatch, naming the function and the
    /// offending instruction.
    pub fn verify_roundtrip(&self, module: &Module) -> Result<usize, String> {
        if self.funcs.len() != module.functions.len() {
            return Err(format!(
                "function count mismatch: decoded {} vs module {}",
                self.funcs.len(),
                module.functions.len()
            ));
        }
        let mut checked = 0usize;
        for (fi, f) in module.functions.iter().enumerate() {
            let df = &self.funcs[fi];
            if df.blocks.len() != f.blocks.len() {
                return Err(format!(
                    "{}: block count mismatch: decoded {} vs module {}",
                    f.name,
                    df.blocks.len(),
                    f.blocks.len()
                ));
            }
            for (bi, b) in f.blocks.iter().enumerate() {
                let (start, len) = df.blocks[bi];
                if len as usize != b.insts.len() {
                    return Err(format!(
                        "{} block {bi}: length mismatch: decoded {len} vs module {}",
                        f.name,
                        b.insts.len()
                    ));
                }
                for (ii, inst) in b.insts.iter().enumerate() {
                    let d = &self.insts[start as usize + ii];
                    verify_inst(module, f, d, &inst.kind).map_err(|e| {
                        format!("{} block {bi} inst {ii} `{}`: {e}", f.name, inst.kind)
                    })?;
                    checked += 1;
                }
            }
        }
        Ok(checked)
    }
}

/// Decode one instruction slot.
fn decode_inst<'m>(
    module: &'m Module,
    func: &'m wm_ir::Function,
    addrs: &HashMap<SymId, i64>,
    kind: &'m InstKind,
) -> DecodedInst<'m> {
    let bi = |l: wm_ir::Label| func.block_index(l) as u32;
    // The IFU action mirrors the interpreter's fetch match arm-for-arm —
    // in particular the cross-unit-conversion Assign pattern is tested
    // *before* the generic dispatch arm, exactly as the interpreter does.
    let ifu = match kind {
        InstKind::Nop => IfuOp::Nop,
        InstKind::Jump { target } => IfuOp::Jump { block: bi(*target) },
        InstKind::Branch {
            class,
            when,
            target,
            els,
        } => IfuOp::Branch {
            class: *class,
            when: *when,
            t: bi(*target),
            e: bi(*els),
        },
        InstKind::BranchStream { fifo, target, els } => IfuOp::BranchStream {
            fifo: *fifo,
            t: bi(*target),
            e: bi(*els),
        },
        InstKind::BranchVec { target, els } => IfuOp::BranchVec {
            t: bi(*target),
            e: bi(*els),
        },
        InstKind::Call { callee, .. } => match &module.global(*callee).kind {
            GlobalKind::Func(fi) => IfuOp::CallFunc { func: *fi as u32 },
            GlobalKind::Builtin => IfuOp::CallBuiltin { callee: *callee },
            GlobalKind::Data { .. } => IfuOp::CallBad { callee: *callee },
        },
        InstKind::Ret => IfuOp::Ret,
        InstKind::Assign {
            dst,
            src: RExpr::Un(op @ (UnOp::IntToFlt | UnOp::FltToInt), a),
        } => IfuOp::Convert {
            op: *op,
            a: *a,
            dst: *dst,
        },
        InstKind::VLoad { .. }
        | InstKind::VStore { .. }
        | InstKind::VecBin { .. }
        | InstKind::VecBroadcast { .. } => IfuOp::DispatchVeu,
        _ => IfuOp::Dispatch,
    };
    if ifu != IfuOp::Dispatch {
        // IFU-handled or VEU instructions never reach a scalar unit's
        // issue logic; their exec slot is the (unreachable) fallback.
        return DecodedInst {
            kind,
            exec: exec_fallback,
            need: [0, 0],
            read_mask: 0,
            class: RegClass::Int,
            payload: Payload::None,
            ifu,
        };
    }
    let class = dispatch_class(kind);
    let need = fifo_need(class, kind);
    let (exec, payload) = decode_exec(class, addrs, kind);
    DecodedInst {
        kind,
        exec,
        need: [need[0] as u8, need[1] as u8],
        read_mask: read_mask(class, kind),
        class,
        payload,
        ifu,
    }
}

/// Decode the execution payload, falling back to the interpreter for any
/// form the table cannot express exactly.
fn decode_exec(class: RegClass, addrs: &HashMap<SymId, i64>, kind: &InstKind) -> (ExecFn, Payload) {
    let fallback = (exec_fallback as ExecFn, Payload::None);
    match kind {
        InstKind::Assign { dst, src } => match (dst_slot(class, *dst), decode_expr(class, src)) {
            (Some(d), Some(e)) => {
                let executed_dst = if !dst.is_fifo() && !dst.is_zero() {
                    dst.phys_num()
                } else {
                    None
                };
                (
                    exec_assign as ExecFn,
                    Payload::Assign {
                        dst: d,
                        src: e,
                        executed_dst,
                    },
                )
            }
            _ => fallback,
        },
        InstKind::LoadAddr { dst, sym, disp } => {
            match (dst_slot(class, *dst), addrs.get(sym)) {
                (Some(d), Some(&base)) => (
                    exec_loadaddr as ExecFn,
                    Payload::LoadAddr {
                        dst: d,
                        addr: base + disp,
                        // the interpreter records `dst.phys_num()`
                        // unfiltered here (unlike Assign)
                        executed_dst: dst.phys_num(),
                    },
                ),
                _ => fallback,
            }
        }
        InstKind::Compare { op, a, b, .. } => match (src_slot(class, *a), src_slot(class, *b)) {
            (Some(sa), Some(sb)) => (
                exec_compare as ExecFn,
                Payload::Compare {
                    op: *op,
                    a: sa,
                    b: sb,
                },
            ),
            _ => fallback,
        },
        InstKind::WLoad { fifo, addr, width } => match decode_expr(class, addr) {
            Some(e) => (
                exec_wload as ExecFn,
                Payload::WLoad {
                    fifo: *fifo,
                    addr: e,
                    width: *width,
                },
            ),
            None => fallback,
        },
        InstKind::WStore { unit, addr, width } => match decode_expr(class, addr) {
            Some(e) => (
                exec_wstore as ExecFn,
                Payload::WStore {
                    unit: *unit,
                    addr: e,
                    width: *width,
                },
            ),
            None => fallback,
        },
        // stream configuration and anything unexpected run on the
        // interpreter arm (they execute once per loop, not per element)
        _ => fallback,
    }
}

/// Resolve one source operand; `None` for forms the interpreter must
/// handle (cross-class registers).
fn src_slot(class: RegClass, op: Operand) -> Option<Src> {
    match op {
        Operand::Imm(v) => Some(Src::Imm(v)),
        Operand::FImm(v) => Some(Src::FImm(v)),
        Operand::Reg(r) => {
            if r.class != class {
                return None;
            }
            let n = r.phys_num()?;
            Some(match n {
                31 => Src::Zero,
                0 | 1 => Src::Fifo(n),
                _ => Src::Reg(n),
            })
        }
    }
}

/// Resolve a destination register; `None` for cross-class destinations
/// and for register 1 (whose write is a runtime error the interpreter
/// reports).
fn dst_slot(class: RegClass, r: Reg) -> Option<Dst> {
    if r.class != class {
        return None;
    }
    match r.phys_num()? {
        31 => Some(Dst::Zero),
        0 => Some(Dst::Out),
        1 => None,
        n => Some(Dst::Reg(n)),
    }
}

/// Build a binary node, folding immediate-only operands. Integer folds
/// use `BinOp::fold_int`, which refuses division/remainder by zero — the
/// runtime divide fault is preserved, not folded away. Float folds apply
/// the identical `f64` operation the interpreter would.
fn fold_bin(op: BinOp, a: Src, b: Src) -> DecExpr {
    if let (Src::Imm(x), Src::Imm(y)) = (a, b) {
        if !op.is_float() {
            if let Some(v) = op.fold_int(x, y) {
                return DecExpr::Op(Src::Imm(v));
            }
        }
    }
    if let (Src::FImm(x), Src::FImm(y)) = (a, b) {
        if op.is_float() {
            let v = match op {
                BinOp::FAdd => x + y,
                BinOp::FSub => x - y,
                BinOp::FMul => x * y,
                BinOp::FDiv => x / y,
                _ => unreachable!("is_float covers exactly the F ops"),
            };
            return DecExpr::Op(Src::FImm(v));
        }
    }
    DecExpr::Bin(op, a, b)
}

/// Decode an expression; `None` if any operand is undecodable.
fn decode_expr(class: RegClass, e: &RExpr) -> Option<DecExpr> {
    Some(match e {
        RExpr::Op(a) => DecExpr::Op(src_slot(class, *a)?),
        RExpr::Un(op, a) => DecExpr::Un(*op, src_slot(class, *a)?),
        RExpr::Bin(op, a, b) => fold_bin(*op, src_slot(class, *a)?, src_slot(class, *b)?),
        RExpr::Dual {
            inner,
            a,
            b,
            outer,
            c,
        } => {
            let (sa, sb, sc) = (
                src_slot(class, *a)?,
                src_slot(class, *b)?,
                src_slot(class, *c)?,
            );
            match fold_bin(*inner, sa, sb) {
                DecExpr::Op(sab) => fold_bin(*outer, sab, sc),
                _ => DecExpr::Dual {
                    inner: *inner,
                    a: sa,
                    b: sb,
                    outer: *outer,
                    c: sc,
                },
            }
        }
    })
}

/// Bit `n` set iff `kind` reads physical register `n` of `class` — the
/// same register set the interpreter's `reads_phys` walks per cycle.
pub(crate) fn read_mask(class: RegClass, kind: &InstKind) -> u32 {
    let mut mask = 0u32;
    let mut add = |r: Reg| {
        if r.class == class {
            if let Some(n) = r.phys_num() {
                mask |= 1u32 << n;
            }
        }
    };
    match kind {
        InstKind::Assign { src, .. } => src.regs().for_each(&mut add),
        InstKind::Compare { a, b, .. } => {
            if let Some(r) = a.reg() {
                add(r);
            }
            if let Some(r) = b.reg() {
                add(r);
            }
        }
        InstKind::WLoad { addr, .. } | InstKind::WStore { addr, .. } => {
            addr.regs().for_each(&mut add)
        }
        other => other.uses().into_iter().for_each(&mut add),
    }
    mask
}

// ---- round-trip verification ----

/// The ordered register reads of a decoded expression, for comparison
/// against the original RTL's operand order (decode-time folding only
/// combines immediates, so register sequences must survive unchanged).
fn dec_regs(class: RegClass, e: &DecExpr, out: &mut Vec<Reg>) {
    let push = |s: Src, out: &mut Vec<Reg>| match s {
        Src::Reg(n) | Src::Fifo(n) => out.push(Reg::phys(class, n)),
        Src::Zero => out.push(Reg::phys(class, 31)),
        Src::Imm(_) | Src::FImm(_) => {}
    };
    match *e {
        DecExpr::Op(a) | DecExpr::Un(_, a) => push(a, out),
        DecExpr::Bin(_, a, b) => {
            push(a, out);
            push(b, out);
        }
        DecExpr::Dual { a, b, c, .. } => {
            push(a, out);
            push(b, out);
            push(c, out);
        }
    }
}

/// Fold a constant-only expression exactly as decode does; `None` if it
/// reads any register or cannot fold (e.g. division by zero).
fn const_fold(e: &RExpr) -> Option<Src> {
    let imm = |op: Operand| match op {
        Operand::Imm(v) => Some(Src::Imm(v)),
        Operand::FImm(v) => Some(Src::FImm(v)),
        Operand::Reg(_) => None,
    };
    let bin = |op: BinOp, a: Src, b: Src| match fold_bin(op, a, b) {
        DecExpr::Op(s) => Some(s),
        _ => None,
    };
    match e {
        RExpr::Op(a) => imm(*a),
        RExpr::Un(..) => None,
        RExpr::Bin(op, a, b) => bin(*op, imm(*a)?, imm(*b)?),
        RExpr::Dual {
            inner,
            a,
            b,
            outer,
            c,
        } => bin(*outer, bin(*inner, imm(*a)?, imm(*b)?)?, imm(*c)?),
    }
}

/// Verify one decoded slot against its original instruction.
fn verify_inst(
    module: &Module,
    func: &wm_ir::Function,
    d: &DecodedInst<'_>,
    kind: &InstKind,
) -> Result<(), String> {
    if !std::ptr::eq(d.kind, kind) {
        return Err("decoded slot does not point at its module instruction".into());
    }
    // Control-flow targets must match a fresh resolution.
    let bi = |l: wm_ir::Label| func.block_index(l) as u32;
    match (&d.ifu, kind) {
        (IfuOp::Jump { block }, InstKind::Jump { target }) if *block == bi(*target) => {}
        (
            IfuOp::Branch { class, when, t, e },
            InstKind::Branch {
                class: c2,
                when: w2,
                target,
                els,
            },
        ) if class == c2 && when == w2 && *t == bi(*target) && *e == bi(*els) => {}
        (
            IfuOp::BranchStream { fifo, t, e },
            InstKind::BranchStream {
                fifo: f2,
                target,
                els,
            },
        ) if fifo == f2 && *t == bi(*target) && *e == bi(*els) => {}
        (IfuOp::BranchVec { t, e }, InstKind::BranchVec { target, els })
            if *t == bi(*target) && *e == bi(*els) => {}
        (IfuOp::CallFunc { func: fi }, InstKind::Call { callee, .. }) if matches!(&module.global(*callee).kind, GlobalKind::Func(f) if *f as u32 == *fi) =>
            {}
        (IfuOp::CallBuiltin { callee }, InstKind::Call { callee: c2, .. }) if callee == c2 => {}
        (IfuOp::CallBad { callee }, InstKind::Call { callee: c2, .. }) if callee == c2 => {}
        (IfuOp::Ret, InstKind::Ret) => {}
        (IfuOp::Nop, InstKind::Nop) => {}
        (
            IfuOp::Convert { op, a, dst },
            InstKind::Assign {
                dst: d2,
                src: RExpr::Un(o2, a2),
            },
        ) if op == o2 && a == a2 && dst == d2 => {}
        (IfuOp::DispatchVeu, _) | (IfuOp::Dispatch, _) => {}
        other => return Err(format!("IFU op does not round-trip: {other:?}")),
    }
    if d.ifu != IfuOp::Dispatch {
        return Ok(());
    }
    // Dispatched instructions: class, FIFO demand and interlock mask must
    // match the interpreter's per-cycle computation ...
    let class = dispatch_class(kind);
    if d.class != class {
        return Err(format!("class mismatch: {:?} vs {:?}", d.class, class));
    }
    let need = fifo_need(class, kind);
    if [need[0] as u8, need[1] as u8] != d.need {
        return Err(format!("fifo_need mismatch: {:?} vs {need:?}", d.need));
    }
    if read_mask(class, kind) != d.read_mask {
        return Err(format!(
            "read_mask mismatch: {:#x} vs {:#x}",
            d.read_mask,
            read_mask(class, kind)
        ));
    }
    // ... and every decoded operand must map back to the original's
    // operand at the same position.
    let check_expr = |dec: &DecExpr, orig: &RExpr| -> Result<(), String> {
        let mut got = Vec::new();
        dec_regs(class, dec, &mut got);
        let want: Vec<Reg> = orig.regs().collect();
        if got != want {
            return Err(format!(
                "register operands do not round-trip: {got:?} vs {want:?}"
            ));
        }
        // a fully-folded expression must equal the fold of the original
        if let DecExpr::Op(s @ (Src::Imm(_) | Src::FImm(_))) = dec {
            if want.is_empty() {
                match (const_fold(orig), s) {
                    (Some(Src::Imm(a)), Src::Imm(b)) if a == *b => {}
                    (Some(Src::FImm(a)), Src::FImm(b)) if a.to_bits() == b.to_bits() => {}
                    (folded, _) => {
                        return Err(format!("folded immediate mismatch: {s:?} vs {folded:?}"))
                    }
                }
            }
        }
        Ok(())
    };
    let check_dst = |ds: Dst, r: Reg| -> Result<(), String> {
        let want = match r.phys_num() {
            Some(31) => Dst::Zero,
            Some(0) => Dst::Out,
            Some(n) => Dst::Reg(n),
            None => return Err("virtual destination decoded".into()),
        };
        if ds != want || r.class != class {
            return Err(format!("destination does not round-trip: {ds:?} vs {r}"));
        }
        Ok(())
    };
    let check_src = |s: Src, op: Operand| -> Result<(), String> {
        let ok = match (s, op) {
            (Src::Imm(a), Operand::Imm(b)) => a == b,
            (Src::FImm(a), Operand::FImm(b)) => a.to_bits() == b.to_bits(),
            (Src::Reg(n) | Src::Fifo(n), Operand::Reg(r)) => {
                r.class == class && r.phys_num() == Some(n) && n != 31
            }
            (Src::Zero, Operand::Reg(r)) => r.class == class && r.phys_num() == Some(31),
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(format!("operand does not round-trip: {s:?} vs {op:?}"))
        }
    };
    match (&d.payload, kind) {
        (Payload::Assign { dst, src, .. }, InstKind::Assign { dst: d2, src: s2 }) => {
            check_dst(*dst, *d2)?;
            check_expr(src, s2)?;
        }
        (Payload::LoadAddr { dst, .. }, InstKind::LoadAddr { dst: d2, .. }) => {
            check_dst(*dst, *d2)?;
        }
        (
            Payload::Compare { op, a, b },
            InstKind::Compare {
                op: o2,
                a: a2,
                b: b2,
                ..
            },
        ) => {
            if op != o2 {
                return Err("compare operator does not round-trip".into());
            }
            check_src(*a, *a2)?;
            check_src(*b, *b2)?;
        }
        (
            Payload::WLoad { fifo, addr, width },
            InstKind::WLoad {
                fifo: f2,
                addr: a2,
                width: w2,
            },
        ) => {
            if fifo != f2 || width != w2 {
                return Err("WLoad fifo/width does not round-trip".into());
            }
            check_expr(addr, a2)?;
        }
        (
            Payload::WStore { unit, addr, width },
            InstKind::WStore {
                unit: u2,
                addr: a2,
                width: w2,
            },
        ) => {
            if unit != u2 || width != w2 {
                return Err("WStore unit/width does not round-trip".into());
            }
            check_expr(addr, a2)?;
        }
        (Payload::None, _) => {} // interpreter fallback carries no table state
        other => return Err(format!("payload does not match instruction: {other:?}")),
    }
    Ok(())
}
