//! Tiled machines: N WM cores coupled by point-to-point FIFO channels.
//!
//! A [`TiledMachine`] instantiates the single-core simulator once per
//! tile and steps the tiles in **deterministic epochs**: every tile runs
//! alone — no shared state, no locks — up to the same target cycle, and
//! only at the barrier that ends the epoch does the scheduler move the
//! staged channel messages between cores, recompute send credits, and
//! judge global halt, deadlock and timeout. Within an epoch a tile's
//! execution is a pure function of its own state plus the inbox frozen
//! at the epoch's start, so cycle counts, stall attribution and every
//! perf counter are **bit-identical for any host thread count** (and for
//! all three stepping engines, which are bit-identical per tile).
//!
//! Messages routed at the barrier ending epoch `e` become visible to
//! their receiver at `barrier + chan_latency` — the epoch length bounds
//! scheduling, the channel latency models the interconnect, and the two
//! are deliberately decoupled (see [`crate::WmConfig::chan_epoch`]).
//!
//! Tile 0 runs the entry function; tile `k > 0` runs `__tile{k}_<entry>`
//! when the module defines it (the partitioning pass emits one per
//! tile), and otherwise sits idle — so any single-core binary also runs
//! under `--tiles N`, just without speedup.

use std::collections::VecDeque;

use wm_ir::Module;

use crate::cancel::CancelToken;
use crate::config::WmConfig;
use crate::machine::{Poison, RunResult, RxEntry, SimError, WmMachine, DEADLOCK_WINDOW};

/// The completed run of every tile of a tiled machine.
#[derive(Debug, Clone)]
pub struct TiledRunResult {
    /// Per-tile results, indexed by tile id. Counters are exact and
    /// bit-identical across engines and host thread counts.
    pub tiles: Vec<RunResult>,
    /// Global cycle count: the slowest tile's halt cycle.
    pub cycles: u64,
    /// Integer return value of tile 0's entry function.
    pub ret_int: i64,
    /// Floating-point return value of tile 0's entry function.
    pub ret_flt: f64,
    /// Bytes tile 0 wrote through `putchar`.
    pub output: Vec<u8>,
}

impl TiledRunResult {
    /// Collapse to a single-core [`RunResult`]: tile 0's architectural
    /// results with the *global* cycle count (what a tiled job reports
    /// through the driver and `wmd`).
    pub fn into_primary(mut self) -> RunResult {
        let mut r = self.tiles.swap_remove(0);
        r.cycles = self.cycles;
        r.stats.cycles = self.cycles;
        r
    }
}

/// N single-core machines stepped between deterministic epoch barriers.
pub struct TiledMachine<'m> {
    machines: Vec<WmMachine<'m>>,
    config: WmConfig,
    /// Host worker threads for the parallel phase (1 = sequential; the
    /// results are identical either way, by construction).
    threads: usize,
    cancel: Option<CancelToken>,
}

impl<'m> TiledMachine<'m> {
    /// Build `config.tiles` cores around one compiled module. `threads`
    /// is the host-thread budget for the parallel phase; 0 means one
    /// thread per available CPU.
    pub fn new(
        module: &'m Module,
        config: &WmConfig,
        threads: usize,
    ) -> Result<TiledMachine<'m>, SimError> {
        let tiles = config.tiles;
        if !(1..=8).contains(&tiles) {
            return Err(SimError::BadProgram(format!(
                "tile count {tiles} out of range (1..=8)"
            )));
        }
        let mut machines = Vec::with_capacity(tiles);
        for tile in 0..tiles {
            let mut m = WmMachine::new(module, config)?;
            if tiles > 1 {
                m.init_tile(tile, tiles);
            }
            machines.push(m);
        }
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        Ok(TiledMachine {
            machines,
            config: config.clone(),
            threads: threads.clamp(1, tiles),
            cancel: None,
        })
    }

    /// Compile-and-go entry point, the tiled dual of [`WmMachine::run`].
    /// A 1-tile machine delegates to the plain single-core path, which
    /// allocates no tile structures whatsoever.
    pub fn run(
        module: &Module,
        entry: &str,
        args: &[i64],
        config: &WmConfig,
        threads: usize,
    ) -> Result<TiledRunResult, SimError> {
        if config.tiles <= 1 {
            let r = WmMachine::run(module, entry, args, config)?;
            return Ok(TiledRunResult {
                cycles: r.cycles,
                ret_int: r.ret_int,
                ret_flt: r.ret_flt,
                output: r.output.clone(),
                tiles: vec![r],
            });
        }
        let mut tm = TiledMachine::new(module, config, threads)?;
        tm.start(entry, args)?;
        tm.run_to_completion()
    }

    /// Attach a cooperative cancellation token, polled at every epoch
    /// barrier.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Position every tile at its entry: tile 0 at `entry`, tile `k` at
    /// `__tile{k}_<entry>` if the module defines it. Every started tile
    /// gets the same arguments — the partitioning pass replicates the
    /// pre-loop computation, which may read them. A tile without an
    /// entry never starts and reports zero cycles.
    pub fn start(&mut self, entry: &str, args: &[i64]) -> Result<(), SimError> {
        self.machines[0].start(entry, args)?;
        for (k, m) in self.machines.iter_mut().enumerate().skip(1) {
            let name = format!("__tile{k}_{entry}");
            if m.module.lookup(&name).is_some() {
                m.start(&name, args)?;
            }
        }
        Ok(())
    }

    /// Run every tile to completion and report per-tile results. Fault,
    /// deadlock and timeout are judged at epoch barriers; when several
    /// tiles fault in the same epoch, the earliest (cycle, tile) wins —
    /// deterministically, for any host thread count.
    pub fn run_to_completion(&mut self) -> Result<TiledRunResult, SimError> {
        let epoch = self.config.chan_epoch.max(1);
        let mut barrier = 0u64;
        loop {
            if let Some(t) = &self.cancel {
                if t.is_cancelled() {
                    return Err(SimError::Cancelled {
                        cycle: barrier,
                        state: Box::new(self.machines[0].snapshot()),
                    });
                }
            }
            if self.machines.iter_mut().all(|m| m.halted()) {
                break;
            }
            if barrier >= self.config.max_cycles {
                let k = self.first_live_tile();
                return Err(SimError::Timeout {
                    cycles: self.config.max_cycles,
                    state: Box::new(self.machines[k].snapshot()),
                });
            }
            let target = (barrier + epoch).min(self.config.max_cycles);
            // ---- parallel phase: every tile alone up to `target` ----
            let errs = self.step_epoch(target);
            if let Some((_, _, e)) = errs
                .into_iter()
                .enumerate()
                .filter_map(|(k, e)| e.map(|e| (e.cycle().unwrap_or(target), k, e)))
                .min_by_key(|(c, k, _)| (*c, *k))
            {
                return Err(e);
            }
            barrier = target;
            // ---- barrier: route staged sends, return credits ----
            self.route(barrier);
            self.recompute_credits();
            // ---- global deadlock: no tile progressed for a window ----
            let progress = self
                .machines
                .iter()
                .map(|m| m.last_progress)
                .max()
                .unwrap_or(0);
            let live = self.machines.iter_mut().any(|m| !m.halted());
            if live && barrier.saturating_sub(progress) > DEADLOCK_WINDOW {
                let detail = self.diagnose_tiles();
                let k = self.first_live_tile();
                return Err(SimError::Deadlock {
                    cycle: barrier,
                    detail,
                    state: Box::new(self.machines[k].snapshot()),
                });
            }
        }
        let tiles_r: Vec<RunResult> = self.machines.iter_mut().map(|m| m.take_result()).collect();
        let cycles = tiles_r.iter().map(|r| r.cycles).max().unwrap_or(0);
        Ok(TiledRunResult {
            cycles,
            ret_int: tiles_r[0].ret_int,
            ret_flt: tiles_r[0].ret_flt,
            output: tiles_r[0].output.clone(),
            tiles: tiles_r,
        })
    }

    /// Step every tile up to `target`, on up to `self.threads` host
    /// threads. Tiles never share state during the epoch, so the split
    /// across threads cannot affect any counter.
    fn step_epoch(&mut self, target: u64) -> Vec<Option<SimError>> {
        let n = self.machines.len();
        if self.threads <= 1 {
            return self
                .machines
                .iter_mut()
                .map(|m| m.run_epoch(target).err())
                .collect();
        }
        let chunk = n.div_ceil(self.threads);
        let mut errs: Vec<Option<SimError>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .machines
                .chunks_mut(chunk)
                .map(|ms| {
                    s.spawn(move || {
                        ms.iter_mut()
                            .map(|m| m.run_epoch(target).err())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                errs.extend(h.join().expect("tile worker panicked"));
            }
        });
        errs
    }

    /// Route every message staged during the finished epoch into its
    /// receiver's queue, due at `barrier + chan_latency`. Tiles are
    /// drained in tile-id order, so delivery order is deterministic. A
    /// receive queue already at capacity overruns: the datum is lost and
    /// a *poisoned* entry takes its place, faulting whichever unit
    /// eventually consumes it — with the sender's provenance.
    fn route(&mut self, barrier: u64) {
        let due = barrier + self.config.chan_latency;
        let cap = self.config.chan_capacity;
        for src in 0..self.machines.len() {
            let staged = std::mem::take(&mut self.machines[src].chan_tx);
            for msg in staged {
                let rx: &mut VecDeque<RxEntry> = &mut self.machines[msg.dst].chan_rx[src];
                let poison = if rx.len() >= cap {
                    Some(Box::new(Poison {
                        addr: 0,
                        scu: src,
                        error: format!(
                            "channel overrun: tile {src} flooded the queue into tile {} \
                             past its {cap}-entry capacity",
                            msg.dst
                        ),
                    }))
                } else {
                    msg.poison
                };
                rx.push_back(RxEntry {
                    due,
                    val: msg.val,
                    poison,
                });
            }
        }
    }

    /// Refresh every sender's credit toward every receiver: channel
    /// capacity minus the receiver's current backlog.
    fn recompute_credits(&mut self) {
        let n = self.machines.len();
        let cap = self.config.chan_capacity;
        for d in 0..n {
            for s in 0..n {
                if s == d {
                    continue;
                }
                let backlog = self.machines[d].chan_rx[s].len();
                let credit = cap.saturating_sub(backlog) as u32;
                self.machines[s].chan_credits[d] = credit;
            }
        }
    }

    /// First tile that has not halted (the snapshot attached to global
    /// errors; deterministic).
    fn first_live_tile(&mut self) -> usize {
        (0..self.machines.len())
            .find(|&k| !self.machines[k].halted())
            .unwrap_or(0)
    }

    /// Per-tile wedge attribution, prefixed with the tile id — a killed
    /// sender shows up twice: on its own tile ("disabled by fault
    /// injection") and on the starved receiver ("waits on the channel
    /// from tile K").
    fn diagnose_tiles(&mut self) -> String {
        let mut parts = Vec::new();
        for k in 0..self.machines.len() {
            if self.machines[k].halted() {
                continue;
            }
            parts.push(format!("tile {k}: {}", self.machines[k].diagnose()));
        }
        if parts.is_empty() {
            parts.push("no tile can make progress".to_string());
        }
        parts.join("; ")
    }
}

impl SimError {
    /// The simulated cycle an error occurred at, when it carries one.
    pub fn cycle(&self) -> Option<u64> {
        match self {
            SimError::Timeout { cycles, .. } => Some(*cycles),
            SimError::Deadlock { cycle, .. }
            | SimError::Fault { cycle, .. }
            | SimError::Cancelled { cycle, .. } => Some(*cycle),
            SimError::BadProgram(_) => None,
        }
    }
}
