//! Micro-benchmark of the simulator stepping engines on Livermore
//! loop 5, under the default hardware model and the latency-dominated
//! degraded model (24-cycle memory, one port) where the event engine's
//! fast-forward pays off. Run with `cargo bench -p wm-sim`.

use criterion::{criterion_group, criterion_main, Criterion};
use wm_ir::Module;
use wm_opt::{optimize_generic, optimize_wm, OptOptions};
use wm_sim::{Engine, MemModel, WmConfig, WmMachine};
use wm_target::{allocate_registers, expand_wm, TargetKind};

/// Compile livermore5 for the WM as the bench suite does (no-alias on
/// both builds so the streaming one actually streams).
fn livermore5(opts: &OptOptions) -> Module {
    let mut module = wm_frontend::compile(wm_workloads::livermore5().source).expect("compiles");
    for f in module.functions.iter_mut() {
        optimize_generic(f, opts);
        expand_wm(f);
        optimize_wm(f, opts);
        allocate_registers(f, TargetKind::Wm).expect("allocates");
    }
    module
}

fn bench_step(c: &mut Criterion) {
    // The scalar build is where the event engine pays off on slow
    // memory: serialized loads leave long all-stalled spans to skip.
    // The streaming build keeps the SCUs busy nearly every cycle, so it
    // measures the engine's overhead on non-skippable cycles instead.
    let builds = [
        (
            "scalar",
            livermore5(
                &OptOptions::all()
                    .without_recurrence()
                    .without_streaming()
                    .assume_noalias(),
            ),
        ),
        ("streaming", livermore5(&OptOptions::all().assume_noalias())),
    ];
    // The banked leg exercises the hierarchical memory model's per-access
    // bookkeeping (L1 probe, stream buffers, DRAM bank timing) on top of
    // the stepping loop.
    let hw = [
        ("default", WmConfig::default()),
        (
            "latency24",
            WmConfig::default().with_mem_latency(24).with_mem_ports(1),
        ),
        (
            "banked",
            WmConfig::default().with_mem_model(MemModel::parse("banked").unwrap()),
        ),
    ];
    for (build_name, module) in &builds {
        for (hw_name, cfg) in &hw {
            for engine in [Engine::Cycle, Engine::Event] {
                let cfg = cfg.clone().with_engine(engine);
                c.bench_function(
                    &format!("livermore5-{build_name}/{hw_name}/{engine}"),
                    |b| {
                        b.iter(|| {
                            WmMachine::run(module, "main", &[], &cfg)
                                .expect("runs")
                                .cycles
                        })
                    },
                );
            }
        }
    }
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
