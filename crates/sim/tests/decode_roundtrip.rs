//! Decode-table round-trip: the pre-decoded dispatch tables must be a
//! lossless re-encoding of the RTL the interpreter executes. For every
//! function of every workload (and for random fuzzed programs), each
//! [`wm_sim::DecodedProgram`] entry is checked against the original
//! instruction: block-table alignment, operand slots, register order,
//! folded immediates (bit-equal for floats), precomputed FIFO demand and
//! interlock masks, and re-resolved control-flow targets. Anything the
//! decoder cannot represent exactly must carry the interpreter fallback,
//! which `verify_roundtrip` also checks.

use proptest::prelude::*;
use wm_ir::Module;
use wm_opt::{optimize_generic, optimize_wm, OptOptions};
use wm_sim::{WmConfig, WmMachine};
use wm_target::{allocate_registers, expand_wm, TargetKind};

fn compile(src: &str, opts: &OptOptions) -> Module {
    let mut module = wm_frontend::compile(src).expect("compiles");
    for f in module.functions.iter_mut() {
        optimize_generic(f, opts);
        expand_wm(f);
        optimize_wm(f, opts);
        allocate_registers(f, TargetKind::Wm).expect("allocates");
    }
    module
}

/// Opt levels that change which instruction forms reach the decoder
/// (plain scalar code, recurrences, streams, vectors).
fn opt_levels() -> Vec<OptOptions> {
    vec![
        OptOptions::all().without_recurrence().without_streaming(),
        OptOptions::all().without_streaming(),
        OptOptions::all(),
        OptOptions::all().assume_noalias(),
        OptOptions::all().assume_noalias().with_vectorization(),
    ]
}

#[test]
fn workload_functions_round_trip_through_the_decoder() {
    let mut checked = 0usize;
    for w in wm_workloads::all() {
        for opts in opt_levels() {
            let module = compile(w.source, &opts);
            let machine = WmMachine::new(&module, &WmConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            checked += machine
                .decoded_program()
                .verify_roundtrip(&module)
                .unwrap_or_else(|e| panic!("{}: decode round-trip broken: {e}", w.name));
        }
    }
    // the suite decodes thousands of instructions; a tiny count means the
    // verifier silently checked nothing
    assert!(checked > 1_000, "only {checked} instructions verified");
}

/// Random mini-C programs (loops, arrays with ±2 offsets, recurrences,
/// conditionals) so the decoder also round-trips instruction mixes no
/// workload happens to produce.
fn arbitrary_program() -> impl Strategy<Value = String> {
    let stmt = prop_oneof![
        (0..3usize, -2i64..=2).prop_map(|(arr, off)| {
            let a = ["u", "v", "w"][arr];
            format!(
                "s = s + {a}[i{}{}];",
                if off >= 0 { "+" } else { "-" },
                off.abs()
            )
        }),
        (0..3usize).prop_map(|arr| {
            let a = ["u", "v", "w"][arr];
            format!("{a}[i] = s % 1000 + i;")
        }),
        (0..3usize, 1i64..=2).prop_map(|(arr, d)| {
            let a = ["u", "v", "w"][arr];
            format!("{a}[i] = {a}[i-{d}] + 1;")
        }),
        Just("if (s % 3 == 0) s = s + 7;".to_string()),
        (1i64..50).prop_map(|k| format!("t = t * 3 + {k}; s = s + t % 100;")),
        Just("f = f + 0.5; s = s + (int) f;".to_string()),
    ];
    (proptest::collection::vec(stmt, 1..5), 250i64..=300).prop_map(|(body, hi)| {
        format!(
            r"
            int u[300]; int v[300]; int w[300];
            int main() {{
                int i; int s; int t; double f;
                s = 1; t = 2; f = 0.0;
                for (i = 0; i < 300; i++) {{ u[i] = i; v[i] = 2 * i; w[i] = 3000 - i; }}
                for (i = 2; i < {hi}; i++) {{
                    {}
                }}
                for (i = 0; i < 300; i++) s = s + u[i] + v[i] + w[i];
                return s % 100000;
            }}",
            body.join("\n                    ")
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_programs_round_trip_through_the_decoder(
        src in arbitrary_program(),
        level in 0..5usize,
    ) {
        let module = compile(&src, &opt_levels()[level]);
        let machine = WmMachine::new(&module, &WmConfig::default()).expect("loads");
        let checked = machine
            .decoded_program()
            .verify_roundtrip(&module)
            .unwrap_or_else(|e| panic!("decode round-trip broken: {e}\n{src}"));
        prop_assert!(checked > 0);
    }
}
