//! Engine equivalence: the event-driven fast-forward engine and the
//! compiled threaded-dispatch engine must be observationally
//! indistinguishable from the per-cycle reference stepper. Not "close" —
//! **bit-identical**: same cycle counts, same full `Stats` (every stall
//! bucket, FIFO histogram cell and port histogram cell), same results
//! and output, and on failing runs the same error down to the fault
//! provenance and machine-state dump.
//!
//! The matrix crosses programs that exercise every unit (scalar loops,
//! FP, streams, builtin I/O) with all three engines, degraded hardware
//! configurations and fault-injection plans, including ones that end in
//! deadlock.

use wm_ir::Module;
use wm_opt::{optimize_generic, optimize_wm, OptOptions};
use wm_sim::{Engine, FaultPlan, MemModel, RunResult, SimError, WmConfig, WmMachine};
use wm_target::{allocate_registers, expand_wm, TargetKind};

/// Compile a module for the WM with the given options.
fn compile(src: &str, opts: &OptOptions) -> Module {
    let mut module = wm_frontend::compile(src).expect("compiles");
    for f in module.functions.iter_mut() {
        optimize_generic(f, opts);
        expand_wm(f);
        optimize_wm(f, opts);
        allocate_registers(f, TargetKind::Wm).expect("allocates");
    }
    module
}

/// Run `module` under all three engines and assert every observable is
/// pairwise identical against the per-cycle reference. Returns the
/// (shared) outcome for further checks.
fn assert_equivalent(module: &Module, cfg: &WmConfig, label: &str) -> Result<RunResult, SimError> {
    let reference = WmMachine::run(module, "main", &[], &cfg.clone().with_engine(Engine::Cycle));
    let mut shared = None;
    for engine in [Engine::Event, Engine::Compiled] {
        let got = WmMachine::run(module, "main", &[], &cfg.clone().with_engine(engine));
        match (&reference, got) {
            (Ok(c), Ok(e)) => {
                assert_eq!(c.cycles, e.cycles, "{label}/{engine}: cycle count differs");
                assert_eq!(
                    c.ret_int, e.ret_int,
                    "{label}/{engine}: integer result differs"
                );
                assert_eq!(c.ret_flt, e.ret_flt, "{label}/{engine}: FP result differs");
                assert_eq!(
                    c.output, e.output,
                    "{label}/{engine}: program output differs"
                );
                assert_eq!(c.stats, e.stats, "{label}/{engine}: SimStats differ");
                assert_eq!(
                    c.perf, e.perf,
                    "{label}/{engine}: performance counters differ"
                );
                e.perf
                    .check_attribution()
                    .unwrap_or_else(|err| panic!("{label}/{engine}: attribution broken: {err}"));
                assert_eq!(c.engine, Engine::Cycle);
                assert_eq!(e.engine, engine);
                shared = Some(Ok(e));
            }
            // SimError (including the fault provenance and the full
            // machine-state dump inside Deadlock/Fault) derives
            // PartialEq, so one assertion covers the failing cycle, the
            // wedge diagnosis, FIFO occupancy at death — everything.
            (Err(c), Err(e)) => {
                assert_eq!(*c, e, "{label}/{engine}: engines fail differently");
                shared = Some(Err(e));
            }
            (Ok(c), Err(e)) => panic!(
                "{label}: cycle engine succeeded ({} cycles) but {engine} engine failed: {e}",
                c.cycles
            ),
            (Err(c), Ok(e)) => panic!(
                "{label}: {engine} engine succeeded ({} cycles) but cycle engine failed: {c}",
                e.cycles
            ),
        }
    }
    shared.expect("at least one non-reference engine compared")
}

/// Degraded hardware matrix (mirrors the CI degraded-hardware job) plus
/// fault plans that delay and jitter responses.
fn configs() -> Vec<(&'static str, WmConfig)> {
    vec![
        ("default", WmConfig::default()),
        ("fifo=1", WmConfig::default().with_fifo_capacity(1)),
        ("ports=1", WmConfig::default().with_mem_ports(1)),
        ("latency=24", WmConfig::default().with_mem_latency(24)),
        (
            "fifo=1,ports=1,latency=24",
            WmConfig::default()
                .with_fifo_capacity(1)
                .with_mem_ports(1)
                .with_mem_latency(24),
        ),
        (
            "jitter+delays",
            WmConfig::default()
                .with_mem_ports(1)
                .with_fault_plan(FaultPlan::parse("jitter:11:9,delay:3:40,delay:17:40").unwrap()),
        ),
        (
            "mem=cache",
            WmConfig::default().with_mem_model(MemModel::parse("cache").unwrap()),
        ),
        (
            "mem=banked",
            WmConfig::default().with_mem_model(MemModel::parse("banked").unwrap()),
        ),
        (
            // A deliberately hostile hierarchy: one MSHR (so scalar code
            // piles into `mshr-full`), one bank with a long busy window
            // (so `bank-busy` refusals and folded conflicts both occur),
            // a tiny direct-mapped L1 (eviction churn) and shared stream
            // buffers (cross-stream thrashing).
            "mem=banked-tight",
            WmConfig::default().with_mem_model(
                MemModel::parse(
                    "banked:size=256,assoc=1,line=32,mshrs=1,sbufs=2,depth=2,\
                     banks=1,busy=12,rowhit=8,rowmiss=24",
                )
                .unwrap(),
            ),
        ),
        (
            "mem=cache+injection",
            WmConfig::default()
                .with_mem_model(MemModel::parse("cache:mshrs=2,miss=40").unwrap())
                .with_fault_plan(FaultPlan::parse("jitter:7:5,delay:9:60").unwrap()),
        ),
    ]
}

/// Programs that exercise the IEU, FEU, streams, and builtin I/O.
fn programs() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "scalar-loop",
            "int main() { int s; int i; s = 0; for (i = 1; i <= 200; i++) s = s + i; return s; }",
        ),
        (
            "fp-array",
            r"
            double a[128]; double b[128];
            int main() {
                int i; double s;
                for (i = 0; i < 128; i++) { a[i] = i * 0.5; b[i] = 128 - i; }
                s = 0.0;
                for (i = 0; i < 128; i++) s = s + a[i] * b[i];
                return (int) s;
            }
            ",
        ),
        (
            "dot-stream",
            r"
            int a[256]; int b[256];
            int main() {
                int i; int s;
                for (i = 0; i < 256; i++) { a[i] = i; b[i] = 2 * i; }
                s = 0;
                for (i = 0; i < 256; i++) s = s + a[i] * b[i];
                return s % 10007;
            }
            ",
        ),
        (
            // Store-free indirect read: fuses into a gather stream even
            // under the conservative alias model, so the degraded matrix
            // exercises the index-fed SCU path (index fetches, the
            // index-fifo-empty stall, gather data reads bypassing the
            // stream buffers) on every config × engine point.
            "gather-stream",
            r"
            int idx[256]; int tab[512];
            int main() {
                int i; int s;
                for (i = 0; i < 256; i++) { idx[i] = (i * 7) % 512; }
                for (i = 0; i < 512; i++) { tab[i] = 3 * i + 1; }
                s = 0;
                for (i = 0; i < 256; i++) s = s + tab[idx[i]];
                return s % 10007;
            }
            ",
        ),
        (
            "io-putchar",
            r"
            int main() {
                int i;
                for (i = 0; i < 26; i++) putchar(65 + i);
                putchar(10);
                return 0;
            }
            ",
        ),
    ]
}

#[test]
fn engines_agree_across_degraded_matrix() {
    // program × opt-level × (hardware config + fault plan + mem model),
    // each point run under all three engines by `assert_equivalent`.
    let opt_levels = [
        ("full", OptOptions::all()),
        ("no-streaming", OptOptions::all().without_streaming()),
        (
            "scalar",
            OptOptions::all().without_recurrence().without_streaming(),
        ),
    ];
    for (prog_name, src) in programs() {
        for (opt_name, opts) in &opt_levels {
            let module = compile(src, opts);
            for (cfg_name, cfg) in configs() {
                let label = format!("{prog_name} [{opt_name}] [{cfg_name}]");
                match assert_equivalent(&module, &cfg, &label) {
                    Ok(r) => assert!(r.cycles > 0, "{label}"),
                    // One point is *expected* to wedge: the non-streamed
                    // build of the indirect chain (`tab[idx[i]]`) under a
                    // 1-entry FIFO. The dependent load both dequeues the
                    // index (freeing the single slot) and enqueues its own
                    // response (needing it); the machine conservatively
                    // refuses the issue, and a 1-entry in-FIFO genuinely
                    // cannot overlap an indirect load chain. All three
                    // engines agreeing on that deadlock — same cycle, same
                    // diagnosis — IS the property under test here. (The
                    // streamed build is immune: the gather SCU owns the
                    // FIFO and respects its capacity.)
                    Err(e @ SimError::Deadlock { .. })
                        if prog_name == "gather-stream" && cfg_name.starts_with("fifo=1") =>
                    {
                        let _ = e;
                    }
                    Err(e) => panic!("{label}: unexpected failure: {e}"),
                }
            }
        }
    }
}

#[test]
fn engines_agree_on_dropped_response_deadlock() {
    // Dropping a response wedges the machine; both engines must report
    // the deadlock at the same cycle with the same wedge diagnosis.
    let module = compile(
        r"
        int a[64];
        int main() {
            int i; int s;
            for (i = 0; i < 64; i++) a[i] = i;
            s = 0;
            for (i = 0; i < 64; i++) s = s + a[i];
            return s;
        }
        ",
        &OptOptions::all(),
    );
    // The first loop issues 64 stream writes (requests 1–64); request 80
    // is one of the second loop's stream reads, and a read that never
    // returns starves the stream for good.
    let cfg = WmConfig::default()
        .with_max_cycles(100_000)
        .with_fault_plan(FaultPlan::parse("drop:80").unwrap());
    let e = assert_equivalent(&module, &cfg, "dropped-response").unwrap_err();
    assert!(
        matches!(e, SimError::Deadlock { .. }),
        "expected a deadlock, got: {e}"
    );
}

#[test]
fn engines_agree_on_scu_kill() {
    // Disabling an SCU mid-run: the attribution flips to
    // `stall:disabled` at the exact kill cycle in both engines (the kill
    // cycle is a fast-forward event), and the run wedges identically.
    let module = compile(
        r"
        int a[4096]; int b[4096];
        int main() {
            int i; int s;
            for (i = 0; i < 4096; i++) { a[i] = i; b[i] = i; }
            s = 0;
            for (i = 0; i < 4096; i++) s = s + a[i] * b[i];
            return s % 10007;
        }
        ",
        &OptOptions::all().assume_noalias(),
    );
    for kill_cycle in [100, 5_000, 20_000] {
        let cfg = WmConfig::default()
            .with_max_cycles(200_000)
            .with_fault_plan(FaultPlan {
                disable_scus: vec![(0, kill_cycle), (1, kill_cycle)],
                ..FaultPlan::default()
            });
        // Whether this deadlocks or survives depends on whether the
        // streams outlive the kill cycle; either way both engines must
        // agree exactly.
        let _ = assert_equivalent(&module, &cfg, &format!("scu-kill@{kill_cycle}"));
    }
}

#[test]
fn engines_agree_on_cycle_limit_timeout() {
    // An infinite loop must time out at exactly `max_cycles` under both
    // engines (the fast-forward clamps its jumps to the limit).
    let module = compile("int main() { while (1) {} return 0; }", &OptOptions::all());
    let cfg = WmConfig::default().with_max_cycles(7_777);
    let e = assert_equivalent(&module, &cfg, "timeout").unwrap_err();
    assert!(
        matches!(e, SimError::Timeout { .. } | SimError::Deadlock { .. }),
        "expected timeout or deadlock, got: {e}"
    );
}

#[test]
fn engines_agree_on_memory_hierarchy_stall_storms() {
    // The memory-hierarchy wake events (bank free, miss delivery
    // releasing an MSHR) must bound every fast-forward jump. This
    // workload alternates scalar bursts (MSHR/bank refusals) with
    // streams (buffer prefetch traffic) under a one-bank DRAM, so
    // mshr-full and bank-busy stall spans dominate the run.
    let src = r"
        int a[512]; int b[512]; int c[64];
        int main() {
            int i; int s;
            for (i = 0; i < 512; i++) { a[i] = i; b[i] = i + 1; }
            s = 0;
            for (i = 0; i < 64; i++) c[i] = a[i * 7] + b[i * 5];
            for (i = 0; i < 512; i++) s = s + a[i] * b[i];
            for (i = 0; i < 64; i++) s = s + c[i];
            return s % 10007;
        }
    ";
    for opts in [OptOptions::all(), OptOptions::all().without_streaming()] {
        let module = compile(src, &opts);
        for spec in [
            "cache:mshrs=1,miss=48",
            "banked:banks=1,busy=16,rowhit=8,rowmiss=32,mshrs=1",
            "banked:banks=2,busy=8,sbufs=1,depth=1",
        ] {
            let cfg = WmConfig::default().with_mem_model(MemModel::parse(spec).unwrap());
            let label = format!("stall-storm [{spec}]");
            let r = assert_equivalent(&module, &cfg, &label)
                .unwrap_or_else(|e| panic!("{label}: unexpected failure: {e}"));
            let mem = r.perf.mem.as_ref().expect("hierarchical stats present");
            assert!(mem.hits + mem.misses > 0, "{label}: no scalar traffic seen");
        }
    }
}

#[test]
fn event_engine_is_the_default() {
    let module = compile("int main() { return 41 + 1; }", &OptOptions::all());
    let r = WmMachine::run(&module, "main", &[], &WmConfig::default()).expect("runs");
    assert_eq!(r.engine, Engine::Event);
    assert_eq!(r.ret_int, 42);
}

#[test]
fn compiled_engine_reports_itself() {
    let module = compile("int main() { return 41 + 1; }", &OptOptions::all());
    let cfg = WmConfig::default().with_engine(Engine::Compiled);
    let r = WmMachine::run(&module, "main", &[], &cfg).expect("runs");
    assert_eq!(r.engine, Engine::Compiled);
    assert_eq!(r.ret_int, 42);
}

#[test]
fn engine_all_covers_every_engine() {
    assert_eq!(
        Engine::ALL.map(Engine::name),
        ["cycle", "event", "compiled"]
    );
    for e in Engine::ALL {
        assert_eq!(Engine::parse(e.name()), Ok(e));
    }
}
