//! Tiled-machine behavior: inter-core channels, epoch determinism,
//! engine equivalence across tile counts, host-thread invariance, and
//! the channel fault model (overrun poison, killed-sender deadlock).

use proptest::prelude::*;
use wm_ir::{
    BinOp, DataFifo, FuncBuilder, Function, InstKind, Module, Operand, RExpr, Reg, RegClass, Width,
};
use wm_opt::OptOptions;
use wm_sim::{
    Engine, FaultKind, FaultPlan, MemModel, SimError, TiledMachine, TiledRunResult, WmConfig,
    WmMachine,
};

fn module_of(funcs: Vec<Function>) -> Module {
    let mut m = Module::new();
    for f in funcs {
        m.add_function(f);
    }
    m
}

fn run_tiled(m: &Module, cfg: &WmConfig, threads: usize) -> Result<TiledRunResult, SimError> {
    TiledMachine::run(m, "main", &[], cfg, threads)
}

/// Tile 1 computes a value and sends it over the scalar channel; tile 0
/// receives it and returns it.
fn ping_module() -> Module {
    let mut t0 = FuncBuilder::new("main", 0, 0);
    t0.emit(InstKind::ChanRecv {
        peer: 1,
        dst: Reg::int(2),
    });
    t0.emit(InstKind::Ret);

    let mut t1 = FuncBuilder::new("__tile1_main", 0, 0);
    let a = Reg::int(4);
    t1.copy(a, Operand::Imm(40));
    t1.assign(a, RExpr::Bin(BinOp::Add, a.into(), Operand::Imm(2)));
    t1.emit(InstKind::ChanSend {
        peer: 0,
        src: a.into(),
        class: RegClass::Int,
    });
    t1.emit(InstKind::Ret);

    module_of(vec![t0.finish(), t1.finish()])
}

#[test]
fn scalar_channel_ping() {
    let m = ping_module();
    let cfg = WmConfig::default().with_tiles(2);
    let r = run_tiled(&m, &cfg, 1).expect("runs");
    assert_eq!(r.ret_int, 42);
    // the receive can only complete after one epoch barrier + latency
    assert!(r.cycles > cfg.chan_latency);
    assert_eq!(r.tiles.len(), 2);
}

#[test]
fn scalar_channel_ping_all_engines_and_threads() {
    let m = ping_module();
    let mut reference: Option<TiledRunResult> = None;
    for engine in Engine::ALL {
        for threads in [1, 2, 4] {
            let cfg = WmConfig::default().with_tiles(2).with_engine(engine);
            let r = run_tiled(&m, &cfg, threads).expect("runs");
            assert_eq!(r.ret_int, 42);
            if let Some(refr) = &reference {
                assert_eq!(refr.cycles, r.cycles, "{engine:?} x {threads} threads");
                for (a, b) in refr.tiles.iter().zip(&r.tiles) {
                    assert_eq!(a.cycles, b.cycles);
                    assert_eq!(a.perf, b.perf, "{engine:?} x {threads} threads");
                }
            } else {
                reference = Some(r);
            }
        }
    }
}

/// A stream pair: tile 1 sends `N` values through an SCU channel stream
/// into tile 0's f0 FIFO; tile 0 accumulates them with a tested stream.
#[test]
fn stream_channel_moves_a_block() {
    let n = 64i64;
    // tile 0: Srecv f0 <- tile 1, then a jNI accumulation loop
    let mut t0 = FuncBuilder::new("main", 0, 0);
    let fifo = DataFifo::new(RegClass::Int, 0);
    t0.emit(InstKind::StreamRecv {
        peer: 1,
        fifo,
        count: Operand::Imm(n),
        tested: true,
    });
    let acc = Reg::int(4);
    t0.copy(acc, Operand::Imm(0));
    let body = t0.new_block();
    let done = t0.new_block();
    t0.jump(body);
    t0.switch_to(body);
    t0.assign(acc, RExpr::Bin(BinOp::Add, acc.into(), Reg::int(0).into()));
    t0.emit(InstKind::BranchStream {
        fifo,
        target: body,
        els: done,
    });
    t0.switch_to(done);
    t0.copy(Reg::int(2), acc.into());
    t0.emit(InstKind::Ret);

    // tile 1: feed the f0 input FIFO from a scalar loop (Assign to r0
    // pushes the *output* FIFO, so use Csend's SCU dual: stage values
    // through Ssend from the input FIFO filled by... a memory stream is
    // the realistic producer, but scalar Csend is enough to check the
    // SCU receive path)
    let mut t1 = FuncBuilder::new("__tile1_main", 0, 0);
    let i = Reg::int(4);
    t1.copy(i, Operand::Imm(0));
    let body1 = t1.new_block();
    let done1 = t1.new_block();
    t1.jump(body1);
    t1.switch_to(body1);
    t1.emit(InstKind::ChanSend {
        peer: 0,
        src: i.into(),
        class: RegClass::Int,
    });
    t1.assign(i, RExpr::Bin(BinOp::Add, i.into(), Operand::Imm(1)));
    let yes = body1;
    let no = done1;
    t1.branch_if(
        RegClass::Int,
        wm_ir::CmpOp::Lt,
        i.into(),
        Operand::Imm(n),
        yes,
        no,
    );
    t1.switch_to(done1);
    t1.emit(InstKind::Ret);

    let m = module_of(vec![t0.finish(), t1.finish()]);
    let cfg = WmConfig::default().with_tiles(2);
    let r = run_tiled(&m, &cfg, 2).expect("runs");
    assert_eq!(r.ret_int, (0..n).sum::<i64>());
}

/// `--tiles 1` delegates to the untiled machine: no tile structures are
/// ever allocated (the single-tile path is byte-for-byte the old one).
#[test]
fn one_tile_runs_untiled() {
    let mut b = FuncBuilder::new("main", 0, 0);
    b.copy(Reg::int(2), Operand::Imm(7));
    b.emit(InstKind::Ret);
    let m = module_of(vec![b.finish()]);
    let cfg = WmConfig::default(); // tiles = 1
    let r = run_tiled(&m, &cfg, 4).expect("runs");
    assert_eq!(r.ret_int, 7);
    assert_eq!(r.tiles.len(), 1);
}

/// A channel instruction on an untiled machine is a program error, not UB.
#[test]
fn channel_on_single_tile_is_rejected() {
    let m = ping_module();
    let cfg = WmConfig::default();
    let err = run_tiled(&m, &cfg, 1).unwrap_err();
    assert!(matches!(err, SimError::BadProgram(_)), "{err}");
}

/// Compile a C workload through the full pipeline with the module-level
/// tile-partitioning pass, exactly as `wmcc --tiles N` does.
fn compile_partitioned(src: &str, tiles: usize) -> Module {
    let opts = OptOptions::all().assume_noalias().with_tiles(tiles);
    let mut module = wm_frontend::compile(src).expect("compiles");
    let extents = wm_opt::GlobalExtents::of_module(&module);
    for f in module.functions.iter_mut() {
        wm_opt::optimize_generic(f, &opts);
    }
    if tiles > 1 {
        wm_opt::partition_tiles(&mut module, "main", tiles)
            .expect("workload should qualify for partitioning");
    }
    for f in module.functions.iter_mut() {
        wm_target::expand_wm(f);
        wm_opt::optimize_wm_with(f, &opts, &extents);
        wm_target::allocate_registers(f, wm_target::TargetKind::Wm).expect("allocates");
    }
    module
}

fn iir_expected() -> i64 {
    match wm_workloads::all()
        .into_iter()
        .find(|w| w.name == "iir")
        .expect("iir workload")
        .expected_ret
    {
        wm_workloads::Expected::Ret(want) => want,
        other => panic!("iir should check a return value, not {other:?}"),
    }
}

/// The engine-equivalence matrix, through the *compiler*: a partitioned
/// C workload crossed over all three engines, tile counts 1/2/4 and
/// flat/banked memory must agree on the architectural result, the
/// global cycle count and the **full** per-tile `Stats` — and the host
/// thread count must be invisible throughout.
#[test]
fn partitioned_workload_engine_matrix_is_bit_identical() {
    let src = wm_workloads::all()
        .into_iter()
        .find(|w| w.name == "iir")
        .expect("iir workload")
        .source;
    let expected = iir_expected();
    for tiles in [1usize, 2, 4] {
        let module = compile_partitioned(src, tiles);
        if tiles > 1 {
            assert!(
                module.lookup("__tile1_main").is_some(),
                "partitioning must emit per-tile clones"
            );
        }
        for mem in ["flat", "banked"] {
            let mut reference: Option<TiledRunResult> = None;
            for engine in Engine::ALL {
                for threads in [1usize, 2] {
                    let cfg = WmConfig::default()
                        .with_tiles(tiles)
                        .with_engine(engine)
                        .with_mem_model(MemModel::parse(mem).unwrap());
                    let r = TiledMachine::run(&module, "main", &[], &cfg, threads)
                        .unwrap_or_else(|e| panic!("{tiles}x{mem}/{engine}/t{threads}: {e}"));
                    assert_eq!(r.ret_int, expected, "{tiles}x{mem}/{engine}/t{threads}");
                    if let Some(refr) = &reference {
                        let label = format!("{tiles} tiles, {mem}, {engine}, {threads} threads");
                        assert_eq!(refr.cycles, r.cycles, "{label}: global cycles");
                        assert_eq!(refr.tiles.len(), r.tiles.len(), "{label}: tile count");
                        for (k, (a, b)) in refr.tiles.iter().zip(&r.tiles).enumerate() {
                            assert_eq!(a.cycles, b.cycles, "{label}: tile {k} cycles");
                            assert_eq!(a.stats, b.stats, "{label}: tile {k} SimStats");
                            assert_eq!(a.perf, b.perf, "{label}: tile {k} perf counters");
                        }
                    } else {
                        reference = Some(r);
                    }
                }
            }
        }
    }
}

/// A partitioned run on 4 tiles must beat the single-tile compile of
/// the same workload in simulated cycles (the point of the exercise).
#[test]
fn partitioned_livermore5_beats_single_tile() {
    let w = wm_workloads::all()
        .into_iter()
        .find(|w| w.name == "livermore5")
        .expect("livermore5 workload");
    let src = w.source;
    let banked = MemModel::parse("banked").unwrap();
    let one = TiledMachine::run(
        &compile_partitioned(src, 1),
        "main",
        &[],
        &WmConfig::default().with_mem_model(banked.clone()),
        1,
    )
    .expect("runs");
    let four = TiledMachine::run(
        &compile_partitioned(src, 4),
        "main",
        &[],
        &WmConfig::default().with_tiles(4).with_mem_model(banked),
        2,
    )
    .expect("runs");
    // data-dependent checksum: the partitioned run must agree with the
    // single-core run exactly, and beat it on the clock
    assert_eq!(four.ret_int, one.ret_int);
    assert!(
        four.cycles < one.cycles,
        "4 tiles ({}) should beat 1 tile ({})",
        four.cycles,
        one.cycles
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The host thread count is a scheduling knob, never a semantic
    /// one: for any thread count and tile count, every counter of
    /// every tile matches the sequential (1-thread) reference.
    #[test]
    fn host_threads_never_change_any_counter(threads in 1usize..=8, tiles in 2usize..=4) {
        let n = 48i64;
        let mut t0 = FuncBuilder::new("main", 0, 0);
        let fifo = DataFifo::new(RegClass::Int, 0);
        t0.emit(InstKind::StreamRecv { peer: 1, fifo, count: Operand::Imm(n), tested: true });
        let acc = Reg::int(4);
        t0.copy(acc, Operand::Imm(0));
        let body = t0.new_block();
        let done = t0.new_block();
        t0.jump(body);
        t0.switch_to(body);
        t0.assign(acc, RExpr::Bin(BinOp::Add, acc.into(), Reg::int(0).into()));
        t0.emit(InstKind::BranchStream { fifo, target: body, els: done });
        t0.switch_to(done);
        t0.copy(Reg::int(2), acc.into());
        t0.emit(InstKind::Ret);
        let mut t1 = FuncBuilder::new("__tile1_main", 0, 0);
        let i = Reg::int(4);
        t1.copy(i, Operand::Imm(0));
        let body1 = t1.new_block();
        let done1 = t1.new_block();
        t1.jump(body1);
        t1.switch_to(body1);
        t1.emit(InstKind::ChanSend { peer: 0, src: i.into(), class: RegClass::Int });
        t1.assign(i, RExpr::Bin(BinOp::Add, i.into(), Operand::Imm(1)));
        t1.branch_if(RegClass::Int, wm_ir::CmpOp::Lt, i.into(), Operand::Imm(n), body1, done1);
        t1.switch_to(done1);
        t1.emit(InstKind::Ret);
        let m = module_of(vec![t0.finish(), t1.finish()]);
        let cfg = WmConfig::default().with_tiles(tiles);
        let reference = run_tiled(&m, &cfg, 1).expect("sequential reference runs");
        let got = run_tiled(&m, &cfg, threads).expect("parallel run runs");
        prop_assert_eq!(reference.cycles, got.cycles);
        prop_assert_eq!(reference.ret_int, got.ret_int);
        for (a, b) in reference.tiles.iter().zip(&got.tiles) {
            prop_assert_eq!(a.cycles, b.cycles);
            prop_assert_eq!(&a.stats, &b.stats);
            prop_assert_eq!(&a.perf, &b.perf);
        }
    }
}

/// `--inject scu:1:0` kills the *sender* tile's channel-stream SCU; the
/// receiver's starvation must surface as a global deadlock that names
/// both sides: the starved channel on tile 0 and the injected kill on
/// tile 1.
#[test]
fn injected_scu_kill_on_sender_tile_names_both_sides() {
    let n = 16i64;
    let mut t0 = FuncBuilder::new("main", 0, 0);
    let fifo = DataFifo::new(RegClass::Int, 1);
    t0.emit(InstKind::StreamRecv {
        peer: 1,
        fifo,
        count: Operand::Imm(n),
        tested: true,
    });
    let acc = Reg::int(4);
    t0.copy(acc, Operand::Imm(0));
    let body = t0.new_block();
    let done = t0.new_block();
    t0.jump(body);
    t0.switch_to(body);
    t0.assign(acc, RExpr::Bin(BinOp::Add, acc.into(), Reg::int(1).into()));
    t0.emit(InstKind::BranchStream {
        fifo,
        target: body,
        els: done,
    });
    t0.switch_to(done);
    t0.copy(Reg::int(2), acc.into());
    t0.emit(InstKind::Ret);

    // tile 1: an in-stream (SCU 0) feeds a channel send (SCU 1) — the
    // zero-instruction DMA pair the partitioner emits for write-back.
    let mut m = Module::new();
    let init: Vec<u8> = (1i32..=n as i32).flat_map(|v| v.to_le_bytes()).collect();
    let sym = m.add_data("tab", 4 * n as u64, 4, init);
    let mut t1 = FuncBuilder::new("__tile1_main", 0, 0);
    let base = Reg::int(3);
    t1.emit(InstKind::LoadAddr {
        dst: base,
        sym,
        disp: 0,
    });
    t1.emit(InstKind::StreamIn {
        fifo,
        base: base.into(),
        count: Some(Operand::Imm(n)),
        stride: Operand::Imm(4),
        width: Width::W4,
        tested: false,
    });
    t1.emit(InstKind::StreamSend {
        peer: 0,
        fifo,
        count: Operand::Imm(n),
    });
    t1.emit(InstKind::Ret);
    m.add_function(t0.finish());
    m.add_function(t1.finish());

    // sanity: without injection the DMA pair completes
    let cfg = WmConfig::default().with_tiles(2);
    let ok = run_tiled(&m, &cfg, 2).expect("healthy run completes");
    assert_eq!(ok.ret_int, (1..=n).sum::<i64>());

    // kill SCU slot 1 (the send) from cycle 0 — on tile 0 that slot
    // stays inactive, so only the sender is wounded
    let cfg = WmConfig::default()
        .with_tiles(2)
        .with_fault_plan(FaultPlan::parse("scu:1:0").unwrap());
    let err = run_tiled(&m, &cfg, 2).unwrap_err();
    match err {
        SimError::Deadlock { detail, .. } => {
            assert!(
                detail.contains("channel from tile 1"),
                "receiver side must name the starved channel: {detail}"
            );
            assert!(
                detail.contains("disabled by fault injection"),
                "sender side must name the injected kill: {detail}"
            );
        }
        other => panic!("expected deadlock, got {other}"),
    }
}

/// A fire-and-forget scalar sender that outruns the channel capacity
/// overruns the receive queue; the clobbered entry is *poisoned*, and
/// the receiver faults only when it consumes it — with the sender's
/// provenance in the message.
#[test]
fn channel_overrun_poisons_the_receiver() {
    let n = 64i64;
    let mut t0 = FuncBuilder::new("main", 0, 0);
    let i0 = Reg::int(4);
    let acc = Reg::int(5);
    t0.copy(i0, Operand::Imm(0));
    t0.copy(acc, Operand::Imm(0));
    let body = t0.new_block();
    let done = t0.new_block();
    t0.jump(body);
    t0.switch_to(body);
    t0.emit(InstKind::ChanRecv {
        peer: 1,
        dst: Reg::int(6),
    });
    t0.assign(acc, RExpr::Bin(BinOp::Add, acc.into(), Reg::int(6).into()));
    t0.assign(i0, RExpr::Bin(BinOp::Add, i0.into(), Operand::Imm(1)));
    t0.branch_if(
        RegClass::Int,
        wm_ir::CmpOp::Lt,
        i0.into(),
        Operand::Imm(n),
        body,
        done,
    );
    t0.switch_to(done);
    t0.copy(Reg::int(2), acc.into());
    t0.emit(InstKind::Ret);

    let mut t1 = FuncBuilder::new("__tile1_main", 0, 0);
    let i = Reg::int(4);
    t1.copy(i, Operand::Imm(0));
    let body1 = t1.new_block();
    let done1 = t1.new_block();
    t1.jump(body1);
    t1.switch_to(body1);
    t1.emit(InstKind::ChanSend {
        peer: 0,
        src: i.into(),
        class: RegClass::Int,
    });
    t1.assign(i, RExpr::Bin(BinOp::Add, i.into(), Operand::Imm(1)));
    t1.branch_if(
        RegClass::Int,
        wm_ir::CmpOp::Lt,
        i.into(),
        Operand::Imm(n),
        body1,
        done1,
    );
    t1.switch_to(done1);
    t1.emit(InstKind::Ret);

    let m = module_of(vec![t0.finish(), t1.finish()]);
    // capacity 4 against a 64-element burst: the sender floods a full
    // epoch's worth of messages before the receiver sees any of them
    let cfg = WmConfig::default().with_tiles(2).with_chan_capacity(4);
    let err = run_tiled(&m, &cfg, 2).unwrap_err();
    match err {
        SimError::Fault { fault, .. } => {
            assert_eq!(fault.kind, FaultKind::PoisonConsumed, "{}", fault.detail);
            assert!(
                fault.detail.contains("channel overrun"),
                "poison must carry overrun provenance: {}",
                fault.detail
            );
            assert!(
                fault.detail.contains("tile 1"),
                "poison must name the flooding sender: {}",
                fault.detail
            );
        }
        other => panic!("expected poison fault, got {other}"),
    }
}

/// A plain (untiled) machine allocates no channel state at all, and the
/// 1-tile tiled run is the *same code path* as the untiled one: full
/// `Stats` equality, not just matching cycle counts.
#[test]
fn one_tile_is_byte_identical_to_untiled_and_allocates_nothing() {
    let src = wm_workloads::all()
        .into_iter()
        .find(|w| w.name == "iir")
        .expect("iir workload")
        .source;
    let module = compile_partitioned(src, 1);
    let cfg = WmConfig::default();
    let machine = WmMachine::new(&module, &cfg).expect("builds");
    assert!(
        !machine.channel_state_allocated(),
        "an untiled machine must not allocate channel structures"
    );
    let plain = WmMachine::run(&module, "main", &[], &cfg).expect("runs");
    let tiled = TiledMachine::run(&module, "main", &[], &cfg, 4).expect("runs");
    assert_eq!(tiled.tiles.len(), 1);
    assert_eq!(plain.cycles, tiled.cycles);
    assert_eq!(plain.ret_int, tiled.ret_int);
    assert_eq!(plain.stats, tiled.tiles[0].stats);
    assert_eq!(plain.perf, tiled.tiles[0].perf);
}

/// Killing the sender tile's SCU by fault injection must surface as a
/// *global* deadlock whose diagnosis names the starved channel.
#[test]
fn killed_sender_diagnoses_receiver_deadlock() {
    let m = ping_module();
    // tile 1's send is a scalar op; instead kill via an impossible
    // channel: make tile 0 wait on a tile that never sends. Build a
    // module where tile 1 just returns.
    let mut t0 = FuncBuilder::new("main", 0, 0);
    t0.emit(InstKind::ChanRecv {
        peer: 1,
        dst: Reg::int(2),
    });
    t0.emit(InstKind::Ret);
    let mut t1 = FuncBuilder::new("__tile1_main", 0, 0);
    t1.copy(Reg::int(2), Operand::Imm(0));
    t1.emit(InstKind::Ret);
    let m2 = module_of(vec![t0.finish(), t1.finish()]);
    let _ = m;
    let cfg = WmConfig::default().with_tiles(2);
    let err = run_tiled(&m2, &cfg, 2).unwrap_err();
    match err {
        SimError::Deadlock { detail, .. } => {
            assert!(
                detail.contains("channel from tile 1"),
                "diagnosis must name the starved channel: {detail}"
            );
            assert!(detail.contains("tile 0:"), "per-tile prefix: {detail}");
        }
        other => panic!("expected deadlock, got {other}"),
    }
}
