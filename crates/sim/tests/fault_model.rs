//! Fault-model tests: memory protection, deferred stream-fault (poison)
//! semantics, fault provenance, machine-state dumps on terminal errors,
//! and deterministic fault injection.

use wm_ir::{BinOp, DataFifo, FuncBuilder, InstKind, Module, Operand, RExpr, Reg, RegClass, Width};
use wm_sim::{FaultKind, FaultPlan, FaultUnit, SimError, WmConfig, WmMachine, DATA_BASE};

/// A module with one `tab` data global of `size` bytes holding the given
/// little-endian int32 values, plus a `main` built by `body`.
fn with_table(size: u64, values: &[i32], body: impl FnOnce(&mut FuncBuilder, Reg)) -> Module {
    let mut m = Module::new();
    let init: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
    let sym = m.add_data("tab", size, 8, init);
    let mut b = FuncBuilder::new("main", 0, 0);
    let base = Reg::int(3);
    b.emit(InstKind::LoadAddr {
        dst: base,
        sym,
        disp: 0,
    });
    body(&mut b, base);
    b.emit(InstKind::Ret);
    m.add_function(b.finish());
    m
}

fn run_err(m: &Module, cfg: &WmConfig) -> SimError {
    WmMachine::run(m, "main", &[], cfg).unwrap_err()
}

#[test]
fn wild_store_faults_with_full_provenance() {
    // store far past every mapped region: precise fault naming the IEU,
    // the address, the instruction, plus a machine-state dump
    let m = with_table(16, &[], |b, base| {
        b.assign(Reg::int(0), RExpr::Op(Operand::Imm(7)));
        b.emit(InstKind::WStore {
            unit: RegClass::Int,
            addr: RExpr::Bin(BinOp::Add, base.into(), Operand::Imm(1 << 20)),
            width: Width::W4,
        });
    });
    let err = run_err(&m, &WmConfig::default());
    let SimError::Fault { fault, state, .. } = err else {
        panic!("expected fault, got {err}");
    };
    assert_eq!(fault.unit, FaultUnit::Ieu);
    assert_eq!(fault.kind, FaultKind::Unmapped);
    assert_eq!(fault.addr, Some(DATA_BASE + (1 << 20)));
    let inst = fault.inst.as_deref().expect("faulting instruction named");
    assert!(inst.contains(":="), "listing notation: {inst}");
    let dump = state.to_string();
    assert!(dump.contains("machine state at cycle"), "{dump}");
    assert!(dump.contains("IEU"), "{dump}");
}

#[test]
fn guard_red_zone_catches_off_by_a_little_stores() {
    // just past the end of the global: lands in its guard red-zone and the
    // report says so
    let m = with_table(16, &[], |b, base| {
        b.assign(Reg::int(0), RExpr::Op(Operand::Imm(7)));
        b.emit(InstKind::WStore {
            unit: RegClass::Int,
            addr: RExpr::Bin(BinOp::Add, base.into(), Operand::Imm(20)),
            width: Width::W4,
        });
    });
    let err = run_err(&m, &WmConfig::default());
    let fault = err.fault().expect("fault provenance");
    assert_eq!(fault.kind, FaultKind::Unmapped);
    assert!(
        fault.detail.contains("guard red-zone"),
        "red-zone named: {}",
        fault.detail
    );
    assert!(
        fault.detail.contains("tab"),
        "global named: {}",
        fault.detail
    );
}

#[test]
fn stores_to_rodata_fault_as_readonly() {
    let mut m = Module::new();
    let sym = m.add_rodata("ktab", 16, 8, 1i32.to_le_bytes().to_vec());
    let mut b = FuncBuilder::new("main", 0, 0);
    let base = Reg::int(3);
    b.emit(InstKind::LoadAddr {
        dst: base,
        sym,
        disp: 0,
    });
    // reading rodata is fine...
    b.emit(InstKind::WLoad {
        fifo: DataFifo::new(RegClass::Int, 0),
        addr: RExpr::Op(base.into()),
        width: Width::W4,
    });
    b.copy(Reg::int(4), Reg::int(0).into());
    // ...writing it is not
    b.assign(Reg::int(0), RExpr::Op(Operand::Imm(9)));
    b.emit(InstKind::WStore {
        unit: RegClass::Int,
        addr: RExpr::Op(base.into()),
        width: Width::W4,
    });
    b.emit(InstKind::Ret);
    m.add_function(b.finish());
    let err = run_err(&m, &WmConfig::default());
    let fault = err.fault().expect("fault provenance");
    assert_eq!(fault.kind, FaultKind::ReadOnly);
    assert_eq!(fault.unit, FaultUnit::Ieu);
    assert_eq!(fault.addr, Some(DATA_BASE));
    assert!(fault.detail.contains("ktab"), "{}", fault.detail);
}

#[test]
fn unconsumed_overfetch_is_harmless() {
    // An unbounded stream over a 16-byte global prefetches past its end;
    // those entries are poisoned but never consumed, so the program runs
    // to completion (deferred stream-fault semantics).
    let m = with_table(16, &[10, 11, 12, 13], |b, base| {
        b.emit(InstKind::StreamIn {
            fifo: DataFifo::new(RegClass::Int, 1),
            base: base.into(),
            count: None,
            stride: Operand::Imm(4),
            width: Width::W4,
            tested: false,
        });
        let acc = Reg::int(4);
        b.copy(acc, Reg::int(1).into());
        b.assign(acc, RExpr::Bin(BinOp::Add, acc.into(), Reg::int(1).into()));
        b.emit(InstKind::StreamStop {
            fifo: DataFifo::new(RegClass::Int, 1),
        });
        b.copy(Reg::int(2), acc.into());
    });
    let r = WmMachine::run(&m, "main", &[], &WmConfig::default()).expect("over-fetch tolerated");
    assert_eq!(r.ret_int, 10 + 11);
}

#[test]
fn consumed_overfetch_faults_and_names_the_scu() {
    // A counted stream of 8 over a 4-element global: the 5th consumption
    // pops a poisoned entry and faults, attributing the SCU that
    // prefetched it and the address it prefetched.
    let m = with_table(16, &[1, 2, 3, 4], |b, base| {
        b.emit(InstKind::StreamIn {
            fifo: DataFifo::new(RegClass::Int, 1),
            base: base.into(),
            count: Some(Operand::Imm(8)),
            stride: Operand::Imm(4),
            width: Width::W4,
            tested: true,
        });
        let acc = Reg::int(4);
        b.copy(acc, Operand::Imm(0));
        let body = b.new_block();
        let done = b.new_block();
        b.jump(body);
        b.switch_to(body);
        b.assign(acc, RExpr::Bin(BinOp::Add, acc.into(), Reg::int(1).into()));
        b.emit(InstKind::BranchStream {
            fifo: DataFifo::new(RegClass::Int, 1),
            target: body,
            els: done,
        });
        b.switch_to(done);
        b.copy(Reg::int(2), acc.into());
    });
    let err = run_err(&m, &WmConfig::default());
    let fault = err.fault().expect("fault provenance");
    assert_eq!(fault.kind, FaultKind::PoisonConsumed);
    assert_eq!(fault.unit, FaultUnit::Ieu, "the consumer is blamed");
    assert_eq!(
        fault.addr,
        Some(DATA_BASE + 16),
        "first address past the end"
    );
    assert!(fault.stream.is_some(), "stream FIFO recorded");
    assert!(
        fault.detail.contains("SCU 0"),
        "prefetching SCU named: {}",
        fault.detail
    );
}

/// A streamed sum of `n` elements: enough memory traffic for injection
/// experiments.
fn streamed_sum(n: i32) -> Module {
    let vals: Vec<i32> = (1..=n).collect();
    with_table(4 * n as u64, &vals, |b, base| {
        b.emit(InstKind::StreamIn {
            fifo: DataFifo::new(RegClass::Int, 1),
            base: base.into(),
            count: Some(Operand::Imm(n as i64)),
            stride: Operand::Imm(4),
            width: Width::W4,
            tested: true,
        });
        let acc = Reg::int(4);
        b.copy(acc, Operand::Imm(0));
        let body = b.new_block();
        let done = b.new_block();
        b.jump(body);
        b.switch_to(body);
        b.assign(acc, RExpr::Bin(BinOp::Add, acc.into(), Reg::int(1).into()));
        b.emit(InstKind::BranchStream {
            fifo: DataFifo::new(RegClass::Int, 1),
            target: body,
            els: done,
        });
        b.switch_to(done);
        b.copy(Reg::int(2), acc.into());
    })
}

#[test]
fn delayed_responses_change_timing_but_not_results() {
    let m = streamed_sum(32);
    let base = WmMachine::run(&m, "main", &[], &WmConfig::default()).unwrap();
    let plan = FaultPlan::parse("delay:1:50,delay:5:25").unwrap();
    let slow = WmMachine::run(&m, "main", &[], &WmConfig::default().with_fault_plan(plan)).unwrap();
    assert_eq!(base.ret_int, (1..=32).sum::<i32>() as i64);
    assert_eq!(slow.ret_int, base.ret_int, "delays must not corrupt data");
    assert!(
        slow.cycles > base.cycles,
        "delayed {} should exceed baseline {}",
        slow.cycles,
        base.cycles
    );
}

#[test]
fn dropped_response_wedges_and_is_attributed() {
    // a scalar load whose response vanishes: the IEU starves forever and
    // the deadlock report blames the dropped response
    let m = with_table(16, &[42], |b, base| {
        b.emit(InstKind::WLoad {
            fifo: DataFifo::new(RegClass::Int, 0),
            addr: RExpr::Op(base.into()),
            width: Width::W4,
        });
        b.copy(Reg::int(2), Reg::int(0).into());
    });
    let cfg = WmConfig::default().with_fault_plan(FaultPlan::parse("drop:1").unwrap());
    let err = run_err(&m, &cfg);
    let SimError::Deadlock { detail, state, .. } = err else {
        panic!("expected deadlock, got {err}");
    };
    assert!(detail.contains("IEU"), "{detail}");
    assert!(
        detail.contains("dropped by fault injection"),
        "the lost response is blamed: {detail}"
    );
    assert_eq!(state.dropped_responses, 1);
}

#[test]
fn disabled_scu_wedges_and_is_attributed() {
    let m = streamed_sum(32);
    let cfg = WmConfig::default().with_fault_plan(FaultPlan::parse("scu:0:0").unwrap());
    let err = run_err(&m, &cfg);
    let SimError::Deadlock { detail, state, .. } = err else {
        panic!("expected deadlock, got {err}");
    };
    assert!(
        detail.contains("SCU 0") && detail.contains("disabled"),
        "the disabled SCU is blamed: {detail}"
    );
    assert!(state.scus[0].disabled, "snapshot flags the disabled SCU");
}

#[test]
fn jitter_is_deterministic_per_seed() {
    let m = streamed_sum(64);
    let run_with = |spec: &str| {
        let cfg = WmConfig::default().with_fault_plan(FaultPlan::parse(spec).unwrap());
        WmMachine::run(&m, "main", &[], &cfg).unwrap()
    };
    let a1 = run_with("jitter:7:9");
    let a2 = run_with("jitter:7:9");
    let base = WmMachine::run(&m, "main", &[], &WmConfig::default()).unwrap();
    assert_eq!(a1.cycles, a2.cycles, "same seed, same cycle count");
    assert_eq!(a1.ret_int, base.ret_int, "jitter must not corrupt data");
    assert!(a1.cycles >= base.cycles, "jitter only ever adds latency");
}

#[test]
fn oversized_globals_are_a_bad_program() {
    let mut m = Module::new();
    m.add_data("huge", 1 << 20, 8, vec![]);
    let mut b = FuncBuilder::new("main", 0, 0);
    b.copy(Reg::int(2), Operand::Imm(0));
    b.emit(InstKind::Ret);
    m.add_function(b.finish());
    let cfg = WmConfig {
        memory_size: 1 << 16,
        ..WmConfig::default()
    };
    let err = run_err(&m, &cfg);
    let SimError::BadProgram(msg) = err else {
        panic!("expected bad program, got {err}");
    };
    assert!(msg.contains("does not fit"), "{msg}");
}

#[test]
fn timeout_carries_a_machine_state() {
    let mut b = FuncBuilder::new("main", 0, 0);
    let spin = b.new_block();
    let t = Reg::int(4);
    b.copy(t, Operand::Imm(0));
    b.jump(spin);
    b.switch_to(spin);
    b.assign(t, RExpr::Bin(BinOp::Add, t.into(), Operand::Imm(1)));
    b.jump(spin);
    let mut m = Module::new();
    m.add_function(b.finish());
    let cfg = WmConfig::default().with_max_cycles(5_000);
    let err = run_err(&m, &cfg);
    let SimError::Timeout { cycles, state } = err else {
        panic!("expected timeout, got {err}");
    };
    assert_eq!(cycles, 5_000);
    assert_eq!(state.units.len(), 2, "IEU and FEU both snapshotted");
    assert!(state.cycle >= 5_000);
}

#[test]
fn fifo_imbalance_on_degraded_hardware_is_a_deadlock_not_a_timeout() {
    // Satellite: at fifo_capacity=1 / mem_ports=1, imbalance in either
    // direction must still be attributed as a deadlock naming the unit.
    let degraded = WmConfig::default()
        .with_fifo_capacity(1)
        .with_mem_ports(1)
        .with_max_cycles(1_000_000);

    // dequeue with no producer
    let mut b = FuncBuilder::new("main", 0, 0);
    b.copy(Reg::int(2), Reg::int(0).into());
    b.emit(InstKind::Ret);
    let mut m = Module::new();
    m.add_function(b.finish());
    let err = run_err(&m, &degraded);
    let SimError::Deadlock { detail, .. } = err else {
        panic!("expected deadlock, got {err}");
    };
    assert!(detail.contains("IEU"), "unit named: {detail}");

    // enqueue with no consumer: the second enqueue blocks on the full
    // one-entry output FIFO forever
    let mut b = FuncBuilder::new("main", 0, 0);
    b.assign(Reg::int(0), RExpr::Op(Operand::Imm(1)));
    b.assign(Reg::int(0), RExpr::Op(Operand::Imm(2)));
    b.copy(Reg::int(2), Operand::Imm(0));
    b.emit(InstKind::Ret);
    let mut m = Module::new();
    m.add_function(b.finish());
    let err = run_err(&m, &degraded);
    let SimError::Deadlock { detail, .. } = err else {
        panic!("expected deadlock, got {err}");
    };
    assert!(detail.contains("IEU"), "unit named: {detail}");
}
