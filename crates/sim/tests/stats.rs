//! Invariant tests for the performance-counter (`Stats`) layer.
//!
//! The attribution rule is structural: every unit records exactly one
//! outcome — active, idle, or a named stall — per simulated cycle, so
//! `active + idle + Σ stalls == cycles` must hold for every unit on
//! every run, including degraded configurations. These tests pin that
//! invariant on the paper's Table I workload (Livermore loop 5) and
//! check that the counters are deterministic across runs.

use wm_ir::Module;
use wm_opt::{optimize_generic, optimize_wm, OptOptions};
use wm_sim::{Stall, WmConfig, WmMachine};
use wm_target::{allocate_registers, expand_wm, TargetKind};

fn compile(src: &str, opts: &OptOptions) -> Module {
    let mut module = wm_frontend::compile(src).expect("compiles");
    for f in module.functions.iter_mut() {
        optimize_generic(f, opts);
        expand_wm(f);
        optimize_wm(f, opts);
        allocate_registers(f, TargetKind::Wm).expect("allocates");
    }
    module
}

fn run(module: &Module, config: &WmConfig) -> wm_sim::RunResult {
    WmMachine::run(module, "main", &[], config).expect("runs")
}

fn livermore5_streamed() -> Module {
    compile(wm_workloads::livermore5().source, &OptOptions::all())
}

/// Every unit's counters must sum exactly to the total cycle count, and
/// every stall cycle must carry a reason.
fn assert_attribution(r: &wm_sim::RunResult, label: &str) {
    assert_eq!(r.perf.cycles, r.cycles, "{label}: perf.cycles mismatch");
    r.perf
        .check_attribution()
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    for (name, u) in r.perf.units() {
        assert_eq!(
            u.active + u.idle + u.stalled(),
            r.cycles,
            "{label}: {name} attribution does not sum to total cycles"
        );
    }
    for (i, scu) in r.perf.scus.iter().enumerate() {
        assert_eq!(
            scu.unit.attributed(),
            r.cycles,
            "{label}: scu{i} attribution does not sum to total cycles"
        );
    }
}

#[test]
fn attribution_sums_to_cycles_on_livermore5_default_config() {
    let module = livermore5_streamed();
    let r = run(&module, &WmConfig::default());
    assert_eq!(r.ret_int, wm_workloads::livermore5_expected());
    assert_attribution(&r, "default");

    // The streamed kernel must actually exercise the counters: the IEU
    // and FEU retire work, the SCUs move stream elements, and the FIFO
    // occupancy histograms observe every cycle.
    assert!(r.perf.ieu.retired > 0, "IEU retired nothing");
    assert!(r.perf.feu.retired > 0, "FEU retired nothing");
    assert!(r.perf.ifu.retired > 0, "IFU retired no control transfers");
    let elements: u64 = r
        .perf
        .scus
        .iter()
        .map(|s| s.elements_in + s.elements_out)
        .sum();
    assert_eq!(
        elements,
        r.stats.stream_reads + r.stats.stream_writes,
        "per-SCU element counts must agree with the legacy stream totals"
    );
    assert!(elements > 0, "streamed run moved no stream elements");
    for hist in &r.perf.fifos {
        let samples: u64 = hist.depth.iter().sum();
        assert_eq!(
            samples, r.cycles,
            "fifo {} histogram must sample every cycle",
            hist.name
        );
    }
}

#[test]
fn attribution_sums_to_cycles_on_livermore5_degraded_configs() {
    let module = livermore5_streamed();
    for (label, config) in [
        ("fifo=1", WmConfig::default().with_fifo_capacity(1)),
        ("ports=1", WmConfig::default().with_mem_ports(1)),
        (
            "fifo=1,ports=1",
            WmConfig::default().with_fifo_capacity(1).with_mem_ports(1),
        ),
    ] {
        let r = run(&module, &config);
        assert_eq!(r.ret_int, wm_workloads::livermore5_expected(), "{label}");
        assert_attribution(&r, label);
    }
}

#[test]
fn counters_are_deterministic_across_runs() {
    let module = livermore5_streamed();
    let a = run(&module, &WmConfig::default());
    let b = run(&module, &WmConfig::default());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(
        a.perf, b.perf,
        "two identical runs must produce identical counters"
    );
}

#[test]
fn degraded_fifo_shows_backpressure_stalls() {
    let module = livermore5_streamed();
    let healthy = run(&module, &WmConfig::default());
    let degraded = run(&module, &WmConfig::default().with_fifo_capacity(1));
    assert!(degraded.cycles > healthy.cycles, "fifo=1 must cost cycles");

    // With single-entry FIFOs the SCUs cannot run ahead: time they spend
    // blocked on a full input FIFO must grow.
    let full = |r: &wm_sim::RunResult| -> u64 {
        r.perf
            .scus
            .iter()
            .map(|s| s.unit.stalled_on(Stall::FifoFull))
            .sum()
    };
    assert!(
        full(&degraded) > full(&healthy),
        "fifo=1 must increase SCU fifo-full stalls ({} vs {})",
        full(&degraded),
        full(&healthy)
    );
}

#[test]
fn degraded_ports_shift_stalls_to_port_contention() {
    let module = livermore5_streamed();
    let healthy = run(&module, &WmConfig::default());
    let degraded = run(&module, &WmConfig::default().with_mem_ports(1));
    assert!(degraded.cycles > healthy.cycles, "ports=1 must cost cycles");
    let contention = |r: &wm_sim::RunResult| -> u64 {
        r.perf
            .scus
            .iter()
            .map(|s| s.unit.stalled_on(Stall::PortBusy))
            .sum::<u64>()
    };
    assert!(
        contention(&degraded) > contention(&healthy),
        "ports=1 must increase SCU port-busy stalls"
    );
}

#[test]
fn stats_json_is_emitted_and_attribution_named() {
    // A tiny non-streamed program still yields a complete JSON document;
    // the full round-trip through the hand parser is covered in the
    // wm-bench crate, which owns the parser.
    let module = compile(
        "int main() { int i; int s; s = 0; for (i = 0; i < 32; i++) s = s + i; return s; }",
        &OptOptions::all(),
    );
    let r = run(&module, &WmConfig::default());
    assert_attribution(&r, "scalar");
    let json = r.perf.to_json();
    for key in [
        "\"cycles\"",
        "\"units\"",
        "\"IEU\"",
        "\"FEU\"",
        "\"VEU\"",
        "\"IFU\"",
        "\"scus\"",
        "\"fifos\"",
        "\"ports\"",
        "\"retired\"",
        "\"stalls\"",
    ] {
        assert!(json.contains(key), "stats JSON missing {key}: {json}");
    }
}
