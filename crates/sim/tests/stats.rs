//! Invariant tests for the performance-counter (`Stats`) layer.
//!
//! The attribution rule is structural: every unit records exactly one
//! outcome — active, idle, or a named stall — per simulated cycle, so
//! `active + idle + Σ stalls == cycles` must hold for every unit on
//! every run, including degraded configurations. These tests pin that
//! invariant on the paper's Table I workload (Livermore loop 5) and
//! check that the counters are deterministic across runs.

use wm_ir::Module;
use wm_opt::{optimize_generic, optimize_wm, OptOptions};
use wm_sim::{MemModel, Stall, WmConfig, WmMachine};
use wm_target::{allocate_registers, expand_wm, TargetKind};

fn compile(src: &str, opts: &OptOptions) -> Module {
    let mut module = wm_frontend::compile(src).expect("compiles");
    for f in module.functions.iter_mut() {
        optimize_generic(f, opts);
        expand_wm(f);
        optimize_wm(f, opts);
        allocate_registers(f, TargetKind::Wm).expect("allocates");
    }
    module
}

fn run(module: &Module, config: &WmConfig) -> wm_sim::RunResult {
    WmMachine::run(module, "main", &[], config).expect("runs")
}

fn livermore5_streamed() -> Module {
    compile(wm_workloads::livermore5().source, &OptOptions::all())
}

/// Every unit's counters must sum exactly to the total cycle count, and
/// every stall cycle must carry a reason.
fn assert_attribution(r: &wm_sim::RunResult, label: &str) {
    assert_eq!(r.perf.cycles, r.cycles, "{label}: perf.cycles mismatch");
    r.perf
        .check_attribution()
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    for (name, u) in r.perf.units() {
        assert_eq!(
            u.active + u.idle + u.stalled(),
            r.cycles,
            "{label}: {name} attribution does not sum to total cycles"
        );
    }
    for (i, scu) in r.perf.scus.iter().enumerate() {
        assert_eq!(
            scu.unit.attributed(),
            r.cycles,
            "{label}: scu{i} attribution does not sum to total cycles"
        );
    }
}

#[test]
fn attribution_sums_to_cycles_on_livermore5_default_config() {
    let module = livermore5_streamed();
    let r = run(&module, &WmConfig::default());
    assert_eq!(r.ret_int, wm_workloads::livermore5_expected());
    assert_attribution(&r, "default");

    // The streamed kernel must actually exercise the counters: the IEU
    // and FEU retire work, the SCUs move stream elements, and the FIFO
    // occupancy histograms observe every cycle.
    assert!(r.perf.ieu.retired > 0, "IEU retired nothing");
    assert!(r.perf.feu.retired > 0, "FEU retired nothing");
    assert!(r.perf.ifu.retired > 0, "IFU retired no control transfers");
    let elements: u64 = r
        .perf
        .scus
        .iter()
        .map(|s| s.elements_in + s.elements_out)
        .sum();
    assert_eq!(
        elements,
        r.stats.stream_reads + r.stats.stream_writes,
        "per-SCU element counts must agree with the legacy stream totals"
    );
    assert!(elements > 0, "streamed run moved no stream elements");
    for hist in &r.perf.fifos {
        let samples: u64 = hist.depth.iter().sum();
        assert_eq!(
            samples, r.cycles,
            "fifo {} histogram must sample every cycle",
            hist.name
        );
    }
}

#[test]
fn attribution_sums_to_cycles_on_livermore5_degraded_configs() {
    let module = livermore5_streamed();
    for (label, config) in [
        ("fifo=1", WmConfig::default().with_fifo_capacity(1)),
        ("ports=1", WmConfig::default().with_mem_ports(1)),
        (
            "fifo=1,ports=1",
            WmConfig::default().with_fifo_capacity(1).with_mem_ports(1),
        ),
    ] {
        let r = run(&module, &config);
        assert_eq!(r.ret_int, wm_workloads::livermore5_expected(), "{label}");
        assert_attribution(&r, label);
    }
}

#[test]
fn counters_are_deterministic_across_runs() {
    let module = livermore5_streamed();
    let a = run(&module, &WmConfig::default());
    let b = run(&module, &WmConfig::default());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(
        a.perf, b.perf,
        "two identical runs must produce identical counters"
    );
}

#[test]
fn degraded_fifo_shows_backpressure_stalls() {
    let module = livermore5_streamed();
    let healthy = run(&module, &WmConfig::default());
    let degraded = run(&module, &WmConfig::default().with_fifo_capacity(1));
    assert!(degraded.cycles > healthy.cycles, "fifo=1 must cost cycles");

    // With single-entry FIFOs the SCUs cannot run ahead: time they spend
    // blocked on a full input FIFO must grow.
    let full = |r: &wm_sim::RunResult| -> u64 {
        r.perf
            .scus
            .iter()
            .map(|s| s.unit.stalled_on(Stall::FifoFull))
            .sum()
    };
    assert!(
        full(&degraded) > full(&healthy),
        "fifo=1 must increase SCU fifo-full stalls ({} vs {})",
        full(&degraded),
        full(&healthy)
    );
}

#[test]
fn degraded_ports_shift_stalls_to_port_contention() {
    let module = livermore5_streamed();
    let healthy = run(&module, &WmConfig::default());
    let degraded = run(&module, &WmConfig::default().with_mem_ports(1));
    assert!(degraded.cycles > healthy.cycles, "ports=1 must cost cycles");
    let contention = |r: &wm_sim::RunResult| -> u64 {
        r.perf
            .scus
            .iter()
            .map(|s| s.unit.stalled_on(Stall::PortBusy))
            .sum::<u64>()
    };
    assert!(
        contention(&degraded) > contention(&healthy),
        "ports=1 must increase SCU port-busy stalls"
    );
}

#[test]
fn attribution_sums_to_cycles_under_memory_hierarchy_models() {
    // The hierarchical memory models add two stall reasons (mshr-full,
    // bank-busy) and a stream-buffer occupancy histogram; the structural
    // attribution rule — and the new rule that the occupancy histogram
    // samples every cycle — must keep holding exactly.
    let module = livermore5_streamed();
    for (label, spec) in [
        ("cache", "cache"),
        ("banked", "banked"),
        (
            "cache-tiny",
            "cache:size=256,assoc=1,line=32,mshrs=1,miss=48",
        ),
        (
            "banked-tight",
            "banked:banks=1,busy=12,rowhit=8,rowmiss=24,mshrs=1,sbufs=2,depth=2",
        ),
    ] {
        let config = WmConfig::default().with_mem_model(MemModel::parse(spec).unwrap());
        let r = run(&module, &config);
        assert_eq!(
            r.ret_int,
            wm_workloads::livermore5_expected(),
            "{label}: results must not depend on the (timing-only) memory model"
        );
        assert_attribution(&r, label);
        let mem = r.perf.mem.as_ref().expect("hierarchical stats present");
        let occ_samples: u64 = mem.sb_occupancy.iter().sum();
        assert_eq!(
            occ_samples, r.cycles,
            "{label}: stream-buffer occupancy histogram must sample every cycle"
        );
        assert!(
            mem.hits + mem.misses + mem.sb_hits + mem.sb_misses > 0,
            "{label}: the run produced no classified memory traffic"
        );
    }
}

#[test]
fn single_mshr_shifts_stalls_to_mshr_full() {
    // Scalar (non-streamed) code under a one-MSHR cache: every load that
    // misses occupies the sole MSHR for the full miss latency, so later
    // loads pile into the new `mshr-full` bucket.
    let module = compile(
        wm_workloads::livermore5().source,
        &OptOptions::all().without_streaming(),
    );
    let config = WmConfig::default()
        .with_mem_model(MemModel::parse("cache:size=256,assoc=1,mshrs=1,miss=48").unwrap());
    let r = run(&module, &config);
    assert_eq!(r.ret_int, wm_workloads::livermore5_expected());
    assert_attribution(&r, "mshrs=1");
    let mshr_full: u64 = r
        .perf
        .units()
        .iter()
        .map(|(_, u)| u.stalled_on(Stall::MshrFull))
        .sum();
    assert!(
        mshr_full > 0,
        "a one-MSHR cache must produce mshr-full stall cycles"
    );
}

#[test]
fn single_busy_bank_shifts_stalls_to_bank_busy() {
    // One DRAM bank with a long busy window: a scalar miss arriving while
    // the bank recovers is refused and attributed to `bank-busy`.
    let module = compile(
        wm_workloads::livermore5().source,
        &OptOptions::all().without_streaming(),
    );
    let config = WmConfig::default().with_mem_model(
        MemModel::parse("banked:size=256,assoc=1,banks=1,busy=16,rowhit=8,rowmiss=32").unwrap(),
    );
    let r = run(&module, &config);
    assert_eq!(r.ret_int, wm_workloads::livermore5_expected());
    assert_attribution(&r, "banks=1");
    let bank_busy: u64 = r
        .perf
        .units()
        .iter()
        .map(|(_, u)| u.stalled_on(Stall::BankBusy))
        .sum();
    assert!(
        bank_busy > 0,
        "a single slow bank must produce bank-busy stall cycles"
    );
    let mem = r.perf.mem.as_ref().expect("hierarchical stats present");
    assert!(
        mem.row_hits + mem.row_misses > 0,
        "DRAM row bookkeeping must observe the traffic"
    );
}

#[test]
fn stream_buffers_absorb_miss_latency_for_streamed_code() {
    // The paper's core claim, visible in the counters: streamed code under
    // a high-latency hierarchy runs closer to its flat-memory time than
    // scalar code does, because the stream buffers prefetch ahead while
    // scalar loads eat the full miss latency. (A dot product, not
    // Livermore 5: loop 5's recurrence serializes on the FEU and hides
    // memory latency under both compilations.)
    let src = r"
        double a[512]; double b[512];
        int main() {
            int i; double s;
            for (i = 0; i < 512; i++) { a[i] = i * 0.5; b[i] = 512 - i; }
            s = 0.0;
            for (i = 0; i < 512; i++) s = s + a[i] * b[i];
            return (int) s;
        }
    ";
    let streamed = compile(src, &OptOptions::all());
    let scalar = compile(src, &OptOptions::all().without_streaming());
    let hier = WmConfig::default()
        .with_mem_model(MemModel::parse("cache:size=256,assoc=1,miss=48").unwrap());
    let flat = WmConfig::default();

    let s_flat = run(&streamed, &flat).cycles as f64;
    let s_hier = run(&streamed, &hier).cycles as f64;
    let n_flat = run(&scalar, &flat).cycles as f64;
    let n_hier = run(&scalar, &hier).cycles as f64;
    let streamed_slowdown = s_hier / s_flat;
    let scalar_slowdown = n_hier / n_flat;
    assert!(
        streamed_slowdown < scalar_slowdown,
        "streamed code must tolerate miss latency better than scalar \
         (streamed slowdown {streamed_slowdown:.2}x vs scalar {scalar_slowdown:.2}x)"
    );

    let r = run(&streamed, &hier);
    let mem = r.perf.mem.as_ref().unwrap();
    assert!(mem.sb_hits > 0, "streams must hit their stream buffers");
    assert!(
        mem.sb_prefetches > 0,
        "stream buffers must prefetch ahead of demand"
    );
}

#[test]
fn stats_json_is_emitted_and_attribution_named() {
    // A tiny non-streamed program still yields a complete JSON document;
    // the full round-trip through the hand parser is covered in the
    // wm-bench crate, which owns the parser.
    let module = compile(
        "int main() { int i; int s; s = 0; for (i = 0; i < 32; i++) s = s + i; return s; }",
        &OptOptions::all(),
    );
    let r = run(&module, &WmConfig::default());
    assert_attribution(&r, "scalar");
    let json = r.perf.to_json();
    for key in [
        "\"cycles\"",
        "\"units\"",
        "\"IEU\"",
        "\"FEU\"",
        "\"VEU\"",
        "\"IFU\"",
        "\"scus\"",
        "\"fifos\"",
        "\"ports\"",
        "\"retired\"",
        "\"stalls\"",
    ] {
        assert!(json.contains(key), "stats JSON missing {key}: {json}");
    }
    assert!(
        !json.contains("\"mem\""),
        "flat model must not emit a mem object (baseline compatibility)"
    );

    let hier = run(
        &module,
        &WmConfig::default().with_mem_model(MemModel::parse("cache").unwrap()),
    );
    let json = hier.perf.to_json();
    for key in [
        "\"mem\"",
        "\"sb_occupancy\"",
        "\"sb_hits\"",
        "\"row_misses\"",
    ] {
        assert!(json.contains(key), "hierarchy JSON missing {key}: {json}");
    }
}
