//! Indirect (gather/scatter) and speculative stream semantics, on
//! hand-built IR so every corner is reachable:
//!
//! * a gather delivers `base[idx[k]]` in index order, bit-identically on
//!   all three engines and every memory model;
//! * an out-of-bounds index poisons exactly its own FIFO entry — the
//!   fault fires only if that entry is consumed (deferred semantics),
//!   never from prefetch alone;
//! * a scatter writes `base[idx[k]] = v_k` architecturally, and scalar
//!   loads that follow observe every write (stream/scalar ordering);
//! * a squashed speculative stream never changes architectural results,
//!   under any squash-recovery penalty.

use proptest::prelude::*;
use wm_ir::{BinOp, DataFifo, FuncBuilder, InstKind, Module, Operand, Reg, RegClass, Width};
use wm_sim::{Engine, FaultKind, FaultUnit, MemModel, RunResult, SimError, WmConfig, WmMachine};

const IN1: DataFifo = DataFifo {
    class: RegClass::Int,
    index: 1,
};
const OUT0: DataFifo = DataFifo {
    class: RegClass::Int,
    index: 0,
};

/// A module with an `idx` int32 table and a `data` int32 table, plus a
/// `main` built by `body(builder, idx_base, data_base)`.
fn with_tables(idx: &[i32], data: &[i32], body: impl FnOnce(&mut FuncBuilder, Reg, Reg)) -> Module {
    let mut m = Module::new();
    let ib: Vec<u8> = idx.iter().flat_map(|v| v.to_le_bytes()).collect();
    let db: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
    let isym = m.add_data("idx", 4 * idx.len() as u64, 4, ib);
    let dsym = m.add_data("data", 4 * data.len() as u64, 4, db);
    let mut b = FuncBuilder::new("main", 0, 0);
    let ibase = Reg::int(3);
    let dbase = Reg::int(4);
    b.emit(InstKind::LoadAddr {
        dst: ibase,
        sym: isym,
        disp: 0,
    });
    b.emit(InstKind::LoadAddr {
        dst: dbase,
        sym: dsym,
        disp: 0,
    });
    body(&mut b, ibase, dbase);
    b.emit(InstKind::Ret);
    m.add_function(b.finish());
    m
}

fn gather(ibase: Reg, dbase: Reg, count: i64, tested: bool) -> InstKind {
    InstKind::StreamGather {
        fifo: IN1,
        base: dbase.into(),
        shift: 2,
        width: Width::W4,
        ibase: ibase.into(),
        istride: Operand::Imm(4),
        iwidth: Width::W4,
        count: Operand::Imm(count),
        tested,
    }
}

/// Sum `count` gathered values with a jNI loop and return the total.
fn gather_sum_module(idx: &[i32], data: &[i32]) -> Module {
    let count = idx.len() as i64;
    with_tables(idx, data, |b, ibase, dbase| {
        b.emit(gather(ibase, dbase, count, true));
        let acc = Reg::int(5);
        b.copy(acc, Operand::Imm(0));
        let body = b.new_block();
        let done = b.new_block();
        b.jump(body);
        b.switch_to(body);
        b.assign(acc, RExprAdd(acc, Reg::int(1)));
        b.emit(InstKind::BranchStream {
            fifo: IN1,
            target: body,
            els: done,
        });
        b.switch_to(done);
        b.copy(Reg::int(2), acc.into());
    })
}

#[allow(non_snake_case)]
fn RExprAdd(a: Reg, b: Reg) -> wm_ir::RExpr {
    wm_ir::RExpr::Bin(BinOp::Add, a.into(), b.into())
}

fn run(m: &Module, cfg: &WmConfig) -> RunResult {
    WmMachine::run(m, "main", &[], cfg).expect("runs")
}

#[test]
fn gather_delivers_indexed_values_in_order() {
    let idx = [4, 0, 3, 1, 2];
    let data = [100, 101, 102, 103, 104];
    let m = gather_sum_module(&idx, &data);
    let want: i64 = idx.iter().map(|&i| i64::from(data[i as usize])).sum();
    let r = run(&m, &WmConfig::default());
    assert_eq!(r.ret_int, want);
    assert_eq!(r.perf.scus[0].index_fetches, 5);
    assert_eq!(r.perf.scus[0].elements_in, 5);
    assert_eq!(r.perf.scus[0].poisoned, 0);
}

#[test]
fn oob_gather_index_faults_only_when_consumed() {
    // idx[3] points far outside `data`: entry 3 is poisoned.
    let idx = [1, 0, 2, 99_999, 2];
    let data = [10, 20, 30];

    // consuming every entry trips the deferred fault, with SCU provenance
    let m = gather_sum_module(&idx, &data);
    let err = WmMachine::run(&m, "main", &[], &WmConfig::default()).unwrap_err();
    let SimError::Fault { fault, .. } = &err else {
        panic!("expected a poison fault, got {err}");
    };
    assert_eq!(fault.kind, FaultKind::PoisonConsumed);
    assert_eq!(
        fault.unit,
        FaultUnit::Ieu,
        "raised at consumption, not prefetch"
    );

    // consuming only the three good entries and stopping the stream never
    // faults: the poisoned entry dies unconsumed
    let m = with_tables(&idx, &data, |b, ibase, dbase| {
        b.emit(gather(ibase, dbase, 5, false));
        let acc = Reg::int(5);
        b.copy(acc, Operand::Imm(0));
        for _ in 0..3 {
            b.assign(acc, RExprAdd(acc, Reg::int(1)));
        }
        b.emit(InstKind::StreamStop { fifo: IN1 });
        b.copy(Reg::int(2), acc.into());
    });
    let r = run(&m, &WmConfig::default());
    assert_eq!(
        r.ret_int,
        10 + 20 + 30,
        "good prefix consumed, poison discarded"
    );
}

/// Enqueue `values` into the Int out FIFO and scatter them through
/// `idx`, then read the scattered array back with scalar loads.
fn scatter_roundtrip_module(idx: &[i32], values: &[i32]) -> Module {
    let count = idx.len() as i64;
    let span = 4 * idx.len() as i64;
    with_tables(idx, &vec![0; idx.len()], |b, ibase, dbase| {
        b.emit(InstKind::StreamScatter {
            fifo: OUT0,
            base: dbase.into(),
            shift: 2,
            width: Width::W4,
            ibase: ibase.into(),
            istride: Operand::Imm(4),
            iwidth: Width::W4,
            count: Operand::Imm(count),
            span,
        });
        for &v in values {
            b.copy(Reg::int(0), Operand::Imm(i64::from(v))); // enqueue
        }
        // read data[k] back with scalar loads; ordering must hold each
        // load until the scatter's span has fully drained past it
        let acc = Reg::int(5);
        b.copy(acc, Operand::Imm(0));
        for k in 0..idx.len() {
            b.emit(InstKind::WLoad {
                fifo: OUT0,
                addr: wm_ir::RExpr::Bin(BinOp::Add, Reg::int(4).into(), Operand::Imm(4 * k as i64)),
                width: Width::W4,
            });
            let v = Reg::int(6);
            b.copy(v, Reg::int(0).into());
            // weight by position so ordering mistakes change the result
            b.assign(
                Reg::int(7),
                wm_ir::RExpr::Bin(BinOp::Mul, v.into(), Operand::Imm(k as i64 + 1)),
            );
            b.assign(acc, RExprAdd(acc, Reg::int(7)));
        }
        b.copy(Reg::int(2), acc.into());
    })
}

fn scatter_expected(idx: &[i32], values: &[i32]) -> i64 {
    let mut mem = vec![0i64; idx.len()];
    for (k, &i) in idx.iter().enumerate() {
        mem[i as usize] = i64::from(values[k]);
    }
    mem.iter()
        .enumerate()
        .map(|(k, &v)| v * (k as i64 + 1))
        .sum()
}

#[test]
fn scatter_lands_every_write_before_scalar_loads_observe() {
    let idx = [3, 1, 0, 2];
    let values = [70, 71, 72, 73];
    let m = scatter_roundtrip_module(&idx, &values);
    let r = run(&m, &WmConfig::default());
    assert_eq!(r.ret_int, scatter_expected(&idx, &values));
    assert_eq!(r.perf.scus[0].elements_out, 4);
    assert_eq!(r.perf.scus[0].index_fetches, 4);
}

#[test]
fn oob_scatter_index_faults_eagerly() {
    // scatters are architectural: the bad store faults at issue, no
    // consumption needed
    let idx = [0, 77_777];
    let values = [5, 6];
    let m = scatter_roundtrip_module(&idx, &values);
    let err = WmMachine::run(&m, "main", &[], &WmConfig::default()).unwrap_err();
    let fault = err.fault().expect("fault provenance");
    assert_eq!(fault.kind, FaultKind::Unmapped);
    assert!(
        matches!(fault.unit, FaultUnit::Scu(_)),
        "scatter faults carry SCU provenance: {:?}",
        fault.unit
    );
}

/// A *scalar* indirect chain — `data[idx[k]]` as two dependent WLoads,
/// no SCU involved — on a refusal-heavy memory model (one DRAM bank,
/// tiny direct-mapped L1). The second load's address expression dequeues
/// the index from the in-FIFO; if the busy bank then refuses the
/// reference, the computed address must survive in the unit's address
/// latch until the retry. Before the latch existed, the dequeued index
/// was simply lost and the machine wedged ("waits on empty FIFO" over a
/// fully quiesced memory system).
#[test]
fn refused_indirect_scalar_load_retries_without_losing_its_index() {
    let idx: Vec<i32> = (0..12).map(|k| (k * 7) % 12).collect();
    let data: Vec<i32> = (0..12).map(|k| 3 * k + 1).collect();
    let want: i64 = idx.iter().map(|&i| i64::from(data[i as usize])).sum();
    let m = with_tables(&idx, &data, |b, ibase, dbase| {
        let acc = Reg::int(5);
        b.copy(acc, Operand::Imm(0));
        for k in 0..idx.len() {
            // scalar load of idx[k] into the in-FIFO...
            b.emit(InstKind::WLoad {
                fifo: OUT0,
                addr: wm_ir::RExpr::Bin(BinOp::Add, ibase.into(), Operand::Imm(4 * k as i64)),
                width: Width::W4,
            });
            // ...consumed by the dependent load's address expression
            b.emit(InstKind::WLoad {
                fifo: OUT0,
                addr: wm_ir::RExpr::Dual {
                    inner: BinOp::Shl,
                    a: Reg::int(0).into(),
                    b: Operand::Imm(2),
                    outer: BinOp::Add,
                    c: dbase.into(),
                },
                width: Width::W4,
            });
            b.assign(acc, RExprAdd(acc, Reg::int(0)));
        }
        b.copy(Reg::int(2), acc.into());
    });
    let cfg = WmConfig::default().with_mem_model(
        MemModel::parse("banked:size=256,assoc=1,line=32,banks=1,busy=12,rowhit=8,rowmiss=24")
            .expect("valid"),
    );
    // the config must actually exercise the refusal path, or this test
    // proves nothing about the latch
    let r = run(&m, &cfg);
    assert!(
        r.perf.ieu.stalled_on(wm_sim::Stall::BankBusy) > 0,
        "expected bank-busy refusals on the IEU"
    );
    assert_eq!(assert_engines_identical(&m, &cfg), want);
}

/// A speculative (unbounded, overfetching) stream: consume three
/// elements of a five-element table, squash the rest with a stop, then
/// compute from scalar state.
fn speculative_module() -> Module {
    let data = [7, 11, 13, 17, 19];
    with_tables(&[0], &data, |b, _ibase, dbase| {
        b.emit(InstKind::StreamIn {
            fifo: IN1,
            base: dbase.into(),
            count: None, // unbounded: runs past the table, prefetches poison
            stride: Operand::Imm(4),
            width: Width::W4,
            tested: false,
        });
        let acc = Reg::int(5);
        b.copy(acc, Operand::Imm(0));
        for _ in 0..3 {
            b.assign(acc, RExprAdd(acc, Reg::int(1)));
        }
        b.emit(InstKind::StreamStop { fifo: IN1 });
        b.copy(Reg::int(2), acc.into());
    })
}

#[test]
fn squashed_speculative_stream_never_changes_results() {
    let m = speculative_module();
    let free = run(&m, &WmConfig::default());
    assert_eq!(free.ret_int, 7 + 11 + 13);
    for penalty in [1, 8, 64] {
        let r = run(&m, &WmConfig::default().with_squash_penalty(penalty));
        assert_eq!(
            r.ret_int, free.ret_int,
            "squash penalty {penalty} changed the result"
        );
        assert!(
            r.cycles >= free.cycles,
            "a recovery penalty cannot speed the machine up"
        );
    }
}

const MEM_SPECS: [&str; 4] = [
    "flat",
    "cache",
    "banked",
    "cache:size=256,assoc=1,mshrs=1,miss=48",
];

fn assert_engines_identical(m: &Module, cfg: &WmConfig) -> i64 {
    let base = run(m, &cfg.clone().with_engine(Engine::Cycle));
    for e in [Engine::Event, Engine::Compiled] {
        let r = run(m, &cfg.clone().with_engine(e));
        assert_eq!(r.cycles, base.cycles, "{e} cycle count diverges");
        assert_eq!(r.ret_int, base.ret_int, "{e} result diverges");
        assert_eq!(r.perf, base.perf, "{e} counters diverge");
    }
    base.ret_int
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES")
            .ok().and_then(|s| s.parse().ok()).unwrap_or(16),
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_gathers_agree_on_every_engine_and_memory_model(
        idx in proptest::collection::vec(0..24i32, 1..24),
        seed in 0..1000i32,
        mem_ix in 0..MEM_SPECS.len(),
        squash_ix in 0..3usize,
    ) {
        let data: Vec<i32> = (0..24).map(|k| seed + 3 * k).collect();
        let m = gather_sum_module(&idx, &data);
        let want: i64 = idx.iter().map(|&i| i64::from(data[i as usize])).sum();
        let cfg = WmConfig::default()
            .with_mem_model(MemModel::parse(MEM_SPECS[mem_ix]).expect("valid"))
            .with_squash_penalty([0, 2, 9][squash_ix]);
        prop_assert_eq!(assert_engines_identical(&m, &cfg), want);
    }

    #[test]
    fn random_scatters_agree_on_every_engine_and_memory_model(
        perm_seed in 0..120usize,
        n in 2..12usize,
        seed in 0..1000i32,
        mem_ix in 0..MEM_SPECS.len(),
    ) {
        // a permutation of 0..n so every slot is written exactly once
        let mut idx: Vec<i32> = (0..n as i32).collect();
        let mut s = perm_seed;
        for k in (1..n).rev() {
            idx.swap(k, s % (k + 1));
            s = s.wrapping_mul(31).wrapping_add(7);
        }
        let values: Vec<i32> = (0..n as i32).map(|k| seed + 5 * k).collect();
        let m = scatter_roundtrip_module(&idx, &values);
        let want = scatter_expected(&idx, &values);
        let cfg = WmConfig::default()
            .with_mem_model(MemModel::parse(MEM_SPECS[mem_ix]).expect("valid"));
        prop_assert_eq!(assert_engines_identical(&m, &cfg), want);
    }
}
