//! Machine-level behavior tests: hand-built modules pin down the cycle
//! semantics the WM model promises — FIFO discipline, condition-code
//! stalls, the paired-ALU interlock, store pairing, stream generations and
//! port arbitration.

use wm_ir::{
    BinOp, CmpOp, DataFifo, FuncBuilder, Function, InstKind, Module, Operand, RExpr, Reg, RegClass,
    Width,
};
use wm_sim::{SimError, WmConfig, WmMachine};

/// Wrap a single function into a runnable module.
fn module_of(f: Function) -> Module {
    let mut m = Module::new();
    m.add_function(f);
    m
}

fn run(m: &Module, cfg: &WmConfig) -> wm_sim::RunResult {
    WmMachine::run(m, "main", &[], cfg).expect("runs")
}

#[test]
fn unconditional_jumps_are_free() {
    // A chain of N jumps costs no more than the straight-line version.
    let mut b = FuncBuilder::new("main", 0, 0);
    let mut labels = Vec::new();
    for _ in 0..16 {
        labels.push(b.new_block());
    }
    b.jump(labels[0]);
    for i in 0..15 {
        b.switch_to(labels[i]);
        b.jump(labels[i + 1]);
    }
    b.switch_to(labels[15]);
    b.copy(Reg::int(2), Operand::Imm(7));
    b.emit(InstKind::Ret);
    let jumps = module_of(b.finish());

    let mut b = FuncBuilder::new("main", 0, 0);
    b.copy(Reg::int(2), Operand::Imm(7));
    b.emit(InstKind::Ret);
    let straight = module_of(b.finish());

    let cfg = WmConfig::default();
    let rj = run(&jumps, &cfg);
    let rs = run(&straight, &cfg);
    assert_eq!(rj.ret_int, 7);
    // the 16-jump chain may cost a couple of cycles of IFU cap, no more
    assert!(
        rj.cycles <= rs.cycles + 3,
        "jump chain {} vs straight {}",
        rj.cycles,
        rs.cycles
    );
}

#[test]
fn branch_stalls_until_compare_executes() {
    // The branch's compare sits behind a long dependent chain in the IEU;
    // the IFU must wait for its condition code.
    let mut b = FuncBuilder::new("main", 0, 0);
    let t = b.vreg(RegClass::Int);
    b.copy(t, Operand::Imm(0));
    for _ in 0..20 {
        b.assign(t, RExpr::Bin(BinOp::Add, t.into(), Operand::Imm(1)));
    }
    let yes = b.new_block();
    let no = b.new_block();
    b.branch_if(
        RegClass::Int,
        CmpOp::Eq,
        t.into(),
        Operand::Imm(20),
        yes,
        no,
    );
    b.switch_to(yes);
    b.copy(Reg::int(2), Operand::Imm(1));
    b.emit(InstKind::Ret);
    b.switch_to(no);
    b.copy(Reg::int(2), Operand::Imm(0));
    b.emit(InstKind::Ret);
    let mut f = b.finish();
    // keep virtuals out: allocate
    wm_target::allocate_registers(&mut f, wm_target::TargetKind::Wm).unwrap();
    let m = module_of(f);
    let r = run(&m, &WmConfig::default());
    assert_eq!(r.ret_int, 1);
    // the chain serializes with the paired-ALU interlock: ≥ 2 cycles/add
    assert!(
        r.cycles >= 40,
        "expected interlocked chain, got {}",
        r.cycles
    );
    assert!(
        r.stats.ifu_stalls > 0,
        "IFU must have waited on the CC FIFO"
    );
}

#[test]
fn paired_alu_interlock_costs_one_bubble() {
    // dependent adds: a := a + 1 forty times → ~2 cycles each
    let mut dep = FuncBuilder::new("main", 0, 0);
    let a = Reg::int(4);
    dep.copy(a, Operand::Imm(0));
    for _ in 0..40 {
        dep.assign(a, RExpr::Bin(BinOp::Add, a.into(), Operand::Imm(1)));
    }
    dep.copy(Reg::int(2), a.into());
    dep.emit(InstKind::Ret);
    let dep_m = module_of(dep.finish());

    // independent adds: two alternating accumulators → ~1 cycle each
    let mut ind = FuncBuilder::new("main", 0, 0);
    let (x, y) = (Reg::int(4), Reg::int(5));
    ind.copy(x, Operand::Imm(0));
    ind.copy(y, Operand::Imm(0));
    for _ in 0..20 {
        ind.assign(x, RExpr::Bin(BinOp::Add, x.into(), Operand::Imm(1)));
        ind.assign(y, RExpr::Bin(BinOp::Add, y.into(), Operand::Imm(1)));
    }
    ind.assign(x, RExpr::Bin(BinOp::Add, x.into(), y.into()));
    ind.copy(Reg::int(2), x.into());
    ind.emit(InstKind::Ret);
    let ind_m = module_of(ind.finish());

    let cfg = WmConfig::default();
    let rd = run(&dep_m, &cfg);
    let ri = run(&ind_m, &cfg);
    assert_eq!(rd.ret_int, 40);
    assert_eq!(ri.ret_int, 40);
    assert!(
        rd.cycles > ri.cycles + 20,
        "dependent {} should pay ~1 bubble per add vs independent {}",
        rd.cycles,
        ri.cycles
    );
}

#[test]
fn store_then_load_same_address_is_ordered() {
    // enqueue 99 → store to a global; immediately load it back; the load
    // must wait for the store (store-queue interlock) and see 99.
    let mut m = Module::new();
    let sym = m.add_data("buf", 16, 8, vec![]);
    let mut b = FuncBuilder::new("main", 0, 0);
    let base = Reg::int(3);
    b.emit(InstKind::LoadAddr {
        dst: base,
        sym,
        disp: 0,
    });
    b.assign(Reg::int(0), RExpr::Op(Operand::Imm(99)));
    b.emit(InstKind::WStore {
        unit: RegClass::Int,
        addr: RExpr::Op(base.into()),
        width: Width::W4,
    });
    b.emit(InstKind::WLoad {
        fifo: DataFifo::new(RegClass::Int, 0),
        addr: RExpr::Op(base.into()),
        width: Width::W4,
    });
    b.copy(Reg::int(2), Reg::int(0).into());
    b.emit(InstKind::Ret);
    m.add_function(b.finish());
    let r = run(&m, &WmConfig::default());
    assert_eq!(r.ret_int, 99, "load must observe the store");
    // and it must have cost at least two memory latencies (serialized)
    assert!(r.cycles >= 2 * WmConfig::default().mem_latency);
}

#[test]
fn loads_to_different_addresses_pipeline() {
    // two independent loads complete in ~one latency, not two
    let build = |loads: i64| {
        let mut m = Module::new();
        let sym = m.add_data("buf", 16, 8, vec![]);
        let mut b = FuncBuilder::new("main", 0, 0);
        let base = Reg::int(3);
        b.emit(InstKind::LoadAddr {
            dst: base,
            sym,
            disp: 0,
        });
        for k in 0..loads {
            b.emit(InstKind::WLoad {
                fifo: DataFifo::new(RegClass::Int, 0),
                addr: RExpr::Bin(BinOp::Add, base.into(), Operand::Imm(8 * k)),
                width: Width::W4,
            });
        }
        for k in 0..loads {
            b.copy(Reg::int(2 + k as u8), Reg::int(0).into());
        }
        b.emit(InstKind::Ret);
        m.add_function(b.finish());
        m
    };
    let one_m = build(1);
    let two_m = build(2);

    let cfg = WmConfig::default();
    let r1 = run(&one_m, &cfg);
    let r2 = run(&two_m, &cfg);
    assert!(
        r2.cycles <= r1.cycles + 3,
        "second load should overlap the first: {} vs {}",
        r2.cycles,
        r1.cycles
    );
}

#[test]
fn stream_delivers_in_order_and_jni_counts() {
    // stream 5 words out of a data global, sum them in a jNI loop
    let mut m = Module::new();
    let init: Vec<u8> = (1i32..=5).flat_map(|v| v.to_le_bytes()).collect();
    let sym = m.add_data("tab", 20, 4, init);
    let mut b = FuncBuilder::new("main", 0, 0);
    let base = Reg::int(3);
    b.emit(InstKind::LoadAddr {
        dst: base,
        sym,
        disp: 0,
    });
    b.emit(InstKind::StreamIn {
        fifo: DataFifo::new(RegClass::Int, 1),
        base: base.into(),
        count: Some(Operand::Imm(5)),
        stride: Operand::Imm(4),
        width: Width::W4,
        tested: true,
    });
    let acc = Reg::int(4);
    b.copy(acc, Operand::Imm(0));
    let body = b.new_block();
    let done = b.new_block();
    b.jump(body);
    b.switch_to(body);
    b.assign(acc, RExpr::Bin(BinOp::Add, acc.into(), Reg::int(1).into()));
    b.emit(InstKind::BranchStream {
        fifo: DataFifo::new(RegClass::Int, 1),
        target: body,
        els: done,
    });
    b.switch_to(done);
    b.copy(Reg::int(2), acc.into());
    b.emit(InstKind::Ret);
    m.add_function(b.finish());
    let r = run(&m, &WmConfig::default());
    assert_eq!(r.ret_int, 15, "1+2+3+4+5 in stream order");
    assert_eq!(r.stats.stream_reads, 5);
}

#[test]
fn stream_stop_flushes_prefetch_and_scalar_loads_resume() {
    let mut m = Module::new();
    let init: Vec<u8> = (10i32..20).flat_map(|v| v.to_le_bytes()).collect();
    let sym = m.add_data("tab", 40, 4, init);
    let mut b = FuncBuilder::new("main", 0, 0);
    let base = Reg::int(3);
    b.emit(InstKind::LoadAddr {
        dst: base,
        sym,
        disp: 0,
    });
    // unbounded stream; consume two items, stop, then scalar-load tab[0]
    b.emit(InstKind::StreamIn {
        fifo: DataFifo::new(RegClass::Int, 1),
        base: base.into(),
        count: None,
        stride: Operand::Imm(4),
        width: Width::W4,
        tested: false,
    });
    let acc = Reg::int(4);
    b.copy(acc, Reg::int(1).into());
    b.assign(acc, RExpr::Bin(BinOp::Add, acc.into(), Reg::int(1).into()));
    b.emit(InstKind::StreamStop {
        fifo: DataFifo::new(RegClass::Int, 1),
    });
    b.emit(InstKind::WLoad {
        fifo: DataFifo::new(RegClass::Int, 0),
        addr: RExpr::Op(base.into()),
        width: Width::W4,
    });
    let v = Reg::int(5);
    b.copy(v, Reg::int(0).into());
    b.assign(Reg::int(2), RExpr::Bin(BinOp::Add, acc.into(), v.into()));
    b.emit(InstKind::Ret);
    m.add_function(b.finish());
    let r = run(&m, &WmConfig::default());
    // 10 + 11 consumed from the stream, then 10 from the scalar load
    assert_eq!(r.ret_int, 10 + 11 + 10);
}

#[test]
fn single_port_memory_serializes_streams() {
    const SRC: &str = r"
        double a[3000]; double b[3000]; double s[1];
        int main() {
            int i; double acc;
            for (i = 0; i < 3000; i++) { a[i] = 1.0; b[i] = 2.0; }
            acc = 0.0;
            for (i = 0; i < 3000; i++) acc = acc + a[i] * b[i];
            s[0] = acc;
            return (int) acc;
        }
    ";
    let mut module = wm_frontend::compile(SRC).unwrap();
    for f in module.functions.iter_mut() {
        wm_opt::optimize_generic(f, &wm_opt::OptOptions::all());
        wm_target::expand_wm(f);
        wm_opt::optimize_wm(f, &wm_opt::OptOptions::all());
        wm_target::allocate_registers(f, wm_target::TargetKind::Wm).unwrap();
    }
    let fast = run(&module, &WmConfig::default().with_mem_ports(2));
    let slow = run(&module, &WmConfig::default().with_mem_ports(1));
    assert_eq!(fast.ret_int, 6000);
    assert_eq!(slow.ret_int, 6000);
    assert!(
        slow.cycles > fast.cycles,
        "1 port {} should be slower than 2 ports {}",
        slow.cycles,
        fast.cycles
    );
}

#[test]
fn conflicting_stream_configuration_is_detected() {
    let mut m = Module::new();
    let sym = m.add_data("tab", 64, 4, vec![]);
    let mut b = FuncBuilder::new("main", 0, 0);
    let base = Reg::int(3);
    b.emit(InstKind::LoadAddr {
        dst: base,
        sym,
        disp: 0,
    });
    for _ in 0..2 {
        b.emit(InstKind::StreamIn {
            fifo: DataFifo::new(RegClass::Int, 1),
            base: base.into(),
            count: None,
            stride: Operand::Imm(4),
            width: Width::W4,
            tested: false,
        });
    }
    b.copy(Reg::int(2), Operand::Imm(0));
    b.emit(InstKind::Ret);
    m.add_function(b.finish());
    // the second configuration waits for the first stream to finish; an
    // unbounded first stream never does, so the machine reports a deadlock
    // rather than silently interleaving two streams on one FIFO
    let cfg = WmConfig::default().with_max_cycles(200_000);
    let err = WmMachine::run(&m, "main", &[], &cfg).unwrap_err();
    assert!(
        matches!(err, SimError::Deadlock { .. } | SimError::Timeout { .. }),
        "double-streaming one FIFO must be detected: {err}"
    );
}

#[test]
fn non_positive_stream_count_faults() {
    let mut m = Module::new();
    let sym = m.add_data("tab", 64, 4, vec![]);
    let mut b = FuncBuilder::new("main", 0, 0);
    let base = Reg::int(3);
    b.emit(InstKind::LoadAddr {
        dst: base,
        sym,
        disp: 0,
    });
    b.emit(InstKind::StreamIn {
        fifo: DataFifo::new(RegClass::Int, 1),
        base: base.into(),
        count: Some(Operand::Imm(0)),
        stride: Operand::Imm(4),
        width: Width::W4,
        tested: true,
    });
    b.copy(Reg::int(2), Operand::Imm(0));
    b.emit(InstKind::Ret);
    m.add_function(b.finish());
    let err = WmMachine::run(&m, "main", &[], &WmConfig::default()).unwrap_err();
    assert!(matches!(err, SimError::Fault { .. }));
}

#[test]
fn fifo_imbalance_is_detected_as_deadlock() {
    // a dequeue with no matching load wedges the IEU
    let mut b = FuncBuilder::new("main", 0, 0);
    b.copy(Reg::int(2), Reg::int(0).into()); // dequeue from empty FIFO
    b.emit(InstKind::Ret);
    let m = module_of(b.finish());
    let err = WmMachine::run(&m, "main", &[], &WmConfig::default()).unwrap_err();
    let SimError::Deadlock { detail, state, .. } = err else {
        panic!("expected deadlock, got {err}");
    };
    assert!(detail.contains("IEU"), "culprit unit named: {detail}");
    assert!(detail.contains("r0"), "starved FIFO named: {detail}");
    assert!(
        state.units[0].stall.is_some(),
        "snapshot records the IEU stall"
    );
}

#[test]
fn writes_to_zero_register_are_discarded() {
    let mut b = FuncBuilder::new("main", 0, 0);
    b.copy(Reg::int(31), Operand::Imm(123));
    b.assign(
        Reg::int(2),
        RExpr::Bin(BinOp::Add, Reg::int(31).into(), Operand::Imm(5)),
    );
    b.emit(InstKind::Ret);
    let m = module_of(b.finish());
    let r = run(&m, &WmConfig::default());
    assert_eq!(r.ret_int, 5, "r31 reads as zero even after a write");
}

#[test]
fn dual_op_evaluates_inner_then_outer() {
    let mut b = FuncBuilder::new("main", 0, 0);
    b.assign(
        Reg::int(2),
        RExpr::Dual {
            inner: BinOp::Shl,
            a: Operand::Imm(3),
            b: Operand::Imm(4),
            outer: BinOp::Sub,
            c: Operand::Imm(8),
        },
    );
    b.emit(InstKind::Ret);
    let m = module_of(b.finish());
    let r = run(&m, &WmConfig::default());
    assert_eq!(r.ret_int, (3 << 4) - 8);
}

#[test]
fn tracing_records_executed_instructions() {
    let mut b = FuncBuilder::new("main", 0, 0);
    b.assign(
        Reg::int(2),
        RExpr::Bin(BinOp::Add, Operand::Imm(40), Operand::Imm(2)),
    );
    b.emit(InstKind::Ret);
    let m = module_of(b.finish());
    let mut machine = WmMachine::new(&m, &WmConfig::default()).unwrap();
    machine.set_trace(true);
    machine.start("main", &[]).unwrap();
    let r = machine.run_to_completion().unwrap();
    assert_eq!(r.ret_int, 42);
    let trace = machine.trace();
    assert!(!trace.is_empty());
    assert!(trace
        .iter()
        .any(|e| e.unit == "IEU" && e.text.contains(":= (40) + 2")));
    // cycles are monotone
    assert!(trace.windows(2).all(|w| w[0].cycle <= w[1].cycle));
}
