//! End-to-end tests: compile mini-C through the full WM pipeline and
//! execute on the cycle-level simulator.

use wm_ir::Module;
use wm_opt::{optimize_generic, optimize_wm, OptOptions};
use wm_sim::{SimError, WmConfig, WmMachine};
use wm_target::{allocate_registers, expand_wm, TargetKind};

/// Compile a module for the WM with the given options.
fn compile(src: &str, opts: &OptOptions) -> Module {
    let mut module = wm_frontend::compile(src).expect("compiles");
    for f in module.functions.iter_mut() {
        optimize_generic(f, opts);
        expand_wm(f);
        optimize_wm(f, opts);
        allocate_registers(f, TargetKind::Wm).expect("allocates");
    }
    module
}

fn run(src: &str, entry: &str, args: &[i64], opts: &OptOptions) -> wm_sim::RunResult {
    let module = compile(src, opts);
    WmMachine::run(&module, entry, args, &WmConfig::default()).expect("runs")
}

fn run_all_opt(src: &str, entry: &str, args: &[i64]) -> wm_sim::RunResult {
    run(src, entry, args, &OptOptions::all())
}

#[test]
fn arithmetic_and_control_flow() {
    let r = run_all_opt(
        "int main() { int s; int i; s = 0; for (i = 1; i <= 10; i++) s = s + i; return s; }",
        "main",
        &[],
    );
    assert_eq!(r.ret_int, 55);
}

#[test]
fn unoptimized_code_also_runs() {
    let r = run(
        "int main() { int s; int i; s = 0; for (i = 1; i <= 10; i++) s = s + i; return s; }",
        "main",
        &[],
        &OptOptions::none(),
    );
    assert_eq!(r.ret_int, 55);
}

#[test]
fn doubles_and_conversions() {
    let r = run_all_opt(
        r"
        double half(int n) { return n / 2.0; }
        int main() { double x; x = half(7); return (int) (x * 10.0); }
        ",
        "main",
        &[],
    );
    assert_eq!(r.ret_int, 35);
}

#[test]
fn arrays_and_loops_match_reference() {
    let r = run_all_opt(
        r"
        int a[64];
        int main() {
            int i; int s;
            for (i = 0; i < 64; i++) a[i] = i * i;
            s = 0;
            for (i = 0; i < 64; i++) s = s + a[i];
            return s;
        }
        ",
        "main",
        &[],
    );
    let expected: i64 = (0..64).map(|i| i * i).sum();
    assert_eq!(r.ret_int, expected);
}

#[test]
fn livermore5_computes_the_recurrence() {
    // compare against a Rust reference implementation
    const SRC: &str = r"
        double x[200]; double y[200]; double z[200];
        int main() {
            int i;
            for (i = 0; i < 200; i++) {
                x[i] = i * 0.5;
                y[i] = i * 0.25 + 1.0;
                z[i] = 2.0 - i * 0.125;
            }
            for (i = 2; i < 200; i++)
                x[i] = z[i] * (y[i] - x[i-1]);
            return (int) (x[199] * 1000.0);
        }
    ";
    let mut x = [0.0f64; 200];
    let mut y = [0.0f64; 200];
    let mut z = [0.0f64; 200];
    for i in 0..200 {
        x[i] = i as f64 * 0.5;
        y[i] = i as f64 * 0.25 + 1.0;
        z[i] = 2.0 - i as f64 * 0.125;
    }
    for i in 2..200 {
        x[i] = z[i] * (y[i] - x[i - 1]);
    }
    let expected = (x[199] * 1000.0) as i64;

    for opts in [
        OptOptions::none(),
        OptOptions::all().without_streaming().without_recurrence(),
        OptOptions::all().without_streaming(),
        OptOptions::all(),
    ] {
        let r = run(SRC, "main", &[], &opts);
        assert_eq!(r.ret_int, expected, "options: {opts:?}");
    }
}

#[test]
fn streaming_reduces_cycles_on_livermore5() {
    const SRC: &str = r"
        double x[5000]; double y[5000]; double z[5000];
        int main() {
            int i;
            for (i = 0; i < 5000; i++) {
                x[i] = 1.0; y[i] = 2.0; z[i] = 0.5;
            }
            for (i = 2; i < 5000; i++)
                x[i] = z[i] * (y[i] - x[i-1]);
            return 0;
        }
    ";
    let base = run(SRC, "main", &[], &OptOptions::all().without_streaming());
    let streamed = run(SRC, "main", &[], &OptOptions::all());
    assert!(
        streamed.cycles < base.cycles,
        "streaming must win: {} vs {}",
        streamed.cycles,
        base.cycles
    );
    assert!(streamed.stats.stream_reads > 0);
    assert!(streamed.stats.stream_writes > 0);
}

#[test]
fn recursion_quicksort_style() {
    let r = run_all_opt(
        r"
        int a[100];
        void swap(int i, int j) { int t; t = a[i]; a[i] = a[j]; a[j] = t; }
        void qs(int lo, int hi) {
            int p; int i; int j;
            if (lo >= hi) return;
            p = a[hi]; i = lo;
            for (j = lo; j < hi; j++)
                if (a[j] < p) { swap(i, j); i = i + 1; }
            swap(i, hi);
            qs(lo, i - 1);
            qs(i + 1, hi);
        }
        int main() {
            int i; int ok;
            for (i = 0; i < 100; i++) a[i] = (i * 37 + 11) % 100;
            qs(0, 99);
            ok = 1;
            for (i = 1; i < 100; i++) if (a[i-1] > a[i]) ok = 0;
            return ok;
        }
        ",
        "main",
        &[],
    );
    assert_eq!(r.ret_int, 1, "array must be sorted");
    assert!(r.stats.calls > 100);
}

#[test]
fn pointer_string_copy_with_infinite_streams() {
    const SRC: &str = r#"
        char src[32]; char dst[32];
        int main() {
            int i; int n;
            for (i = 0; i < 26; i++) src[i] = 'a' + i;
            src[26] = 0;
            i = 0;
            while (src[i]) { dst[i] = src[i]; i = i + 1; }
            dst[i] = 0;
            n = 0;
            while (dst[n]) n = n + 1;
            return n;
        }
    "#;
    let r = run(SRC, "main", &[], &OptOptions::all());
    assert_eq!(r.ret_int, 26);
}

#[test]
fn putchar_output_is_captured() {
    let r = run_all_opt(
        r#"
        int main() {
            char msg[8];
            msg[0] = 'h'; msg[1] = 'i'; msg[2] = '\n';
            putchar(msg[0]); putchar(msg[1]); putchar(msg[2]);
            return 0;
        }
        "#,
        "main",
        &[],
    );
    assert_eq!(r.output, b"hi\n");
}

#[test]
fn entry_arguments_are_passed() {
    let r = run_all_opt("int dbl(int x) { return x + x; }", "dbl", &[21]);
    assert_eq!(r.ret_int, 42);
}

#[test]
fn division_by_zero_faults() {
    let module = compile(
        "int main() { int z; z = 0; return 7 / z; }",
        &OptOptions::none(),
    );
    let err = WmMachine::run(&module, "main", &[], &WmConfig::default()).unwrap_err();
    assert!(matches!(err, SimError::Fault { .. }), "{err}");
}

#[test]
fn missing_entry_is_reported() {
    let module = compile("int main() { return 0; }", &OptOptions::all());
    let err = WmMachine::run(&module, "nope", &[], &WmConfig::default()).unwrap_err();
    assert!(matches!(err, SimError::BadProgram(_)));
}

#[test]
fn cycle_limit_catches_infinite_loops() {
    let module = compile(
        "int main() { int i; i = 0; while (1) i = i + 1; return i; }",
        &OptOptions::none(),
    );
    let cfg = WmConfig::default().with_max_cycles(5_000);
    let err = WmMachine::run(&module, "main", &[], &cfg).unwrap_err();
    assert!(matches!(err, SimError::Timeout { .. }), "{err}");
}

#[test]
fn memory_latency_slows_unstreamed_code() {
    const SRC: &str = r"
        double a[2000]; double b[2000];
        int main() {
            int i;
            for (i = 0; i < 2000; i++) a[i] = i * 1.0;
            for (i = 0; i < 2000; i++) b[i] = a[i] * 2.0;
            return 0;
        }
    ";
    let opts = OptOptions::all().without_streaming();
    let module = compile(SRC, &opts);
    let fast = WmMachine::run(
        &module,
        "main",
        &[],
        &WmConfig::default().with_mem_latency(2),
    )
    .unwrap();
    let slow = WmMachine::run(
        &module,
        "main",
        &[],
        &WmConfig::default().with_mem_latency(40),
    )
    .unwrap();
    assert!(
        slow.cycles > fast.cycles,
        "latency must matter: {} vs {}",
        slow.cycles,
        fast.cycles
    );
}

#[test]
fn streaming_hides_memory_latency_better() {
    const SRC: &str = r"
        double a[3000]; double s[1];
        int main() {
            int i; double acc;
            for (i = 0; i < 3000; i++) a[i] = 1.5;
            acc = 0.0;
            for (i = 0; i < 3000; i++) acc = acc + a[i];
            s[0] = acc;
            return (int) acc;
        }
    ";
    let streamed = compile(SRC, &OptOptions::all());
    let scalar = compile(SRC, &OptOptions::all().without_streaming());
    let lat = WmConfig::default().with_mem_latency(20);
    let rs = WmMachine::run(&streamed, "main", &[], &lat).unwrap();
    let rb = WmMachine::run(&scalar, "main", &[], &lat).unwrap();
    assert_eq!(rs.ret_int, 4500);
    assert_eq!(rb.ret_int, 4500);
    // relative advantage should be large under high latency
    assert!(
        rs.cycles * 2 < rb.cycles * 2 && rs.cycles < rb.cycles,
        "streamed {} vs scalar {}",
        rs.cycles,
        rb.cycles
    );
}

#[test]
fn deterministic_cycle_counts() {
    const SRC: &str = r"
        int a[100];
        int main() { int i; int s; s = 0;
            for (i = 0; i < 100; i++) a[i] = i;
            for (i = 0; i < 100; i++) s = s + a[i];
            return s; }
    ";
    let m = compile(SRC, &OptOptions::all());
    let c1 = WmMachine::run(&m, "main", &[], &WmConfig::default()).unwrap();
    let c2 = WmMachine::run(&m, "main", &[], &WmConfig::default()).unwrap();
    assert_eq!(c1.cycles, c2.cycles);
    assert_eq!(c1.ret_int, 4950);
}

#[test]
fn vectorized_maps_match_scalar_results_including_tails() {
    // 10007 is not a multiple of the vector length: the scalar tail loop
    // must finish the job
    const SRC: &str = r"
        double a[10007]; double b[10007]; double c[10007];
        int main() {
            int i; double s;
            for (i = 0; i < 10007; i++) { a[i] = i % 13 * 0.5; b[i] = 1.0 + i % 7; }
            for (i = 0; i < 10007; i++) c[i] = a[i] * b[i];
            s = 0.0;
            for (i = 0; i < 10007; i++) s = s + c[i];
            return (int) (s / 100.0);
        }
    ";
    let reference = run(SRC, "main", &[], &OptOptions::all().without_streaming());
    let vectorized = run(SRC, "main", &[], &OptOptions::all().with_vectorization());
    assert_eq!(vectorized.ret_int, reference.ret_int);
    assert!(
        vectorized.cycles < reference.cycles,
        "vector loop should win: {} vs {}",
        vectorized.cycles,
        reference.cycles
    );
}

#[test]
fn consecutive_vector_loops_do_not_confuse_the_counter() {
    const SRC: &str = r"
        double a[2000]; double b[2000]; double c[2000]; double d[2000];
        int main() {
            int i; double s;
            for (i = 0; i < 2000; i++) { a[i] = 1.0; b[i] = 2.0; }
            for (i = 0; i < 2000; i++) c[i] = a[i] + b[i];
            for (i = 0; i < 2000; i++) d[i] = c[i] * 3.0;
            s = 0.0;
            for (i = 0; i < 2000; i++) s = s + d[i];
            return (int) s;
        }
    ";
    let r = run(SRC, "main", &[], &OptOptions::all().with_vectorization());
    assert_eq!(r.ret_int, 2000 * 9);
}
