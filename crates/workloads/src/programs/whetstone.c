/* whetstone: a reduction of the Whetstone floating-point mix to mini-C.
 * The transcendental modules are replaced by rational/polynomial
 * approximations of the same operation count (mini-C has no libm); the
 * array-element and parameter-passing modules are kept. Almost all time
 * goes to register-resident FP arithmetic, so streaming finds little
 * (paper: 3% cycle reduction). Self-checks value bands; returns 1.
 */

double e1[4];
double work[1000];

double t;
double t1;
double t2;

/* polynomial stand-in for the trig module: same multiply/add mix */
double poly(double x) {
    return ((0.5 * x - 0.25) * x + 0.0625) * x + 1.0;
}

void pa(double *e) {
    int j;
    j = 0;
    while (j < 6) {
        e[0] = (e[0] + e[1] + e[2] - e[3]) * t;
        e[1] = (e[0] + e[1] - e[2] + e[3]) * t;
        e[2] = (e[0] - e[1] + e[2] + e[3]) * t;
        e[3] = (e[0] + e[1] + e[2] + e[3]) / t2;
        j = j + 1;
    }
}

void p3(double x, double y, double *z) {
    double x1; double y1;
    x1 = t * (x + y);
    y1 = t * (x1 + y);
    *z = (x1 + y1) / t2;
}

int main() {
    int i; int j; int n1; int n2; int n3; int n6; int n8;
    double x; double y; double z;
    double x1; double x2; double x3; double x4;

    t = 0.499975;
    t1 = 0.50025;
    t2 = 2.0;

    n1 = 200; n2 = 300; n3 = 400; n6 = 80; n8 = 300;

    /* module 1: simple identities */
    x1 = 1.0; x2 = -1.0; x3 = -1.0; x4 = -1.0;
    for (i = 0; i < n1; i++) {
        x1 = (x1 + x2 + x3 - x4) * t;
        x2 = (x1 + x2 - x3 + x4) * t;
        x3 = (x1 - x2 + x3 + x4) * t;
        x4 = (-x1 + x2 + x3 + x4) * t;
    }

    /* module 2: array elements */
    e1[0] = 1.0; e1[1] = -1.0; e1[2] = -1.0; e1[3] = -1.0;
    for (i = 0; i < n2; i++) {
        e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * t;
        e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * t;
        e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * t;
        e1[3] = (e1[0] + e1[1] + e1[2] + e1[3]) * t;
    }

    /* module 3: array as parameter */
    for (i = 0; i < n3; i++) pa(e1);

    /* module 6: polynomial ("trig") */
    x = 0.5; y = 0.5;
    for (i = 0; i < n6; i++) {
        x = t * poly(x + y);
        y = t * poly(x + y);
    }

    /* module 8: procedure calls */
    x = 1.0; y = 1.0; z = 1.0;
    for (i = 0; i < n8; i++) p3(x, y, &work[0]);
    z = work[0];

    /* a touch of memory traffic so streaming has *something* (matching the
     * small but non-zero gain the paper measures) */
    for (i = 0; i < 1000; i++) work[i] = z * 0.001;
    x = 0.0;
    for (i = 0; i < 1000; i++) x = x + work[i];

    /* sanity bands: the identities converge near ±1, p3 near 1 */
    j = 1;
    if (x1 > 0.0 || x1 < -2.0) j = 0;
    if (z < 0.9 || z > 1.1) j = 0;
    if (x < 0.5 * z || x > 1.5 * z) j = 0;
    if (e1[3] > 0.0 || e1[3] < -3.0) j = 0;
    return j;
}
