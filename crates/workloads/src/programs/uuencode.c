/* uuencode: the historic Unix binary-to-text encoder's inner kernel.
 * Every 3 input bytes become 4 printable sextets (value + 32). Like od,
 * the loop is pure integer work — shifts, masks and adds all on the IEU,
 * with the input streamed in and the sextets stored out — so the one
 * dispatch-per-cycle unit is saturated and the *order* of the body
 * decides the steady-state interval: the greedy schedule leaks issue
 * interlocks and store adjacency that modulo scheduling removes.
 * Self-verifying: a decode pass reconstructs every byte; returns 1.
 */

int src[4098];
int enc[5464];

int main() {
    int i; int j; int n;
    int b0; int b1; int b2;
    int ok;

    n = 4095; /* a multiple of 3: the kernel consumes whole triples */
    for (i = 0; i < n; i++) src[i] = (i * 37 + 11) & 255;

    /* the encode kernel: 3 bytes in, 4 sextets out */
    j = 0;
    for (i = 0; i < n; i = i + 3) {
        b0 = src[i]; b1 = src[i+1]; b2 = src[i+2];
        enc[j]   = (b0 >> 2) + 32;
        enc[j+1] = (((b0 & 3) << 4) | (b1 >> 4)) + 32;
        enc[j+2] = (((b1 & 15) << 2) | (b2 >> 6)) + 32;
        enc[j+3] = (b2 & 63) + 32;
        j = j + 4;
    }

    /* decode every group back and compare against the source */
    ok = 1;
    j = 0;
    for (i = 0; i + 2 < n; i = i + 3) {
        b0 = ((enc[j] - 32) << 2) | ((enc[j+1] - 32) >> 4);
        b1 = (((enc[j+1] - 32) & 15) << 4) | ((enc[j+2] - 32) >> 2);
        b2 = (((enc[j+2] - 32) & 3) << 6) | (enc[j+3] - 32);
        if (b0 != src[i]) ok = 0;
        if (b1 != src[i+1]) ok = 0;
        if (b2 != src[i+2]) ok = 0;
        j = j + 4;
    }
    return ok;
}
