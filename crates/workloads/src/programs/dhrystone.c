/* dhrystone: a faithful reduction of the Dhrystone 2.1 operation mix to
 * mini-C (the original needs structs and pointers-to-struct, which the
 * subset omits; records become parallel arrays). Each iteration performs
 * the characteristic work: 30-character string copies and comparisons,
 * record field assignments, array element and block assignments, and the
 * Proc/Func call chain. String copies and array block moves are the
 * streaming opportunities (paper: 39% cycle reduction).
 * Returns 1 when all checks pass.
 */

char str1[32];
char str2[32];
char str3[32];
int arr1[50];
int arr2[50];
/* "record" fields as parallel arrays */
int rec_int[4];
int rec_enum[4];
char rec_str[128];

int int_glob;
char ch_glob;

int strcopy(char *d, char *s) {
    int i;
    i = 0;
    while (s[i]) { d[i] = s[i]; i = i + 1; }
    d[i] = 0;
    return i;
}

int strcomp(char *a, char *b) {
    int i;
    i = 0;
    while (a[i] && a[i] == b[i]) i = i + 1;
    return a[i] - b[i];
}

int func1(int ch1, int ch2) {
    if (ch1 == ch2) return 0;
    return 1;
}

int func2(char *s1, char *s2) {
    int i;
    i = 2;
    if (func1(s1[i], s2[i+1]) == 0) i = i + 1;
    if (strcomp(s1, s2) > 0) { int_glob = i + 7; return 1; }
    return 0;
}

void proc7(int a, int b, int *out) {
    *out = a + b + 2;
}

void proc8(int *a1, int *a2, int idx, int val) {
    int i;
    a1[idx] = val;
    a1[idx + 1] = a1[idx];
    a1[idx + 30] = idx;
    for (i = idx; i <= idx + 1; i++) a2[i] = i;
    a2[idx + 5] = a2[idx + 4] + 1;
    int_glob = 5;
}

int main() {
    int run; int i; int n; int ok; int t;
    int out;

    n = 60;
    ok = 1;
    /* the reference strings */
    strcopy(str1, "DHRYSTONE PROGRAM, 1'ST STRING");
    strcopy(str3, "DHRYSTONE PROGRAM, 2'ND STRING");

    for (run = 0; run < n; run++) {
        /* record assignment block (Proc1-ish) */
        rec_int[0] = 5;
        rec_int[1] = rec_int[0] + 10;
        rec_enum[0] = 2;
        rec_enum[1] = rec_enum[0];
        /* record string copy: a 30-char block move */
        t = strcopy(rec_str, str1);
        if (t != 30) ok = 0;

        /* Proc8: array and block assignments */
        proc8(arr1, arr2, 8, 7);
        if (arr1[8] != 7) ok = 0;
        if (arr2[13] != arr2[12] + 1) ok = 0;

        /* string compare on equal prefixes (Func2) */
        t = strcopy(str2, str1);
        str2[t - 1] = 'H';            /* make str2 larger */
        if (func2(str2, str1) != 1) ok = 0;
        if (int_glob != 9) ok = 0;

        /* Proc7 arithmetic */
        proc7(10, run, &arr1[0]);
        out = arr1[0];
        if (out != 12 + run) ok = 0;

        /* character games (Proc6/Proc5-ish) */
        ch_glob = 'A';
        if (func1(ch_glob, 'A') != 0) ok = 0;

        /* second string copy the other way */
        t = strcopy(str2, str3);
        if (t != 30) ok = 0;
        if (strcomp(str2, str1) <= 0) ok = 0;
    }
    return ok;
}
