/* bubblesort: classic exchange sort over a pseudo-random array. The inner
 * compare-exchange pass walks the array with unit stride, which is where
 * streaming finds its opportunity (paper: 18% cycle reduction).
 * Self-checks order and a sum invariant; returns 1 on success.
 */

int a[600];

int main() {
    int i; int j; int t; int n; int before; int after; int seed;

    n = 600;
    seed = 42;
    /* inline linear-congruential fill so the loop stays call-free */
    for (i = 0; i < n; i++) {
        seed = (seed * 1103515245 + 12345) & 0x7fffffff;
        a[i] = seed % 10000;
    }
    before = 0;
    for (i = 0; i < n; i++) before = before + a[i];

    for (i = n - 1; i > 0; i--)
        for (j = 0; j < i; j++)
            if (a[j] > a[j+1]) {
                t = a[j];
                a[j] = a[j+1];
                a[j+1] = t;
            }

    after = 0;
    for (i = 0; i < n; i++) after = after + a[i];
    if (after != before) return 0;
    for (i = 1; i < n; i++) if (a[i-1] > a[i]) return 0;
    return 1;
}
