/* Livermore loop 5: tri-diagonal elimination below the diagonal — the
 * paper's running example of a loop-carried recurrence ("x[i] is defined in
 * terms of x[i-1]"). Array size follows the paper's Table I setup.
 * Returns a scaled sample of the result for verification.
 */

double x[100000];
double y[100000];
double z[100000];

int main() {
    int i; int n;

    n = 100000;
    for (i = 0; i < n; i++) {
        x[i] = i % 7 * 0.25;
        y[i] = 2.0 + i % 5 * 0.5;
        z[i] = 0.5 - i % 3 * 0.125;
    }
    for (i = 2; i < n; i++)
        x[i] = z[i] * (y[i] - x[i-1]);
    return (int) (x[n-1] * 100000.0);
}
