/* sparse-matvec: CSR sparse matrix-vector product y = A x. The inner
 * loop `s += val[j] * x[col[j]]` is the canonical indirect-stream
 * kernel: val[j] and col[j] stream affinely while x[col[j]] is a
 * gather fed by the col index stream. x spans 16 KB (4096 ints), twice
 * an 8 KB L1, and the column pattern strides pseudo-randomly so the
 * gathers miss; the speedup over the scalar build grows with miss
 * latency. Every row is verified against direct recomputation (no
 * memory traffic), so a wrong gather returns 0, not 1.
 */

int row_ptr[513];
int col[8192];
int val[8192];
int x[4096];
int y[512];

int main() {
    int i; int j; int k; int n; int nnz; int r0; int r1; int s;
    int c; int expect; int ok;

    n = 512;
    /* 16 nonzeros per row; columns scatter across all of x */
    nnz = 0;
    for (i = 0; i < n; i++) {
        row_ptr[i] = nnz;
        for (k = 0; k < 16; k++) {
            col[nnz] = (i * 67 + k * 129 + (i * k) % 61) % 4096;
            val[nnz] = 1 + (i + k) % 7;
            nnz = nnz + 1;
        }
    }
    row_ptr[n] = nnz;
    for (i = 0; i < 4096; i++) x[i] = i % 97;

    /* kernel: the inner loop gathers x[col[j]] while val[j] streams */
    for (i = 0; i < n; i++) {
        s = 0;
        r0 = row_ptr[i];
        r1 = row_ptr[i + 1];
        for (j = r0; j < r1; j++)
            s = s + val[j] * x[col[j]];
        y[i] = s;
    }

    /* verify every row against a pure-arithmetic recomputation */
    ok = 1;
    for (i = 0; i < n; i++) {
        expect = 0;
        for (k = 0; k < 16; k++) {
            c = (i * 67 + k * 129 + (i * k) % 61) % 4096;
            expect = expect + (1 + (i + k) % 7) * (c % 97);
        }
        if (y[i] != expect) ok = 0;
    }
    return ok;
}
