/* iir: a direct-form-I biquad infinite-impulse-response filter. The
 * feedback terms y[i-1], y[i-2] form a degree-2 recurrence — the case the
 * paper calls "difficult and often impossible to vectorize" but which
 * streaming handles: x streams in, y streams out, and the recurrence is
 * held in registers (paper: 13% cycle reduction). Checks stability and an
 * output checksum band; returns 1 on success.
 */

double x[4000];
double y[4000];

int main() {
    int i; int n;
    double b0; double b1; double b2; double a1; double a2;
    double acc;

    n = 4000;
    /* a gentle low-pass biquad (stable: poles well inside the unit circle) */
    b0 = 0.2; b1 = 0.4; b2 = 0.2;
    a1 = -0.3; a2 = 0.1;

    /* impulse + a step at the midpoint */
    for (i = 0; i < n; i++) x[i] = 0.0;
    x[0] = 1.0;
    for (i = 2000; i < n; i++) x[i] = 0.5;

    y[0] = b0 * x[0];
    y[1] = b0 * x[1] + b1 * x[0] - a1 * y[0];
    for (i = 2; i < n; i++)
        y[i] = b0 * x[i] + b1 * x[i-1] + b2 * x[i-2]
             - a1 * y[i-1] - a2 * y[i-2];

    /* steady-state gain for a 0.5 step is 0.5 * (b0+b1+b2)/(1+a1+a2) = 0.5 */
    acc = y[n-1];
    if (acc < 0.49 || acc > 0.51) return 0;

    /* impulse response must have decayed to nothing by the midpoint */
    if (y[1999] > 0.001 || y[1999] < -0.001) return 0;
    return 1;
}
