/* Livermore loop 5, initialization only: identical to livermore5.c with
 * the kernel loop removed. Subtracting its cycle count from the full
 * program isolates the kernel, which is what Table I reports.
 */

double x[100000];
double y[100000];
double z[100000];

int main() {
    int i; int n;

    n = 100000;
    for (i = 0; i < n; i++) {
        x[i] = i % 7 * 0.25;
        y[i] = 2.0 + i % 5 * 0.5;
        z[i] = 0.5 - i % 3 * 0.125;
    }
    return (int) (x[n-1] * 100000.0);
}
