/* compact: the adaptive-compression utility's hot loops, reduced to a
 * byte-frequency model plus a code-table walk — "searching a decoding
 * tree" is one of the streaming uses the paper found in compact. The
 * frequency scan and table initialization stream; the tree walk is
 * data-dependent. Round-trips a buffer through a move-to-front transform
 * and verifies reconstruction; returns 1 on success.
 */

char input[4096];
char coded[4096];
char decoded[4096];
int  order[256];
int  order2[256];

int mtf_find(int *ord, int c) {
    int i;
    for (i = 0; i < 256; i++)
        if (ord[i] == c) return i;
    return -1;
}

void mtf_front(int *ord, int idx) {
    int i; int c;
    c = ord[idx];
    for (i = idx; i > 0; i--) ord[i] = ord[i-1];
    ord[0] = c;
}

int main() {
    int i; int n; int idx; int ok;

    n = 4096;
    /* skewed input so move-to-front has short searches (array init) */
    for (i = 0; i < n; i++) input[i] = (i * i + i / 7) % 19;

    /* code tables (array init — streams) */
    for (i = 0; i < 256; i++) order[i] = i;
    for (i = 0; i < 256; i++) order2[i] = i;

    /* encode: replace each byte by its current rank, move to front */
    for (i = 0; i < n; i++) {
        idx = mtf_find(order, input[i]);
        coded[i] = idx;
        mtf_front(order, idx);
    }

    /* decode with a second table */
    for (i = 0; i < n; i++) {
        idx = coded[i];
        decoded[i] = order2[idx];
        mtf_front(order2, idx);
    }

    /* verify the round trip (scan — streams) */
    ok = 1;
    for (i = 0; i < n; i++)
        if (decoded[i] != input[i]) ok = 0;
    return ok;
}
