/* banner: print a message in large letters, like the Unix banner utility.
 * The banner is composed into a character buffer first — row blanking,
 * glyph stamping and the final copy to the output routine are the regular
 * array walks where streaming finds its (modest) opportunity; the paper
 * reports a 5% cycle reduction. Self-checks by counting the '#' cells
 * against the font population count; returns 1 on success.
 */

int font[16];    /* two glyphs, 8 rows each, 8-bit masks */
char text[8];
char canvas[4096];  /* 8 rows x up to 64 columns, repeated stampings */

int popcount(int v) {
    int n;
    n = 0;
    while (v) { n = n + (v & 1); v = v >> 1; }
    return n;
}

int main() {
    int g; int row; int col; int bits; int printed; int expect;
    int width; int rep; int i; int base;

    /* glyph 0: W */
    font[0] = 0x81; font[1] = 0x81; font[2] = 0x81; font[3] = 0x99;
    font[4] = 0x99; font[5] = 0xA5; font[6] = 0xC3; font[7] = 0x81;
    /* glyph 1: M */
    font[8]  = 0x81; font[9]  = 0xC3; font[10] = 0xA5; font[11] = 0x99;
    font[12] = 0x81; font[13] = 0x81; font[14] = 0x81; font[15] = 0x81;

    /* "WMWM", terminated by 2 */
    text[0] = 0; text[1] = 1; text[2] = 0; text[3] = 1; text[4] = 2;

    width = 4 * 9; /* 4 glyphs, 8 columns + 1 space each */

    /* the utility composes and prints the banner many times */
    printed = 0;
    for (rep = 0; rep < 1; rep++) {
        /* blank the canvas: a pure array initialization */
        for (i = 0; i < 8 * width; i++) canvas[i] = ' ';

        /* stamp glyphs */
        for (row = 0; row < 8; row++) {
            g = 0;
            while (text[g] != 2) {
                bits = font[text[g] * 8 + row];
                base = row * width + g * 9;
                for (col = 0; col < 8; col++)
                    if ((bits >> (7 - col)) & 1)
                        canvas[base + col] = '#';
                g = g + 1;
            }
        }

        /* count the ink (a pure scan, kept free of calls so it streams) */
        for (i = 0; i < 8 * width; i++)
            if (canvas[i] == '#') printed = printed + 1;

        /* print only the first repetition to keep the captured output small */
        if (rep == 0) {
            for (row = 0; row < 8; row++) {
                for (col = 0; col < width; col++)
                    putchar(canvas[row * width + col]);
                putchar('\n');
            }
        }
    }

    expect = 0;
    for (g = 0; g < 16; g++) expect = expect + popcount(font[g]);
    if (printed == expect * 2 * 1) return 1;
    return 0;
}
