/* quicksort: recursive partition-exchange sort. Its loops have
 * data-dependent bounds and exits, so almost nothing can be streamed —
 * the paper reports only a 1% cycle reduction, the smallest in Table II.
 * Self-checks order and a sum invariant; returns 1 on success.
 */

int a[2000];

void qsort_range(int lo, int hi) {
    int pivot; int i; int j; int t;
    if (lo >= hi) return;
    pivot = a[(lo + hi) / 2];
    i = lo;
    j = hi;
    while (i <= j) {
        while (a[i] < pivot) i = i + 1;
        while (a[j] > pivot) j = j - 1;
        if (i <= j) {
            t = a[i]; a[i] = a[j]; a[j] = t;
            i = i + 1;
            j = j - 1;
        }
    }
    qsort_range(lo, j);
    qsort_range(i, hi);
}

int main() {
    int i; int n; int before; int after; int seed;

    n = 2000;
    seed = 12345;
    for (i = 0; i < n; i++) {
        seed = (seed * 1103515245 + 12345) & 0x7fffffff;
        a[i] = seed % 100000;
    }
    before = 0;
    for (i = 0; i < n; i++) before = before + a[i];

    qsort_range(0, n - 1);

    after = 0;
    for (i = 0; i < n; i++) after = after + a[i];
    if (after != before) return 0;
    for (i = 1; i < n; i++) if (a[i-1] > a[i]) return 0;
    return 1;
}
