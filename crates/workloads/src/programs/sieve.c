/* sieve: the classic Byte-benchmark sieve of Eratosthenes over 8191 flags.
 * The flag initialization streams with unit stride and the marking loops
 * stream with stride equal to the prime (paper: 18% cycle reduction).
 * Returns 1 if the expected 1899 primes are found.
 */

char flags[8191];

int main() {
    int i; int k; int prime; int count; int iter;

    count = 0;
    for (iter = 0; iter < 3; iter++) {
        count = 0;
        for (i = 0; i < 8191; i++) flags[i] = 1;
        for (i = 0; i < 8191; i++) {
            if (flags[i]) {
                prime = i + i + 3;
                for (k = i + prime; k < 8191; k = k + prime)
                    flags[k] = 0;
                count = count + 1;
            }
        }
    }
    if (count == 1899) return 1;
    return 0;
}
