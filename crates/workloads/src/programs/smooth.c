/* smooth: a 4-point integer boxcar (moving-average) smoother, the
 * fixed-point cousin of the iir filter. The taps are feed-forward —
 * x[i-1..3] carried in registers by the recurrence pass, x streamed in,
 * y streamed out — so unlike iir there is no feedback chain limiting the
 * initiation interval; the limit in the greedy schedule is purely the
 * adjacent-issue interlocks of the serial add chain, which modulo
 * scheduling spreads apart. Self-verifying: a scalar re-computation
 * checks every output; returns 1.
 */

int x[8000];
int y[8000];

int main() {
    int i; int n;
    int ok; int t;

    n = 8000;
    for (i = 0; i < n; i++) x[i] = ((i * 29) & 63) + ((i >> 3) & 15);
    y[0] = x[0]; y[1] = x[1]; y[2] = x[2];

    /* the smoothing kernel */
    for (i = 3; i < n; i++)
        y[i] = (x[i] + x[i-1] + x[i-2] + x[i-3]) >> 2;

    /* re-compute with explicit loads and compare */
    ok = 1;
    for (i = 3; i < n; i++) {
        t = (x[i] + x[i-1] + x[i-2] + x[i-3]) >> 2;
        if (y[i] != t) ok = 0;
    }
    return ok;
}
