/* od: the octal-dump utility's core loops — read a buffer, format each
 * 16-byte line into an output record, and emit it. The paper lists od
 * among the utilities whose compiled code uses stream instructions (buffer
 * scans and record copies). Self-checks an output checksum; returns 1.
 */

char buf[4096];
char line[80];
char page[20480];

int main() {
    int i; int j; int pos; int b; int n; int out;
    int checksum; int expect;

    n = 4096;
    /* fill the input buffer with a reproducible pattern (array init) */
    for (i = 0; i < n; i++) buf[i] = (i * 7 + 3) % 256;

    out = 0;
    for (i = 0; i < n; i = i + 16) {
        /* offset field: six octal digits */
        pos = 0;
        for (j = 15; j >= 0; j = j - 3) {
            line[pos] = '0' + ((i >> j) & 7);
            pos = pos + 1;
        }
        line[pos] = ' ';
        pos = pos + 1;
        /* sixteen bytes, three octal digits each */
        for (j = 0; j < 16; j++) {
            b = buf[i + j];
            line[pos] = '0' + ((b >> 6) & 7);
            line[pos + 1] = '0' + ((b >> 3) & 7);
            line[pos + 2] = '0' + (b & 7);
            line[pos + 3] = ' ';
            pos = pos + 4;
        }
        line[pos] = '\n';
        pos = pos + 1;
        /* copy the record to the page (structure copy — streams) */
        for (j = 0; j < pos; j++) page[out + j] = line[j];
        out = out + pos;
    }

    /* checksum the page (scan — streams) */
    checksum = 0;
    for (i = 0; i < out; i++) checksum = checksum + page[i];

    /* verify against a direct recomputation */
    expect = 0;
    for (i = 0; i < n; i = i + 16) {
        for (j = 15; j >= 0; j = j - 3) expect = expect + '0' + ((i >> j) & 7);
        expect = expect + ' ';
        for (j = 0; j < 16; j++) {
            b = buf[i + j];
            expect = expect + '0' + ((b >> 6) & 7) + '0' + ((b >> 3) & 7)
                   + '0' + (b & 7) + ' ';
        }
        expect = expect + '\n';
    }
    if (checksum == expect) return 1;
    return 0;
}
