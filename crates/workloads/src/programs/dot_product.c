/* dot-product: the paper's flagship streaming example — "the code will
 * produce the dot product in N clock cycles". Two double vectors are
 * streamed into the FEU FIFOs and the loop reduces to a single
 * multiply-accumulate instruction plus the stream-test jump (paper: 43%
 * cycle reduction). Verified against the closed form; returns 1 on
 * success.
 */

double a[10000];
double b[10000];

int main() {
    int i; int n;
    double sum; double expect;

    n = 10000;
    for (i = 0; i < n; i++) {
        a[i] = 2.0;
        b[i] = 0.5;
    }
    sum = 0.0;
    for (i = 0; i < n; i++)
        sum = sum + a[i] * b[i];

    /* 2.0 * 0.5 * n exactly */
    expect = (double) n;
    if (sum == expect) return 1;
    return 0;
}
