/* cal: produce a 12-month calendar for 1990, like the Unix utility the
 * paper compiled ("the optimizer generates stream instructions for ...
 * cal"). Like the real utility, each month is composed into a character
 * grid first; the grid blanking, the day-number fills, and the copy into
 * the page buffer are the regular array walks that stream. Self-checks the
 * day count and the page checksum; returns 1 on success.
 */

int mdays[12];
char grid[192];      /* 8 rows x 24 columns: one month */
char page[4096];     /* the assembled year */
int total;

int main() {
    int m; int d; int dow; int col; int i; int days; int row;
    int pos; int page_len; int rep; int checksum; int expect;

    mdays[0] = 31; mdays[1] = 28; mdays[2] = 31; mdays[3] = 30;
    mdays[4] = 31; mdays[5] = 30; mdays[6] = 31; mdays[7] = 31;
    mdays[8] = 30; mdays[9] = 31; mdays[10] = 30; mdays[11] = 31;

    expect = 0;
    checksum = 0;
    page_len = 0;

    /* the utility formats the year repeatedly (e.g. once per page copy) */
    for (rep = 0; rep < 1; rep++) {
        /* 1 January 1990 was a Monday */
        dow = 1;
        total = 0;
        page_len = 0;
        for (m = 0; m < 12; m++) {
            /* blank the month grid: pure array initialization */
            for (i = 0; i < 192; i++) grid[i] = ' ';

            /* header row: month number */
            grid[0] = '0' + (m + 1) / 10;
            grid[1] = '0' + (m + 1) % 10;
            grid[2] = '/';
            grid[3] = '9';
            grid[4] = '0';

            /* day cells */
            days = mdays[m];
            row = 1;
            col = dow;
            for (d = 1; d <= days; d++) {
                pos = row * 24 + col * 3;
                if (d >= 10) grid[pos] = '0' + d / 10;
                grid[pos + 1] = '0' + d % 10;
                total = total + 1;
                col = col + 1;
                if (col == 7) { col = 0; row = row + 1; }
            }
            dow = (dow + days) % 7;

            /* copy the month grid into the page (structure copy) */
            for (i = 0; i < 192; i++) page[page_len + i] = grid[i];
            page_len = page_len + 192;
        }

        /* checksum the page: a pure scan */
        checksum = 0;
        for (i = 0; i < page_len; i++) checksum = checksum + page[i];
        if (total == 365) expect = expect + 1;
    }

    /* print the last page, one month row per line */
    for (m = 0; m < 12; m++) {
        for (row = 0; row < 8; row++) {
            for (col = 0; col < 24; col++)
                putchar(page[m * 192 + row * 24 + col]);
            putchar('\n');
        }
    }

    if (expect == 1 && checksum > 0) return 1;
    return 0;
}
