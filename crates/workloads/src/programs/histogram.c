/* histogram: counting sort in four passes — histogram, prefix sum,
 * rank assignment, permutation. The first three passes are
 * read-modify-write on indirect addresses and stay scalar; the final
 * permutation `out[rank[i]] = data[i]` is the scatter dual of the
 * gather: rank[i] streams affinely as the index stream and the SCU
 * scatters data values through it. Verified by checking out is sorted
 * and preserves the input multiset checksum; returns 1 on success.
 */

int data[8192];
int rank[8192];
int count[256];
int start[256];
int out[8192];

int main() {
    int i; int n; int b; int s; int t; int prev;
    int sum_in; int sum_out; int ok;

    n = 8192;
    b = 256;
    for (i = 0; i < n; i++) data[i] = (i * 193 + (i * i) % 89) % 256;
    for (i = 0; i < b; i++) count[i] = 0;
    for (i = 0; i < n; i++) count[data[i]] = count[data[i]] + 1;
    s = 0;
    for (i = 0; i < b; i++) {
        start[i] = s;
        s = s + count[i];
    }
    for (i = 0; i < n; i++) {
        t = data[i];
        rank[i] = start[t];
        start[t] = start[t] + 1;
    }

    /* the permutation: the rank index stream feeds the scatter SCU */
    for (i = 0; i < n; i++) out[rank[i]] = data[i];

    /* verify: out is sorted and the multiset checksum is preserved */
    ok = 1;
    prev = 0 - 1;
    sum_in = 0;
    sum_out = 0;
    for (i = 0; i < n; i++) {
        if (out[i] < prev) ok = 0;
        prev = out[i];
        sum_in = sum_in + data[i] * 3 + 1;
        sum_out = sum_out + out[i] * 3 + 1;
    }
    if (sum_in != sum_out) ok = 0;
    return ok;
}
