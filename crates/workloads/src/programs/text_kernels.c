/* text kernels: the string operations the paper found streaming in Unix
 * utilities (cal, compact, od, sort, diff, nroff, yacc): "copying strings
 * and structures, searching a decoding tree, searching a data structure
 * for a specific item, and initializing an array". Returns 1 on success.
 */

char buf_a[4096];
char buf_b[4096];
int  table[1024];

int copy_string(char *d, char *s) {
    int i;
    i = 0;
    while (s[i]) { d[i] = s[i]; i = i + 1; }
    d[i] = 0;
    return i;
}

int find_byte(char *s, int n, int c) {
    int i;
    for (i = 0; i < n; i++)
        if (s[i] == c) return i;
    return -1;
}

int main() {
    int i; int n; int pos; int ok;

    ok = 1;

    /* array initialization (streams out) */
    for (i = 0; i < 1024; i++) table[i] = i * 3;

    /* fill a with a pattern, NUL-terminated */
    n = 4000;
    for (i = 0; i < n; i++) buf_a[i] = 'a' + i % 23;
    buf_a[n] = 0;

    /* string copy (streams in and out) */
    if (copy_string(buf_b, buf_a) != n) ok = 0;
    for (i = 0; i < n; i++) if (buf_b[i] != buf_a[i]) ok = 0;

    /* search for an item (streams in, data-dependent exit) */
    buf_b[3517] = '!';
    pos = find_byte(buf_b, n, '!');
    if (pos != 3517) ok = 0;

    /* table lookup walk */
    pos = 0;
    for (i = 0; i < 1024; i++) if (table[i] == 3 * 600) pos = i;
    if (pos != 600) ok = 0;

    return ok;
}
