//! Benchmark programs from the paper's evaluation, written in mini-C.
//!
//! Table II of the paper measures nine programs: *banner, bubblesort, cal,
//! dhrystone, dot-product, iir, quicksort, sieve* and *whetstone*. Table I
//! uses the fifth Livermore loop with 100 000 elements. This crate carries
//! those programs (plus the Unix-utility text kernels the paper mentions)
//! as mini-C source, each self-verifying: **every program returns 1 (or a
//! documented checksum) so both simulators can assert correctness, not
//! just count cycles.**
//!
//! Dhrystone and whetstone are faithful *reductions*: the originals use C
//! constructs outside the mini-C subset (structs, libm), so records become
//! parallel arrays and transcendentals become polynomials of the same
//! operation mix. Each source file documents its substitutions.

/// A benchmark program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Short name (matches the paper's Table II rows).
    pub name: &'static str,
    /// The mini-C source text.
    pub source: &'static str,
    /// What a successful run returns from `main`.
    pub expected_ret: Expected,
    /// The paper's reported percent reduction in cycles from streaming
    /// (Table II), for side-by-side reporting.
    pub paper_table2_percent: Option<f64>,
}

/// Expected result of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expected {
    /// `main` must return exactly this value.
    Ret(i64),
    /// Any return value is acceptable (checked elsewhere).
    Any,
}

impl Workload {
    /// Assert that `ret` is an acceptable result for this workload.
    ///
    /// # Panics
    ///
    /// Panics with the workload name when the result is wrong.
    pub fn check(&self, ret: i64) {
        if let Expected::Ret(want) = self.expected_ret {
            assert_eq!(
                ret, want,
                "workload {} returned {ret}, expected {want}",
                self.name
            );
        }
    }
}

/// The nine programs of Table II, in the paper's order.
pub fn table2() -> Vec<Workload> {
    vec![
        Workload {
            name: "banner",
            source: include_str!("programs/banner.c"),
            expected_ret: Expected::Ret(1),
            paper_table2_percent: Some(5.0),
        },
        Workload {
            name: "bubblesort",
            source: include_str!("programs/bubblesort.c"),
            expected_ret: Expected::Ret(1),
            paper_table2_percent: Some(18.0),
        },
        Workload {
            name: "cal",
            source: include_str!("programs/cal.c"),
            expected_ret: Expected::Ret(1),
            paper_table2_percent: Some(17.0),
        },
        Workload {
            name: "dhrystone",
            source: include_str!("programs/dhrystone.c"),
            expected_ret: Expected::Ret(1),
            paper_table2_percent: Some(39.0),
        },
        Workload {
            name: "dot-product",
            source: include_str!("programs/dot_product.c"),
            expected_ret: Expected::Ret(1),
            paper_table2_percent: Some(43.0),
        },
        Workload {
            name: "iir",
            source: include_str!("programs/iir.c"),
            expected_ret: Expected::Ret(1),
            paper_table2_percent: Some(13.0),
        },
        Workload {
            name: "quicksort",
            source: include_str!("programs/quicksort.c"),
            expected_ret: Expected::Ret(1),
            paper_table2_percent: Some(1.0),
        },
        Workload {
            name: "sieve",
            source: include_str!("programs/sieve.c"),
            expected_ret: Expected::Ret(1),
            paper_table2_percent: Some(18.0),
        },
        Workload {
            name: "whetstone",
            source: include_str!("programs/whetstone.c"),
            expected_ret: Expected::Ret(1),
            paper_table2_percent: Some(3.0),
        },
    ]
}

/// Livermore loop 5 with 100 000 elements (Table I's workload).
pub fn livermore5() -> Workload {
    Workload {
        name: "livermore5",
        source: include_str!("programs/livermore5.c"),
        expected_ret: Expected::Any,
        paper_table2_percent: None,
    }
}

/// Livermore loop 5 with the kernel removed; subtract its cycles from
/// [`livermore5`]'s to isolate the kernel, as Table I does.
pub fn livermore5_init_only() -> Workload {
    Workload {
        name: "livermore5-init",
        source: include_str!("programs/livermore5_init.c"),
        expected_ret: Expected::Any,
        paper_table2_percent: None,
    }
}

/// The Unix-utility text kernels (string copy/search, array init, table
/// walks) the paper found streaming in *cal, compact, od, sort, diff,
/// nroff* and *yacc*.
pub fn text_kernels() -> Workload {
    Workload {
        name: "text-kernels",
        source: include_str!("programs/text_kernels.c"),
        expected_ret: Expected::Ret(1),
        paper_table2_percent: None,
    }
}

/// The od (octal dump) kernel — another utility the paper found streaming.
pub fn od_kernel() -> Workload {
    Workload {
        name: "od",
        source: include_str!("programs/od_kernel.c"),
        expected_ret: Expected::Ret(1),
        paper_table2_percent: None,
    }
}

/// The compact (adaptive compression) kernel: code-table walks and scans.
pub fn compact_kernel() -> Workload {
    Workload {
        name: "compact",
        source: include_str!("programs/compact_kernel.c"),
        expected_ret: Expected::Ret(1),
        paper_table2_percent: None,
    }
}

/// The uuencode kernel: 3 streamed bytes become 4 stored sextets, all
/// integer shift/mask work. Like [`od_kernel`] it saturates the IEU, so
/// its interval is ordering-limited — the modulo-scheduling showcase.
pub fn uuencode() -> Workload {
    Workload {
        name: "uuencode",
        source: include_str!("programs/uuencode.c"),
        expected_ret: Expected::Ret(1),
        paper_table2_percent: None,
    }
}

/// The Unix-utility kernels as a suite (the paper: "the optimizer
/// generates stream instructions for the following Unix utilities: cal,
/// compact, od, sort, diff, nroff, and yacc").
pub fn utilities() -> Vec<Workload> {
    vec![text_kernels(), od_kernel(), compact_kernel(), uuencode()]
}

/// CSR sparse matrix-vector product: the canonical gather kernel
/// (`s += val[j] * x[col[j]]`), self-verifying against a
/// pure-arithmetic recomputation of every row.
pub fn sparse_matvec() -> Workload {
    Workload {
        name: "sparse-matvec",
        source: include_str!("programs/sparse_matvec.c"),
        expected_ret: Expected::Ret(1),
        paper_table2_percent: None,
    }
}

/// Counting sort whose final permutation (`out[rank[i]] = data[i]`)
/// is the scatter dual of the gather; verified by sortedness and a
/// multiset checksum.
pub fn histogram() -> Workload {
    Workload {
        name: "histogram",
        source: include_str!("programs/histogram.c"),
        expected_ret: Expected::Ret(1),
        paper_table2_percent: None,
    }
}

/// A 4-point integer boxcar smoother: [`iir`](table2)'s feed-forward
/// fixed-point cousin. No feedback chain, so the initiation interval is
/// limited only by instruction ordering — the loop modulo scheduling
/// improves the most.
pub fn smooth() -> Workload {
    Workload {
        name: "smooth",
        source: include_str!("programs/smooth.c"),
        expected_ret: Expected::Ret(1),
        paper_table2_percent: None,
    }
}

/// The sparse (indirect-stream) workloads: gather and scatter kernels
/// whose inner loops the streaming pass fuses into `Sga`/`Ssc`
/// descriptors. The paper's access/execute split covers these too —
/// the SCU runs ahead through the index stream while the FEU consumes
/// gathered values.
pub fn sparse() -> Vec<Workload> {
    vec![sparse_matvec(), histogram()]
}

/// Every workload in the crate.
pub fn all() -> Vec<Workload> {
    let mut v = table2();
    v.push(livermore5());
    v.push(livermore5_init_only());
    v.extend(utilities());
    v.extend(sparse());
    v.push(smooth());
    v
}

/// Reference value for [`livermore5`]'s return, computed in Rust.
pub fn livermore5_expected() -> i64 {
    let n = 100_000usize;
    let mut x = vec![0.0f64; n];
    let mut y = vec![0.0f64; n];
    let mut z = vec![0.0f64; n];
    for i in 0..n {
        x[i] = (i % 7) as f64 * 0.25;
        y[i] = 2.0 + (i % 5) as f64 * 0.5;
        z[i] = 0.5 - (i % 3) as f64 * 0.125;
    }
    for i in 2..n {
        x[i] = z[i] * (y[i] - x[i - 1]);
    }
    (x[n - 1] * 100_000.0) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_parse() {
        for w in all() {
            let module = wm_frontend::compile(w.source)
                .unwrap_or_else(|e| panic!("{} does not compile: {e}", w.name));
            assert!(
                module.function_named("main").is_some(),
                "{} lacks main",
                w.name
            );
        }
    }

    #[test]
    fn table2_matches_paper_rows() {
        let rows = table2();
        assert_eq!(rows.len(), 9);
        let names: Vec<&str> = rows.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "banner",
                "bubblesort",
                "cal",
                "dhrystone",
                "dot-product",
                "iir",
                "quicksort",
                "sieve",
                "whetstone"
            ]
        );
        // the paper's largest and smallest gains
        let dot = rows.iter().find(|w| w.name == "dot-product").unwrap();
        assert_eq!(dot.paper_table2_percent, Some(43.0));
        let qs = rows.iter().find(|w| w.name == "quicksort").unwrap();
        assert_eq!(qs.paper_table2_percent, Some(1.0));
    }

    #[test]
    fn check_panics_on_wrong_result() {
        let w = table2()[0];
        w.check(1); // fine
        let result = std::panic::catch_unwind(|| w.check(0));
        assert!(result.is_err());
    }
}
