//! Property tests for `wm-solver` (ISSUE 10 satellite).
//!
//! Two independent oracles keep the solver honest:
//!
//! * every `Sat` model is replayed here — outside the solver's own
//!   self-check — against every clause and every asserted difference
//!   constraint of the generated instance;
//! * every `Unsat` verdict on a small random instance is cross-checked by
//!   brute force: enumerate all boolean assignments, and for each one
//!   that satisfies the clauses run Bellman–Ford over the implied
//!   difference-constraint graph to look for a feasible solution.
//!
//! Instances deliberately include self-loop atoms (`a - a <= c`), which
//! exercise the unit theory-conflict path, and pure boolean variables
//! mixed with theory atoms.

use proptest::collection::vec;
use proptest::prelude::*;
use wm_solver::{Budget, Lit, Outcome, Solver, TVar};

/// Number of time variables per generated instance.
const NT: u32 = 4;
/// Number of pure (non-atom) boolean variables per instance.
const NPURE: usize = 2;

/// A generated instance, in solver-independent form.
#[derive(Debug, Clone)]
struct Instance {
    /// Theory atoms `a - b <= c` (indices into the `NT` time variables).
    atoms: Vec<(u32, u32, i64)>,
    /// Clauses over the variable pool (atom vars first, then pure vars);
    /// each literal is (pool index, negated).
    clauses: Vec<Vec<(u32, bool)>>,
    /// Unconditional `a - b <= c` assertions.
    asserts: Vec<(u32, u32, i64)>,
}

fn instance() -> impl Strategy<Value = Instance> {
    (
        vec((0u32..NT, 0u32..NT, -3i64..4), 1..=4usize),
        vec(vec((0u32..64, any::<bool>()), 1..=3usize), 1..=6usize),
        vec((0u32..NT, 0u32..NT, -2i64..4), 0..=3usize),
    )
        .prop_map(|(atoms, clauses, asserts)| Instance {
            atoms,
            clauses,
            asserts,
        })
}

/// Build a solver for `inst`; returns the solver, the literal pool
/// (one positive literal per atom, then per pure boolean), and the time
/// variables.
fn build(inst: &Instance) -> (Solver, Vec<Lit>, Vec<TVar>) {
    let mut s = Solver::new();
    let ts: Vec<_> = (0..NT).map(|_| s.new_tvar()).collect();
    let mut pool = Vec::new();
    for &(a, b, c) in &inst.atoms {
        pool.push(s.diff_leq(ts[a as usize], ts[b as usize], c));
    }
    for _ in 0..NPURE {
        pool.push(Lit::pos(s.new_bool()));
    }
    for clause in &inst.clauses {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&(i, neg)| {
                let l = pool[i as usize % pool.len()];
                if neg {
                    !l
                } else {
                    l
                }
            })
            .collect();
        s.add_clause(&lits);
    }
    for &(a, b, c) in &inst.asserts {
        s.assert_diff(ts[a as usize], ts[b as usize], c);
    }
    (s, pool, ts)
}

/// The edges implied by a full boolean assignment over the pool: a true
/// atom contributes `a - b <= c`, a false one the integer negation
/// `b - a <= -c - 1`; unconditional asserts always apply.
fn implied_edges(inst: &Instance, assignment: u32) -> Vec<(u32, u32, i64)> {
    let mut edges = Vec::new();
    for (i, &(a, b, c)) in inst.atoms.iter().enumerate() {
        if assignment >> i & 1 == 1 {
            edges.push((a, b, c));
        } else {
            edges.push((b, a, -c - 1));
        }
    }
    edges.extend_from_slice(&inst.asserts);
    edges
}

/// Bellman–Ford feasibility of a conjunction of `a - b <= c` constraints
/// (virtual-source trick: all distances start at 0).
fn diff_feasible(edges: &[(u32, u32, i64)]) -> bool {
    let mut dist = [0i64; NT as usize];
    for _ in 0..NT {
        let mut changed = false;
        for &(a, b, c) in edges {
            // a - b <= c: dist[a] <= dist[b] + c
            if dist[b as usize] + c < dist[a as usize] {
                dist[a as usize] = dist[b as usize] + c;
                changed = true;
            }
        }
        if !changed {
            return true;
        }
    }
    // One more round: any further relaxation proves a negative cycle.
    for &(a, b, c) in edges {
        if dist[b as usize] + c < dist[a as usize] {
            return false;
        }
    }
    true
}

/// Brute-force satisfiability of the whole instance.
fn brute_force_sat(inst: &Instance) -> bool {
    let nvars = inst.atoms.len() + NPURE;
    'outer: for assignment in 0..1u32 << nvars {
        for clause in &inst.clauses {
            let sat = clause.iter().any(|&(i, neg)| {
                let v = i as usize % nvars;
                (assignment >> v & 1 == 1) != neg
            });
            if !sat {
                continue 'outer;
            }
        }
        if diff_feasible(&implied_edges(inst, assignment)) {
            return true;
        }
    }
    false
}

proptest! {
    /// Every `Sat` model, replayed externally, satisfies every clause and
    /// every asserted difference constraint.
    #[test]
    fn sat_models_replay_against_all_constraints(inst in instance()) {
        let (mut s, pool, ts) = build(&inst);
        let out = s.solve(Budget::default());
        prop_assert!(!matches!(out, Outcome::Unknown), "tiny instance exhausted budget");
        if let Outcome::Sat(m) = out {
            // Atom semantics: the model's boolean value of each atom must
            // agree with the times it reports.
            for (i, &(a, b, c)) in inst.atoms.iter().enumerate() {
                let (ta, tb) = (m.time(ts[a as usize]), m.time(ts[b as usize]));
                if m.lit(pool[i]) {
                    prop_assert!(ta - tb <= c, "true atom {i} violated: {ta} - {tb} > {c}");
                } else {
                    prop_assert!(tb - ta < -c, "false atom {i} violated");
                }
            }
            // Clause replay.
            for (ci, clause) in inst.clauses.iter().enumerate() {
                let ok = clause.iter().any(|&(i, neg)| {
                    let l = pool[i as usize % pool.len()];
                    m.lit(if neg { !l } else { l })
                });
                prop_assert!(ok, "clause {ci} not satisfied by model");
            }
            // Unconditional asserts.
            for &(a, b, c) in &inst.asserts {
                let (ta, tb) = (m.time(ts[a as usize]), m.time(ts[b as usize]));
                prop_assert!(ta - tb <= c, "asserted diff violated: {ta} - {tb} > {c}");
            }
        }
    }

    /// The solver's verdict matches brute-force enumeration exactly.
    #[test]
    fn verdicts_cross_checked_by_enumeration(inst in instance()) {
        let (mut s, _, _) = build(&inst);
        let out = s.solve(Budget::default());
        let expect = brute_force_sat(&inst);
        match out {
            Outcome::Sat(_) => prop_assert!(expect, "solver Sat, brute force Unsat"),
            Outcome::Unsat => prop_assert!(!expect, "solver Unsat, brute force Sat"),
            Outcome::Unknown => prop_assert!(false, "tiny instance exhausted budget"),
        }
    }

    /// Runs are pure functions of the instance: outcome, model, and
    /// search statistics all repeat exactly.
    #[test]
    fn runs_are_deterministic(inst in instance()) {
        let (mut s1, _, ts) = build(&inst);
        let (mut s2, _, _) = build(&inst);
        let o1 = s1.solve(Budget::default());
        let o2 = s2.solve(Budget::default());
        prop_assert_eq!(s1.stats.decisions, s2.stats.decisions);
        prop_assert_eq!(s1.stats.conflicts, s2.stats.conflicts);
        prop_assert_eq!(s1.stats.propagations, s2.stats.propagations);
        match (o1, o2) {
            (Outcome::Sat(m1), Outcome::Sat(m2)) => {
                for &t in &ts {
                    prop_assert_eq!(m1.time(t), m2.time(t));
                }
            }
            (Outcome::Unsat, Outcome::Unsat) | (Outcome::Unknown, Outcome::Unknown) => {}
            _ => prop_assert!(false, "outcomes diverged between identical runs"),
        }
    }
}
