//! A small, dependency-free DPLL(T) solver for SAT modulo *difference
//! logic* — the fragment whose atoms are bounds on variable differences,
//! `a - b <= c`.
//!
//! The modulo-scheduling pass (`wm-opt`'s `-O modulo`) encodes a software
//! pipeline for one candidate initiation interval as a conjunction of
//! clauses over plain booleans (pipeline-stage choices) and difference
//! atoms (issue-slot bounds, dependence latencies, register lifetimes,
//! FIFO ordering). This crate answers "is there a schedule?" and, when
//! there is, produces the slot assignment.
//!
//! The design follows the standard lazy SMT architecture:
//!
//! * a CDCL SAT core — two-watched-literal propagation, first-UIP clause
//!   learning with backjumping, activity-driven decisions and Luby
//!   restarts — owns the boolean search;
//! * a difference-logic theory keeps the constraint graph of the atoms
//!   the SAT core has currently assigned, maintains a feasible potential
//!   function incrementally, and reports each negative cycle back as a
//!   learned clause (the negation of the atoms on the cycle).
//!
//! Everything is deterministic: decisions break activity ties by variable
//! index, there is no randomization anywhere, and a run is a pure
//! function of the constraint set and the budget. Models are
//! **self-checking**: before a `Sat` verdict is returned every clause and
//! every active difference constraint is re-verified against the model,
//! and a violation panics rather than letting a bad schedule escape into
//! emitted code.
//!
//! ```
//! use wm_solver::{Budget, Outcome, Solver};
//!
//! let mut s = Solver::new();
//! let x = s.new_tvar();
//! let y = s.new_tvar();
//! let a = s.new_bool();
//! // a -> (x - y <= -3), !a -> (y - x <= -1)
//! let le = s.diff_leq(x, y, -3);
//! let ge = s.diff_leq(y, x, -1);
//! s.add_clause(&[Lit::neg(a), le]);
//! s.add_clause(&[Lit::pos(a), ge]);
//! let Outcome::Sat(m) = s.solve(Budget::default()) else { panic!() };
//! assert!(m.time(x) - m.time(y) <= -3 || m.time(y) - m.time(x) <= -1);
//! # use wm_solver::Lit;
//! ```

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// A boolean variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BVar(u32);

/// A difference-logic ("time") variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TVar(u32);

/// A literal: a boolean variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: BVar) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: BVar) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// The underlying variable.
    pub fn var(self) -> BVar {
        BVar(self.0 >> 1)
    }

    /// Is this the negated polarity?
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl std::fmt::Display for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}b{}",
            if self.is_neg() { "!" } else { "" },
            self.0 >> 1
        )
    }
}

/// Search budget. The conflict budget is the deterministic knob (same
/// constraints + same budget = same verdict on every machine); the
/// wall-clock budget is a belt-and-braces bound for interactive use.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Give up (`Outcome::Unknown`) after this many conflicts.
    pub max_conflicts: u64,
    /// Give up after this much wall-clock time (`None` = unbounded).
    /// Checked coarsely, between conflicts.
    pub max_time: Option<Duration>,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            max_conflicts: 100_000,
            max_time: None,
        }
    }
}

impl Budget {
    /// A purely conflict-bounded budget (fully deterministic).
    pub fn conflicts(n: u64) -> Budget {
        Budget {
            max_conflicts: n,
            max_time: None,
        }
    }
}

/// A satisfying assignment: values for every boolean and every difference
/// variable. Difference-variable values are one representative solution
/// (difference logic fixes only the differences; the solver anchors them
/// so that the values stay near zero).
#[derive(Debug, Clone)]
pub struct Model {
    bools: Vec<bool>,
    times: Vec<i64>,
}

impl Model {
    /// The boolean value of `v`.
    pub fn bool(&self, v: BVar) -> bool {
        self.bools[v.0 as usize]
    }

    /// Is `l` true under the model?
    pub fn lit(&self, l: Lit) -> bool {
        self.bool(l.var()) != l.is_neg()
    }

    /// The integer value of difference variable `t`.
    pub fn time(&self, t: TVar) -> i64 {
        self.times[t.0 as usize]
    }
}

/// The verdict of a [`Solver::solve`] call.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Satisfiable, with a (self-checked) model.
    Sat(Model),
    /// Proven unsatisfiable.
    Unsat,
    /// Budget exhausted before a verdict.
    Unknown,
}

/// Search statistics, for reporting and for tests that pin determinism.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Decisions made.
    pub decisions: u64,
    /// Conflicts analyzed (boolean and theory).
    pub conflicts: u64,
    /// Of which theory (negative-cycle) conflicts.
    pub theory_conflicts: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
}

/// One difference constraint `x_to - x_from <= weight`, activated when
/// `lit` becomes true.
#[derive(Debug, Clone, Copy)]
struct Edge {
    from: u32,
    to: u32,
    weight: i64,
    lit: Lit,
}

const UNASSIGNED: u8 = 2;

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
}

/// The DPLL(T) solver. See the crate docs for the architecture.
#[derive(Debug, Default)]
pub struct Solver {
    // --- boolean state ---
    /// Per-variable assignment: 0 = false, 1 = true, 2 = unassigned.
    assign: Vec<u8>,
    /// Saved phase for each variable (phase saving across restarts).
    phase: Vec<bool>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Reason clause index for each propagated variable.
    reason: Vec<Option<u32>>,
    /// VSIDS-style activity, decayed multiplicatively on conflict.
    activity: Vec<f64>,
    clauses: Vec<Clause>,
    /// `watches[lit.code()]`: clause indices watching `lit`.
    watches: Vec<Vec<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    /// Set at level 0 when the instance is contradictory regardless of
    /// search (empty clause, or level-0 propagation conflict).
    root_unsat: bool,
    var_inc: f64,

    // --- theory state ---
    /// Edges for each boolean var that is a theory atom: the constraint
    /// activated when the var is true, and when it is false.
    atom: Vec<Option<(Edge, Edge)>>,
    /// Whether the var's edge is currently in the graph.
    atom_active: Vec<bool>,
    /// Potential function: a feasible solution of the active constraints.
    potential: Vec<i64>,
    /// `out[v]`: active edge ids leaving `v` (edge `from == v`).
    out: Vec<Vec<u32>>,
    edges: Vec<Edge>,

    /// Search statistics for the most recent `solve`.
    pub stats: Stats,
}

impl Solver {
    /// An empty instance.
    pub fn new() -> Solver {
        Solver {
            var_inc: 1.0,
            ..Solver::default()
        }
    }

    /// A fresh boolean variable.
    pub fn new_bool(&mut self) -> BVar {
        let v = BVar(u32::try_from(self.assign.len()).expect("variable count fits u32"));
        self.assign.push(UNASSIGNED);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.atom.push(None);
        self.atom_active.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// A fresh difference variable.
    pub fn new_tvar(&mut self) -> TVar {
        let t = TVar(u32::try_from(self.potential.len()).expect("tvar count fits u32"));
        self.potential.push(0);
        self.out.push(Vec::new());
        t
    }

    /// The literal of a fresh atom asserting `a - b <= c`. Its negation
    /// asserts `b - a <= -c - 1` (integer tightening of `a - b > c`).
    pub fn diff_leq(&mut self, a: TVar, b: TVar, c: i64) -> Lit {
        let v = self.new_bool();
        let pos = Edge {
            from: b.0,
            to: a.0,
            weight: c,
            lit: Lit::pos(v),
        };
        let neg = Edge {
            from: a.0,
            to: b.0,
            weight: -c - 1,
            lit: Lit::neg(v),
        };
        self.atom[v.0 as usize] = Some((pos, neg));
        Lit::pos(v)
    }

    /// Assert `a - b <= c` unconditionally.
    pub fn assert_diff(&mut self, a: TVar, b: TVar, c: i64) {
        let l = self.diff_leq(a, b, c);
        self.add_clause(&[l]);
    }

    fn value(&self, l: Lit) -> u8 {
        match self.assign[l.var().0 as usize] {
            UNASSIGNED => UNASSIGNED,
            v => v ^ u8::from(l.is_neg()),
        }
    }

    /// Add a clause (a disjunction of literals). Duplicates are removed;
    /// tautologies are dropped; the empty clause marks the instance
    /// unsatisfiable.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        assert!(
            self.trail_lim.is_empty(),
            "clauses must be added before solve()"
        );
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        if ls.windows(2).any(|w| w[0] == !w[1]) {
            return; // tautology
        }
        // Drop literals already false at level 0; satisfied clauses vanish.
        ls.retain(|&l| self.value(l) != 0);
        if lits.iter().any(|&l| self.value(l) == 1) {
            return;
        }
        match ls.len() {
            0 => self.root_unsat = true,
            1 => {
                if !self.enqueue(ls[0], None) {
                    self.root_unsat = true;
                }
            }
            _ => {
                let idx = u32::try_from(self.clauses.len()).expect("clause count fits u32");
                self.watches[ls[0].code()].push(idx);
                self.watches[ls[1].code()].push(idx);
                self.clauses.push(Clause { lits: ls });
            }
        }
    }

    /// Install a learned clause (already first-UIP ordered: `lits[0]` is
    /// the asserting literal, `lits[1]` a literal of the backjump level).
    fn learn(&mut self, lits: Vec<Lit>) -> Option<u32> {
        if lits.len() == 1 {
            return None;
        }
        let idx = u32::try_from(self.clauses.len()).expect("clause count fits u32");
        self.watches[lits[0].code()].push(idx);
        self.watches[lits[1].code()].push(idx);
        self.clauses.push(Clause { lits });
        Some(idx)
    }

    fn decision_level(&self) -> u32 {
        u32::try_from(self.trail_lim.len()).expect("decision level fits u32")
    }

    /// Put `l` on the trail as true. Returns false on immediate conflict
    /// (already assigned false).
    fn enqueue(&mut self, l: Lit, reason: Option<u32>) -> bool {
        match self.value(l) {
            0 => false,
            1 => true,
            _ => {
                let v = l.var().0 as usize;
                self.assign[v] = u8::from(!l.is_neg());
                self.phase[v] = !l.is_neg();
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    /// Propagate to fixpoint. Returns the conflicting clause index, if any.
    /// Each newly true literal is also handed to the theory; a negative
    /// cycle becomes a learned clause that is returned as the conflict.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let l = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            // Theory activation first: it is cheap and catches infeasible
            // atom sets as early as possible.
            if let Some(cycle) = self.theory_assign(l) {
                self.stats.theory_conflicts += 1;
                let lits: Vec<Lit> = cycle.into_iter().map(|e| !e).collect();
                // The cycle's atoms are all true, so the learned clause is
                // all-false: a proper conflicting clause. A self-loop can
                // make it unit; resolve it through analyze() regardless by
                // installing it (unit clauses conflict at this level too).
                let idx = u32::try_from(self.clauses.len()).expect("clause count fits u32");
                if lits.len() >= 2 {
                    self.watches[lits[0].code()].push(idx);
                    self.watches[lits[1].code()].push(idx);
                } else {
                    // Unit learned clause: watch the literal twice so the
                    // watch invariant holds structurally.
                    self.watches[lits[0].code()].push(idx);
                    self.watches[lits[0].code()].push(idx);
                }
                self.clauses.push(Clause { lits });
                return Some(idx);
            }

            // Boolean propagation: visit clauses watching !l.
            let false_lit = !l;
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            'clauses: while i < ws.len() {
                let ci = ws[i];
                if self.clauses[ci as usize].lits.len() == 1 {
                    // A unit learned clause (theory cycle of one atom)
                    // whose literal just became false: direct conflict.
                    self.watches[false_lit.code()] = ws;
                    return Some(ci);
                }
                // Normalize: the false literal in position 1.
                if self.clauses[ci as usize].lits[0] == false_lit {
                    self.clauses[ci as usize].lits.swap(0, 1);
                }
                let other = self.clauses[ci as usize].lits[0];
                if self.value(other) == 1 {
                    i += 1;
                    continue; // satisfied by the other watch
                }
                // Find a new literal to watch.
                let len = self.clauses[ci as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[ci as usize].lits[k];
                    if self.value(lk) != 0 {
                        self.clauses[ci as usize].lits.swap(1, k);
                        self.watches[lk.code()].push(ci);
                        ws.swap_remove(i);
                        continue 'clauses;
                    }
                }
                // Unit or conflicting.
                let first = other;
                if !self.enqueue(first, Some(ci)) {
                    self.watches[false_lit.code()] = ws;
                    return Some(ci);
                }
                i += 1;
            }
            self.watches[false_lit.code()] = ws;
        }
        None
    }

    // ----- difference-logic theory -----

    /// Activate the constraint carried by newly-true literal `l`, if it is
    /// a theory atom. Returns the literals of a negative cycle on
    /// infeasibility (the atom set is contradictory).
    fn theory_assign(&mut self, l: Lit) -> Option<Vec<Lit>> {
        let v = l.var().0 as usize;
        let (pos, neg) = self.atom[v]?;
        let e = if l.is_neg() { neg } else { pos };
        debug_assert!(!self.atom_active[v]);

        // Fast path: the feasible potential already satisfies the new
        // constraint `x_to - x_from <= w`, i.e. pi(to) <= pi(from) + w.
        let (u, w, wt) = (e.from as usize, e.to as usize, e.weight);
        if self.potential[w] <= self.potential[u] + wt {
            self.activate(v, e);
            return None;
        }

        // Repair the potential by relaxation from `to`. All other active
        // constraints are satisfied by `potential`, so any negative cycle
        // must pass through `e`; it reveals itself when the relaxation
        // wave reaches `from` and re-violates `e` (Cotton & Maler's
        // incremental check). `undo` records every touched potential so a
        // conflict can roll the repair back (an aborted wave may leave
        // constraints out of `e`'s cycle violated).
        let mut undo: Vec<(usize, i64)> = Vec::new();
        let mut parent: Vec<Option<u32>> = vec![None; self.potential.len()];
        undo.push((w, self.potential[w]));
        self.potential[w] = self.potential[u] + wt;
        let mut queue: VecDeque<usize> = VecDeque::new();
        queue.push_back(w);
        while let Some(x) = queue.pop_front() {
            if x == u && self.potential[w] > self.potential[u] + wt {
                // The wave lowered pi(from) enough to re-violate `e`:
                // negative cycle = parent chain from `from` back to `to`,
                // closed by `e`.
                let mut cycle = vec![e.lit];
                let mut n = u;
                while n != w {
                    let g = self.edges[parent[n].expect("relaxed nodes have parents") as usize];
                    cycle.push(g.lit);
                    n = g.from as usize;
                }
                for (node, old) in undo.into_iter().rev() {
                    self.potential[node] = old;
                }
                cycle.dedup();
                return Some(cycle);
            }
            for gi in 0..self.out[x].len() {
                let g = self.edges[self.out[x][gi] as usize];
                let y = g.to as usize;
                if self.potential[y] > self.potential[x] + g.weight {
                    undo.push((y, self.potential[y]));
                    self.potential[y] = self.potential[x] + g.weight;
                    parent[y] = Some(self.out[x][gi]);
                    queue.push_back(y);
                }
            }
        }
        self.activate(v, e);
        None
    }

    fn activate(&mut self, var: usize, e: Edge) {
        let id = u32::try_from(self.edges.len()).expect("edge count fits u32");
        self.edges.push(e);
        self.out[e.from as usize].push(id);
        self.atom_active[var] = true;
    }

    /// Deactivate `var`'s edge if it was activated. Edges deactivate in
    /// exact reverse activation order (the trail unwinds LIFO), so the
    /// active edge is the last entry of both `edges` and its `out` list.
    fn theory_unassign(&mut self, var: usize) {
        if !self.atom_active[var] {
            return;
        }
        self.atom_active[var] = false;
        let e = self.edges.pop().expect("active edge");
        let popped = self.out[e.from as usize].pop();
        debug_assert_eq!(popped, Some(u32::try_from(self.edges.len()).unwrap()));
        // `potential` stays: removing constraints cannot break feasibility.
    }

    // ----- conflict analysis -----

    fn bump(&mut self, v: BVar) {
        let a = &mut self.activity[v.0 as usize];
        *a += self.var_inc;
        if *a > 1e100 {
            for x in &mut self.activity {
                *x *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.assign.len()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut ci = conflict;
        let mut idx = self.trail.len();
        let cur = self.decision_level();

        loop {
            let reason_lits = self.clauses[ci as usize].lits.clone();
            for q in reason_lits {
                if p == Some(q) {
                    continue;
                }
                let v = q.var().0 as usize;
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump(q.var());
                    if self.level[v] >= cur {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk back to the most recent seen literal on the trail.
            loop {
                idx -= 1;
                if seen[self.trail[idx].var().0 as usize] {
                    break;
                }
            }
            let l = self.trail[idx];
            let v = l.var().0 as usize;
            seen[v] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(l);
                break;
            }
            ci = self.reason[v].expect("non-decision literals have reasons");
            p = Some(l);
        }

        let uip = !p.expect("first UIP exists");
        let mut lits = vec![uip];
        lits.extend(learnt);
        // Backjump level: the highest level among the non-UIP literals.
        let mut bt = 0;
        let mut at = 1;
        for (k, &l) in lits.iter().enumerate().skip(1) {
            let lv = self.level[l.var().0 as usize];
            if lv > bt {
                bt = lv;
                at = k;
            }
        }
        if lits.len() > 1 {
            lits.swap(1, at);
        }
        (lits, bt)
    }

    fn backtrack(&mut self, to_level: u32) {
        while self.decision_level() > to_level {
            let lim = self.trail_lim.pop().expect("level to pop");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail entry");
                let v = l.var().0 as usize;
                self.theory_unassign(v);
                self.assign[v] = UNASSIGNED;
                self.reason[v] = None;
            }
        }
        self.qhead = self.trail.len();
    }

    /// Deterministic decision: the unassigned variable with the highest
    /// activity (ties broken by lowest index), at its saved phase.
    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<usize> = None;
        for v in 0..self.assign.len() {
            if self.assign[v] == UNASSIGNED
                && best.is_none_or(|b| self.activity[v] > self.activity[b])
            {
                best = Some(v);
            }
        }
        best.map(|v| {
            let var = BVar(u32::try_from(v).expect("fits"));
            if self.phase[v] {
                Lit::pos(var)
            } else {
                Lit::neg(var)
            }
        })
    }

    /// Luby restart sequence: 1 1 2 1 1 2 4 ...
    fn luby(mut i: u64) -> u64 {
        loop {
            let mut k = 1u32;
            while (1u64 << k) - 1 < i + 1 {
                k += 1;
            }
            if (1u64 << k) - 1 == i + 1 {
                return 1 << (k - 1);
            }
            i -= (1 << (k - 1)) - 1;
        }
    }

    /// Solve the instance under `budget`.
    ///
    /// # Panics
    ///
    /// Panics if a produced model fails self-verification (a solver bug —
    /// never the caller's fault).
    pub fn solve(&mut self, budget: Budget) -> Outcome {
        self.stats = Stats::default();
        if self.root_unsat {
            return Outcome::Unsat;
        }
        let start = Instant::now();
        let mut restart_no = 0u64;
        let mut conflicts_left = 64 * Self::luby(restart_no);

        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    return Outcome::Unsat;
                }
                if self.stats.conflicts >= budget.max_conflicts
                    || budget.max_time.is_some_and(|t| start.elapsed() > t)
                {
                    return Outcome::Unknown;
                }
                let (lits, bt) = self.analyze(conflict);
                self.backtrack(bt);
                let asserting = lits[0];
                let reason = self.learn(lits);
                let ok = self.enqueue(asserting, reason);
                debug_assert!(ok, "asserting literal must be enqueueable");
                self.var_inc /= 0.95;
                if conflicts_left == 0 {
                    self.stats.restarts += 1;
                    restart_no += 1;
                    conflicts_left = 64 * Self::luby(restart_no);
                    self.backtrack(0);
                } else {
                    conflicts_left -= 1;
                }
            } else {
                match self.decide() {
                    None => {
                        let model = self.extract_model();
                        self.check_model(&model);
                        return Outcome::Sat(model);
                    }
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(l, None);
                        debug_assert!(ok, "decision variable was unassigned");
                    }
                }
            }
        }
    }

    fn extract_model(&self) -> Model {
        // The potential is a feasible solution of exactly the active
        // constraints: for `a - b <= c` (edge b -> a weight c) it holds
        // that pi(a) <= pi(b) + c. Anchor nothing; values are already
        // near zero because relaxation starts from zero.
        Model {
            bools: self.assign.iter().map(|&a| a == 1).collect(),
            times: self.potential.clone(),
        }
    }

    /// Self-check: every clause must contain a true literal and every
    /// assigned atom's constraint must hold on the difference values.
    fn check_model(&self, m: &Model) {
        for c in &self.clauses {
            assert!(
                c.lits.iter().any(|&l| m.lit(l)),
                "model check failed: clause {:?} unsatisfied",
                c.lits
            );
        }
        for (v, atom) in self.atom.iter().enumerate() {
            let Some((pos, neg)) = atom else { continue };
            let e = if m.bools[v] { pos } else { neg };
            assert!(
                m.times[e.to as usize] - m.times[e.from as usize] <= e.weight,
                "model check failed: atom b{v} ({} - {} <= {}) violated",
                e.to,
                e.from,
                e.weight
            );
        }
    }

    /// Number of boolean variables (atoms included).
    pub fn num_bools(&self) -> usize {
        self.assign.len()
    }

    /// Number of difference variables.
    pub fn num_tvars(&self) -> usize {
        self.potential.len()
    }

    /// Number of clauses currently in the database (learned included).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let a = s.new_bool();
        let b = s.new_bool();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        s.add_clause(&[Lit::neg(a)]);
        let Outcome::Sat(m) = s.solve(Budget::default()) else {
            panic!("expected sat");
        };
        assert!(!m.bool(a) && m.bool(b));

        let mut s = Solver::new();
        let a = s.new_bool();
        s.add_clause(&[Lit::pos(a)]);
        s.add_clause(&[Lit::neg(a)]);
        assert!(matches!(s.solve(Budget::default()), Outcome::Unsat));
    }

    #[test]
    fn difference_chain_feasible() {
        let mut s = Solver::new();
        let ts: Vec<TVar> = (0..5).map(|_| s.new_tvar()).collect();
        for w in ts.windows(2) {
            // successor at least 2 later: t[i] - t[i+1] <= -2
            s.assert_diff(w[0], w[1], -2);
        }
        let Outcome::Sat(m) = s.solve(Budget::default()) else {
            panic!("expected sat");
        };
        for w in ts.windows(2) {
            assert!(m.time(w[1]) >= m.time(w[0]) + 2);
        }
    }

    #[test]
    fn negative_cycle_is_unsat() {
        let mut s = Solver::new();
        let a = s.new_tvar();
        let b = s.new_tvar();
        s.assert_diff(a, b, -1);
        s.assert_diff(b, a, -1); // a < b and b < a
        assert!(matches!(s.solve(Budget::default()), Outcome::Unsat));
    }

    #[test]
    fn theory_conflict_drives_boolean_search() {
        // Two atoms that are individually fine but jointly cyclic; a
        // clause forces at least one, both being true is contradictory,
        // so the solver must find the one-of-each assignments.
        let mut s = Solver::new();
        let a = s.new_tvar();
        let b = s.new_tvar();
        let x = s.diff_leq(a, b, -3);
        let y = s.diff_leq(b, a, -3);
        s.add_clause(&[x, y]);
        let Outcome::Sat(m) = s.solve(Budget::default()) else {
            panic!("expected sat");
        };
        assert!(m.lit(x) ^ m.lit(y), "exactly one direction can hold");
    }

    #[test]
    fn all_different_sorts_a_permutation() {
        // 4 slots in [0, 3], pairwise distinct: a Latin-square-flavoured
        // instance where every clause is a disjunction of two atoms.
        let mut s = Solver::new();
        let zero = s.new_tvar();
        let ts: Vec<TVar> = (0..4).map(|_| s.new_tvar()).collect();
        for &t in &ts {
            s.assert_diff(t, zero, 3);
            s.assert_diff(zero, t, 0);
        }
        for i in 0..ts.len() {
            for j in i + 1..ts.len() {
                let lt = s.diff_leq(ts[i], ts[j], -1);
                let gt = s.diff_leq(ts[j], ts[i], -1);
                s.add_clause(&[lt, gt]);
            }
        }
        let Outcome::Sat(m) = s.solve(Budget::default()) else {
            panic!("expected sat");
        };
        let mut vals: Vec<i64> = ts.iter().map(|&t| m.time(t) - m.time(zero)).collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unknown_on_exhausted_budget() {
        // Pigeonhole 5 into 4: hard for resolution, guaranteed to blow a
        // 4-conflict budget.
        let mut s = Solver::new();
        let holes = 4;
        let pigeons = 5;
        let var = |s: &mut Solver, grid: &mut Vec<Vec<BVar>>, p: usize, h: usize| {
            while grid.len() <= p {
                grid.push(Vec::new());
            }
            while grid[p].len() <= h {
                let v = s.new_bool();
                grid[p].push(v);
            }
            grid[p][h]
        };
        let mut grid: Vec<Vec<BVar>> = Vec::new();
        for p in 0..pigeons {
            let c: Vec<Lit> = (0..holes)
                .map(|h| Lit::pos(var(&mut s, &mut grid, p, h)))
                .collect();
            s.add_clause(&c);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    let a = var(&mut s, &mut grid, p1, h);
                    let b = var(&mut s, &mut grid, p2, h);
                    s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
                }
            }
        }
        assert!(matches!(s.solve(Budget::conflicts(4)), Outcome::Unknown));
        // And with a real budget it is proven unsat.
        let mut s2 = Solver::new();
        let mut grid: Vec<Vec<BVar>> = Vec::new();
        for p in 0..pigeons {
            let c: Vec<Lit> = (0..holes)
                .map(|h| Lit::pos(var(&mut s2, &mut grid, p, h)))
                .collect();
            s2.add_clause(&c);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    let a = var(&mut s2, &mut grid, p1, h);
                    let b = var(&mut s2, &mut grid, p2, h);
                    s2.add_clause(&[Lit::neg(a), Lit::neg(b)]);
                }
            }
        }
        assert!(matches!(s2.solve(Budget::default()), Outcome::Unsat));
    }

    #[test]
    fn determinism_same_stats_twice() {
        let build = || {
            let mut s = Solver::new();
            let ts: Vec<TVar> = (0..6).map(|_| s.new_tvar()).collect();
            for i in 0..ts.len() {
                for j in i + 1..ts.len() {
                    let lt = s.diff_leq(ts[i], ts[j], -1);
                    let gt = s.diff_leq(ts[j], ts[i], -1);
                    s.add_clause(&[lt, gt]);
                }
            }
            let zero = ts[0];
            for &t in &ts[1..] {
                s.assert_diff(t, zero, 4);
                s.assert_diff(zero, t, 0);
            }
            s
        };
        let mut a = build();
        let mut b = build();
        let ra = a.solve(Budget::default());
        let rb = b.solve(Budget::default());
        assert_eq!(a.stats, b.stats);
        match (ra, rb) {
            (Outcome::Sat(ma), Outcome::Sat(mb)) => {
                assert_eq!(ma.bools, mb.bools);
                assert_eq!(ma.times, mb.times);
            }
            (Outcome::Unsat, Outcome::Unsat) | (Outcome::Unknown, Outcome::Unknown) => {}
            _ => panic!("verdicts differ between identical runs"),
        }
    }
}
