//! Chrome `trace_event` export of a simulated run.
//!
//! Converts the simulator's instruction trace ([`wm_sim::TraceEvent`])
//! and FIFO-depth timeline ([`wm_sim::DepthSample`]) into the JSON
//! format understood by `chrome://tracing` and [Perfetto]. Each unit
//! (IFU, IEU, FEU, VEU, SCU *n*) becomes a named track of 1-cycle
//! duration events; each tracked FIFO becomes a counter track showing
//! its occupancy over time. Timestamps are simulated cycles, reported
//! in the trace's microsecond field so one cycle renders as 1 µs.
//!
//! [Perfetto]: https://ui.perfetto.dev

use wm_sim::{DepthSample, TraceEvent};

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a run as a Chrome `trace_event` JSON document.
///
/// `events` come from [`wm_sim::WmMachine::trace`] (instruction-level
/// tracing) and `timeline` from [`wm_sim::WmMachine::timeline`]
/// (FIFO-depth change points). Either may be empty; the result is
/// always a valid trace.
#[must_use]
pub fn chrome_trace(events: &[TraceEvent], timeline: &[DepthSample]) -> String {
    // Stable unit → track-id mapping, in order of first appearance.
    let mut units: Vec<&'static str> = Vec::new();
    for ev in events {
        if !units.contains(&ev.unit) {
            units.push(ev.unit);
        }
    }
    let tid = |unit: &str| units.iter().position(|u| *u == unit).unwrap_or(0);

    let mut out = String::with_capacity(events.len() * 96 + timeline.len() * 64 + 256);
    out.push_str("{\"traceEvents\": [\n");
    let mut first = true;
    let mut push = |out: &mut String, line: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("  ");
        out.push_str(&line);
    };

    // Track names (metadata events) so the viewer labels each unit row.
    for (k, unit) in units.iter().enumerate() {
        push(
            &mut out,
            format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {k}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                escape(unit)
            ),
        );
    }

    // One 1-cycle duration event per executed instruction.
    for ev in events {
        push(
            &mut out,
            format!(
                "{{\"name\": \"{}\", \"cat\": \"instr\", \"ph\": \"X\", \"ts\": {}, \
                 \"dur\": 1, \"pid\": 0, \"tid\": {}}}",
                escape(&ev.text),
                ev.cycle,
                tid(ev.unit)
            ),
        );
    }

    // FIFO occupancy as counter tracks: one sample per change point.
    for s in timeline {
        push(
            &mut out,
            format!(
                "{{\"name\": \"{}\", \"ph\": \"C\", \"pid\": 0, \"ts\": {}, \
                 \"args\": {{\"depth\": {}}}}}",
                escape(s.fifo),
                s.cycle,
                s.depth
            ),
        );
    }

    out.push_str("\n], \"displayTimeUnit\": \"ns\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_is_valid() {
        let t = chrome_trace(&[], &[]);
        assert!(t.starts_with("{\"traceEvents\": ["));
        assert!(t.contains("\"displayTimeUnit\""));
    }

    #[test]
    fn events_and_counters_are_emitted() {
        let events = vec![
            TraceEvent {
                cycle: 3,
                unit: "IEU",
                text: "add r1, r2, r3".to_string(),
            },
            TraceEvent {
                cycle: 4,
                unit: "FEU",
                text: "fmul f0, f1, f2".to_string(),
            },
        ];
        let timeline = vec![DepthSample {
            cycle: 5,
            fifo: "ieu.in0",
            depth: 2,
        }];
        let t = chrome_trace(&events, &timeline);
        assert!(t.contains("\"add r1, r2, r3\""));
        assert!(t.contains("\"ph\": \"X\""));
        assert!(t.contains("\"ph\": \"C\""));
        assert!(t.contains("\"ieu.in0\""));
        // IEU appeared first so it owns tid 0 and FEU tid 1.
        assert!(t.contains("\"tid\": 0"));
        assert!(t.contains("\"tid\": 1"));
        // Metadata names both tracks.
        assert!(t.contains("\"thread_name\""));
    }

    #[test]
    fn instruction_text_is_json_escaped() {
        let events = vec![TraceEvent {
            cycle: 0,
            unit: "IFU",
            text: "jump \"label\"\n".to_string(),
        }];
        let t = chrome_trace(&events, &[]);
        assert!(t.contains("jump \\\"label\\\"\\n"));
    }
}
