//! Chrome `trace_event` export of a simulated run.
//!
//! Converts the simulator's instruction trace ([`wm_sim::TraceEvent`]),
//! FIFO-depth timeline ([`wm_sim::DepthSample`]) and fast-forwarded
//! stall spans ([`wm_sim::FfSpan`]) into the JSON format understood by
//! `chrome://tracing` and [Perfetto]. Each unit (IFU, IEU, FEU, VEU,
//! SCU *n*) becomes a named track of duration events; each tracked FIFO
//! becomes a counter track showing its occupancy over time. Timestamps
//! are simulated cycles, reported in the trace's microsecond field so
//! one cycle renders as 1 µs.
//!
//! Under the event-driven engine, spans the simulator fast-forwarded
//! over appear as one coalesced `stall:<reason>` (or `idle`) event per
//! stalled unit instead of thousands of per-cycle events, so a
//! latency-dominated trace stays small and readable.
//!
//! [Perfetto]: https://ui.perfetto.dev

use wm_sim::{DepthSample, FfSpan, Outcome, TraceEvent};

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The track label of a fast-forwarded outcome, or `None` for `Active`
/// (an active unit never fast-forwards, but be defensive).
fn outcome_label(o: Outcome) -> Option<String> {
    match o {
        Outcome::Active => None,
        Outcome::Idle => Some("idle".to_string()),
        Outcome::Stall(s) => Some(format!("stall:{}", s.name())),
    }
}

/// Render a run as a Chrome `trace_event` JSON document.
///
/// `events` come from [`wm_sim::WmMachine::trace`] (instruction-level
/// tracing), `timeline` from [`wm_sim::WmMachine::timeline`]
/// (FIFO-depth change points) and `spans` from
/// [`wm_sim::WmMachine::ff_spans`] (stall spans the event engine
/// fast-forwarded over). Any of them may be empty; the result is
/// always a valid trace.
#[must_use]
pub fn chrome_trace(events: &[TraceEvent], timeline: &[DepthSample], spans: &[FfSpan]) -> String {
    // Stable unit → track-id mapping, in order of first appearance.
    // Fast-forward spans cover every unit, so register their tracks
    // too (SCU track names are owned strings; instruction events only
    // ever carry static names).
    let mut units: Vec<String> = Vec::new();
    let intern = |name: &str, units: &mut Vec<String>| {
        if !units.iter().any(|u| u == name) {
            units.push(name.to_string());
        }
    };
    for ev in events {
        intern(ev.unit, &mut units);
    }
    if let Some(s) = spans.first() {
        for unit in ["IEU", "FEU", "VEU", "IFU"] {
            intern(unit, &mut units);
        }
        for i in 0..s.scus.len() {
            intern(&format!("SCU{i}"), &mut units);
        }
    }
    let tid = |unit: &str| units.iter().position(|u| u == unit).unwrap_or(0);

    let mut out = String::with_capacity(events.len() * 96 + timeline.len() * 64 + 256);
    out.push_str("{\"traceEvents\": [\n");
    let mut first = true;
    let mut push = |out: &mut String, line: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("  ");
        out.push_str(&line);
    };

    // Track names (metadata events) so the viewer labels each unit row.
    for (k, unit) in units.iter().enumerate() {
        push(
            &mut out,
            format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {k}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                escape(unit)
            ),
        );
    }

    // One 1-cycle duration event per executed instruction.
    for ev in events {
        push(
            &mut out,
            format!(
                "{{\"name\": \"{}\", \"cat\": \"instr\", \"ph\": \"X\", \"ts\": {}, \
                 \"dur\": 1, \"pid\": 0, \"tid\": {}}}",
                escape(&ev.text),
                ev.cycle,
                tid(ev.unit)
            ),
        );
    }

    // Coalesced stall spans: one duration event per unit per
    // fast-forwarded span, covering all skipped cycles at once.
    for span in spans {
        let mut emit = |out: &mut String, unit: &str, o: Outcome| {
            if let Some(label) = outcome_label(o) {
                push(
                    out,
                    format!(
                        "{{\"name\": \"{}\", \"cat\": \"stall\", \"ph\": \"X\", \
                         \"ts\": {}, \"dur\": {}, \"pid\": 0, \"tid\": {}}}",
                        label,
                        span.start,
                        span.len,
                        tid(unit)
                    ),
                );
            }
        };
        emit(&mut out, "IEU", span.ieu);
        emit(&mut out, "FEU", span.feu);
        emit(&mut out, "VEU", span.veu);
        emit(&mut out, "IFU", span.ifu);
        for (i, &o) in span.scus.iter().enumerate() {
            emit(&mut out, &format!("SCU{i}"), o);
        }
    }

    // FIFO occupancy as counter tracks: one sample per change point.
    for s in timeline {
        push(
            &mut out,
            format!(
                "{{\"name\": \"{}\", \"ph\": \"C\", \"pid\": 0, \"ts\": {}, \
                 \"args\": {{\"depth\": {}}}}}",
                escape(s.fifo),
                s.cycle,
                s.depth
            ),
        );
    }

    out.push_str("\n], \"displayTimeUnit\": \"ns\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_sim::Stall;

    #[test]
    fn empty_trace_is_valid() {
        let t = chrome_trace(&[], &[], &[]);
        assert!(t.starts_with("{\"traceEvents\": ["));
        assert!(t.contains("\"displayTimeUnit\""));
    }

    #[test]
    fn events_and_counters_are_emitted() {
        let events = vec![
            TraceEvent {
                cycle: 3,
                unit: "IEU",
                text: "add r1, r2, r3".to_string(),
            },
            TraceEvent {
                cycle: 4,
                unit: "FEU",
                text: "fmul f0, f1, f2".to_string(),
            },
        ];
        let timeline = vec![DepthSample {
            cycle: 5,
            fifo: "ieu.in0",
            depth: 2,
        }];
        let t = chrome_trace(&events, &timeline, &[]);
        assert!(t.contains("\"add r1, r2, r3\""));
        assert!(t.contains("\"ph\": \"X\""));
        assert!(t.contains("\"ph\": \"C\""));
        assert!(t.contains("\"ieu.in0\""));
        // IEU appeared first so it owns tid 0 and FEU tid 1.
        assert!(t.contains("\"tid\": 0"));
        assert!(t.contains("\"tid\": 1"));
        // Metadata names both tracks.
        assert!(t.contains("\"thread_name\""));
    }

    #[test]
    fn instruction_text_is_json_escaped() {
        let events = vec![TraceEvent {
            cycle: 0,
            unit: "IFU",
            text: "jump \"label\"\n".to_string(),
        }];
        let t = chrome_trace(&events, &[], &[]);
        assert!(t.contains("jump \\\"label\\\"\\n"));
    }

    #[test]
    fn fast_forward_spans_are_coalesced() {
        let spans = vec![FfSpan {
            start: 100,
            len: 23,
            ieu: Outcome::Stall(Stall::FifoEmpty),
            feu: Outcome::Idle,
            veu: Outcome::Idle,
            ifu: Outcome::Stall(Stall::IqFull),
            scus: vec![Outcome::Stall(Stall::PortBusy), Outcome::Idle],
        }];
        let t = chrome_trace(&[], &[], &spans);
        // One event per unit with the full span duration, not 23 events.
        assert!(t.contains("\"stall:fifo-empty\""));
        assert!(t.contains("\"stall:iq-full\""));
        assert!(t.contains("\"stall:port-busy\""));
        assert!(t.contains("\"idle\""));
        assert!(t.contains("\"ts\": 100, \"dur\": 23"));
        assert_eq!(t.matches("\"cat\": \"stall\"").count(), 6);
        // All unit tracks get registered and named.
        for name in ["IEU", "FEU", "VEU", "IFU", "SCU0", "SCU1"] {
            assert!(t.contains(&format!("\"name\": \"{name}\"")), "{name}");
        }
    }
}
