//! One shared compile-and-simulate code path.
//!
//! The `wmcc` CLI and the `wmd` daemon both execute the same kind of
//! job — compile mini-C source with some optimizer options, build a WM
//! machine with some configuration, run an entry function — and they must
//! agree *exactly*: a daemon cache hit has to be bit-identical to what
//! `wmcc` would print for the same inputs. [`JobSpec`] is that agreement
//! made code: both front ends construct one and drive it, so there is a
//! single place where the pipeline order, the cancellation wiring and the
//! cache-key material are defined.

use std::time::Duration;

use wm_sim::{CancelToken, SimError};

use crate::{Compiled, Compiler, Error, OptOptions, RunResult, WmConfig, WmMachine};

/// Everything that determines a WM compile-and-simulate job's result:
/// source text, optimizer options, machine configuration, entry point and
/// arguments. `Eq` on the [`JobSpec::cache_key_material`] rendering is
/// the daemon's definition of "the same job".
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Mini-C source text.
    pub source: String,
    /// Optimizer options (opt level, aliasing model, streaming flags).
    pub opts: OptOptions,
    /// Simulated-machine configuration (engine, memory model, fault
    /// plan, capacities).
    pub config: WmConfig,
    /// Entry function name.
    pub entry: String,
    /// Integer arguments for the entry function.
    pub args: Vec<i64>,
    /// Host worker threads for a tiled run's parallel phase (0 = one per
    /// available CPU). Excluded from the cache key on purpose: tiled
    /// results are bit-identical for any thread count, so two jobs that
    /// differ only here *should* share a cache entry.
    pub tile_threads: usize,
}

/// A failure from either stage of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The source did not compile (or failed register allocation).
    Compile(Error),
    /// The simulation terminated abnormally.
    Sim(SimError),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Compile(e) => write!(f, "compile error: {e}"),
            JobError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Compile(e) => Some(e),
            JobError::Sim(e) => Some(e),
        }
    }
}

impl From<Error> for JobError {
    fn from(e: Error) -> JobError {
        JobError::Compile(e)
    }
}

impl From<SimError> for JobError {
    fn from(e: SimError) -> JobError {
        JobError::Sim(e)
    }
}

impl JobSpec {
    /// A job running `main()` of `source` with full optimization on the
    /// default machine.
    pub fn new(source: impl Into<String>) -> JobSpec {
        JobSpec {
            source: source.into(),
            opts: OptOptions::all(),
            config: WmConfig::default(),
            entry: "main".to_string(),
            args: Vec::new(),
            tile_threads: 0,
        }
    }

    /// Compile the source for the WM.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] for source errors or allocation failures.
    pub fn compile(&self) -> Result<Compiled, Error> {
        Compiler::new()
            .options(self.opts.clone())
            .compile(&self.source)
    }

    /// Build the simulated machine, positioned at the entry function,
    /// with the cancellation token (if any) attached. The caller may
    /// still enable tracing before running — `wmcc` does.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadProgram`] for unexecutable modules.
    pub fn machine<'m>(
        &self,
        compiled: &'m Compiled,
        cancel: Option<&CancelToken>,
    ) -> Result<WmMachine<'m>, SimError> {
        let mut m = WmMachine::new(&compiled.module, &self.config)?;
        if let Some(t) = cancel {
            m.set_cancel_token(t.clone());
        }
        m.start(&self.entry, &self.args)?;
        Ok(m)
    }

    /// Simulate an already-compiled module to completion.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults, deadlocks, timeouts and
    /// cancellations.
    pub fn simulate(
        &self,
        compiled: &Compiled,
        cancel: Option<&CancelToken>,
    ) -> Result<RunResult, SimError> {
        if self.config.tiles > 1 {
            let mut tm =
                wm_sim::TiledMachine::new(&compiled.module, &self.config, self.tile_threads)?;
            if let Some(t) = cancel {
                tm.set_cancel_token(t.clone());
            }
            tm.start(&self.entry, &self.args)?;
            return Ok(tm.run_to_completion()?.into_primary());
        }
        self.machine(compiled, cancel)?.run_to_completion()
    }

    /// The whole job: compile, then simulate.
    ///
    /// # Errors
    ///
    /// Returns [`JobError`] for failures in either stage.
    pub fn run(&self, cancel: Option<&CancelToken>) -> Result<RunResult, JobError> {
        let compiled = self.compile()?;
        Ok(self.simulate(&compiled, cancel)?)
    }

    /// The canonical byte string a content-addressed cache hashes to key
    /// this job: a schema tag plus every input that can influence the
    /// result or its timing. The `Debug` renderings of the option and
    /// configuration structs are used deliberately — any new field shows
    /// up in them automatically, so extending the configuration can never
    /// silently alias two distinct jobs to one key. (Keys are therefore
    /// only stable within one version of this crate; a cache is a cache,
    /// not an archive.)
    pub fn cache_key_material(&self) -> String {
        format!(
            "wmd-job-v1\x00{}\x00{:?}\x00{:?}\x00{}\x00{:?}",
            self.source, self.opts, self.config, self.entry, self.args
        )
    }
}

/// A token that cancels itself once `deadline` elapses, enforced by a
/// detached watchdog thread. This is how `wmcc --deadline-ms` bounds a
/// run's *wall-clock* time — as opposed to `max_cycles`, which bounds
/// simulated time.
pub fn deadline_token(deadline: Duration) -> CancelToken {
    let token = CancelToken::new();
    let armed = token.clone();
    std::thread::spawn(move || {
        std::thread::sleep(deadline);
        armed.cancel();
    });
    token
}

#[cfg(test)]
mod tests {
    use super::*;

    // Far too much work to finish within the tests' deadlines, but still
    // finite (so a missed cancellation fails the test loudly via the
    // cycle-limit timeout rather than hanging the suite).
    const LOOP_FOREVER: &str =
        "int main() { int i; int s; s = 0; for (i = 0; i < 1000000000; i++) s += i; return s; }";

    #[test]
    fn runs_a_job_end_to_end() {
        let r = JobSpec::new("int main() { return 6 * 7; }")
            .run(None)
            .unwrap();
        assert_eq!(r.ret_int, 42);
    }

    #[test]
    fn compile_errors_are_job_errors() {
        let e = JobSpec::new("int main() { return x; }")
            .run(None)
            .unwrap_err();
        assert!(matches!(e, JobError::Compile(_)));
        assert!(e.to_string().contains("unknown variable"));
    }

    #[test]
    fn cancellation_stops_an_unbounded_run() {
        let spec = JobSpec::new(LOOP_FOREVER);
        let token = CancelToken::new();
        token.cancel(); // pre-cancelled: stops at the first step boundary
        let e = spec.run(Some(&token)).unwrap_err();
        assert!(matches!(e, JobError::Sim(SimError::Cancelled { .. })));
    }

    #[test]
    fn deadline_token_fires() {
        let spec = JobSpec::new(LOOP_FOREVER);
        let token = deadline_token(Duration::from_millis(30));
        let e = spec.run(Some(&token)).unwrap_err();
        let JobError::Sim(sim) = &e else {
            panic!("expected a simulation error, got {e}");
        };
        assert_eq!(sim.kind_name(), "cancelled");
        assert!(sim.state().is_some(), "cancellation carries a state dump");
    }

    #[test]
    fn cache_key_material_separates_distinct_jobs() {
        let a = JobSpec::new("int main() { return 1; }");
        let mut b = a.clone();
        assert_eq!(a.cache_key_material(), b.cache_key_material());
        b.config = b.config.with_mem_latency(24);
        assert_ne!(a.cache_key_material(), b.cache_key_material());
        let mut c = a.clone();
        c.args = vec![3];
        assert_ne!(a.cache_key_material(), c.cache_key_material());
    }

    #[test]
    fn uncancelled_runs_are_bit_identical_to_tokenless_runs() {
        let spec = JobSpec::new(
            "int a[64]; int main() { int i; int s; s = 0;
             for (i = 0; i < 64; i++) a[i] = i;
             for (i = 0; i < 64; i++) s += a[i]; return s; }",
        );
        let plain = spec.run(None).unwrap();
        let token = CancelToken::new();
        let tokened = spec.run(Some(&token)).unwrap();
        assert_eq!(plain.cycles, tokened.cycles);
        assert_eq!(plain.perf, tokened.perf);
        assert_eq!(plain.ret_int, tokened.ret_int);
    }
}
