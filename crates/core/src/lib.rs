//! # wm-stream — streaming access/execute compilation and simulation
//!
//! A from-scratch reproduction of *Code Generation for Streaming: an
//! Access/Execute Mechanism* (Benitez & Davidson, ASPLOS 1991): an
//! optimizing mini-C compiler whose headline passes detect loop-carried
//! **recurrences** and convert regular loop memory references into WM
//! **stream instructions**, plus a cycle-level simulator of the WM
//! decoupled access/execute architecture and timing models of the scalar
//! machines of the paper's Table I.
//!
//! The sub-crates are re-exported in full ([`ir`], [`frontend`], [`opt`],
//! [`target`], [`sim`], [`machines`], [`workloads`]); this crate adds the
//! [`Compiler`] pipeline that strings them together.
//!
//! ```
//! use wm_stream::Compiler;
//!
//! let compiled = Compiler::new()
//!     .compile("int main() { return 6 * 7; }")
//!     .expect("valid mini-C");
//! let run = compiled.run_wm("main", &[]).expect("executes");
//! assert_eq!(run.ret_int, 42);
//! ```

pub mod driver;
pub mod json;
pub mod trace;

pub use wm_frontend as frontend;
pub use wm_ir as ir;
pub use wm_machines as machines;
pub use wm_opt as opt;
pub use wm_sim as sim;
pub use wm_target as target;
pub use wm_workloads as workloads;

pub use driver::{deadline_token, JobError, JobSpec};
pub use wm_machines::{MachineModel, ScalarMachine, ScalarResult};
pub use wm_opt::{OptOptions, OptStats};
pub use wm_sim::{MemModel, RunResult, WmConfig, WmMachine};
pub use wm_workloads::Workload;

use wm_ir::Module;

/// Which machine the pipeline generates code for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Target {
    /// The WM access/execute architecture (loads through FIFOs, streams).
    #[default]
    Wm,
    /// A generic scalar load/store machine (Table I's comparison targets).
    Scalar,
}

/// A compilation failure from any pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Lexical, syntactic or semantic error in the source.
    Frontend(wm_frontend::CompileError),
    /// Register allocation failure.
    Alloc(wm_target::AllocError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Frontend(e) => write!(f, "{e}"),
            Error::Alloc(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Frontend(e) => Some(e),
            Error::Alloc(e) => Some(e),
        }
    }
}

impl From<wm_frontend::CompileError> for Error {
    fn from(e: wm_frontend::CompileError) -> Error {
        Error::Frontend(e)
    }
}

impl From<wm_target::AllocError> for Error {
    fn from(e: wm_target::AllocError) -> Error {
        Error::Alloc(e)
    }
}

/// The compilation pipeline: front end → optimizer → target expansion →
/// target optimizer → register allocation.
///
/// Mirrors the paper's structure: "the front end generates naive but
/// correct code for a simple abstract machine", "all optimizations are
/// performed on object code (RTLs)", and the same optimizer retargets to
/// the WM or to scalar machines.
#[derive(Debug, Clone, Default)]
pub struct Compiler {
    options: OptOptions,
    target: Target,
}

impl Compiler {
    /// A compiler for the WM with every optimization enabled.
    pub fn new() -> Compiler {
        Compiler::default()
    }

    /// Use the given optimizer options.
    pub fn options(mut self, options: OptOptions) -> Compiler {
        self.options = options;
        self
    }

    /// Generate code for `target`.
    pub fn target(mut self, target: Target) -> Compiler {
        self.target = target;
        self
    }

    /// The configured optimizer options.
    pub fn options_ref(&self) -> &OptOptions {
        &self.options
    }

    /// Compile mini-C `source` down to allocated machine code.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] for source errors or allocation failures.
    pub fn compile(&self, source: &str) -> Result<Compiled, Error> {
        self.compile_inner(source, true)
    }

    /// Compile, stopping *before* register allocation — useful for
    /// inspecting optimizer output with virtual registers intact.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Frontend`] for source errors.
    pub fn compile_unallocated(&self, source: &str) -> Result<Compiled, Error> {
        self.compile_inner(source, false)
    }

    fn compile_inner(&self, source: &str, allocate: bool) -> Result<Compiled, Error> {
        let mut module = wm_frontend::compile(source)?;
        // Global extents feed the streaming pass's over-fetch analysis
        // (computed up front: the per-function loop borrows mutably).
        let extents = wm_opt::GlobalExtents::of_module(&module);
        // Stage 1: generic (pre-expansion) optimization of every
        // function — the recurrence pass in particular must run before
        // partitioning so a converted recurrence is a carried *scalar*
        // the partitioner can chain tile-to-tile.
        let mut stats = Vec::new();
        for f in module.functions.iter_mut() {
            let s = wm_opt::optimize_generic(f, &self.options);
            stats.push((f.name.clone(), s));
        }
        // Stage 2: the module-level tile-partitioning pass, which may
        // add `__tileK_main` clones that stage 3 then lowers like any
        // other function.
        let tiling =
            if self.target == Target::Wm && self.options.partition && self.options.tiles > 1 {
                wm_opt::partition_tiles(&mut module, "main", self.options.tiles)
            } else {
                None
            };
        // Stage 3: per-function target expansion, target optimization
        // and register allocation.
        for f in module.functions.iter_mut() {
            match self.target {
                Target::Wm => {
                    wm_target::expand_wm(f);
                    let s2 = wm_opt::optimize_wm_with(f, &self.options, &extents);
                    if let Some((_, s)) = stats.iter_mut().find(|(n, _)| *n == f.name) {
                        s.streaming = s2.streaming;
                        s.vector = s2.vector;
                        s.modulo = s2.modulo;
                        s.iterations += s2.iterations;
                    } else {
                        stats.push((f.name.clone(), s2));
                    }
                    if allocate {
                        wm_target::allocate_registers(f, wm_target::TargetKind::Wm)?;
                    }
                }
                Target::Scalar => {
                    if self.options.strength_reduction {
                        wm_target::strength_reduce(f, self.options.alias);
                        wm_target::select_auto_increment(f);
                    }
                    if allocate {
                        wm_target::allocate_registers(f, wm_target::TargetKind::Scalar)?;
                    }
                }
            }
        }
        Ok(Compiled {
            module,
            target: self.target,
            stats,
            tiling,
        })
    }
}

/// A compiled module plus per-function optimizer reports.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The compiled module.
    pub module: Module,
    /// The target it was compiled for.
    pub target: Target,
    /// What the tile-partitioning pass did, when it ran and succeeded.
    pub tiling: Option<wm_opt::TileReport>,
    /// Per-function optimizer statistics `(name, stats)`.
    pub stats: Vec<(String, OptStats)>,
}

impl Compiled {
    /// Run on the WM cycle simulator with the default configuration.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults/deadlocks/timeouts.
    pub fn run_wm(&self, entry: &str, args: &[i64]) -> Result<RunResult, wm_sim::SimError> {
        self.run_wm_config(entry, args, &WmConfig::default())
    }

    /// Run on the WM cycle simulator with an explicit configuration.
    ///
    /// A config with `tiles > 1` runs on a [`wm_sim::TiledMachine`]
    /// (one host thread per available CPU) and reports tile 0's
    /// architectural results with the global cycle count; `tiles == 1`
    /// takes the plain single-core path, byte for byte.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults/deadlocks/timeouts.
    pub fn run_wm_config(
        &self,
        entry: &str,
        args: &[i64],
        config: &WmConfig,
    ) -> Result<RunResult, wm_sim::SimError> {
        if config.tiles > 1 {
            return wm_sim::TiledMachine::run(&self.module, entry, args, config, 0)
                .map(wm_sim::TiledRunResult::into_primary);
        }
        WmMachine::run(&self.module, entry, args, config)
    }

    /// Run on a scalar machine model.
    ///
    /// # Errors
    ///
    /// Propagates interpreter faults.
    pub fn run_scalar(
        &self,
        entry: &str,
        args: &[i64],
        model: &MachineModel,
    ) -> Result<ScalarResult, wm_machines::ScalarError> {
        ScalarMachine::run(&self.module, entry, args, model)
    }

    /// Paper-style listing of one function.
    pub fn listing(&self, name: &str) -> Option<String> {
        self.module
            .function_named(name)
            .map(|f| f.display(Some(&self.module)).to_string())
    }

    /// The optimizer report for one function.
    pub fn stats_for(&self, name: &str) -> Option<&OptStats> {
        self.stats.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wm_pipeline_end_to_end() {
        let c = Compiler::new()
            .compile(
                "int main() { int i; int s; s = 0; for (i = 0; i < 9; i++) s += i; return s; }",
            )
            .unwrap();
        assert_eq!(c.run_wm("main", &[]).unwrap().ret_int, 36);
    }

    #[test]
    fn scalar_pipeline_end_to_end() {
        let c = Compiler::new()
            .target(Target::Scalar)
            .compile("int main() { return 5 * 5; }")
            .unwrap();
        let r = c
            .run_scalar("main", &[], &MachineModel::vax_8600())
            .unwrap();
        assert_eq!(r.ret_int, 25);
    }

    #[test]
    fn errors_are_propagated() {
        let err = Compiler::new()
            .compile("int main() { return x; }")
            .unwrap_err();
        assert!(matches!(err, Error::Frontend(_)));
        assert!(err.to_string().contains("unknown variable"));
    }

    #[test]
    fn listings_are_available() {
        let c = Compiler::new()
            .compile("double f(double a) { return a * 2.0; }")
            .unwrap();
        let l = c.listing("f").unwrap();
        assert!(l.contains("_f:"));
        assert!(c.listing("missing").is_none());
    }

    #[test]
    fn oob_scalar_store_faults_precisely_at_full_opt() {
        // u[7] lands in the guard red-zone after int u[4]; the fault names
        // the unit, the address and the instruction, and carries a
        // machine-state dump — under the default and an injected config
        let c = Compiler::new()
            .compile("int u[4]; int main() { u[7] = 5; return 0; }")
            .unwrap();
        let configs = [
            WmConfig::default(),
            WmConfig::default()
                .with_fault_plan(wm_sim::FaultPlan::parse("jitter:3:7,delay:1:20").unwrap()),
        ];
        for cfg in configs {
            let err = c.run_wm_config("main", &[], &cfg).unwrap_err();
            let fault = err.fault().unwrap_or_else(|| panic!("fault, got {err}"));
            assert_eq!(fault.unit, wm_sim::FaultUnit::Ieu);
            assert_eq!(fault.addr, Some(wm_sim::DATA_BASE + 28));
            assert!(fault.inst.is_some(), "instruction attributed");
            assert!(fault.detail.contains("u"), "global named: {}", fault.detail);
            let state = err.state().expect("machine-state dump");
            assert!(state.to_string().contains("machine state at cycle"));
        }
    }

    const SENTINEL_SCAN: &str = r"
        int a[16];
        int main() {
            int i;
            for (i = 0; i < 16; i++) a[i] = 1;
            a[15] = 8;
            i = 0;
            while (a[i] != 8) i = i + 1;
            return i;
        }";

    #[test]
    fn sentinel_scan_over_exact_array_runs_at_full_opt() {
        // The sentinel sits in the last element, so a streamed scan
        // prefetches past the array. Default full opt degrades the scan to
        // scalar; --speculative-streams keeps the stream and relies on the
        // machine's poison semantics. Both must return the right answer —
        // never a spurious fault.
        let c = Compiler::new().compile(SENTINEL_SCAN).unwrap();
        assert_eq!(
            c.run_wm("main", &[]).expect("degraded scan runs").ret_int,
            15
        );
        let s = c.stats_for("main").unwrap();
        assert!(s.streaming.overfetch_degraded >= 1, "{:?}", s.streaming);

        let spec = Compiler::new()
            .options(OptOptions::all().with_speculative_streams())
            .compile(SENTINEL_SCAN)
            .unwrap();
        assert_eq!(
            spec.run_wm("main", &[])
                .expect("poisoned scan runs")
                .ret_int,
            15
        );
        let s = spec.stats_for("main").unwrap();
        assert!(s.streaming.overfetch_speculated >= 1, "{:?}", s.streaming);
    }

    #[test]
    fn stats_report_streaming() {
        let c = Compiler::new()
            .compile(
                r"
                double a[100]; double b[100];
                int main() {
                    int i;
                    for (i = 0; i < 100; i++) a[i] = 1.0;
                    for (i = 0; i < 100; i++) b[i] = a[i] * 2.0;
                    return 0;
                }",
            )
            .unwrap();
        let s = c.stats_for("main").unwrap();
        assert!(s.streaming.streams_in >= 1);
        assert!(s.streaming.streams_out >= 1);
    }
}
