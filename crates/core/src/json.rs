//! A minimal hand-rolled JSON parser and string escaper.
//!
//! The workspace deliberately carries no external dependencies, so
//! nothing here can use `serde`: the `perf` benchmark runner reads
//! `bench/baseline.json` and the counter documents that
//! `wmcc --stats-json` and [`Stats::to_json`](crate::sim::Stats::to_json)
//! emit, and the `wmd` daemon parses its newline-delimited JSON wire
//! protocol, all through this module. The recursive-descent parser
//! covers the JSON those writers produce (objects, arrays, strings with
//! basic escapes, integers and floats, booleans, null) and is the
//! round-trip partner the stats tests exercise.

use std::collections::BTreeMap;

pub use wm_sim::json_escape as escape;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; JSON does not distinguish integers from floats.
    Num(f64),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keys are sorted (`BTreeMap`), which the writers never
    /// rely on and which keeps comparisons deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member of an object by key, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `i64`, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a JSON document.
///
/// # Errors
///
/// Returns a human-readable message with a byte offset on malformed
/// input or trailing garbage.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(m));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(v));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged since input is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8")?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5").unwrap().as_f64(), Some(-1.5));
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("\"a\\nb\"").unwrap().as_str(), Some("a\nb"));
    }

    #[test]
    fn parses_nested_structure() {
        let v = parse(r#"{"a": [1, 2, {"b": "c"}], "d": {}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d").unwrap(), &Value::Obj(BTreeMap::new()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_passthrough_and_escapes() {
        assert_eq!(parse("\"héllo\"").unwrap().as_str(), Some("héllo"));
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }
}
