//! `wmcc` — command-line driver for the WM streaming compiler.
//!
//! ```text
//! wmcc prog.c                         compile for the WM, run main, print cycles
//! wmcc prog.c --emit                  print the optimized listing instead of running
//! wmcc prog.c --opt modulo            optimization level (see --help for the full set)
//! wmcc prog.c --noalias               assume distinct pointer bases are disjoint
//! wmcc prog.c --target scalar --machine vax8600
//! wmcc prog.c --mem-latency 24 --mem-ports 1
//! wmcc prog.c --mem cache:size=16384,miss=32
//! wmcc prog.c --mem banked:banks=4,busy=8 --stats
//! wmcc prog.c --engine cycle          step every cycle instead of fast-forwarding
//! wmcc prog.c --engine compiled       run the pre-decoded threaded-dispatch tables
//! wmcc prog.c --entry kernel --args 100,7
//! wmcc prog.c --inject drop:3,jitter:42:5
//! wmcc prog.c --speculative-streams
//! wmcc prog.c --tiles 4 --mem banked     partition across 4 cores
//! ```

use std::process::ExitCode;
use std::time::Duration;

use wm_stream::driver::{deadline_token, JobSpec};
use wm_stream::sim::{Engine, FaultPlan, SimError};
use wm_stream::{Compiler, MachineModel, MemModel, OptOptions, Target, WmConfig};

struct Options {
    file: String,
    target: Target,
    machine: MachineModel,
    opts: OptOptions,
    emit: bool,
    entry: String,
    args: Vec<i64>,
    config: WmConfig,
    stats: bool,
    stats_json: Option<String>,
    trace_head: usize,
    trace_chrome: Option<String>,
    deadline_ms: Option<u64>,
    error_json: Option<String>,
    tile_threads: usize,
}

const USAGE: &str = "usage: wmcc FILE.c [--target wm|scalar] [--machine sun3|hp345|vax8600|m88100]
               [--opt LEVEL] [--noalias] [--vectorize]
               [--speculative-streams] [--emit] [--stats] [--stats-json FILE]
               [--trace N | --trace chrome:FILE]
               [--entry NAME] [--args N,N,...]
               [--mem-latency N] [--mem-ports N] [--fifo N] [--mem MODEL]
               [--inject SPEC]
               [--squash-penalty N] [--engine cycle|event|compiled]
               [--tiles N] [--tile-threads M] [--no-partition]
               [--deadline-ms N] [--error-json FILE]

  --opt LEVEL            optimization level (default full). The complete
                         set, documented only here:
                           none        the front end's naive code unchanged
                           classical   classical phases only (no recurrence
                                       detection, no streaming)
                           recurrence  classical + the paper's recurrence
                                       detection and optimization
                           full        recurrence + streaming + dual-issue
                                       combining (the default)
                           modulo      full + solver-based optimal software
                                       pipelining of streamed inner loops
                                       (achieved II and MII appear under
                                       --stats; falls back to the greedy
                                       schedule loop-by-loop on UNSAT or
                                       solver-budget exhaustion, so it is
                                       never slower)
  --stats                print per-unit performance counters (instructions
                         retired, active/idle/stall cycles with stall-reason
                         attribution, FIFO occupancy, memory-port usage) on
                         stderr after the run; with --opt modulo, also one
                         line per candidate loop with its MII, the greedy
                         interval and the achieved II
  --stats-json FILE      write the same counters as JSON to FILE ('-' for
                         stdout)
  --trace N              print the first N executed instructions on stderr
  --trace chrome:FILE    write a Chrome trace_event timeline of unit
                         activity and FIFO depth to FILE (open in
                         chrome://tracing or ui.perfetto.dev)
  --speculative-streams  keep streams that may fetch past their array,
                         relying on the WM's deferred (poison) faults.
                         Extends to indirect streams: a gather whose
                         index values cannot be bounded at compile time
                         fetches speculatively and poisons out-of-range
                         entries, which fault only if the program
                         actually consumes them; control-speculative
                         streams hoisted past a branch are squashed
                         (in-flight entries killed, --squash-penalty
                         recovery cycles charged) when the branch
                         resolves against them, never changing
                         architectural results
  --squash-penalty N     recovery cycles charged when a misspeculated
                         stream is squashed (default 0); shows up in
                         --stats as SpecSquash stall cycles
  --engine NAME          simulation engine (default event): `event` fast-
                         forwards over spans where every unit is stalled or
                         idle, `cycle` steps every unit every cycle, and
                         `compiled` executes pre-decoded threaded-dispatch
                         tables (the fastest); all three produce
                         bit-identical cycle counts and statistics
  --mem MODEL            memory-system model (default flat). MODEL is
                         flat | cache[:k=v,...] | banked[:k=v,...]:
                           flat     every access takes --mem-latency cycles
                           cache    L1 data cache + per-SCU stream buffers
                                    over a fixed-latency backing store; keys
                                    size, assoc, line, hit, miss, mshrs,
                                    sbufs, depth, transfer
                           banked   as cache, backed by banked DRAM with
                                    open-row timing; adds banks, row,
                                    rowhit, rowmiss, busy
                         Scalar loads/stores go through the L1; stream
                         traffic bypasses it via the stream buffers, so
                         streamed code tolerates miss latency (the paper's
                         access/execute decoupling). Timing-only: results
                         never change, --stats gains a memory-hierarchy
                         section
  --fifo N               architectural data-FIFO capacity in entries
                         (default 8, minimum 1). Unlike --mem/--mem-latency
                         this is a hardware parameter, not a timing knob:
                         the compiler schedules against the default depth,
                         so code that completes always computes the same
                         results, but a schedule that needs more run-ahead
                         than a shallower FIFO can hold is reported as a
                         deadlock (exit 3) rather than silently throttled.
                         Sweeping --fifo shows where each schedule becomes
                         capacity-bound (see EXPERIMENTS.md)
  --tiles N              instantiate N WM cores (1..=8, default 1) coupled
                         by point-to-point FIFO channels, and let the
                         compiler partition the entry function's hottest
                         qualifying loop across them (slices written back
                         to tile 0 over channel streams). A loop that
                         cannot be proven partitionable runs on tile 0
                         alone — same result, no speedup. Cycle counts and
                         statistics are bit-identical for any host thread
                         count and all three engines
  --tile-threads M       host worker threads stepping the tiles between
                         synchronization epochs (default: one per
                         available CPU). Affects wall-clock time only,
                         never the simulated results
  --no-partition         keep --tiles N cores but skip the partitioning
                         pass (the extra tiles idle; for A/B comparisons)
  --inject SPEC          deterministic fault injection; SPEC is a comma-
                         separated list of delay:N:C (delay memory request
                         #N's response by C cycles), drop:N (drop request
                         #N's response), scu:I:C (disable SCU I at cycle C)
                         and jitter:SEED:MAX (seeded latency jitter)
  --deadline-ms N        cancel the simulation after N milliseconds of
                         wall-clock time (cooperative; distinct from the
                         simulated-cycle limit, which reports a timeout)
  --error-json FILE      on simulation failure, additionally write the
                         error in its stable JSON encoding (the same one
                         the wmd daemon puts on the wire) to FILE ('-'
                         for stderr)

exit status: the program's return value (low 8 bits) on success, else
  1  input or compilation error (including bad programs)
  2  usage error
  3  simulation fault, deadlock or cycle-limit timeout
  4  wall-clock deadline exceeded (--deadline-ms)";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Report a simulator failure with its machine-state dump (and, when
/// requested, its stable JSON encoding) and pick the documented exit
/// code: 1 for unrunnable programs, 4 for wall-clock deadline
/// cancellations, 3 for runtime faults, deadlocks and timeouts.
fn sim_failure(e: &SimError, error_json: Option<&str>) -> ExitCode {
    eprintln!("wmcc: simulation failed: {e}");
    if let Some(state) = e.state() {
        eprint!("{state}");
    }
    if let Some(path) = error_json {
        let doc = format!("{}\n", e.to_json());
        if path == "-" {
            eprint!("{doc}");
        } else if let Err(io) = std::fs::write(path, doc) {
            eprintln!("wmcc: cannot write error report {path}: {io}");
        }
    }
    match e {
        SimError::BadProgram(_) => ExitCode::from(1),
        SimError::Cancelled { .. } => ExitCode::from(4),
        _ => ExitCode::from(3),
    }
}

fn parse_args() -> Options {
    let mut o = Options {
        file: String::new(),
        target: Target::Wm,
        machine: MachineModel::sun_3_280(),
        opts: OptOptions::all(),
        emit: false,
        entry: "main".to_string(),
        args: Vec::new(),
        config: WmConfig::default(),
        stats: false,
        stats_json: None,
        trace_head: 0,
        trace_chrome: None,
        deadline_ms: None,
        error_json: None,
        tile_threads: 0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let need = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--target" => {
                o.target = match need(&mut i).as_str() {
                    "wm" => Target::Wm,
                    "scalar" => Target::Scalar,
                    _ => usage(),
                }
            }
            "--machine" => {
                o.machine = match need(&mut i).as_str() {
                    "sun3" => MachineModel::sun_3_280(),
                    "hp345" => MachineModel::hp_9000_345(),
                    "vax8600" => MachineModel::vax_8600(),
                    "m88100" => MachineModel::m88100(),
                    _ => usage(),
                }
            }
            "--opt" => {
                o.opts = match need(&mut i).as_str() {
                    "none" => OptOptions::none(),
                    "classical" => OptOptions::all().without_recurrence().without_streaming(),
                    "recurrence" => OptOptions::all().without_streaming(),
                    "full" => OptOptions::all(),
                    "modulo" => OptOptions::all().with_modulo(),
                    _ => usage(),
                }
            }
            "--noalias" => o.opts = o.opts.clone().assume_noalias(),
            "--tiles" => {
                let n: usize = need(&mut i).parse().unwrap_or_else(|_| usage());
                if !(1..=8).contains(&n) {
                    eprintln!("wmcc: --tiles {n} out of range (1..=8)");
                    std::process::exit(2);
                }
                o.config.tiles = n;
                o.opts.tiles = n;
            }
            "--tile-threads" => o.tile_threads = need(&mut i).parse().unwrap_or_else(|_| usage()),
            "--no-partition" => o.opts = o.opts.clone().without_partition(),
            "--vectorize" => o.opts = o.opts.clone().with_vectorization(),
            "--speculative-streams" => o.opts = o.opts.clone().with_speculative_streams(),
            "--inject" => {
                o.config.fault_plan = FaultPlan::parse(&need(&mut i)).unwrap_or_else(|e| {
                    eprintln!("wmcc: {e}");
                    std::process::exit(2);
                })
            }
            "--trace" => {
                let spec = need(&mut i);
                if let Some(path) = spec.strip_prefix("chrome:") {
                    if path.is_empty() {
                        usage();
                    }
                    o.trace_chrome = Some(path.to_string());
                } else {
                    o.trace_head = spec.parse().unwrap_or_else(|_| usage());
                }
            }
            "--emit" => o.emit = true,
            "--deadline-ms" => {
                o.deadline_ms = Some(need(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--error-json" => o.error_json = Some(need(&mut i)),
            "--stats" => o.stats = true,
            "--stats-json" => o.stats_json = Some(need(&mut i)),
            "--entry" => o.entry = need(&mut i),
            "--args" => {
                o.args = need(&mut i)
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            "--engine" => {
                o.config.engine = Engine::parse(&need(&mut i)).unwrap_or_else(|e| {
                    eprintln!("wmcc: {e}");
                    std::process::exit(2);
                })
            }
            "--mem-latency" => {
                o.config.mem_latency = need(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--mem-ports" => o.config.mem_ports = need(&mut i).parse().unwrap_or_else(|_| usage()),
            "--fifo" => {
                let n = need(&mut i).parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage();
                }
                o.config.fifo_capacity = n;
            }
            "--squash-penalty" => {
                o.config.squash_penalty = need(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--mem" => {
                o.config.mem_model = MemModel::parse(&need(&mut i)).unwrap_or_else(|e| {
                    eprintln!("wmcc: {e}");
                    std::process::exit(2);
                })
            }
            f if !f.starts_with('-') && o.file.is_empty() => o.file = f.to_string(),
            _ => usage(),
        }
        i += 1;
    }
    if o.file.is_empty() {
        usage();
    }
    o
}

fn main() -> ExitCode {
    let o = parse_args();
    let source = match std::fs::read_to_string(&o.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("wmcc: cannot read {}: {e}", o.file);
            return ExitCode::from(1);
        }
    };
    let compiled = match Compiler::new()
        .target(o.target)
        .options(o.opts.clone())
        .compile(&source)
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("wmcc: {}: {e}", o.file);
            return ExitCode::from(1);
        }
    };
    if o.stats {
        for (name, s) in &compiled.stats {
            eprintln!(
                "{name}: recurrence loads eliminated {}, streams {} in / {} out \
                 ({} unbounded), {} gathers / {} scatters",
                s.recurrence.loads_eliminated,
                s.streaming.streams_in,
                s.streaming.streams_out,
                s.streaming.infinite,
                s.streaming.gathers,
                s.streaming.scatters,
            );
            for l in s.modulo.loops() {
                eprintln!(
                    "{name}: L{}: modulo {} insts, MII {}, greedy interval {} -> II {} ({})",
                    l.label,
                    l.insts,
                    l.mii,
                    l.greedy,
                    l.ii,
                    if l.pipelined {
                        "pipelined"
                    } else {
                        "greedy fallback"
                    },
                );
            }
        }
    }
    if o.emit {
        for f in &compiled.module.functions {
            print!("{}", f.display(Some(&compiled.module)));
            println!();
        }
        return ExitCode::SUCCESS;
    }
    let error_json = o.error_json.as_deref();
    match o.target {
        Target::Wm => {
            // The daemon and the CLI share this code path (JobSpec): one
            // definition of how a job compiles, starts and cancels.
            let spec = JobSpec {
                source,
                opts: o.opts.clone(),
                config: o.config.clone(),
                entry: o.entry.clone(),
                args: o.args.clone(),
                tile_threads: o.tile_threads,
            };
            let cancel = o
                .deadline_ms
                .map(|ms| deadline_token(Duration::from_millis(ms)));
            if o.config.tiles > 1 {
                // Tiled runs go through the shared driver path (no
                // per-instruction tracing across tiles yet).
                if let Some(t) = &compiled.tiling {
                    eprintln!(
                        "wmcc: partitioned loop {} over [{}, {}) across {} tiles \
                         ({} writeback region(s), {} carried scalar(s))",
                        t.header, t.lo, t.hi, t.tiles, t.writebacks, t.carried
                    );
                } else if o.opts.partition {
                    eprintln!(
                        "wmcc: no loop qualified for partitioning; \
                         tiles 1..{} will idle",
                        o.config.tiles
                    );
                }
                return match spec.simulate(&compiled, cancel.as_ref()) {
                    Ok(r) => {
                        if !r.output.is_empty() {
                            print!("{}", String::from_utf8_lossy(&r.output));
                        }
                        if o.stats {
                            eprint!("{}", r.perf);
                        }
                        if let Some(path) = &o.stats_json {
                            if path == "-" {
                                print!("{}", r.perf.to_json());
                            } else if let Err(e) = std::fs::write(path, r.perf.to_json()) {
                                eprintln!("wmcc: cannot write stats {path}: {e}");
                                return ExitCode::from(1);
                            }
                        }
                        eprintln!(
                            "wmcc: {} cycles, {} instructions, returned {}",
                            r.cycles,
                            r.stats.instructions(),
                            r.ret_int
                        );
                        ExitCode::from((r.ret_int & 0xff) as u8)
                    }
                    Err(e) => sim_failure(&e, error_json),
                };
            }
            let mut machine = match spec.machine(&compiled, cancel.as_ref()) {
                Ok(m) => m,
                Err(e) => return sim_failure(&e, error_json),
            };
            if o.trace_head > 0 || o.trace_chrome.is_some() {
                machine.set_trace(true);
            }
            if o.trace_chrome.is_some() {
                machine.set_timeline(true);
            }
            let result = machine.run_to_completion();
            if o.trace_head > 0 {
                for ev in machine.trace().iter().take(o.trace_head) {
                    eprintln!("{:>8}  {:<3}  {}", ev.cycle, ev.unit, ev.text);
                }
            }
            if let Some(path) = &o.trace_chrome {
                // Written even when the run faults: the partial timeline
                // is exactly what you want when debugging a deadlock.
                let json = wm_stream::trace::chrome_trace(
                    machine.trace(),
                    machine.timeline(),
                    machine.ff_spans(),
                );
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("wmcc: cannot write trace {path}: {e}");
                    return ExitCode::from(1);
                }
            }
            match result {
                Ok(r) => {
                    if !r.output.is_empty() {
                        print!("{}", String::from_utf8_lossy(&r.output));
                    }
                    if o.stats {
                        eprint!("{}", r.perf);
                    }
                    if let Some(path) = &o.stats_json {
                        if path == "-" {
                            print!("{}", r.perf.to_json());
                        } else if let Err(e) = std::fs::write(path, r.perf.to_json()) {
                            eprintln!("wmcc: cannot write stats {path}: {e}");
                            return ExitCode::from(1);
                        }
                    }
                    eprintln!(
                        "wmcc: {} cycles, {} instructions, returned {}",
                        r.cycles,
                        r.stats.instructions(),
                        r.ret_int
                    );
                    ExitCode::from((r.ret_int & 0xff) as u8)
                }
                Err(e) => sim_failure(&e, error_json),
            }
        }
        Target::Scalar => match compiled.run_scalar(&o.entry, &o.args, &o.machine) {
            Ok(r) => {
                if !r.output.is_empty() {
                    print!("{}", String::from_utf8_lossy(&r.output));
                }
                eprintln!(
                    "wmcc: {} cycles on {}, returned {}",
                    r.cycles, o.machine.name, r.ret_int
                );
                ExitCode::from((r.ret_int & 0xff) as u8)
            }
            Err(e) => {
                eprintln!("wmcc: execution failed: {e}");
                if matches!(e, wm_stream::machines::ScalarError::BadProgram(_)) {
                    ExitCode::from(1)
                } else {
                    ExitCode::from(3)
                }
            }
        },
    }
}
