//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Run the binaries to reproduce the evaluation:
//!
//! * `cargo run --release -p wm-bench --bin table1` — Table I (recurrence
//!   optimization, percent improvement on five machines);
//! * `cargo run --release -p wm-bench --bin table2` — Table II (streaming,
//!   percent reduction in cycles on nine programs);
//! * `cargo run --release -p wm-bench --bin figures -- fig4|fig5|fig6|fig7`
//!   — the paper's code listings for the fifth Livermore loop;
//! * `cargo run --release -p wm-bench --bin table34` — the SPEC-tables
//!   substitute (optimizer-quality ratio; see DESIGN.md).

pub mod reps;

pub use wm_stream::json;

use wm_stream::{Compiler, MachineModel, OptOptions, Target, WmConfig};

/// A row of a percent-improvement table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Machine or program name.
    pub name: String,
    /// Cycles without the optimization under study.
    pub base_cycles: u64,
    /// Cycles with it.
    pub opt_cycles: u64,
    /// The paper's reported percentage, where applicable.
    pub paper_percent: Option<f64>,
}

impl Row {
    /// Measured percent improvement. An empty baseline (zero cycles, as
    /// produced by a workload whose kernel subtraction cancels out) has
    /// no meaningful improvement and reports 0.0 rather than NaN.
    pub fn percent(&self) -> f64 {
        if self.base_cycles == 0 {
            return 0.0;
        }
        100.0 * (self.base_cycles.saturating_sub(self.opt_cycles)) as f64 / self.base_cycles as f64
    }
}

/// Livermore-5 kernel cycles on a scalar machine: full program minus
/// initialization-only program, as Table I isolates the kernel.
fn scalar_kernel_cycles(model: &MachineModel, opts: &OptOptions) -> u64 {
    let c = Compiler::new().target(Target::Scalar).options(opts.clone());
    let full = c
        .compile(wm_stream::workloads::livermore5().source)
        .expect("compiles")
        .run_scalar("main", &[], model)
        .expect("runs")
        .cycles;
    let init = c
        .compile(wm_stream::workloads::livermore5_init_only().source)
        .expect("compiles")
        .run_scalar("main", &[], model)
        .expect("runs")
        .cycles;
    full - init
}

/// Livermore-5 kernel cycles on the WM simulator.
fn wm_kernel_cycles(opts: &OptOptions) -> u64 {
    let c = Compiler::new().options(opts.clone());
    let cfg = WmConfig::default();
    let full = c
        .compile(wm_stream::workloads::livermore5().source)
        .expect("compiles")
        .run_wm_config("main", &[], &cfg)
        .expect("runs")
        .cycles;
    let init = c
        .compile(wm_stream::workloads::livermore5_init_only().source)
        .expect("compiles")
        .run_wm_config("main", &[], &cfg)
        .expect("runs")
        .cycles;
    full - init
}

/// Compute Table I: effect of recurrence optimization on execution time of
/// the fifth Livermore loop, per machine.
pub fn table1() -> Vec<Row> {
    // Streaming off everywhere: Table I isolates the recurrence pass.
    let with = OptOptions::all().without_streaming();
    let without = with.clone().without_recurrence();
    let paper = [
        ("Sun 3/280", 19.0),
        ("HP 9000/345", 12.0),
        ("VAX 8600", 6.0),
        ("Motorola 88100", 7.0),
    ];
    let mut rows = Vec::new();
    for model in MachineModel::table1_machines() {
        let base = scalar_kernel_cycles(&model, &without);
        let opt = scalar_kernel_cycles(&model, &with);
        let paper_percent = paper
            .iter()
            .find(|(n, _)| *n == model.name)
            .map(|(_, p)| *p);
        rows.push(Row {
            name: model.name.to_string(),
            base_cycles: base,
            opt_cycles: opt,
            paper_percent,
        });
    }
    rows.push(Row {
        name: "WM".to_string(),
        base_cycles: wm_kernel_cycles(&without),
        opt_cycles: wm_kernel_cycles(&with),
        paper_percent: Some(18.0),
    });
    rows
}

/// Streaming-vs-no-streaming rows for a set of workloads, compiled the
/// Table II way: the no-alias model on both sides of the comparison.
fn streaming_rows(workloads: Vec<wm_stream::workloads::Workload>) -> Vec<Row> {
    let with = OptOptions::all().assume_noalias();
    let without = OptOptions::all().without_streaming().assume_noalias();
    let cfg = WmConfig::default();
    let mut rows = Vec::new();
    for w in workloads {
        let cb = Compiler::new().options(without.clone());
        let co = Compiler::new().options(with.clone());
        let base = cb
            .compile(w.source)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name))
            .run_wm_config("main", &[], &cfg)
            .unwrap_or_else(|e| panic!("{} (base): {e}", w.name));
        let opt = co
            .compile(w.source)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name))
            .run_wm_config("main", &[], &cfg)
            .unwrap_or_else(|e| panic!("{} (streamed): {e}", w.name));
        w.check(base.ret_int);
        w.check(opt.ret_int);
        rows.push(Row {
            name: w.name.to_string(),
            base_cycles: base.cycles,
            opt_cycles: opt.cycles,
            paper_percent: w.paper_table2_percent,
        });
    }
    rows
}

/// Compute Table II: percent reduction in cycles executed from streaming,
/// for the nine benchmark programs, on the WM simulator.
pub fn table2() -> Vec<Row> {
    // The paper's results (e.g. dhrystone's 39% from streamed string copies
    // through pointer parameters) are only reachable when distinct pointer
    // bases are assumed disjoint, so Table II compiles — on both sides of
    // the comparison — with the no-alias model the paper's compiler
    // evidently used for these programs. See DESIGN.md.
    streaming_rows(wm_stream::workloads::table2())
}

/// The indirect-stream addendum to Table II: the sparse workloads
/// (gather and scatter kernels) under the same compilation model, so
/// the delta is what streaming — indirect accesses fused into
/// `Sga`/`Ssc` descriptors included — buys over the scalar pipeline.
pub fn sparse_rows() -> Vec<Row> {
    streaming_rows(wm_stream::workloads::sparse())
}

/// The Tables III/IV substitute: SPEC89 is unavailable, so reproduce the
/// *claim* (the optimizer generates much better code than a naive
/// compiler) as the geometric-mean cycle ratio of unoptimized to optimized
/// code across the whole workload suite on the Sun-3-like model.
pub fn table34_ratio() -> (Vec<Row>, f64) {
    let model = MachineModel::sun_3_280();
    let naive = OptOptions::none();
    let full = OptOptions::all(); // streaming is ignored on the scalar target
    let mut rows = Vec::new();
    let mut log_sum = 0.0;
    let mut count = 0.0;
    for w in wm_stream::workloads::table2() {
        let base = Compiler::new()
            .target(Target::Scalar)
            .options(naive.clone())
            .compile(w.source)
            .expect("compiles")
            .run_scalar("main", &[], &model)
            .unwrap_or_else(|e| panic!("{} naive: {e}", w.name));
        let opt = Compiler::new()
            .target(Target::Scalar)
            .options(full.clone())
            .compile(w.source)
            .expect("compiles")
            .run_scalar("main", &[], &model)
            .unwrap_or_else(|e| panic!("{} optimized: {e}", w.name));
        w.check(base.ret_int);
        w.check(opt.ret_int);
        log_sum += (base.cycles as f64 / opt.cycles as f64).ln();
        count += 1.0;
        rows.push(Row {
            name: w.name.to_string(),
            base_cycles: base.cycles,
            opt_cycles: opt.cycles,
            paper_percent: None,
        });
    }
    (rows, (log_sum / count).exp())
}

/// Print a table of rows in the paper's style.
pub fn print_rows(title: &str, unit: &str, rows: &[Row]) {
    println!("{title}");
    println!(
        "{:<16} {:>14} {:>14} {:>10} {:>8}",
        "name", "base cycles", "opt cycles", "measured", "paper"
    );
    for r in rows {
        let paper = r
            .paper_percent
            .map(|p| format!("{p:.0}%"))
            .unwrap_or_else(|| "—".to_string());
        println!(
            "{:<16} {:>14} {:>14} {:>9.1}{unit} {:>8}",
            r.name,
            r.base_cycles,
            r.opt_cycles,
            r.percent(),
            paper
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_percent() {
        let r = Row {
            name: "x".into(),
            base_cycles: 200,
            opt_cycles: 150,
            paper_percent: None,
        };
        assert!((r.percent() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn row_percent_of_empty_baseline_is_zero() {
        let r = Row {
            name: "empty".into(),
            base_cycles: 0,
            opt_cycles: 0,
            paper_percent: None,
        };
        assert_eq!(r.percent(), 0.0);
        assert!(r.percent().is_finite());
    }
}
