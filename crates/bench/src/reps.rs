//! Explicit rep accounting for wall-time measurement.
//!
//! The `perf` runner measures each workload as one warmup run followed by
//! `reps` measured runs, reporting the median of the measured walls. The
//! accounting lives here, in one place with its own unit tests, so the
//! warmup can never silently leak into the median — in particular under
//! `--reps 1`, where the median must be the single *measured* wall, not
//! the warmup's.

/// How many times to run one benchmark pair: always exactly one warmup
/// (compilation paths warmed, result checked) plus `measured` timed runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepPlan {
    /// Timed runs contributing to the median. Always at least 1.
    pub measured: usize,
}

impl RepPlan {
    /// A plan with `reps` measured runs.
    ///
    /// # Errors
    ///
    /// Rejects `reps == 0`: zero measured runs would leave nothing to
    /// take a median of (the warmup is *never* a substitute).
    pub fn new(reps: usize) -> Result<RepPlan, String> {
        if reps == 0 {
            return Err("rep count must be at least 1".to_string());
        }
        Ok(RepPlan { measured: reps })
    }

    /// Total runs executed, counting the warmup.
    pub fn total_runs(self) -> usize {
        1 + self.measured
    }

    /// Median of the measured wall times. Panics if the caller recorded a
    /// different number of walls than the plan calls for — that is
    /// exactly the accounting bug this type exists to catch.
    pub fn median(self, walls: &mut [f64]) -> f64 {
        assert_eq!(
            walls.len(),
            self.measured,
            "rep accounting bug: {} walls recorded for {} measured reps",
            walls.len(),
            self.measured
        );
        walls.sort_by(f64::total_cmp);
        walls[walls.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::RepPlan;

    #[test]
    fn zero_reps_is_rejected() {
        assert!(RepPlan::new(0).is_err());
        assert_eq!(RepPlan::new(1).unwrap().measured, 1);
    }

    #[test]
    fn warmup_is_counted_as_a_run_but_never_measured() {
        let plan = RepPlan::new(3).unwrap();
        assert_eq!(plan.total_runs(), 4); // 1 warmup + 3 measured
    }

    #[test]
    fn single_rep_median_is_the_measured_wall_not_the_warmup() {
        // Simulate a slow warmup (cold caches) followed by one fast
        // measured run: the median must be the measured wall.
        let plan = RepPlan::new(1).unwrap();
        let mut walls = vec![2.0]; // the warmup's 50.0 is never recorded
        assert_eq!(plan.median(&mut walls), 2.0);
    }

    #[test]
    fn median_is_the_middle_measured_wall() {
        let plan = RepPlan::new(3).unwrap();
        let mut walls = vec![9.0, 1.0, 4.0];
        assert_eq!(plan.median(&mut walls), 4.0);
        let plan = RepPlan::new(4).unwrap();
        // even count: the upper middle, matching slice[len / 2]
        let mut walls = vec![8.0, 2.0, 4.0, 6.0];
        assert_eq!(plan.median(&mut walls), 6.0);
    }

    #[test]
    #[should_panic(expected = "rep accounting bug")]
    fn recording_the_warmup_wall_is_caught() {
        let plan = RepPlan::new(2).unwrap();
        // A buggy caller pushed the warmup wall too: 3 walls for 2 reps.
        let mut walls = vec![50.0, 2.0, 2.1];
        plan.median(&mut walls);
    }
}
