//! Tables III/IV substitute: SPEC89 sources and a real Sun 3/280 are not
//! available, so we reproduce the claim behind those tables — the portable
//! optimizer generates much better code than a naive compiler — as the
//! geometric-mean cycle ratio across the workload suite on the Sun-3-like
//! timing model. (The paper's tables show vpcc/vpo at SPECratio 4.3 vs the
//! native compiler's 4.0, i.e. roughly 7% better; our "naive" baseline is
//! far weaker than Sun's cc, so the ratio here is much larger.)

fn main() {
    let (rows, geo) = wm_bench::table34_ratio();
    wm_bench::print_rows(
        "Tables III/IV substitute: naive vs optimized cycles (Sun-3-like model)",
        "%",
        &rows,
    );
    println!("\ngeometric-mean speedup (naive / optimized): {geo:.2}x");
}
