//! `perf` — simulator benchmark runner and regression gate.
//!
//! Runs the workload suite on the WM simulator under three optimizer
//! configurations (scalar = classical optimizations only, recurrence,
//! streaming) and writes `BENCH_sim.json`: per run, the simulated cycle
//! count, the simulator's own wall-clock time, and the full performance
//! counters from the [`wm_stream::sim::Stats`] layer.
//!
//! ```text
//! perf                             run the full suite, write BENCH_sim.json
//! perf --fast                      fast subset (the CI bench job's set)
//! perf --out FILE                  write results to FILE instead
//! perf --check bench/baseline.json fail (exit 1) if any workload's cycles
//!                                  regressed >2% against the baseline
//! perf --write-baseline FILE       write the cycle baseline for --check
//! ```
//!
//! To re-baseline intentionally after a simulator change:
//!
//! ```text
//! cargo run --release -p wm-bench --bin perf -- --fast --write-baseline bench/baseline.json
//! ```

use std::time::Instant;

use wm_bench::json::{self, Value};
use wm_stream::{Compiler, OptOptions, WmConfig, Workload};

/// Allowed cycle-count growth before `--check` fails, as a fraction.
const TOLERANCE: f64 = 0.02;

struct RunRecord {
    workload: String,
    config: &'static str,
    cycles: u64,
    wall_ms: f64,
    counters: String,
}

fn configs() -> [(&'static str, OptOptions); 3] {
    // Match Table II's compilation model (no-alias on both sides) so the
    // streaming config actually streams the pointer-based programs.
    [
        (
            "scalar",
            OptOptions::all()
                .without_recurrence()
                .without_streaming()
                .assume_noalias(),
        ),
        (
            "recurrence",
            OptOptions::all().without_streaming().assume_noalias(),
        ),
        ("streaming", OptOptions::all().assume_noalias()),
    ]
}

fn suite(fast: bool) -> Vec<Workload> {
    let mut v = vec![wm_stream::workloads::livermore5()];
    if fast {
        // The CI subset: the Table I headline plus the quick Table II
        // programs; together they finish in seconds in release.
        let keep = ["dot-product", "sieve", "iir", "dhrystone"];
        v.extend(
            wm_stream::workloads::table2()
                .into_iter()
                .filter(|w| keep.contains(&w.name)),
        );
    } else {
        v.extend(wm_stream::workloads::table2());
    }
    v
}

fn run_suite(fast: bool) -> Vec<RunRecord> {
    let cfg = WmConfig::default();
    let mut records = Vec::new();
    for w in suite(fast) {
        for (config, opts) in configs() {
            let compiled = Compiler::new()
                .options(opts.clone())
                .compile(w.source)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let start = Instant::now();
            let r = compiled
                .run_wm_config("main", &[], &cfg)
                .unwrap_or_else(|e| panic!("{} ({config}): {e}", w.name));
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            w.check(r.ret_int);
            eprintln!(
                "perf: {:<12} {:<10} {:>10} cycles  {:>8.1} ms",
                w.name, config, r.cycles, wall_ms
            );
            records.push(RunRecord {
                workload: w.name.to_string(),
                config,
                cycles: r.cycles,
                wall_ms,
                counters: r.perf.to_json(),
            });
        }
    }
    records
}

fn results_json(records: &[RunRecord], with_counters: bool) -> String {
    let mut out = String::from("{\n  \"schema\": \"wm-bench-perf-v1\",\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"config\": \"{}\", \"cycles\": {}, \"wall_ms\": {:.3}",
            r.workload, r.config, r.cycles, r.wall_ms
        ));
        if with_counters {
            // The counters are themselves a JSON document; inline them.
            out.push_str(", \"counters\": ");
            out.push_str(r.counters.trim_end());
        }
        out.push('}');
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Compare against a baseline document; returns the regression report
/// lines (empty means the gate passes).
fn check(records: &[RunRecord], baseline_src: &str) -> Result<Vec<String>, String> {
    let doc = json::parse(baseline_src)?;
    let base = doc
        .get("results")
        .and_then(Value::as_arr)
        .ok_or("baseline has no \"results\" array")?;
    let lookup = |workload: &str, config: &str| -> Option<u64> {
        base.iter().find_map(|e| {
            (e.get("workload")?.as_str()? == workload && e.get("config")?.as_str()? == config)
                .then(|| e.get("cycles")?.as_u64())?
        })
    };
    let mut failures = Vec::new();
    for r in records {
        match lookup(&r.workload, r.config) {
            None => eprintln!(
                "perf: note: {}/{} not in baseline (new entry)",
                r.workload, r.config
            ),
            Some(base_cycles) => {
                let limit = (base_cycles as f64 * (1.0 + TOLERANCE)).floor() as u64;
                if r.cycles > limit {
                    failures.push(format!(
                        "{}/{}: {} cycles vs baseline {} (+{:.2}%, tolerance {:.0}%)",
                        r.workload,
                        r.config,
                        r.cycles,
                        base_cycles,
                        100.0 * (r.cycles as f64 / base_cycles as f64 - 1.0),
                        100.0 * TOLERANCE,
                    ));
                }
            }
        }
    }
    Ok(failures)
}

fn main() {
    let mut fast = false;
    let mut out = "BENCH_sim.json".to_string();
    let mut check_path: Option<String> = None;
    let mut baseline_out: Option<String> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("perf: missing argument value");
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--fast" => fast = true,
            "--out" => out = need(&mut i),
            "--check" => check_path = Some(need(&mut i)),
            "--write-baseline" => baseline_out = Some(need(&mut i)),
            other => {
                eprintln!(
                    "perf: unknown option {other}\n\
                     usage: perf [--fast] [--out FILE] [--check BASELINE] [--write-baseline FILE]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let records = run_suite(fast);

    if let Err(e) = std::fs::write(&out, results_json(&records, true)) {
        eprintln!("perf: cannot write {out}: {e}");
        std::process::exit(2);
    }
    eprintln!("perf: wrote {} results to {out}", records.len());

    if let Some(path) = baseline_out {
        if let Err(e) = std::fs::write(&path, results_json(&records, false)) {
            eprintln!("perf: cannot write baseline {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("perf: wrote baseline to {path}");
    }

    if let Some(path) = check_path {
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("perf: cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        match check(&records, &src) {
            Err(e) => {
                eprintln!("perf: bad baseline {path}: {e}");
                std::process::exit(2);
            }
            Ok(failures) if !failures.is_empty() => {
                for f in &failures {
                    eprintln!("perf: REGRESSION {f}");
                }
                eprintln!(
                    "perf: {} regression(s); to accept intentionally, re-baseline with:\n\
                     perf:   cargo run --release -p wm-bench --bin perf -- --fast --write-baseline bench/baseline.json",
                    failures.len()
                );
                std::process::exit(1);
            }
            Ok(_) => eprintln!("perf: baseline check passed ({path})"),
        }
    }
}
