//! `perf` — simulator benchmark runner and regression gate.
//!
//! Runs the workload suite on the WM simulator under four optimizer
//! configurations (scalar = classical optimizations only, recurrence,
//! streaming, and modulo = streaming + the solver-based software
//! pipeliner, whose greedy-vs-optimal cycle delta is the streaming−modulo
//! row difference) and writes `BENCH_sim.json`: per run, the simulated cycle
//! count, the simulator's own wall-clock time (median of `--reps`
//! measured runs after one warmup), and the full performance counters
//! from the [`wm_stream::sim::Stats`] layer.
//!
//! ```text
//! perf                             run the full suite, write BENCH_sim.json
//! perf --fast                      fast subset (the CI bench job's set)
//! perf --sparse                    the sparse (gather/scatter) kernels only
//!                                  (the CI sparse matrix job's set)
//! perf --wmd BIN                   run the suite as a client of the `wmd`
//!                                  daemon at BIN instead of in-process:
//!                                  cold runs populate the daemon's artifact
//!                                  cache, repeat runs must hit it with
//!                                  bit-identical results; throughput and
//!                                  cache hit rate land in the output meta
//! perf --jobs N                    run workload×config pairs on N threads
//!                                  (default: one per available CPU; the
//!                                  effective value lands in the output meta)
//! perf --tiles N                   compile with the tile-partitioning pass
//!                                  and simulate on N cores (default 1; the
//!                                  single-tile path is byte-identical to
//!                                  not passing the flag)
//! perf --reps N                    median wall-time of N measured runs after
//!                                  one untimed warmup (default 3)
//! perf --engine NAME               simulation engine: cycle, event (default)
//!                                  or compiled
//! perf --hw default|latency24      hardware model (latency24 = 24-cycle
//!                                  memory, one port: the degraded config)
//! perf --mem MODEL                 memory-system model (flat, cache[:k=v,..]
//!                                  or banked[:k=v,..]; see `wmcc --help`);
//!                                  recorded in the output, and --check is
//!                                  refused unless flat since the baseline
//!                                  holds flat-memory cycles
//! perf --out FILE                  write results to FILE instead
//! perf --check bench/baseline.json fail (exit 1) if any workload's cycles
//!                                  regressed >2% against the baseline; a
//!                                  failure prints every pair's cycle delta
//!                                  (baseline/now/%) to localize the damage
//! perf --compare FILE              fail (exit 1) unless every cycle count
//!                                  matches FILE exactly (the engine-
//!                                  equivalence gate); records the wall-
//!                                  time speedup vs FILE in the output
//! perf --write-baseline FILE       write the cycle baseline for --check
//! ```
//!
//! Every run that measures both the streaming and modulo configs also
//! gates the scheduler's never-worse contract: `-O modulo` falls back to
//! the greedy schedule loop-by-loop, so a modulo row with more cycles
//! than its streaming row on any workload fails the run (exit 1).
//!
//! Cycle counts are engine-independent by design, so `--check` works
//! under either engine; it is refused under `--hw latency24` because the
//! baseline holds default-hardware cycles. To re-baseline intentionally
//! after a simulator change:
//!
//! ```text
//! cargo run --release -p wm-bench --bin perf -- --fast --write-baseline bench/baseline.json
//! ```

use std::io::{BufRead, BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use wm_bench::json::{self, Value};
use wm_bench::reps::RepPlan;
use wm_stream::sim::Engine;
use wm_stream::{Compiler, MemModel, OptOptions, WmConfig, Workload};

/// Allowed cycle-count growth before `--check` fails, as a fraction.
const TOLERANCE: f64 = 0.02;

struct RunRecord {
    workload: String,
    config: &'static str,
    cycles: u64,
    wall_ms: f64,
    counters: String,
    /// A failure message when this pair did not produce a result (its
    /// worker panicked, or the daemon reported an error). Error rows
    /// carry no cycles and are excluded from gates; their presence makes
    /// the run exit nonzero after the document is written.
    error: Option<String>,
}

/// Client-side summary of a `--wmd` run, recorded in the output meta.
struct WmdStats {
    jobs_per_sec: f64,
    cache_hits: u64,
    cache_misses: u64,
}

/// Everything recorded at the top level of the results document.
struct Meta {
    engine: Engine,
    hw: Hw,
    mem: MemModel,
    reps: usize,
    jobs: usize,
    tiles: usize,
    wmd: Option<WmdStats>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Hw {
    /// The default WM implementation parameters.
    Default,
    /// The latency-dominated degraded configuration: 24-cycle memory,
    /// a single memory port.
    Latency24,
}

impl Hw {
    fn name(self) -> &'static str {
        match self {
            Hw::Default => "default",
            Hw::Latency24 => "latency24",
        }
    }

    fn config(self) -> WmConfig {
        match self {
            Hw::Default => WmConfig::default(),
            Hw::Latency24 => WmConfig::default().with_mem_latency(24).with_mem_ports(1),
        }
    }
}

fn configs() -> [(&'static str, OptOptions); 4] {
    // Match Table II's compilation model (no-alias on both sides) so the
    // streaming config actually streams the pointer-based programs. The
    // modulo config is streaming plus the solver-based software
    // pipeliner; the greedy-vs-optimal delta is their row difference.
    [
        (
            "scalar",
            OptOptions::all()
                .without_recurrence()
                .without_streaming()
                .assume_noalias(),
        ),
        (
            "recurrence",
            OptOptions::all().without_streaming().assume_noalias(),
        ),
        ("streaming", OptOptions::all().assume_noalias()),
        ("modulo", OptOptions::all().assume_noalias().with_modulo()),
    ]
}

/// Which workload set a run measures.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SuiteSel {
    /// Livermore 5 plus all of Table II.
    Full,
    /// The CI subset: the Table I headline plus the quick Table II
    /// programs; together they finish in seconds in release.
    Fast,
    /// The sparse (indirect-stream) kernels only: the CI `sparse`
    /// matrix job's set, where gathers and scatters dominate.
    Sparse,
}

fn suite(sel: SuiteSel) -> Vec<Workload> {
    if sel == SuiteSel::Sparse {
        return wm_stream::workloads::sparse();
    }
    let mut v = vec![wm_stream::workloads::livermore5()];
    if sel == SuiteSel::Fast {
        let keep = ["dot-product", "sieve", "iir", "dhrystone"];
        v.extend(
            wm_stream::workloads::table2()
                .into_iter()
                .filter(|w| keep.contains(&w.name)),
        );
    } else {
        v.extend(wm_stream::workloads::table2());
    }
    // The ordering-limited integer kernels, where the modulo config's
    // greedy-vs-optimal delta is visible; in the fast set too so the CI
    // gates cover the scheduler's strict wins.
    v.push(wm_stream::workloads::od_kernel());
    v.push(wm_stream::workloads::uuencode());
    v.push(wm_stream::workloads::smooth());
    v
}

/// Compile and run one workload×config pair: one untimed warmup run,
/// then exactly `plan.measured` timed runs whose median wall time is
/// reported (the warmup's wall is never recorded — [`RepPlan::median`]
/// asserts the count). Every run must reproduce the warmup's cycle count
/// (the simulator is deterministic; anything else is a bug worth failing
/// loudly on).
fn run_pair(
    w: &Workload,
    config: &'static str,
    opts: &OptOptions,
    cfg: &WmConfig,
    plan: RepPlan,
) -> (RunRecord, String) {
    let compiled = Compiler::new()
        .options(opts.clone())
        .compile(w.source)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let run = || {
        let start = Instant::now();
        let r = compiled
            .run_wm_config("main", &[], cfg)
            .unwrap_or_else(|e| panic!("{} ({config}): {e}", w.name));
        (r, start.elapsed().as_secs_f64() * 1e3)
    };
    let (warm, _warmup_wall) = run(); // warmup wall is deliberately dropped
    w.check(warm.ret_int);
    let mut walls = Vec::with_capacity(plan.measured);
    let mut result = warm;
    for _ in 0..plan.measured {
        let (r, wall) = run();
        assert_eq!(
            r.cycles, result.cycles,
            "{}/{config}: nondeterministic cycle count",
            w.name
        );
        walls.push(wall);
        result = r;
    }
    let wall_ms = plan.median(&mut walls);
    let line = format!(
        "perf: {:<12} {:<10} {:>10} cycles  {:>8.1} ms\n",
        w.name, config, result.cycles, wall_ms
    );
    let record = RunRecord {
        workload: w.name.to_string(),
        config,
        cycles: result.cycles,
        wall_ms,
        counters: result.perf.to_json(),
        error: None,
    };
    (record, line)
}

/// Run every workload×config pair on up to `jobs` worker threads. Work is
/// claimed from a shared index; results and log lines are re-sorted into
/// pair order afterwards so the output is deterministic regardless of
/// which thread finished first.
fn run_suite(sel: SuiteSel, meta: &Meta) -> Vec<RunRecord> {
    let plan = RepPlan::new(meta.reps).unwrap_or_else(|e| {
        eprintln!("perf: {e}");
        std::process::exit(2);
    });
    let mut cfg = meta.hw.config();
    cfg.engine = meta.engine;
    cfg.mem_model = meta.mem.clone();
    cfg.tiles = meta.tiles;
    let pairs: Vec<(Workload, &'static str, OptOptions)> = suite(sel)
        .into_iter()
        .flat_map(|w| configs().map(|(name, opts)| (w, name, opts.with_tiles(meta.tiles))))
        .collect();
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, RunRecord, String)>> = Mutex::new(Vec::new());
    let workers = meta.jobs.clamp(1, pairs.len());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((w, config, opts)) = pairs.get(i) else {
                    break;
                };
                // A panicking pair (compile failure, simulator fault,
                // wrong answer) must not abort the whole suite: catch it,
                // record an error row, and let this worker take the next
                // pair. The suite exits nonzero at the end if any row
                // carries an error.
                let (record, line) = match catch_unwind(AssertUnwindSafe(|| {
                    run_pair(w, config, opts, &cfg, plan)
                })) {
                    Ok(ok) => ok,
                    Err(p) => {
                        let msg = p
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| p.downcast_ref::<&str>().map(|s| (*s).to_string()))
                            .unwrap_or_else(|| "<non-string panic payload>".to_string());
                        let line = format!("perf: {:<12} {:<10} FAILED: {msg}\n", w.name, config);
                        (
                            RunRecord {
                                workload: w.name.to_string(),
                                config,
                                cycles: 0,
                                wall_ms: 0.0,
                                counters: String::new(),
                                error: Some(msg),
                            },
                            line,
                        )
                    }
                };
                done.lock().unwrap().push((i, record, line));
            });
        }
    });
    let mut finished = done.into_inner().unwrap();
    finished.sort_by_key(|(i, _, _)| *i);
    finished
        .into_iter()
        .map(|(_, record, line)| {
            eprint!("{line}");
            record
        })
        .collect()
}

/// The request line for one workload×config pair under `--wmd`.
fn wmd_request(id: &str, w: &Workload, config: &str, meta: &Meta) -> String {
    // The daemon reconstructs this suite's optimizer configurations from
    // the wire `opt` level plus `noalias` (see `configs()`).
    let opt = match config {
        "scalar" => "classical",
        "recurrence" => "recurrence",
        "streaming" => "full",
        "modulo" => "modulo",
        other => panic!("unknown config {other}"),
    };
    let mut req = format!(
        "{{\"id\": \"{id}\", \"source\": \"{}\", \"opt\": \"{opt}\", \"noalias\": true, \
         \"engine\": \"{}\", \"mem\": \"{}\"",
        json::escape(w.source),
        meta.engine,
        meta.mem
    );
    if meta.hw == Hw::Latency24 {
        req.push_str(", \"mem_latency\": 24, \"mem_ports\": 1");
    }
    if meta.tiles > 1 {
        req.push_str(&format!(", \"tiles\": {}", meta.tiles));
    }
    req.push('}');
    req
}

/// Run the suite as a client of the `wmd` daemon: spawn it with a fresh
/// cache directory, submit every pair cold (populating the cache), then
/// submit `reps` repeats that must be answered from the cache with
/// results bit-identical to the cold run. Cycle counts land in the same
/// records as the in-process path, so `--compare` gates daemon-vs-direct
/// agreement exactly like engine-vs-engine agreement.
fn run_suite_wmd(sel: SuiteSel, meta: &mut Meta, wmd_bin: &str) -> Vec<RunRecord> {
    let pairs: Vec<(Workload, &'static str, OptOptions)> = suite(sel)
        .into_iter()
        .flat_map(|w| configs().map(|(name, opts)| (w, name, opts)))
        .collect();
    let cache_dir = std::env::temp_dir().join(format!("wmd-perf-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let mut child = std::process::Command::new(wmd_bin)
        .args(["--jobs", &meta.jobs.to_string(), "--cache-dir"])
        .arg(&cache_dir)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .unwrap_or_else(|e| {
            eprintln!("perf: cannot spawn wmd at {wmd_bin}: {e}");
            std::process::exit(2);
        });
    let mut stdin = child.stdin.take().expect("piped stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout")).lines();
    let started = Instant::now();
    let mut read_response = |expect_job: bool| -> Value {
        loop {
            let line = stdout
                .next()
                .unwrap_or_else(|| {
                    eprintln!("perf: wmd closed its stdout early");
                    std::process::exit(2);
                })
                .unwrap_or_else(|e| {
                    eprintln!("perf: reading from wmd: {e}");
                    std::process::exit(2);
                });
            let v = json::parse(&line).unwrap_or_else(|e| {
                eprintln!("perf: unparseable wmd response: {e}\n  {line}");
                std::process::exit(2);
            });
            if expect_job == v.get("op").is_none() {
                return v;
            }
            eprintln!("perf: ignoring out-of-band wmd line: {line}");
        }
    };

    // Phase 1: every pair once, cold. Responses arrive in completion
    // order; collect them all before the repeat phase so the repeats
    // deterministically hit the now-populated cache.
    for (i, (w, config, _)) in pairs.iter().enumerate() {
        writeln!(stdin, "{}", wmd_request(&format!("{i}:0"), w, config, meta))
            .expect("write to wmd");
    }
    let mut cold: Vec<Option<Value>> = (0..pairs.len()).map(|_| None).collect();
    for _ in 0..pairs.len() {
        let v = read_response(true);
        let id = v
            .get("id")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        let i: usize = id
            .split(':')
            .next()
            .unwrap()
            .parse()
            .expect("pair index id");
        cold[i] = Some(v);
    }

    // Phase 2: `reps` repeats per pair, all answerable from the cache.
    for rep in 1..=meta.reps {
        for (i, (w, config, _)) in pairs.iter().enumerate() {
            writeln!(
                stdin,
                "{}",
                wmd_request(&format!("{i}:{rep}"), w, config, meta)
            )
            .expect("write to wmd");
        }
    }
    let mut repeats: Vec<Vec<Value>> = (0..pairs.len()).map(|_| Vec::new()).collect();
    for _ in 0..pairs.len() * meta.reps {
        let v = read_response(true);
        let id = v
            .get("id")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        let i: usize = id
            .split(':')
            .next()
            .unwrap()
            .parse()
            .expect("pair index id");
        repeats[i].push(v);
    }
    let elapsed = started.elapsed().as_secs_f64();

    writeln!(stdin, "{{\"op\": \"stats\"}}").expect("write to wmd");
    let stats = read_response(false);
    let counter = |k: &str| stats.get(k).and_then(Value::as_u64).unwrap_or(0);
    meta.wmd = Some(WmdStats {
        jobs_per_sec: (pairs.len() * (meta.reps + 1)) as f64 / elapsed.max(1e-9),
        cache_hits: counter("cache_hits"),
        cache_misses: counter("cache_misses"),
    });
    drop(stdin);
    let status = child.wait().expect("wait for wmd");
    let _ = std::fs::remove_dir_all(&cache_dir);
    if !status.success() {
        eprintln!("perf: wmd exited with {status}");
        std::process::exit(2);
    }

    let mut records = Vec::with_capacity(pairs.len());
    for (i, (w, config, _)) in pairs.iter().enumerate() {
        let cold = cold[i].take().expect("one cold response per pair");
        let record = match cold.get("status").and_then(Value::as_str) {
            Some("ok") => {
                let result = cold.get("result").expect("ok responses carry a result");
                let cycles = result.get("cycles").and_then(Value::as_u64).unwrap();
                let ret = result.get("ret_int").and_then(Value::as_i64).unwrap();
                w.check(ret);
                // Every repeat must be bit-identical to the cold run —
                // same cycles, same counters, same everything. This is
                // the daemon-cache analogue of run_pair's determinism
                // assertion.
                for rep in &repeats[i] {
                    assert_eq!(
                        rep.get("result"),
                        Some(result),
                        "{}/{config}: cached result differs from cold run",
                        w.name
                    );
                }
                let wall_ms = cold.get("wall_ms").and_then(Value::as_f64).unwrap_or(0.0);
                eprintln!(
                    "perf: {:<12} {:<10} {:>10} cycles  {:>8.1} ms (wmd, {} repeats ok)",
                    w.name,
                    config,
                    cycles,
                    wall_ms,
                    repeats[i].len()
                );
                RunRecord {
                    workload: w.name.to_string(),
                    config,
                    cycles,
                    wall_ms,
                    counters: String::new(),
                    error: None,
                }
            }
            _ => {
                let msg = format!("wmd error response: {cold:?}");
                eprintln!("perf: {:<12} {:<10} FAILED: {msg}", w.name, config);
                RunRecord {
                    workload: w.name.to_string(),
                    config,
                    cycles: 0,
                    wall_ms: 0.0,
                    counters: String::new(),
                    error: Some(msg),
                }
            }
        };
        records.push(record);
    }
    records
}

fn results_json(
    records: &[RunRecord],
    with_counters: bool,
    meta: Option<(&Meta, Option<f64>)>,
) -> String {
    let mut out = String::from("{\n  \"schema\": \"wm-bench-perf-v1\",\n");
    if let Some((m, speedup)) = meta {
        out.push_str(&format!(
            "  \"engine\": \"{}\",\n  \"hw\": \"{}\",\n  \"mem\": \"{}\",\n  \
             \"reps\": {},\n  \"jobs\": {},\n  \"tiles\": {},\n",
            m.engine,
            m.hw.name(),
            m.mem,
            m.reps,
            m.jobs,
            m.tiles
        ));
        let total: f64 = records
            .iter()
            .filter(|r| r.error.is_none())
            .map(|r| r.wall_ms)
            .sum();
        out.push_str(&format!("  \"total_wall_ms\": {total:.3},\n"));
        if let Some(s) = speedup {
            out.push_str(&format!("  \"speedup_vs_compare\": {s:.3},\n"));
        }
        if let Some(w) = &m.wmd {
            let rate = if w.cache_hits + w.cache_misses > 0 {
                w.cache_hits as f64 / (w.cache_hits + w.cache_misses) as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "  \"wmd\": {{\"jobs_per_sec\": {:.1}, \"cache_hits\": {}, \
                 \"cache_misses\": {}, \"cache_hit_rate\": {rate:.3}}},\n",
                w.jobs_per_sec, w.cache_hits, w.cache_misses
            ));
        }
    }
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        if let Some(e) = &r.error {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"config\": \"{}\", \"error\": \"{}\"}}",
                r.workload,
                r.config,
                json::escape(e)
            ));
        } else {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"config\": \"{}\", \"cycles\": {}, \"wall_ms\": {:.3}",
                r.workload, r.config, r.cycles, r.wall_ms
            ));
            if with_counters {
                // The counters are themselves a JSON document; inline them.
                out.push_str(", \"counters\": ");
                out.push_str(r.counters.trim_end());
            }
            out.push('}');
        }
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// The baseline gate's verdict: the hard failures, plus a per-workload
/// cycle-delta table covering *every* measured pair — printed on
/// failure so the report shows where the cycles moved, not just the
/// rows that crossed tolerance.
struct CheckReport {
    failures: Vec<String>,
    delta_table: Vec<String>,
}

/// Compare against a baseline document; the gate passes when
/// `failures` is empty.
fn check(records: &[RunRecord], baseline_src: &str) -> Result<CheckReport, String> {
    let doc = json::parse(baseline_src)?;
    let base = doc
        .get("results")
        .and_then(Value::as_arr)
        .ok_or("baseline has no \"results\" array")?;
    let lookup = |workload: &str, config: &str| -> Option<u64> {
        base.iter().find_map(|e| {
            (e.get("workload")?.as_str()? == workload && e.get("config")?.as_str()? == config)
                .then(|| e.get("cycles")?.as_u64())?
        })
    };
    let mut failures = Vec::new();
    let mut delta_table = vec![format!(
        "{:<14} {:<10} {:>12} {:>12} {:>9}",
        "workload", "config", "baseline", "now", "delta"
    )];
    for r in records.iter().filter(|r| r.error.is_none()) {
        match lookup(&r.workload, r.config) {
            None => {
                eprintln!(
                    "perf: note: {}/{} not in baseline (new entry)",
                    r.workload, r.config
                );
                delta_table.push(format!(
                    "{:<14} {:<10} {:>12} {:>12} {:>9}",
                    r.workload, r.config, "-", r.cycles, "new"
                ));
            }
            Some(base_cycles) => {
                let pct = 100.0 * (r.cycles as f64 / base_cycles as f64 - 1.0);
                let limit = (base_cycles as f64 * (1.0 + TOLERANCE)).floor() as u64;
                let over = r.cycles > limit;
                delta_table.push(format!(
                    "{:<14} {:<10} {:>12} {:>12} {:>+8.2}%{}",
                    r.workload,
                    r.config,
                    base_cycles,
                    r.cycles,
                    pct,
                    if over { "  <-- REGRESSION" } else { "" }
                ));
                if over {
                    failures.push(format!(
                        "{}/{}: {} cycles vs baseline {} (+{:.2}%, tolerance {:.0}%)",
                        r.workload,
                        r.config,
                        r.cycles,
                        base_cycles,
                        pct,
                        100.0 * TOLERANCE,
                    ));
                }
            }
        }
    }
    Ok(CheckReport {
        failures,
        delta_table,
    })
}

/// The modulo-scheduling invariant, gated on every run that measures
/// both configs: `-O modulo` falls back to the greedy schedule
/// loop-by-loop on UNSAT or budget exhaustion, so its cycle count can
/// never exceed the streaming (greedy) config's on any workload.
/// Violations are returned as failure lines.
fn modulo_gate(records: &[RunRecord]) -> Vec<String> {
    let cycles = |workload: &str, config: &str| -> Option<u64> {
        records
            .iter()
            .find(|r| r.workload == workload && r.config == config && r.error.is_none())
            .map(|r| r.cycles)
    };
    let mut failures = Vec::new();
    for r in records
        .iter()
        .filter(|r| r.config == "modulo" && r.error.is_none())
    {
        let Some(greedy) = cycles(&r.workload, "streaming") else {
            continue;
        };
        if r.cycles > greedy {
            failures.push(format!(
                "{}: modulo {} cycles vs greedy {} (the fallback guarantees never-worse)",
                r.workload, r.cycles, greedy
            ));
        }
    }
    failures
}

/// Compare against another results document run by a different engine:
/// every pair must exist there with the exact same cycle count. Returns
/// the mismatch report and the wall-time speedup (their total / ours).
fn compare(records: &[RunRecord], other_src: &str) -> Result<(Vec<String>, f64), String> {
    let doc = json::parse(other_src)?;
    let other = doc
        .get("results")
        .and_then(Value::as_arr)
        .ok_or("comparison file has no \"results\" array")?;
    let lookup = |workload: &str, config: &str| -> Option<(u64, f64)> {
        other.iter().find_map(|e| {
            (e.get("workload")?.as_str()? == workload && e.get("config")?.as_str()? == config)
                .then(|| Some((e.get("cycles")?.as_u64()?, e.get("wall_ms")?.as_f64()?)))?
        })
    };
    let mut mismatches = Vec::new();
    let (mut ours_ms, mut theirs_ms) = (0.0, 0.0);
    for r in records.iter().filter(|r| r.error.is_none()) {
        match lookup(&r.workload, r.config) {
            None => mismatches.push(format!(
                "{}/{}: missing from comparison",
                r.workload, r.config
            )),
            Some((cycles, wall_ms)) => {
                if cycles != r.cycles {
                    mismatches.push(format!(
                        "{}/{}: {} cycles here vs {} there",
                        r.workload, r.config, r.cycles, cycles
                    ));
                }
                ours_ms += r.wall_ms;
                theirs_ms += wall_ms;
            }
        }
    }
    let speedup = if ours_ms > 0.0 {
        theirs_ms / ours_ms
    } else {
        1.0
    };
    Ok((mismatches, speedup))
}

fn main() {
    let mut sel = SuiteSel::Full;
    let mut out = "BENCH_sim.json".to_string();
    let mut check_path: Option<String> = None;
    let mut compare_path: Option<String> = None;
    let mut baseline_out: Option<String> = None;
    let mut wmd_bin: Option<String> = None;
    let mut meta = Meta {
        engine: Engine::default(),
        hw: Hw::Default,
        mem: MemModel::default(),
        reps: 3,
        jobs: 0, // 0 = auto: resolved to one per available CPU below
        tiles: 1,
        wmd: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("perf: missing argument value");
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--fast" => sel = SuiteSel::Fast,
            "--sparse" => sel = SuiteSel::Sparse,
            "--out" => out = need(&mut i),
            "--check" => check_path = Some(need(&mut i)),
            "--compare" => compare_path = Some(need(&mut i)),
            "--write-baseline" => baseline_out = Some(need(&mut i)),
            "--wmd" => wmd_bin = Some(need(&mut i)),
            "--engine" => {
                meta.engine = Engine::parse(&need(&mut i)).unwrap_or_else(|e| {
                    eprintln!("perf: {e}");
                    std::process::exit(2);
                })
            }
            "--mem" => {
                meta.mem = MemModel::parse(&need(&mut i)).unwrap_or_else(|e| {
                    eprintln!("perf: {e}");
                    std::process::exit(2);
                })
            }
            "--hw" => {
                meta.hw = match need(&mut i).as_str() {
                    "default" => Hw::Default,
                    "latency24" => Hw::Latency24,
                    other => {
                        eprintln!(
                            "perf: unknown hw model `{other}` (expected default or latency24)"
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--reps" => {
                meta.reps = need(&mut i).parse().unwrap_or_else(|_| {
                    eprintln!("perf: --reps takes a positive integer");
                    std::process::exit(2);
                })
            }
            "--jobs" => {
                meta.jobs = need(&mut i).parse().unwrap_or_else(|_| {
                    eprintln!("perf: --jobs takes a positive integer");
                    std::process::exit(2);
                })
            }
            "--tiles" => {
                meta.tiles = need(&mut i).parse().unwrap_or_else(|_| {
                    eprintln!("perf: --tiles takes an integer in 1..=8");
                    std::process::exit(2);
                });
                if !(1..=8).contains(&meta.tiles) {
                    eprintln!("perf: --tiles takes an integer in 1..=8");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!(
                    "perf: unknown option {other}\n\
                     usage: perf [--fast|--sparse] [--jobs N] [--tiles N] [--reps N] [--engine cycle|event|compiled]\n\
                     [--hw default|latency24] [--mem flat|cache[:k=v,..]|banked[:k=v,..]]\n\
                     [--wmd BIN] [--out FILE] [--check BASELINE] [--compare RESULTS]\n\
                     [--write-baseline FILE]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if check_path.is_some() && meta.hw != Hw::Default {
        eprintln!("perf: --check requires --hw default (the baseline holds default-hw cycles)");
        std::process::exit(2);
    }
    if check_path.is_some() && !meta.mem.is_flat() {
        eprintln!("perf: --check requires --mem flat (the baseline holds flat-memory cycles)");
        std::process::exit(2);
    }
    if check_path.is_some() && meta.tiles > 1 {
        eprintln!("perf: --check requires --tiles 1 (the baseline holds single-tile cycles)");
        std::process::exit(2);
    }
    if meta.reps == 0 {
        eprintln!("perf: --reps must be at least 1");
        std::process::exit(2);
    }
    // --jobs defaults to one worker per available CPU; an explicit flag
    // overrides. The effective value is recorded in the output meta.
    if meta.jobs == 0 {
        meta.jobs = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    }

    let records = match &wmd_bin {
        Some(bin) => run_suite_wmd(sel, &mut meta, bin),
        None => run_suite(sel, &meta),
    };

    // Resolve the engine-equivalence comparison before writing results so
    // the measured speedup lands in the output document.
    let compared = compare_path.map(|path| {
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("perf: cannot read comparison {path}: {e}");
            std::process::exit(2);
        });
        let (mismatches, speedup) = compare(&records, &src).unwrap_or_else(|e| {
            eprintln!("perf: bad comparison {path}: {e}");
            std::process::exit(2);
        });
        (path, mismatches, speedup)
    });
    let speedup = compared.as_ref().map(|(_, _, s)| *s);

    // The daemon path records no per-run counters (the gate compares
    // cycles, which both paths carry).
    let with_counters = wmd_bin.is_none();
    if let Err(e) = std::fs::write(
        &out,
        results_json(&records, with_counters, Some((&meta, speedup))),
    ) {
        eprintln!("perf: cannot write {out}: {e}");
        std::process::exit(2);
    }
    eprintln!(
        "perf: wrote {} results to {out} (engine {}, hw {}, {} reps, {} jobs, {} tile(s))",
        records.len(),
        meta.engine,
        meta.hw.name(),
        meta.reps,
        meta.jobs,
        meta.tiles
    );

    if let Some(path) = baseline_out {
        if let Err(e) = std::fs::write(&path, results_json(&records, false, None)) {
            eprintln!("perf: cannot write baseline {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("perf: wrote baseline to {path}");
    }

    if let Some(path) = check_path {
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("perf: cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        match check(&records, &src) {
            Err(e) => {
                eprintln!("perf: bad baseline {path}: {e}");
                std::process::exit(2);
            }
            Ok(report) if !report.failures.is_empty() => {
                for f in &report.failures {
                    eprintln!("perf: REGRESSION {f}");
                }
                // The full delta table: which pairs moved and by how
                // much, so a failure report localizes the regression
                // without a manual re-run against the baseline.
                eprintln!("perf: per-workload cycle deltas vs baseline:");
                for line in &report.delta_table {
                    eprintln!("perf:   {line}");
                }
                eprintln!(
                    "perf: {} regression(s); to accept intentionally, re-baseline with:\n\
                     perf:   cargo run --release -p wm-bench --bin perf -- --fast --write-baseline bench/baseline.json",
                    report.failures.len()
                );
                std::process::exit(1);
            }
            Ok(_) => eprintln!("perf: baseline check passed ({path})"),
        }
    }

    if let Some((path, mismatches, speedup)) = compared {
        if mismatches.is_empty() {
            eprintln!("perf: engines agree with {path} on every cycle count ({speedup:.2}x wall-time speedup)");
        } else {
            for m in &mismatches {
                eprintln!("perf: ENGINE MISMATCH {m}");
            }
            eprintln!(
                "perf: {} cycle-count mismatch(es) vs {path}",
                mismatches.len()
            );
            std::process::exit(1);
        }
    }

    // Modulo scheduling's never-worse contract, gated unconditionally
    // whenever the run measured both the streaming and modulo configs.
    let modulo_failures = modulo_gate(&records);
    if !modulo_failures.is_empty() {
        for f in &modulo_failures {
            eprintln!("perf: MODULO REGRESSION {f}");
        }
        eprintln!(
            "perf: {} workload(s) where -O modulo is slower than greedy",
            modulo_failures.len()
        );
        std::process::exit(1);
    }

    let failed: Vec<&RunRecord> = records.iter().filter(|r| r.error.is_some()).collect();
    if !failed.is_empty() {
        for r in &failed {
            eprintln!(
                "perf: FAILED {}/{}: {}",
                r.workload,
                r.config,
                r.error.as_deref().unwrap_or("")
            );
        }
        eprintln!(
            "perf: {} of {} pairs failed (results written to {out} with error rows)",
            failed.len(),
            records.len()
        );
        std::process::exit(1);
    }
}
