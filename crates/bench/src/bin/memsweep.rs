//! `memsweep` — memory-hierarchy sensitivity sweep.
//!
//! The paper's central claim is that access/execute decoupling makes
//! performance insensitive to memory latency: the SCUs run ahead of the
//! execute units, so a WM loses little as miss latency grows, while a
//! scalar machine pays the full latency on every miss. This tool
//! measures that directly on the simulator's hierarchical memory models:
//!
//! * **latency sweep** — every workload compiled both ways (scalar =
//!   classical optimizations only, streaming = full WM pipeline) under
//!   `cache:miss=L` for each swept miss latency `L`; the table reports
//!   cycles and the streaming-vs-scalar speedup per point;
//! * **bandwidth sweep** — the same pairs under `banked:banks=B` for
//!   each swept bank count, showing how DRAM bank parallelism feeds the
//!   stream buffers.
//!
//! ```text
//! memsweep                         sweep the suite, write MEMSWEEP.json
//! memsweep --latencies 6,24,64     miss latencies for the cache sweep
//! memsweep --banks 1,2,8           bank counts for the banked sweep
//! memsweep --tiles 1,2,4           tile counts for the tiled scaling
//!                                  sweep: the partitionable kernels,
//!                                  compiled through the tile-partitioning
//!                                  pass, across tiles × bank counts
//! memsweep --out FILE              write results to FILE instead
//! memsweep --engine NAME           simulation engine: cycle, event
//!                                  (default) or compiled; cycle counts
//!                                  are engine-independent, so this only
//!                                  changes sweep wall time
//! memsweep --check                 fail (exit 1) unless the streaming
//!                                  speedup grows monotonically with miss
//!                                  latency on the stream-heavy kernels
//! ```
//!
//! `--check` is the CI gate for the paper's qualitative result: on
//! kernels the compiler streams well, decoupling must tolerate latency
//! (speedup non-decreasing in `L`); compute-bound or poorly streamed
//! programs are reported but not gated. When the tiles sweep covers more
//! than one tile count, `--check` additionally requires the largest
//! tiled build to beat its 1-tile build outright at the largest swept
//! bank count on every partitionable kernel.

use wm_stream::sim::Engine;
use wm_stream::{Compiler, MemModel, OptOptions, WmConfig, Workload};

/// Kernels whose inner loops stream fully: the latency-tolerance gate
/// applies to these. (`iir`, `dhrystone`, `sieve` keep scalar accesses
/// or control flow in the loop and are informational only.)
/// `sparse-matvec` is the indirect-stream kernel: its gathers miss by
/// construction, so it is the sharpest probe of latency tolerance.
const STREAM_HEAVY: [&str; 3] = ["dot-product", "livermore5", "sparse-matvec"];

/// Kernels the tile-partitioning pass splits across cores (a qualifying
/// loop nest with affine stores): the tiled scaling sweep and its gate
/// run on these.
const PARTITIONABLE: [&str; 2] = ["livermore5", "sparse-matvec"];

/// One measured (workload, model-point) pair.
struct Point {
    workload: String,
    /// `"cache:miss=24"` or `"banked:banks=2"` — the swept spec.
    spec: String,
    /// The swept axis value (miss latency or bank count).
    x: u64,
    scalar_cycles: u64,
    streaming_cycles: u64,
}

impl Point {
    fn speedup(&self) -> f64 {
        self.scalar_cycles as f64 / self.streaming_cycles as f64
    }
}

fn suite() -> Vec<Workload> {
    let mut v = vec![wm_stream::workloads::livermore5()];
    let keep = ["dot-product", "sieve", "iir", "dhrystone"];
    v.extend(
        wm_stream::workloads::table2()
            .into_iter()
            .filter(|w| keep.contains(&w.name)),
    );
    v.extend(wm_stream::workloads::sparse());
    v
}

/// Cycles for one workload under one optimizer config and memory model.
fn run(w: &Workload, opts: &OptOptions, spec: &str, engine: Engine) -> u64 {
    let compiled = Compiler::new()
        .options(opts.clone())
        .compile(w.source)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let mut cfg = WmConfig::default()
        .with_mem_model(MemModel::parse(spec).unwrap_or_else(|e| panic!("{spec}: {e}")));
    cfg.engine = engine;
    let r = compiled
        .run_wm_config("main", &[], &cfg)
        .unwrap_or_else(|e| panic!("{} [{spec}]: {e}", w.name));
    w.check(r.ret_int);
    r.cycles
}

/// One measured (workload, tiles, banks) point of the tiled scaling
/// sweep: the streaming build compiled through the tile-partitioning
/// pass and simulated on `tiles` cores.
struct TilePoint {
    workload: String,
    tiles: u64,
    banks: u64,
    cycles: u64,
    /// Cycles of the same workload's 1-tile build at the same bank
    /// count (the scaling denominator).
    one_tile_cycles: u64,
}

impl TilePoint {
    fn speedup(&self) -> f64 {
        self.one_tile_cycles as f64 / self.cycles as f64
    }
}

/// Streaming cycles of `w` partitioned over `tiles` cores on `banks`
/// DRAM banks. Tiled results are bit-identical for any host thread
/// count, so the sweep just lets the scheduler pick.
fn run_tiled(w: &Workload, tiles: u64, banks: u64, engine: Engine) -> u64 {
    let opts = OptOptions::all()
        .assume_noalias()
        .with_tiles(tiles as usize);
    let spec = format!("banked:banks={banks}");
    let compiled = Compiler::new()
        .options(opts)
        .compile(w.source)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let mut cfg = WmConfig::default()
        .with_mem_model(MemModel::parse(&spec).unwrap_or_else(|e| panic!("{spec}: {e}")))
        .with_tiles(tiles as usize);
    cfg.engine = engine;
    let r = compiled
        .run_wm_config("main", &[], &cfg)
        .unwrap_or_else(|e| panic!("{} [tiles={tiles} {spec}]: {e}", w.name));
    w.check(r.ret_int);
    r.cycles
}

fn measure(w: &Workload, spec: &str, x: u64, engine: Engine) -> Point {
    let scalar = OptOptions::all()
        .without_recurrence()
        .without_streaming()
        .assume_noalias();
    let streaming = OptOptions::all().assume_noalias();
    Point {
        workload: w.name.to_string(),
        spec: spec.to_string(),
        x,
        scalar_cycles: run(w, &scalar, spec, engine),
        streaming_cycles: run(w, &streaming, spec, engine),
    }
}

fn print_table(title: &str, axis: &str, points: &[Point]) {
    eprintln!("memsweep: {title}");
    eprintln!(
        "  {:<12} {:>8} {:>12} {:>12} {:>9}",
        "workload", axis, "scalar", "streaming", "speedup"
    );
    for p in points {
        eprintln!(
            "  {:<12} {:>8} {:>12} {:>12} {:>8.2}x",
            p.workload,
            p.x,
            p.scalar_cycles,
            p.streaming_cycles,
            p.speedup()
        );
    }
}

fn print_tile_table(points: &[TilePoint]) {
    if points.is_empty() {
        return;
    }
    eprintln!("memsweep: tiled scaling sweep (banked DRAM, partitioned kernels)");
    eprintln!(
        "  {:<12} {:>6} {:>6} {:>12} {:>12} {:>9}",
        "workload", "tiles", "banks", "1-tile", "tiled", "speedup"
    );
    for p in points {
        eprintln!(
            "  {:<12} {:>6} {:>6} {:>12} {:>12} {:>8.2}x",
            p.workload,
            p.tiles,
            p.banks,
            p.one_tile_cycles,
            p.cycles,
            p.speedup()
        );
    }
}

fn results_json(latency: &[Point], banks: &[Point], tiles: &[TilePoint]) -> String {
    let table = |points: &[Point]| -> String {
        let rows: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "    {{\"workload\": \"{}\", \"spec\": \"{}\", \"x\": {}, \
                     \"scalar_cycles\": {}, \"streaming_cycles\": {}, \"speedup\": {:.4}}}",
                    p.workload,
                    p.spec,
                    p.x,
                    p.scalar_cycles,
                    p.streaming_cycles,
                    p.speedup()
                )
            })
            .collect();
        format!("[\n{}\n  ]", rows.join(",\n"))
    };
    let tile_rows: Vec<String> = tiles
        .iter()
        .map(|p| {
            format!(
                "    {{\"workload\": \"{}\", \"tiles\": {}, \"banks\": {}, \
                 \"cycles\": {}, \"one_tile_cycles\": {}, \"speedup\": {:.4}}}",
                p.workload,
                p.tiles,
                p.banks,
                p.cycles,
                p.one_tile_cycles,
                p.speedup()
            )
        })
        .collect();
    let tiles_table = if tile_rows.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n  ]", tile_rows.join(",\n"))
    };
    format!(
        "{{\n  \"schema\": \"wm-bench-memsweep-v1\",\n  \"stream_heavy\": [{}],\n  \
         \"latency_sweep\": {},\n  \"bandwidth_sweep\": {},\n  \"tiles_sweep\": {}\n}}\n",
        STREAM_HEAVY
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", "),
        table(latency),
        table(banks),
        tiles_table
    )
}

/// The latency-tolerance gate: on every stream-heavy kernel the speedup
/// must grow with miss latency — strictly from the first swept point to
/// the last, and with no intermediate step falling more than 1% (the
/// MSHRs can fully hide two adjacent short latencies, leaving a flat
/// step whose ratio jitters in the fourth digit). Returns violations.
fn check_monotone(latency: &[Point]) -> Vec<String> {
    const STEP_TOLERANCE: f64 = 0.99;
    let mut failures = Vec::new();
    for name in STREAM_HEAVY {
        let series: Vec<&Point> = latency.iter().filter(|p| p.workload == name).collect();
        for pair in series.windows(2) {
            if pair[1].speedup() < pair[0].speedup() * STEP_TOLERANCE {
                failures.push(format!(
                    "{name}: speedup fell from {:.3}x (miss={}) to {:.3}x (miss={})",
                    pair[0].speedup(),
                    pair[0].x,
                    pair[1].speedup(),
                    pair[1].x
                ));
            }
        }
        if let (Some(first), Some(last)) = (series.first(), series.last()) {
            if series.len() > 1 && last.speedup() <= first.speedup() {
                failures.push(format!(
                    "{name}: speedup did not grow across the sweep \
                     ({:.3}x at miss={} vs {:.3}x at miss={})",
                    first.speedup(),
                    first.x,
                    last.speedup(),
                    last.x
                ));
            }
        }
    }
    failures
}

/// The decoupling-win gate on banked DRAM: at every swept bank count,
/// the streaming build of each stream-heavy kernel must beat its scalar
/// build outright — indirect streams included, so a regression that
/// reverts the gather/scatter kernels to scalar loads fails here even
/// if the affine kernels still pass.
fn check_banked_wins(banks: &[Point]) -> Vec<String> {
    let mut failures = Vec::new();
    for name in STREAM_HEAVY {
        for p in banks.iter().filter(|p| p.workload == name) {
            if p.speedup() <= 1.0 {
                failures.push(format!(
                    "{name}: streaming does not beat scalar under {} \
                     ({} vs {} cycles, {:.3}x)",
                    p.spec,
                    p.streaming_cycles,
                    p.scalar_cycles,
                    p.speedup()
                ));
            }
        }
    }
    failures
}

/// The tiled scaling gate: at the largest swept bank count, the largest
/// tiled build of every partitionable kernel must beat its 1-tile build
/// outright — the CI teeth behind "partitioning pays on banked DRAM".
/// Smaller bank counts are reported but not gated (with one bank the
/// tiles fight over the same DRAM bank and may lose to the pipelined
/// single core).
fn check_tiled_wins(tiles: &[TilePoint]) -> Vec<String> {
    let Some(max_tiles) = tiles.iter().map(|p| p.tiles).max() else {
        return Vec::new();
    };
    let Some(max_banks) = tiles.iter().map(|p| p.banks).max() else {
        return Vec::new();
    };
    if max_tiles <= 1 {
        return Vec::new();
    }
    let mut failures = Vec::new();
    for name in PARTITIONABLE {
        for p in tiles
            .iter()
            .filter(|p| p.workload == name && p.tiles == max_tiles && p.banks == max_banks)
        {
            if p.speedup() <= 1.0 {
                failures.push(format!(
                    "{name}: {} tiles do not beat 1 tile on banked:banks={} \
                     ({} vs {} cycles, {:.3}x)",
                    p.tiles,
                    p.banks,
                    p.cycles,
                    p.one_tile_cycles,
                    p.speedup()
                ));
            }
        }
    }
    failures
}

fn parse_list(s: &str, flag: &str) -> Vec<u64> {
    let v: Vec<u64> = s
        .split(',')
        .filter(|t| !t.is_empty())
        .map(|t| {
            t.parse().unwrap_or_else(|_| {
                eprintln!("memsweep: {flag} takes a comma-separated list of integers");
                std::process::exit(2);
            })
        })
        .collect();
    if v.is_empty() {
        eprintln!("memsweep: {flag} must name at least one value");
        std::process::exit(2);
    }
    v
}

fn main() {
    let mut out = "MEMSWEEP.json".to_string();
    let mut latencies: Vec<u64> = vec![6, 24, 64];
    let mut bank_counts: Vec<u64> = vec![1, 2, 8];
    let mut tile_counts: Vec<u64> = vec![1, 2, 4];
    let mut gate = false;
    let mut engine = Engine::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("memsweep: missing argument value");
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--out" => out = need(&mut i),
            "--latencies" => latencies = parse_list(&need(&mut i), "--latencies"),
            "--banks" => bank_counts = parse_list(&need(&mut i), "--banks"),
            "--tiles" => {
                tile_counts = parse_list(&need(&mut i), "--tiles");
                if tile_counts.iter().any(|&t| !(1..=8).contains(&t)) {
                    eprintln!("memsweep: --tiles values must be in 1..=8");
                    std::process::exit(2);
                }
            }
            "--check" => gate = true,
            "--engine" => {
                engine = Engine::parse(&need(&mut i)).unwrap_or_else(|e| {
                    eprintln!("memsweep: {e}");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!(
                    "memsweep: unknown option {other}\n\
                     usage: memsweep [--latencies N,N,...] [--banks N,N,...] [--tiles N,N,...]\n\
                     [--out FILE] [--check] [--engine cycle|event|compiled]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let workloads = suite();
    let mut latency_points = Vec::new();
    for w in &workloads {
        for &l in &latencies {
            latency_points.push(measure(w, &format!("cache:miss={l}"), l, engine));
        }
    }
    let mut bank_points = Vec::new();
    for w in &workloads {
        for &b in &bank_counts {
            bank_points.push(measure(w, &format!("banked:banks={b}"), b, engine));
        }
    }
    let mut tile_points = Vec::new();
    for w in workloads.iter().filter(|w| PARTITIONABLE.contains(&w.name)) {
        for &b in &bank_counts {
            let one = run_tiled(w, 1, b, engine);
            for &t in &tile_counts {
                let cycles = if t == 1 {
                    one
                } else {
                    run_tiled(w, t, b, engine)
                };
                tile_points.push(TilePoint {
                    workload: w.name.to_string(),
                    tiles: t,
                    banks: b,
                    cycles,
                    one_tile_cycles: one,
                });
            }
        }
    }

    print_table(
        "latency sweep (cache, miss latency L)",
        "miss",
        &latency_points,
    );
    print_table(
        "bandwidth sweep (banked DRAM, B banks)",
        "banks",
        &bank_points,
    );
    print_tile_table(&tile_points);

    if let Err(e) = std::fs::write(
        &out,
        results_json(&latency_points, &bank_points, &tile_points),
    ) {
        eprintln!("memsweep: cannot write {out}: {e}");
        std::process::exit(2);
    }
    eprintln!(
        "memsweep: wrote {} latency, {} bandwidth and {} tiled points to {out}",
        latency_points.len(),
        bank_points.len(),
        tile_points.len()
    );

    if gate {
        let mut failures = check_monotone(&latency_points);
        failures.extend(check_banked_wins(&bank_points));
        failures.extend(check_tiled_wins(&tile_points));
        if failures.is_empty() {
            eprintln!(
                "memsweep: latency-tolerance gate passed (speedup non-decreasing in miss \
                 latency, banked wins, on {})",
                STREAM_HEAVY.join(", ")
            );
        } else {
            for f in &failures {
                eprintln!("memsweep: LATENCY-TOLERANCE VIOLATION {f}");
            }
            std::process::exit(1);
        }
    }
}
