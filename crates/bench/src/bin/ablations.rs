//! Ablation studies over the design choices DESIGN.md calls out:
//! hardware parameters of the simulated WM (memory ports and latency, FIFO
//! depth, number of SCUs, stream-setup cost) and compiler phases (dual-op
//! combining, code motion, the recurrence and streaming passes themselves).
//!
//! Workloads: the streaming flagship (dot-product), the recurrence kernel
//! (Livermore 5) and a byte-stream program (dhrystone). Output is cycles;
//! every run self-verifies.

use wm_stream::{Compiler, OptOptions, WmConfig};

fn run(src: &str, opts: &OptOptions, cfg: &WmConfig) -> u64 {
    let c = Compiler::new()
        .options(opts.clone())
        .compile(src)
        .expect("compiles");
    let r = c.run_wm_config("main", &[], cfg).expect("runs");
    r.cycles
}

fn workloads() -> Vec<(&'static str, &'static str, OptOptions)> {
    let t2 = wm_stream::workloads::table2();
    let dot = t2.iter().find(|w| w.name == "dot-product").unwrap().source;
    let dhry = t2.iter().find(|w| w.name == "dhrystone").unwrap().source;
    vec![
        ("dot-product", dot, OptOptions::all()),
        (
            "livermore5",
            wm_stream::workloads::livermore5().source,
            OptOptions::all(),
        ),
        ("dhrystone", dhry, OptOptions::all().assume_noalias()),
    ]
}

fn hardware_sweeps() {
    println!("== hardware ablations (cycles; default row marked *) ==");
    for (name, src, opts) in workloads() {
        println!("\n--- {name} ---");
        println!("memory accept ports per cycle:");
        for ports in [1u32, 2, 4] {
            let cfg = WmConfig::default().with_mem_ports(ports);
            let mark = if ports == 2 { "*" } else { " " };
            println!("  ports={ports}{mark}  {:>10}", run(src, &opts, &cfg));
        }
        println!("memory latency (cycles):");
        for lat in [2u64, 6, 12, 24, 48] {
            let cfg = WmConfig::default().with_mem_latency(lat);
            let mark = if lat == 6 { "*" } else { " " };
            println!("  latency={lat}{mark}  {:>10}", run(src, &opts, &cfg));
        }
        println!("data FIFO capacity:");
        for cap in [2usize, 4, 8, 16, 32] {
            let cfg = WmConfig {
                fifo_capacity: cap,
                ..WmConfig::default()
            };
            let mark = if cap == 8 { "*" } else { " " };
            println!("  fifo={cap}{mark}  {:>10}", run(src, &opts, &cfg));
        }
        println!("stream setup cost (cycles):");
        for setup in [0u64, 4, 16, 64] {
            let cfg = WmConfig {
                scu_setup: setup,
                ..WmConfig::default()
            };
            let mark = if setup == 4 { "*" } else { " " };
            println!("  setup={setup}{mark}  {:>10}", run(src, &opts, &cfg));
        }
    }
}

fn compiler_sweeps() {
    println!("\n== compiler-phase ablations (cycles on the default WM) ==");
    let cfg = WmConfig::default();
    for (name, src, full) in workloads() {
        let rows: Vec<(&str, OptOptions)> = vec![
            ("full", full.clone()),
            ("full + vectorize", full.clone().with_vectorization()),
            ("no dual-op combining", {
                let mut o = full.clone();
                o.dual_combine = false;
                o
            }),
            ("no code motion", {
                let mut o = full.clone();
                o.code_motion = false;
                o
            }),
            ("no streaming", full.clone().without_streaming()),
            ("no recurrence", full.clone().without_recurrence()),
            (
                "classical only",
                full.clone().without_streaming().without_recurrence(),
            ),
            ("none", OptOptions::none()),
        ];
        println!("\n--- {name} ---");
        for (label, opts) in rows {
            println!("  {label:<22} {:>10}", run(src, &opts, &cfg));
        }
    }
}

fn main() {
    hardware_sweeps();
    compiler_sweeps();
}
