//! Streaming in Unix-utility kernels — the paper's "pleasant surprise":
//! "the optimizer generates stream instructions for the following Unix
//! utilities: cal, compact, od, sort, diff, nroff, and yacc. The uses
//! included copying strings and structures, searching a decoding tree,
//! searching a data structure for a specific item, and initializing an
//! array." This harness measures the utility kernels with and without
//! streaming; each run self-verifies.

use wm_bench::Row;
use wm_stream::{Compiler, OptOptions, WmConfig};

fn main() {
    let with = OptOptions::all().assume_noalias();
    let without = OptOptions::all().without_streaming().assume_noalias();
    let cfg = WmConfig::default();
    let mut rows = Vec::new();
    for w in wm_stream::workloads::utilities() {
        let base = Compiler::new()
            .options(without.clone())
            .compile(w.source)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name))
            .run_wm_config("main", &[], &cfg)
            .unwrap_or_else(|e| panic!("{} (base): {e}", w.name));
        let opt = Compiler::new()
            .options(with.clone())
            .compile(w.source)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name))
            .run_wm_config("main", &[], &cfg)
            .unwrap_or_else(|e| panic!("{} (streamed): {e}", w.name));
        w.check(base.ret_int);
        w.check(opt.ret_int);
        rows.push(Row {
            name: w.name.to_string(),
            base_cycles: base.cycles,
            opt_cycles: opt.cycles,
            paper_percent: None,
        });
    }
    wm_bench::print_rows("Streaming in Unix-utility kernels", "%", &rows);
}
