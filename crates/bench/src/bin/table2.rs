//! Regenerate Table II: execution performance improvements by streaming
//! (percent reduction in cycles executed) on the WM simulator.

fn main() {
    let rows = wm_bench::table2();
    wm_bench::print_rows(
        "Table II. Execution Performance Improvements by Streaming",
        "%",
        &rows,
    );
}
