//! Regenerate Table II: execution performance improvements by streaming
//! (percent reduction in cycles executed) on the WM simulator, plus the
//! sparse addendum (the gather/scatter kernels under the same model).
//!
//! With `--check`, also assert the paper-shape invariant the CI `tables`
//! job gates on: streaming strictly wins on every Table II program *and*
//! on every sparse workload — so a regression that silently stops fusing
//! the indirect references back to scalar loads fails here too.

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let rows = wm_bench::table2();
    wm_bench::print_rows(
        "Table II. Execution Performance Improvements by Streaming",
        "%",
        &rows,
    );
    let sparse = wm_bench::sparse_rows();
    wm_bench::print_rows(
        "Sparse addendum: indirect (gather/scatter) streams",
        "%",
        &sparse,
    );
    if check {
        let bad: Vec<&wm_bench::Row> = rows
            .iter()
            .chain(sparse.iter())
            .filter(|r| r.opt_cycles >= r.base_cycles)
            .collect();
        for r in &bad {
            eprintln!(
                "table2: SHAPE VIOLATION {}: streaming did not win ({} -> {} cycles)",
                r.name, r.base_cycles, r.opt_cycles
            );
        }
        if !bad.is_empty() {
            std::process::exit(1);
        }
        eprintln!(
            "table2: shape check passed (streaming wins on all {} programs, \
             {} sparse kernels included)",
            rows.len() + sparse.len(),
            sparse.len()
        );
    }
}
