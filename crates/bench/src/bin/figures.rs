//! Regenerate the paper's code listings for the fifth Livermore loop:
//!
//! * `fig4` — unoptimized WM code (Figure 4),
//! * `fig5` — WM code with recurrences optimized (Figure 5),
//! * `fig6` — scalar (68020-style) code with recurrences optimized and
//!   auto-increment addressing selected (Figure 6),
//! * `fig7` — WM code with stream instructions (Figure 7).
//!
//! Register numbers differ from the paper (a different allocator), but the
//! structure — instruction mix, memory-reference count, stream usage — is
//! the reproduction target. `all` prints every figure.

use wm_stream::{Compiler, OptOptions, Target};

const KERNEL: &str = r"
    double x[100000]; double y[100000]; double z[100000];
    void loop5(int n) {
        int i;
        for (i = 2; i < n; i++)
            x[i] = z[i] * (y[i] - x[i-1]);
    }
";

fn listing(target: Target, opts: OptOptions) -> String {
    Compiler::new()
        .target(target)
        .options(opts)
        .compile(KERNEL)
        .expect("kernel compiles")
        .listing("loop5")
        .expect("kernel listing")
}

fn print_fig(which: &str) {
    match which {
        "fig4" => {
            println!("Figure 4. Unoptimized WM code for the 5th Livermore loop.\n");
            println!(
                "{}",
                listing(
                    Target::Wm,
                    OptOptions::all().without_recurrence().without_streaming()
                )
            );
        }
        "fig5" => {
            println!("Figure 5. WM code with recurrences optimized.\n");
            println!(
                "{}",
                listing(Target::Wm, OptOptions::all().without_streaming())
            );
        }
        "fig6" => {
            println!("Figure 6. Scalar (68020-style) code with recurrences optimized.\n");
            println!("{}", listing(Target::Scalar, OptOptions::all()));
        }
        "fig7" => {
            println!("Figure 7. WM code with stream instructions.\n");
            println!("{}", listing(Target::Wm, OptOptions::all()));
        }
        other => {
            eprintln!("unknown figure {other}; use fig4|fig5|fig6|fig7|all");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    if which == "all" {
        for f in ["fig4", "fig5", "fig6", "fig7"] {
            print_fig(f);
            println!();
        }
    } else {
        print_fig(which);
    }
}
