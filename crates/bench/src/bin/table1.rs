//! Regenerate Table I: effect of recurrence optimization on execution time
//! of the fifth Livermore loop (array size 100 000) on five machines.
//!
//! With `--check`, also assert the paper-shape invariant the CI `tables`
//! job gates on: the recurrence optimization never hurts (≥ 0%
//! improvement) on any of the five machines.

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let rows = wm_bench::table1();
    wm_bench::print_rows(
        "Table I. Effect of Recurrence Optimization on Execution Time",
        "%",
        &rows,
    );
    if check {
        let bad: Vec<&wm_bench::Row> = rows.iter().filter(|r| r.percent() < 0.0).collect();
        for r in &bad {
            eprintln!(
                "table1: SHAPE VIOLATION {}: recurrence made it slower ({} -> {} cycles)",
                r.name, r.base_cycles, r.opt_cycles
            );
        }
        if !bad.is_empty() {
            std::process::exit(1);
        }
        eprintln!(
            "table1: shape check passed (recurrence >= 0% on all {} machines)",
            rows.len()
        );
    }
}
