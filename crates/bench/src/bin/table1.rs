//! Regenerate Table I: effect of recurrence optimization on execution time
//! of the fifth Livermore loop (array size 100 000) on five machines.

fn main() {
    let rows = wm_bench::table1();
    wm_bench::print_rows(
        "Table I. Effect of Recurrence Optimization on Execution Time",
        "%",
        &rows,
    );
}
