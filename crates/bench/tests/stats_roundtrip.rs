//! The counters `wmcc --stats-json` emits must round-trip through the
//! hand-rolled JSON parser the perf binary uses — the two sides share no
//! code beyond the JSON grammar, so this is the contract test between
//! the simulator's writer (`Stats::to_json`) and `wm_bench::json`.

use wm_bench::json::{self, Value};
use wm_stream::{Compiler, MemModel, OptOptions, WmConfig};

fn run_dot_product_config(cfg: &WmConfig) -> wm_stream::RunResult {
    let w = wm_stream::workloads::table2()
        .into_iter()
        .find(|w| w.name == "dot-product")
        .expect("dot-product is a Table II program");
    Compiler::new()
        .options(OptOptions::all().assume_noalias())
        .compile(w.source)
        .expect("compiles")
        .run_wm_config("main", &[], cfg)
        .expect("runs")
}

fn run_dot_product() -> wm_stream::RunResult {
    run_dot_product_config(&WmConfig::default())
}

#[test]
fn stats_json_round_trips_through_the_hand_parser() {
    let r = run_dot_product();
    let stats = &r.perf;
    let doc = json::parse(&stats.to_json()).expect("stats JSON parses");

    assert_eq!(doc.get("cycles").unwrap().as_u64(), Some(stats.cycles));

    // Every unit's counters survive the trip, including the stall
    // breakdown (only nonzero reasons are written).
    for (name, u) in stats.units() {
        let j = doc.get("units").unwrap().get(name).unwrap();
        assert_eq!(
            j.get("retired").unwrap().as_u64(),
            Some(u.retired),
            "{name}"
        );
        assert_eq!(j.get("active").unwrap().as_u64(), Some(u.active), "{name}");
        assert_eq!(j.get("idle").unwrap().as_u64(), Some(u.idle), "{name}");
        let stalls = j.get("stalls").unwrap();
        let mut total = 0;
        if let Value::Obj(m) = stalls {
            for v in m.values() {
                total += v.as_u64().expect("stall counts are integers");
            }
        } else {
            panic!("{name}: stalls is not an object");
        }
        assert_eq!(total, u.stalled(), "{name}: stall breakdown sum");
        // Attribution exactness is visible through the JSON alone.
        let attributed = j.get("active").unwrap().as_u64().unwrap()
            + j.get("idle").unwrap().as_u64().unwrap()
            + total;
        assert_eq!(attributed, stats.cycles, "{name}: attribution via JSON");
    }

    // Streams: per-SCU element counts.
    let scus = doc.get("scus").unwrap().as_arr().unwrap();
    assert_eq!(scus.len(), stats.scus.len());
    for (j, s) in scus.iter().zip(&stats.scus) {
        assert_eq!(j.get("elements_in").unwrap().as_u64(), Some(s.elements_in));
        assert_eq!(
            j.get("elements_out").unwrap().as_u64(),
            Some(s.elements_out)
        );
        assert_eq!(j.get("poisoned").unwrap().as_u64(), Some(s.poisoned));
        assert_eq!(
            j.get("index_fetches").unwrap().as_u64(),
            Some(s.index_fetches)
        );
        assert_eq!(j.get("squashed").unwrap().as_u64(), Some(s.squashed));
    }

    // FIFO occupancy histograms sample every cycle.
    for f in &stats.fifos {
        let hist = doc.get("fifos").unwrap().get(f.name).unwrap();
        let parsed: Vec<u64> = hist
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect();
        assert_eq!(parsed, f.depth, "fifo {}", f.name);
        assert_eq!(parsed.iter().sum::<u64>(), stats.cycles, "fifo {}", f.name);
    }

    // Memory-port utilization histogram also covers every cycle.
    let ports: Vec<u64> = doc
        .get("ports")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|v| v.as_u64().unwrap())
        .collect();
    assert_eq!(ports, stats.ports);
    assert_eq!(ports.iter().sum::<u64>(), stats.cycles);
}

#[test]
fn hierarchy_counters_round_trip_through_the_hand_parser() {
    // Under a hierarchical memory model the document gains a "mem"
    // object; the hand parser must read it back exactly, and the
    // stream-buffer occupancy histogram must cover every cycle (the same
    // contract the FIFO histograms obey).
    let r = run_dot_product_config(
        &WmConfig::default().with_mem_model(MemModel::parse("banked").unwrap()),
    );
    let stats = &r.perf;
    let m = stats.mem.as_ref().expect("hierarchical stats present");
    let doc = json::parse(&stats.to_json()).expect("stats JSON parses");
    let j = doc.get("mem").expect("mem object present");
    for (key, val) in [
        ("hits", m.hits),
        ("misses", m.misses),
        ("evictions", m.evictions),
        ("writebacks", m.writebacks),
        ("invalidations", m.invalidations),
        ("sb_hits", m.sb_hits),
        ("sb_misses", m.sb_misses),
        ("sb_prefetches", m.sb_prefetches),
        ("bank_conflicts", m.bank_conflicts),
        ("row_hits", m.row_hits),
        ("row_misses", m.row_misses),
    ] {
        assert_eq!(j.get(key).unwrap().as_u64(), Some(val), "mem.{key}");
    }
    let occ: Vec<u64> = j
        .get("sb_occupancy")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|v| v.as_u64().unwrap())
        .collect();
    assert_eq!(occ, m.sb_occupancy);
    assert_eq!(occ.iter().sum::<u64>(), stats.cycles);
}

#[test]
fn perf_baseline_document_shape_parses() {
    // The same parser reads bench/baseline.json in CI; keep the checked-in
    // file parseable and structurally sound.
    let src = include_str!("../../../bench/baseline.json");
    let doc = json::parse(src).expect("baseline parses");
    let results = doc.get("results").unwrap().as_arr().unwrap();
    assert!(!results.is_empty());
    for e in results {
        assert!(e.get("workload").unwrap().as_str().is_some());
        assert!(e.get("config").unwrap().as_str().is_some());
        assert!(e.get("cycles").unwrap().as_u64().unwrap() > 0);
    }
}
