//! Shape tests: cheap assertions that the regenerated figures and the core
//! table relationships hold. Full tables run via the binaries; these tests
//! use reduced problem sizes so `cargo test` stays fast.

use wm_stream::{Compiler, MachineModel, OptOptions, Target, WmConfig};

const KERNEL: &str = r"
    double x[2000]; double y[2000]; double z[2000];
    void loop5(int n) {
        int i;
        for (i = 2; i < n; i++)
            x[i] = z[i] * (y[i] - x[i-1]);
    }
";

fn wm_listing(opts: OptOptions) -> String {
    Compiler::new()
        .options(opts)
        .compile(KERNEL)
        .expect("compiles")
        .listing("loop5")
        .unwrap()
}

/// Count occurrences of a mnemonic in the listing.
fn count(l: &str, needle: &str) -> usize {
    l.matches(needle).count()
}

#[test]
fn figure4_shape() {
    let l = wm_listing(OptOptions::all().without_recurrence().without_streaming());
    // four memory references: three loads, one store
    assert_eq!(count(&l, "l64f"), 3, "{l}");
    assert_eq!(count(&l, "s64f"), 1, "{l}");
    assert_eq!(count(&l, "Sin"), 0);
}

#[test]
fn figure5_shape() {
    let l = wm_listing(OptOptions::all().without_streaming());
    // "only three memory references in the loop instead of four" — plus the
    // preheader's initial load of x[1]
    assert_eq!(count(&l, "l64f"), 3, "two in-loop loads + one initial: {l}");
    assert_eq!(count(&l, "s64f"), 1, "{l}");
    assert!(l.contains("_x+-8"), "preheader addresses x[1]: {l}");
}

#[test]
fn figure6_shape() {
    let l = Compiler::new()
        .target(Target::Scalar)
        .compile(KERNEL)
        .expect("compiles")
        .listing("loop5")
        .unwrap();
    // auto-increment pointer walks for both loads and the store
    assert!(count(&l, "@+") >= 3, "{l}");
    assert_eq!(count(&l, "ld64"), 3, "{l}");
    assert_eq!(count(&l, "st64"), 1, "{l}");
}

#[test]
fn figure7_shape() {
    let l = wm_listing(OptOptions::all());
    assert_eq!(count(&l, "SinD"), 2, "y and z stream in: {l}");
    assert_eq!(count(&l, "SoutD"), 1, "x streams out: {l}");
    assert_eq!(count(&l, "jNIf0"), 1, "{l}");
    // no in-loop address arithmetic: the only l64f is the preheader's x[1]
    assert_eq!(count(&l, "l64f"), 1, "{l}");
    assert_eq!(count(&l, "s64f"), 0, "{l}");
}

#[test]
fn table1_direction_holds_at_reduced_size() {
    const SRC: &str = r"
        double x[3000]; double y[3000]; double z[3000];
        int main() {
            int i;
            for (i = 0; i < 3000; i++) { x[i] = i * 0.25; y[i] = 2.0; z[i] = 0.5; }
            for (i = 2; i < 3000; i++) x[i] = z[i] * (y[i] - x[i-1]);
            return (int) (x[2999] * 1000.0);
        }
    ";
    let with = OptOptions::all().without_streaming();
    let without = with.clone().without_recurrence();
    for model in [MachineModel::sun_3_280(), MachineModel::vax_8600()] {
        let a = Compiler::new()
            .target(Target::Scalar)
            .options(with.clone())
            .compile(SRC)
            .unwrap()
            .run_scalar("main", &[], &model)
            .unwrap();
        let b = Compiler::new()
            .target(Target::Scalar)
            .options(without.clone())
            .compile(SRC)
            .unwrap()
            .run_scalar("main", &[], &model)
            .unwrap();
        assert_eq!(a.ret_int, b.ret_int);
        assert!(a.cycles < b.cycles, "{}", model.name);
    }
}

#[test]
fn table2_extremes_hold_at_reduced_size() {
    // dot-product gains a lot; whetstone-style register code gains little
    const DOT: &str = r"
        double a[3000]; double b[3000];
        int main() {
            int i; double s;
            for (i = 0; i < 3000; i++) { a[i] = 2.0; b[i] = 0.5; }
            s = 0.0;
            for (i = 0; i < 3000; i++) s = s + a[i] * b[i];
            return (int) s;
        }
    ";
    const REGS: &str = r"
        int main() {
            int i; double x1; double x2;
            x1 = 1.0; x2 = -1.0;
            for (i = 0; i < 3000; i++) {
                x1 = (x1 + x2) * 0.499975;
                x2 = (x1 - x2) * 0.499975;
            }
            return (int) (x1 * 0.0 + 1.0);
        }
    ";
    let cfg = WmConfig::default();
    let gain = |src: &str| -> f64 {
        let s = Compiler::new()
            .compile(src)
            .unwrap()
            .run_wm_config("main", &[], &cfg)
            .unwrap();
        let b = Compiler::new()
            .options(OptOptions::all().without_streaming())
            .compile(src)
            .unwrap()
            .run_wm_config("main", &[], &cfg)
            .unwrap();
        assert_eq!(s.ret_int, b.ret_int);
        100.0 * (b.cycles.saturating_sub(s.cycles)) as f64 / b.cycles as f64
    };
    let dot = gain(DOT);
    let regs = gain(REGS);
    assert!(dot > 20.0, "dot-product should gain a lot: {dot:.1}%");
    assert!(regs < 5.0, "register code should gain little: {regs:.1}%");
    assert!(dot > regs);
}

#[test]
fn matrix_streams_with_row_and_column_strides() {
    const SRC: &str = r"
        double a[400]; double b[400]; double c[400];
        int main() {
            int i; int j; int k; int n; double sum;
            n = 20;
            for (i = 0; i < n * n; i++) { a[i] = 1.0; b[i] = 2.0; }
            for (i = 0; i < n; i++)
                for (j = 0; j < n; j++) {
                    sum = 0.0;
                    for (k = 0; k < n; k++)
                        sum = sum + a[i * n + k] * b[k * n + j];
                    c[i * n + j] = sum;
                }
            return (int) c[21];
        }
    ";
    let c = Compiler::new().compile(SRC).unwrap();
    let r = c.run_wm("main", &[]).unwrap();
    assert_eq!(r.ret_int, 40, "20 × (1.0 * 2.0)");
    let s = c.stats_for("main").unwrap();
    assert!(
        s.streaming.streams_in >= 2,
        "row and column both stream: {:?}",
        s.streaming
    );
    // the column stream uses the 8·n = 160-byte stride
    let l = c.listing("main").unwrap();
    assert!(l.contains(",160"), "column stride in listing: {l}");
}
