//! Criterion benches over the paper's experiments: each bench measures the
//! simulated-cycle computation end to end (compile + simulate), one group
//! per table. The interesting output is the per-row simulated cycle counts
//! printed by the table binaries; these benches track the harness itself.

use criterion::{criterion_group, criterion_main, Criterion};
use wm_stream::{Compiler, MachineModel, OptOptions, Target};

fn bench_compile(c: &mut Criterion) {
    let src = wm_stream::workloads::livermore5().source;
    c.bench_function("compile_livermore5_wm", |b| {
        b.iter(|| {
            Compiler::new()
                .compile(std::hint::black_box(src))
                .expect("compiles")
        })
    });
    c.bench_function("compile_livermore5_scalar", |b| {
        b.iter(|| {
            Compiler::new()
                .target(Target::Scalar)
                .compile(std::hint::black_box(src))
                .expect("compiles")
        })
    });
}

fn bench_simulate(c: &mut Criterion) {
    // a small, fixed workload so the bench finishes quickly
    const SRC: &str = r"
        double a[2000]; double b[2000];
        int main() {
            int i; double s;
            for (i = 0; i < 2000; i++) { a[i] = 1.0; b[i] = 0.5; }
            s = 0.0;
            for (i = 0; i < 2000; i++) s = s + a[i] * b[i];
            return (int) s;
        }
    ";
    let streamed = Compiler::new().compile(SRC).unwrap();
    let scalar = Compiler::new()
        .options(OptOptions::all().without_streaming())
        .compile(SRC)
        .unwrap();
    c.bench_function("simulate_dot2000_streamed", |b| {
        b.iter(|| streamed.run_wm("main", &[]).expect("runs"))
    });
    c.bench_function("simulate_dot2000_scalar_wm", |b| {
        b.iter(|| scalar.run_wm("main", &[]).expect("runs"))
    });
    let sun = Compiler::new().target(Target::Scalar).compile(SRC).unwrap();
    c.bench_function("simulate_dot2000_sun3", |b| {
        b.iter(|| {
            sun.run_scalar("main", &[], &MachineModel::sun_3_280())
                .expect("runs")
        })
    });
    // an elementwise map on the VEU
    const MAP: &str = r"
        double a[2000]; double b[2000]; double c[2000];
        int main() {
            int i;
            for (i = 0; i < 2000; i++) { a[i] = 1.0; b[i] = 0.5; }
            for (i = 0; i < 2000; i++) c[i] = a[i] * b[i];
            return (int) c[1999];
        }
    ";
    let vector = Compiler::new()
        .options(OptOptions::all().with_vectorization())
        .compile(MAP)
        .unwrap();
    c.bench_function("simulate_map2000_veu", |b| {
        b.iter(|| vector.run_wm("main", &[]).expect("runs"))
    });
}

criterion_group!(benches, bench_compile, bench_simulate);
criterion_main!(benches);
