//! A small convenience layer for emitting RTLs into a function.

use crate::expr::{Operand, RExpr};
use crate::func::{Function, Label};
use crate::inst::{InstId, InstKind};
use crate::ops::{BinOp, CmpOp, UnOp};
use crate::reg::{Reg, RegClass};

/// Builder that tracks a *current block* and provides one-line emitters.
///
/// # Example
///
/// ```
/// use wm_ir::{FuncBuilder, RegClass, BinOp, Operand};
///
/// let mut b = FuncBuilder::new("add2", 1, 0);
/// let x = b.func().params[0];
/// let r = b.bin(BinOp::Add, x.into(), Operand::Imm(2));
/// b.ret_value(Some(r));
/// let f = b.finish();
/// assert_eq!(f.inst_count(), 2);
/// ```
#[derive(Debug)]
pub struct FuncBuilder {
    func: Function,
    current: Label,
}

impl FuncBuilder {
    /// Start building a function; the current block is the entry block.
    pub fn new(name: impl Into<String>, n_int_args: usize, n_flt_args: usize) -> FuncBuilder {
        let func = Function::new(name, n_int_args, n_flt_args);
        let current = func.entry_label();
        FuncBuilder { func, current }
    }

    /// The function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// Mutable access to the function under construction.
    pub fn func_mut(&mut self) -> &mut Function {
        &mut self.func
    }

    /// Finish and return the function.
    pub fn finish(self) -> Function {
        self.func
    }

    /// The label of the block instructions are currently appended to.
    pub fn current(&self) -> Label {
        self.current
    }

    /// Create a new block (does not switch to it).
    pub fn new_block(&mut self) -> Label {
        self.func.add_block()
    }

    /// Switch emission to `label`.
    pub fn switch_to(&mut self, label: Label) {
        self.current = label;
    }

    /// Allocate a virtual register.
    pub fn vreg(&mut self, class: RegClass) -> Reg {
        self.func.new_vreg(class)
    }

    /// Emit a raw instruction kind.
    pub fn emit(&mut self, kind: InstKind) -> InstId {
        self.func.push(self.current, kind)
    }

    /// Emit `dst := src` for an arbitrary expression.
    pub fn assign(&mut self, dst: Reg, src: RExpr) -> InstId {
        self.emit(InstKind::Assign { dst, src })
    }

    /// Emit a copy `dst := src`.
    pub fn copy(&mut self, dst: Reg, src: Operand) -> InstId {
        self.assign(dst, RExpr::Op(src))
    }

    /// Emit a binary operation into a fresh register of the proper class.
    pub fn bin(&mut self, op: BinOp, a: Operand, b: Operand) -> Reg {
        let class = if op.is_float() {
            RegClass::Flt
        } else {
            RegClass::Int
        };
        let dst = self.vreg(class);
        self.assign(dst, RExpr::Bin(op, a, b));
        dst
    }

    /// Emit a unary operation into a fresh register of the proper class.
    pub fn un(&mut self, op: UnOp, a: Operand) -> Reg {
        let class = if op.result_is_float() {
            RegClass::Flt
        } else {
            RegClass::Int
        };
        let dst = self.vreg(class);
        self.assign(dst, RExpr::Un(op, a));
        dst
    }

    /// Emit a compare followed by a conditional branch to `target` when the
    /// comparison holds, `els` otherwise.
    pub fn branch_if(
        &mut self,
        class: RegClass,
        op: CmpOp,
        a: Operand,
        b: Operand,
        target: Label,
        els: Label,
    ) {
        self.emit(InstKind::Compare { class, op, a, b });
        self.emit(InstKind::Branch {
            class,
            when: true,
            target,
            els,
        });
    }

    /// Emit an unconditional jump.
    pub fn jump(&mut self, target: Label) {
        self.emit(InstKind::Jump { target });
    }

    /// Emit a return; if `value` is given, it is first copied into the
    /// return-value convention register's virtual stand-in (the caller of
    /// this builder handles conventions — here we just record the use by
    /// returning through `Ret` after the copy).
    pub fn ret_value(&mut self, value: Option<Reg>) {
        if let Some(_v) = value {
            // The frontend lowers return values onto the convention; at the
            // builder level Ret simply terminates.
        }
        self.emit(InstKind::Ret);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_emits_into_current_block() {
        let mut b = FuncBuilder::new("f", 0, 0);
        let body = b.new_block();
        b.jump(body);
        b.switch_to(body);
        let t = b.bin(BinOp::Add, Operand::Imm(1), Operand::Imm(2));
        assert_eq!(t.class, RegClass::Int);
        b.emit(InstKind::Ret);
        let f = b.finish();
        assert_eq!(f.blocks[0].insts.len(), 1);
        assert_eq!(f.blocks[1].insts.len(), 2);
    }

    #[test]
    fn float_ops_get_float_registers() {
        let mut b = FuncBuilder::new("f", 0, 0);
        let t = b.bin(BinOp::FMul, Operand::FImm(1.0), Operand::FImm(2.0));
        assert_eq!(t.class, RegClass::Flt);
        let u = b.un(UnOp::IntToFlt, Operand::Imm(3));
        assert_eq!(u.class, RegClass::Flt);
        let v = b.un(UnOp::FltToInt, t.into());
        assert_eq!(v.class, RegClass::Int);
    }
}
