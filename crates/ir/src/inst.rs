//! Instructions: one RTL each.

use crate::expr::{MemRef, Operand, RExpr};
use crate::func::Label;
use crate::module::SymId;
use crate::ops::{BinOp, CmpOp, Width};
use crate::reg::{Reg, RegClass};

/// Stable identifier of an instruction within its function.
///
/// Plays the role of the paper's "line number where the memory reference
/// occurred" (`lno`) in the partition vectors of the recurrence algorithm:
/// ids survive instruction insertion and deletion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

impl std::fmt::Display for InstId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// One of the WM data FIFOs, identified by unit and register index (0 or 1).
///
/// "In streaming mode, both register 0 and register 1 can be treated as
/// input/output FIFOs."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataFifo {
    /// Owning execution unit.
    pub class: RegClass,
    /// FIFO register index: 0 or 1.
    pub index: u8,
}

impl DataFifo {
    /// FIFO mapped to register `index` of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `index > 1`.
    pub fn new(class: RegClass, index: u8) -> DataFifo {
        assert!(index <= 1, "only registers 0 and 1 are FIFO-mapped");
        DataFifo { class, index }
    }

    /// The architected register this FIFO is mapped to.
    pub fn reg(self) -> Reg {
        Reg::phys(self.class, self.index)
    }
}

impl std::fmt::Display for DataFifo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.class.prefix(), self.index)
    }
}

/// An instruction: a stable id plus the RTL itself.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// Stable per-function id (the partition algorithm's `lno`).
    pub id: InstId,
    /// The RTL.
    pub kind: InstKind,
}

/// The RTL forms.
///
/// The *generic* memory forms (`GLoad`/`GStore`) are produced by the front
/// end and executed by the scalar machine models; the *WM* forms
/// (`WLoad`/`WStore`, streams) are produced by target expansion, where a
/// load "only computes an address; the destination is implicitly the input
/// FIFO".
#[derive(Debug, Clone, PartialEq)]
pub enum InstKind {
    /// `dst := expr`. Writing FIFO register 0 enqueues into the unit's
    /// output FIFO; reading FIFO register 0/1 dequeues.
    Assign { dst: Reg, src: RExpr },
    /// Load the address of global `sym` plus `disp` into `dst`
    /// (the `llh`/`sll` pair of the WM listings).
    LoadAddr { dst: Reg, sym: SymId, disp: i64 },
    /// Compare and enqueue the boolean into the unit's condition-code FIFO.
    Compare {
        class: RegClass,
        op: CmpOp,
        a: Operand,
        b: Operand,
    },
    /// Unconditional jump. Executed by the IFU at essentially zero cost.
    Jump { target: Label },
    /// Conditional jump: dequeue from `class`'s condition-code FIFO and
    /// branch to `target` if the value equals `when`, to `els` otherwise.
    /// Both targets are explicit; the linearizer materializes fallthrough.
    Branch {
        class: RegClass,
        when: bool,
        target: Label,
        els: Label,
    },
    /// `jNI` — jump to `target` if the stream feeding `fifo` is not
    /// exhausted, to `els` otherwise.
    BranchStream {
        fifo: DataFifo,
        target: Label,
        els: Label,
    },
    /// Call a function. Before register allocation `args`/`ret` are virtual
    /// registers; allocation lowers them onto the argument-register
    /// convention (`r2..`, `f2..`).
    Call {
        callee: SymId,
        args: Vec<Reg>,
        ret: Option<Reg>,
    },
    /// Return from the current function. The return value, if any, has been
    /// placed in the convention register.
    Ret,

    /// Generic load: `dst := mem`.
    GLoad { dst: Reg, mem: MemRef },
    /// Generic store: `mem := src`.
    GStore { src: Operand, mem: MemRef },

    /// WM load: compute `addr` (an IEU expression) and issue a memory read
    /// whose data is delivered to `fifo` (`l64f r31 := (r22<<3) + r24`).
    WLoad {
        fifo: DataFifo,
        addr: RExpr,
        width: Width,
    },
    /// WM store: compute `addr` and pair it with the next value enqueued in
    /// `unit`'s output FIFO (`s64f r31 := (r22<<3) + r21`).
    WStore {
        unit: RegClass,
        addr: RExpr,
        width: Width,
    },

    /// Configure a stream control unit to read `count` elements starting at
    /// `base` with byte `stride`, delivering into `fifo`.
    /// `count == None` requests an unbounded (infinite) stream.
    StreamIn {
        fifo: DataFifo,
        base: Operand,
        count: Option<Operand>,
        stride: Operand,
        width: Width,
        /// Is this the stream a `jNI` jump tests? Only a tested stream
        /// loads the IFU's termination counter: an untested stream's
        /// counter would go stale and corrupt a later loop on the same
        /// FIFO.
        tested: bool,
    },
    /// Configure a stream control unit to write elements dequeued from
    /// `fifo`'s output side to memory.
    StreamOut {
        fifo: DataFifo,
        base: Operand,
        count: Option<Operand>,
        stride: Operand,
        width: Width,
    },
    /// Configure a stream control unit in *gather* mode: fetch `count`
    /// indices from `ibase` with byte stride `istride` (elements of width
    /// `iwidth`), and for each index `k` deliver the element of width
    /// `width` at `base + (k << shift)` into `fifo`. The index stream is
    /// internal to the SCU — it occupies no architected FIFO.
    StreamGather {
        fifo: DataFifo,
        base: Operand,
        /// Log2 byte scale applied to each index (0 for byte arrays,
        /// 2 for 32-bit elements, 3 for 64-bit elements).
        shift: u8,
        width: Width,
        ibase: Operand,
        istride: Operand,
        iwidth: Width,
        count: Operand,
        /// Cf. [`InstKind::StreamIn::tested`].
        tested: bool,
    },
    /// The scatter dual: pop `count` values from `fifo`'s unit output FIFO
    /// and store each to `base + (k << shift)` where `k` is the next index
    /// streamed from `ibase`.
    StreamScatter {
        fifo: DataFifo,
        base: Operand,
        shift: u8,
        width: Width,
        ibase: Operand,
        istride: Operand,
        iwidth: Width,
        count: Operand,
        /// Conservative byte extent of the scattered region starting at
        /// `base`; younger reads overlapping `[base, base+span)` must wait
        /// for the scatter (the individual store addresses are unknown
        /// until their indices arrive).
        span: i64,
    },
    /// Stop the stream feeding/draining `fifo` (used at the exits of loops
    /// whose trip count was unknown at compile time).
    StreamStop { fifo: DataFifo },

    // ---- inter-core channels (tiled machines) ----
    //
    // A tiled WM couples cores with point-to-point FIFO channels: a
    // core's out-stream feeds another core's in-stream, turning the
    // paper's access/execute FIFO mechanism into a communication
    // fabric. The scalar forms move one value; the stream forms
    // configure an SCU to pump a whole stream core-to-core without
    // occupying the execution units.
    /// Push the value of `src` into the channel toward tile `peer`
    /// (fire-and-forget: ignores channel credits, so a runaway sender
    /// can overrun the receiver — the overrun poisons the entry).
    ChanSend {
        peer: u8,
        src: Operand,
        class: RegClass,
    },
    /// Pop the next value sent by tile `peer` into `dst`; stalls until
    /// one is available.
    ChanRecv { peer: u8, dst: Reg },
    /// Configure an SCU to pop `count` elements from `fifo`'s input
    /// side and send each to tile `peer` (respecting channel credits).
    /// Paired with a concurrent `StreamIn` on the same FIFO this is a
    /// zero-instruction core-to-core DMA.
    StreamSend {
        peer: u8,
        fifo: DataFifo,
        count: Operand,
    },
    /// Configure an SCU to receive `count` elements from tile `peer`
    /// into `fifo`'s input side (no memory traffic).
    StreamRecv {
        peer: u8,
        fifo: DataFifo,
        count: Operand,
        /// Cf. [`InstKind::StreamIn::tested`].
        tested: bool,
    },

    // ---- vector execution unit ----
    //
    // "The architecture also supports vector operations … Each vector
    // register contains N components." Streams can deliver "to the IEU
    // FIFOs, the FEU FIFOs, or the VEU"; these instructions move whole
    // N-element groups between the VEU's stream ports and its vector
    // registers and operate on them elementwise.
    /// Configure a stream of `count` doubles into VEU input port `port`.
    /// `vectors` carries the number of N-element groups the loop will
    /// consume; it loads the IFU's vector-termination counter (cf.
    /// `StreamIn::tested`).
    VStreamIn {
        port: u8,
        base: Operand,
        count: Operand,
        stride: Operand,
        vectors: Operand,
    },
    /// Configure a stream draining the VEU output FIFO to memory.
    VStreamOut {
        base: Operand,
        count: Operand,
        stride: Operand,
    },
    /// Pop N elements from VEU input port `port` into vector register
    /// `vreg`.
    VLoad { vreg: u8, port: u8 },
    /// Push vector register `vreg`'s N elements into the VEU output FIFO.
    VStore { vreg: u8 },
    /// Elementwise `dst[k] := a[k] op b[k]` (floating point).
    VecBin { op: BinOp, dst: u8, a: u8, b: u8 },
    /// Splat an immediate into every component of `dst`.
    VecBroadcast { dst: u8, value: f64 },
    /// Jump to `target` while the VEU's vector-termination counter is not
    /// exhausted, `els` otherwise.
    BranchVec { target: Label, els: Label },

    /// No operation (used transiently by transformation passes).
    Nop,
}

/// A view of the memory behaviour of an instruction, unifying the generic
/// and WM forms for the partition-building analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum MemAccess<'a> {
    /// Generic structured reference.
    Generic { mem: &'a MemRef, is_load: bool },
    /// WM address-expression reference.
    Wm {
        addr: &'a RExpr,
        width: Width,
        is_load: bool,
        fifo: Option<DataFifo>,
    },
}

impl MemAccess<'_> {
    /// Is this access a read?
    pub fn is_load(&self) -> bool {
        match self {
            MemAccess::Generic { is_load, .. } => *is_load,
            MemAccess::Wm { is_load, .. } => *is_load,
        }
    }

    /// Access width in bytes.
    pub fn width(&self) -> Width {
        match self {
            MemAccess::Generic { mem, .. } => mem.width,
            MemAccess::Wm { width, .. } => *width,
        }
    }
}

impl InstKind {
    /// Registers written by this RTL (including FIFO-mapped cells; liveness
    /// clients filter with [`Reg::is_fifo`] / [`Reg::is_zero`]).
    pub fn defs(&self) -> Vec<Reg> {
        match self {
            InstKind::Assign { dst, .. } => vec![*dst],
            InstKind::LoadAddr { dst, .. } => vec![*dst],
            InstKind::GLoad { dst, mem } => {
                let mut v = vec![*dst];
                v.extend(mem.auto_def());
                v
            }
            InstKind::GStore { mem, .. } => mem.auto_def().into_iter().collect(),
            InstKind::Call { ret, .. } => ret.iter().copied().collect(),
            InstKind::ChanRecv { dst, .. } => vec![*dst],
            _ => Vec::new(),
        }
    }

    /// Registers read by this RTL.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            InstKind::Assign { src, .. } => src.regs().collect(),
            InstKind::Compare { a, b, .. } => a.reg().into_iter().chain(b.reg()).collect(),
            InstKind::GLoad { mem, .. } => mem.regs().collect(),
            InstKind::GStore { src, mem } => src.reg().into_iter().chain(mem.regs()).collect(),
            InstKind::WLoad { addr, .. } => addr.regs().collect(),
            InstKind::WStore { addr, .. } => addr.regs().collect(),
            InstKind::StreamIn {
                base,
                count,
                stride,
                ..
            }
            | InstKind::StreamOut {
                base,
                count,
                stride,
                ..
            } => base
                .reg()
                .into_iter()
                .chain(count.and_then(|c| c.reg()))
                .chain(stride.reg())
                .collect(),
            InstKind::StreamGather {
                base,
                ibase,
                istride,
                count,
                ..
            }
            | InstKind::StreamScatter {
                base,
                ibase,
                istride,
                count,
                ..
            } => base
                .reg()
                .into_iter()
                .chain(ibase.reg())
                .chain(istride.reg())
                .chain(count.reg())
                .collect(),
            InstKind::VStreamIn {
                base,
                count,
                stride,
                vectors,
                ..
            } => base
                .reg()
                .into_iter()
                .chain(count.reg())
                .chain(stride.reg())
                .chain(vectors.reg())
                .collect(),
            InstKind::VStreamOut {
                base,
                count,
                stride,
            } => base
                .reg()
                .into_iter()
                .chain(count.reg())
                .chain(stride.reg())
                .collect(),
            InstKind::Call { args, .. } => args.clone(),
            InstKind::ChanSend { src, .. } => src.reg().into_iter().collect(),
            InstKind::StreamSend { count, .. } | InstKind::StreamRecv { count, .. } => {
                count.reg().into_iter().collect()
            }
            _ => Vec::new(),
        }
    }

    /// The memory access performed, if any. Stream configuration
    /// instructions are not themselves accesses.
    pub fn mem_access(&self) -> Option<MemAccess<'_>> {
        match self {
            InstKind::GLoad { mem, .. } => Some(MemAccess::Generic { mem, is_load: true }),
            InstKind::GStore { mem, .. } => Some(MemAccess::Generic {
                mem,
                is_load: false,
            }),
            InstKind::WLoad { addr, width, fifo } => Some(MemAccess::Wm {
                addr,
                width: *width,
                is_load: true,
                fifo: Some(*fifo),
            }),
            InstKind::WStore { addr, width, .. } => Some(MemAccess::Wm {
                addr,
                width: *width,
                is_load: false,
                fifo: None,
            }),
            _ => None,
        }
    }

    /// Does this RTL end a basic block?
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            InstKind::Jump { .. }
                | InstKind::Branch { .. }
                | InstKind::BranchStream { .. }
                | InstKind::BranchVec { .. }
                | InstKind::Ret
        )
    }

    /// All control-flow targets of this instruction (empty for non-jumps;
    /// taken target first for conditional branches).
    pub fn targets(&self) -> Vec<Label> {
        match self {
            InstKind::Jump { target } => vec![*target],
            InstKind::Branch { target, els, .. }
            | InstKind::BranchStream { target, els, .. }
            | InstKind::BranchVec { target, els } => vec![*target, *els],
            _ => Vec::new(),
        }
    }

    /// Mutable references to every control-flow target.
    pub fn targets_mut(&mut self) -> Vec<&mut Label> {
        match self {
            InstKind::Jump { target } => vec![target],
            InstKind::Branch { target, els, .. }
            | InstKind::BranchStream { target, els, .. }
            | InstKind::BranchVec { target, els } => vec![target, els],
            _ => Vec::new(),
        }
    }

    /// Replace register `from` with operand `to` in every *use* position.
    /// Definitions are left untouched.
    pub fn substitute_use(&mut self, from: Reg, to: Operand) {
        let fix = |op: &mut Operand| {
            if *op == Operand::Reg(from) {
                *op = to;
            }
        };
        match self {
            InstKind::Assign { src, .. } => src.substitute(from, to),
            InstKind::Compare { a, b, .. } => {
                fix(a);
                fix(b);
            }
            InstKind::WLoad { addr, .. } | InstKind::WStore { addr, .. } => {
                addr.substitute(from, to)
            }
            InstKind::GStore { src, .. } => fix(src),
            InstKind::StreamIn {
                base,
                count,
                stride,
                ..
            }
            | InstKind::StreamOut {
                base,
                count,
                stride,
                ..
            } => {
                fix(base);
                fix(stride);
                if let Some(c) = count {
                    fix(c);
                }
            }
            InstKind::StreamGather {
                base,
                ibase,
                istride,
                count,
                ..
            }
            | InstKind::StreamScatter {
                base,
                ibase,
                istride,
                count,
                ..
            } => {
                fix(base);
                fix(ibase);
                fix(istride);
                fix(count);
            }
            InstKind::VStreamIn {
                base,
                count,
                stride,
                vectors,
                ..
            } => {
                fix(base);
                fix(count);
                fix(stride);
                fix(vectors);
            }
            InstKind::VStreamOut {
                base,
                count,
                stride,
            } => {
                fix(base);
                fix(count);
                fix(stride);
            }
            InstKind::ChanSend { src, .. } => fix(src),
            InstKind::StreamSend { count, .. } | InstKind::StreamRecv { count, .. } => fix(count),
            // GLoad/GStore address registers and call arguments must remain
            // registers; substitution there is only legal reg-for-reg.
            InstKind::GLoad { mem, .. } => {
                if let Operand::Reg(to) = to {
                    substitute_mem_reg(mem, from, to);
                }
            }
            InstKind::Call { args, .. } => {
                if let Operand::Reg(to) = to {
                    for a in args.iter_mut() {
                        if *a == from {
                            *a = to;
                        }
                    }
                }
            }
            _ => {}
        }
        // GStore address registers.
        if let InstKind::GStore { mem, .. } = self {
            if let Operand::Reg(to) = to {
                substitute_mem_reg(mem, from, to);
            }
        }
    }

    /// Does this instruction have side effects beyond its register defs
    /// (memory, control flow, FIFO traffic, condition codes)?
    pub fn has_side_effects(&self) -> bool {
        match self {
            InstKind::Assign { dst, src } => {
                // Writing a FIFO register enqueues; reading one dequeues.
                dst.is_fifo() || src.regs().any(Reg::is_fifo)
            }
            InstKind::LoadAddr { .. } => false,
            InstKind::GLoad { mem, .. } => mem.auto_def().is_some(),
            _ => true,
        }
    }
}

fn substitute_mem_reg(mem: &mut MemRef, from: Reg, to: Reg) {
    if mem.base == Some(from) {
        mem.base = Some(to);
    }
    if let Some((r, s)) = mem.index {
        if r == from {
            mem.index = Some((to, s));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::BinOp;

    fn r(n: u32) -> Reg {
        Reg::virt(RegClass::Int, n)
    }

    #[test]
    fn defs_and_uses_assign() {
        let k = InstKind::Assign {
            dst: r(1),
            src: RExpr::Bin(BinOp::Add, r(2).into(), r(3).into()),
        };
        assert_eq!(k.defs(), vec![r(1)]);
        assert_eq!(k.uses(), vec![r(2), r(3)]);
    }

    #[test]
    fn defs_and_uses_memory_forms() {
        let g = InstKind::GLoad {
            dst: r(1),
            mem: MemRef::base(r(2), 0, Width::D8),
        };
        assert_eq!(g.defs(), vec![r(1)]);
        assert_eq!(g.uses(), vec![r(2)]);
        assert!(g.mem_access().unwrap().is_load());

        let w = InstKind::WStore {
            unit: RegClass::Flt,
            addr: RExpr::Bin(BinOp::Add, r(3).into(), Operand::Imm(8)),
            width: Width::D8,
        };
        assert!(w.defs().is_empty());
        assert_eq!(w.uses(), vec![r(3)]);
        assert!(!w.mem_access().unwrap().is_load());
        assert_eq!(w.mem_access().unwrap().width(), Width::D8);
    }

    #[test]
    fn terminator_classification() {
        assert!(InstKind::Ret.is_terminator());
        assert!(!InstKind::Nop.is_terminator());
        let b = InstKind::Branch {
            class: RegClass::Int,
            when: true,
            target: Label(3),
            els: Label(4),
        };
        assert!(b.is_terminator());
        assert_eq!(b.targets(), vec![Label(3), Label(4)]);
        let j = InstKind::Jump { target: Label(1) };
        assert_eq!(j.targets(), vec![Label(1)]);
        assert!(InstKind::Ret.targets().is_empty());
    }

    #[test]
    fn substitute_uses_only() {
        let mut k = InstKind::Assign {
            dst: r(1),
            src: RExpr::Op(Operand::Reg(r(1))),
        };
        k.substitute_use(r(1), Operand::Imm(7));
        match k {
            InstKind::Assign { dst, src } => {
                assert_eq!(dst, r(1)); // def untouched
                assert_eq!(src, RExpr::Op(Operand::Imm(7)));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn fifo_traffic_is_a_side_effect() {
        let enq = InstKind::Assign {
            dst: Reg::flt(0),
            src: RExpr::Op(Operand::Reg(Reg::flt(22))),
        };
        assert!(enq.has_side_effects());
        let deq = InstKind::Assign {
            dst: Reg::flt(22),
            src: RExpr::Op(Operand::Reg(Reg::flt(0))),
        };
        assert!(deq.has_side_effects());
        let plain = InstKind::Assign {
            dst: r(1),
            src: RExpr::Op(Operand::Imm(0)),
        };
        assert!(!plain.has_side_effects());
    }

    #[test]
    #[should_panic(expected = "FIFO-mapped")]
    fn datafifo_index_checked() {
        let _ = DataFifo::new(RegClass::Flt, 2);
    }

    #[test]
    fn stream_uses() {
        let s = InstKind::StreamIn {
            fifo: DataFifo::new(RegClass::Flt, 1),
            base: r(6).into(),
            count: Some(r(5).into()),
            stride: Operand::Imm(8),
            width: Width::D8,
            tested: false,
        };
        assert_eq!(s.uses(), vec![r(6), r(5)]);
        assert!(s.defs().is_empty());
    }
}
