//! Register transfer list (RTL) intermediate representation.
//!
//! The compiler described in the paper operates on *register transfer lists*:
//! expressions and assignments over the hardware's storage cells, e.g.
//!
//! ```text
//! r[3] = (r[4] * r[5]) + r[6];
//! ```
//!
//! "Any particular RTL is machine specific, but the form of the RTL is
//! machine independent. The optimizer uses RTLs because their
//! machine-independent form permits it to optimize machine-specific code in a
//! machine-independent way."
//!
//! This crate provides that representation as structured data:
//!
//! * [`Reg`], [`Operand`], [`RExpr`] — storage cells and expressions,
//!   including the WM dual-operation form `(a op1 b) op2 c`;
//! * [`Inst`] / [`InstKind`] — one RTL, covering both the *generic*
//!   load/store form used before target expansion (and by the scalar
//!   machines of Table I) and the *WM access/execute* form where loads
//!   compute an address and deliver data through FIFO register 0/1;
//! * [`Function`], [`Block`], [`Module`] — the control-flow container;
//! * a paper-style pretty printer (`Display` impls) so listings can be
//!   compared with Figures 4, 5, 6 and 7 of the paper.
//!
//! # Example
//!
//! ```
//! use wm_ir::{Function, RegClass, RExpr, Operand, BinOp};
//!
//! let mut f = Function::new("demo", 0, 0);
//! let entry = f.entry_label();
//! let v = f.new_vreg(RegClass::Int);
//! let one = Operand::Imm(1);
//! f.push(entry, wm_ir::InstKind::Assign {
//!     dst: v,
//!     src: RExpr::Bin(BinOp::Add, one, Operand::Imm(2)),
//! });
//! assert_eq!(f.block(entry).insts.len(), 1);
//! ```

mod builder;
mod display;
mod expr;
mod func;
mod inst;
mod module;
mod ops;
mod reg;

pub use builder::FuncBuilder;
pub use expr::{MemRef, Operand, RExpr};
pub use func::{Block, Function, Label};
pub use inst::{DataFifo, Inst, InstId, InstKind, MemAccess};
pub use module::{Global, GlobalKind, Module, SymId};
pub use ops::{AutoMode, BinOp, CmpOp, UnOp, Width};
pub use reg::{Reg, RegClass, FIRST_ARG_REG, NUM_ARG_REGS, NUM_PHYS, SP_REG, ZERO_REG};
