//! Registers: the storage cells RTLs are written over.
//!
//! The WM scalar execution units (IEU and FEU) each have 32 registers.
//! Register 31 is hard-wired to zero and register 0 is a pair of FIFO queues
//! buffering data to and from memory; in streaming mode register 1 is a FIFO
//! as well. Before register allocation the compiler uses an unbounded supply
//! of *virtual* registers of each class.

use std::fmt;

/// The two scalar register classes, corresponding to the two scalar
/// execution units of the WM architecture (integer and floating point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// Integer execution unit (IEU) registers `r0..r31`.
    Int,
    /// Floating-point execution unit (FEU) registers `f0..f31`.
    Flt,
}

impl RegClass {
    /// The single-letter prefix used in listings (`r` or `f`).
    pub fn prefix(self) -> char {
        match self {
            RegClass::Int => 'r',
            RegClass::Flt => 'f',
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Flt => write!(f, "flt"),
        }
    }
}

/// A register: either one of the 32 architected registers of a class
/// (`Phys`) or a compiler temporary (`Virt`) awaiting allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegKind {
    /// Architected register `0..=31`.
    Phys(u8),
    /// Virtual register, unbounded supply.
    Virt(u32),
}

/// A storage cell of one of the scalar units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg {
    /// Which unit's register file the cell belongs to.
    pub class: RegClass,
    /// Physical number or virtual id.
    pub kind: RegKind,
}

/// Number of architected registers per class.
pub const NUM_PHYS: u8 = 32;
/// The register number hard-wired to zero (reads as 0, writes discarded).
pub const ZERO_REG: u8 = 31;
/// The stack pointer lives in `r30` by software convention.
pub const SP_REG: u8 = 30;
/// First architected register used to pass arguments (`r2`/`f2`).
pub const FIRST_ARG_REG: u8 = 2;
/// Number of argument registers per class (`r2..=r7`, `f2..=f7`).
pub const NUM_ARG_REGS: u8 = 6;

impl Reg {
    /// An architected (physical) register.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn phys(class: RegClass, n: u8) -> Reg {
        assert!(n < NUM_PHYS, "physical register number out of range: {n}");
        Reg {
            class,
            kind: RegKind::Phys(n),
        }
    }

    /// A virtual register awaiting allocation.
    pub fn virt(class: RegClass, id: u32) -> Reg {
        Reg {
            class,
            kind: RegKind::Virt(id),
        }
    }

    /// Integer register `r{n}`.
    pub fn int(n: u8) -> Reg {
        Reg::phys(RegClass::Int, n)
    }

    /// Floating-point register `f{n}`.
    pub fn flt(n: u8) -> Reg {
        Reg::phys(RegClass::Flt, n)
    }

    /// The zero register of `class` (`r31` / `f31`).
    pub fn zero(class: RegClass) -> Reg {
        Reg::phys(class, ZERO_REG)
    }

    /// The stack pointer (`r30`).
    pub fn sp() -> Reg {
        Reg::phys(RegClass::Int, SP_REG)
    }

    /// Is this the zero register of its class?
    pub fn is_zero(self) -> bool {
        self.kind == RegKind::Phys(ZERO_REG)
    }

    /// Is this register 0 or 1, i.e. a FIFO-mapped cell on the WM?
    ///
    /// A read of such a register dequeues from the unit's input FIFO; a
    /// write enqueues into the unit's output FIFO. These cells carry no
    /// conventional value and are excluded from liveness and allocation.
    pub fn is_fifo(self) -> bool {
        matches!(self.kind, RegKind::Phys(0) | RegKind::Phys(1))
    }

    /// Is this a virtual register?
    pub fn is_virt(self) -> bool {
        matches!(self.kind, RegKind::Virt(_))
    }

    /// Physical register number, if physical.
    pub fn phys_num(self) -> Option<u8> {
        match self.kind {
            RegKind::Phys(n) => Some(n),
            RegKind::Virt(_) => None,
        }
    }

    /// Virtual register id, if virtual.
    pub fn virt_id(self) -> Option<u32> {
        match self.kind {
            RegKind::Virt(v) => Some(v),
            RegKind::Phys(_) => None,
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            RegKind::Phys(n) => write!(f, "{}{}", self.class.prefix(), n),
            RegKind::Virt(v) => write!(f, "{}v{}", self.class.prefix(), v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Reg::int(22).to_string(), "r22");
        assert_eq!(Reg::flt(0).to_string(), "f0");
        assert_eq!(Reg::virt(RegClass::Flt, 7).to_string(), "fv7");
    }

    #[test]
    fn zero_and_fifo_classification() {
        assert!(Reg::int(31).is_zero());
        assert!(!Reg::int(30).is_zero());
        assert!(Reg::flt(0).is_fifo());
        assert!(Reg::flt(1).is_fifo());
        assert!(!Reg::flt(2).is_fifo());
        assert!(!Reg::virt(RegClass::Int, 0).is_fifo());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn phys_register_range_checked() {
        let _ = Reg::int(32);
    }

    #[test]
    fn accessors() {
        assert_eq!(Reg::int(5).phys_num(), Some(5));
        assert_eq!(Reg::int(5).virt_id(), None);
        let v = Reg::virt(RegClass::Flt, 9);
        assert_eq!(v.virt_id(), Some(9));
        assert!(v.is_virt());
        assert_eq!(Reg::sp(), Reg::int(30));
    }
}
