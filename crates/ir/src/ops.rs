//! Operators and memory access widths.

use std::fmt;

/// Binary operators available to the paired pipelined ALUs.
///
/// The same enum serves integer and floating-point RTLs; the register class
/// of the operands determines which unit executes the operation. Floating
/// point variants are spelled out (`FAdd`, ...) so that constant folding and
/// the simulator do not have to guess operand types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    /// Arithmetic shift right.
    Shr,
    And,
    Or,
    Xor,
    FAdd,
    FSub,
    FMul,
    FDiv,
}

impl BinOp {
    /// Does this operator work on floating-point values?
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }

    /// Is the operator commutative?
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::FAdd
                | BinOp::FMul
        )
    }

    /// Fold two integer constants. Returns `None` for division by zero
    /// or a float operator.
    pub fn fold_int(self, a: i64, b: i64) -> Option<i64> {
        Some(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            BinOp::Rem => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv => return None,
        })
    }

    /// Fold two floating-point constants. Returns `None` for an integer
    /// operator.
    pub fn fold_flt(self, a: f64, b: f64) -> Option<f64> {
        Some(match self {
            BinOp::FAdd => a + b,
            BinOp::FSub => a - b,
            BinOp::FMul => a * b,
            BinOp::FDiv => a / b,
            _ => return None,
        })
    }

    /// The symbol used by the paper-style pretty printer.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add | BinOp::FAdd => "+",
            BinOp::Sub | BinOp::FSub => "-",
            BinOp::Mul | BinOp::FMul => "*",
            BinOp::Div | BinOp::FDiv => "/",
            BinOp::Rem => "%",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Floating-point negation.
    FNeg,
    /// Convert an integer register value to floating point.
    IntToFlt,
    /// Truncate a floating-point register value to an integer.
    FltToInt,
}

impl UnOp {
    /// Does the *result* live in a floating-point register?
    pub fn result_is_float(self) -> bool {
        matches!(self, UnOp::FNeg | UnOp::IntToFlt)
    }

    /// Does the *operand* live in a floating-point register?
    pub fn operand_is_float(self) -> bool {
        matches!(self, UnOp::FNeg | UnOp::FltToInt)
    }

    /// The prefix symbol used by the pretty printer.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg | UnOp::FNeg => "-",
            UnOp::Not => "~",
            UnOp::IntToFlt => "(double)",
            UnOp::FltToInt => "(int)",
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Comparison operators for `Compare` RTLs.
///
/// A compare is executed by the unit owning its operands and enqueues a
/// boolean into that unit's condition-code FIFO, to be consumed by the IFU
/// when it executes a conditional jump.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// The comparison with operands swapped (`a op b` ⇔ `b op.swap() a`).
    pub fn swap(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation (`!(a op b)` ⇔ `a op.negate() b`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Evaluate on integers.
    pub fn eval_int(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Evaluate on floats.
    pub fn eval_flt(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The symbol used by the pretty printer.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Width {
    /// One byte (char). Loaded zero-extended.
    B1,
    /// Four bytes (int / pointer). Loaded sign-extended.
    W4,
    /// Eight bytes (double).
    D8,
}

impl Width {
    /// Size in bytes.
    pub fn bytes(self) -> i64 {
        match self {
            Width::B1 => 1,
            Width::W4 => 4,
            Width::D8 => 8,
        }
    }

    /// `log2(bytes)`, the shift amount used in scaled address arithmetic.
    pub fn shift(self) -> i64 {
        match self {
            Width::B1 => 0,
            Width::W4 => 2,
            Width::D8 => 3,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Width::B1 => write!(f, "8"),
            Width::W4 => write!(f, "32"),
            Width::D8 => write!(f, "64"),
        }
    }
}

/// Auto-modification addressing for the scalar (68020-style) target.
///
/// The instruction-selection phase of the retargeted compiler "determined
/// that auto-increment addressing modes could be used to fetch the memory
/// operands at the top of the loop" (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AutoMode {
    /// Plain access.
    #[default]
    None,
    /// `a@+`: access then increment the base register by the access width.
    PostInc,
    /// `a@-`: decrement the base register by the access width, then access.
    PreDec,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_folding() {
        assert_eq!(BinOp::Add.fold_int(2, 3), Some(5));
        assert_eq!(BinOp::Shl.fold_int(1, 3), Some(8));
        assert_eq!(BinOp::Div.fold_int(7, 0), None);
        assert_eq!(BinOp::Rem.fold_int(7, 0), None);
        assert_eq!(BinOp::FAdd.fold_int(1, 2), None);
        assert_eq!(BinOp::Sub.fold_int(i64::MIN, 1), Some(i64::MAX));
    }

    #[test]
    fn flt_folding() {
        assert_eq!(BinOp::FMul.fold_flt(2.0, 4.0), Some(8.0));
        assert_eq!(BinOp::Add.fold_flt(1.0, 1.0), None);
    }

    #[test]
    fn cmp_swap_negate_roundtrip() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.swap().swap(), op);
            assert_eq!(op.negate().negate(), op);
            // semantic checks on a sample
            for (a, b) in [(1i64, 2i64), (2, 2), (3, 2)] {
                assert_eq!(op.eval_int(a, b), op.swap().eval_int(b, a));
                assert_eq!(op.eval_int(a, b), !op.negate().eval_int(a, b));
            }
        }
    }

    #[test]
    fn width_properties() {
        assert_eq!(Width::D8.bytes(), 8);
        assert_eq!(Width::D8.shift(), 3);
        assert_eq!(Width::W4.shift(), 2);
        assert_eq!(Width::B1.shift(), 0);
    }

    #[test]
    fn commutativity() {
        assert!(BinOp::Add.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(BinOp::FMul.is_commutative());
        assert!(!BinOp::FDiv.is_commutative());
    }
}
