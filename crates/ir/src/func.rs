//! Functions and basic blocks.

use crate::inst::{Inst, InstId, InstKind};
use crate::reg::{Reg, RegClass};

/// A basic-block label, stable across block insertion and deletion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u32);

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A basic block: a label and a straight-line sequence of RTLs. Only the
/// final RTL may be a terminator; a block whose last RTL falls through (or
/// that has no terminator at all) continues at the next block in layout
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The block's stable label.
    pub label: Label,
    /// The RTLs, in execution order.
    pub insts: Vec<Inst>,
}

impl Block {
    /// The terminator, if the block ends in one.
    pub fn terminator(&self) -> Option<&Inst> {
        self.insts.last().filter(|i| i.kind.is_terminator())
    }
}

/// A function: basic blocks in layout order (entry first) plus register and
/// frame bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (also its symbol name in the module).
    pub name: String,
    /// Basic blocks in layout order. `blocks[0]` is the entry block.
    pub blocks: Vec<Block>,
    /// Virtual registers that receive the arguments, in declaration order.
    /// Register allocation maps them onto the argument-register convention.
    pub params: Vec<Reg>,
    /// Bytes of stack frame for local arrays and spills.
    pub frame_size: i64,
    /// Virtual register holding the return value at each `Ret`, if the
    /// function returns one. Register allocation maps it onto the
    /// return-value convention register (`r2`/`f2`).
    pub ret: Option<Reg>,
    next_vreg: u32,
    next_inst: u32,
    next_label: u32,
}

impl Function {
    /// Create a function with `n_int_args` integer and `n_flt_args`
    /// floating-point parameters, and a single empty entry block.
    pub fn new(name: impl Into<String>, n_int_args: usize, n_flt_args: usize) -> Function {
        let mut f = Function {
            name: name.into(),
            blocks: Vec::new(),
            params: Vec::new(),
            frame_size: 0,
            ret: None,
            next_vreg: 0,
            next_inst: 0,
            next_label: 0,
        };
        f.add_block();
        for _ in 0..n_int_args {
            let r = f.new_vreg(RegClass::Int);
            f.params.push(r);
        }
        for _ in 0..n_flt_args {
            let r = f.new_vreg(RegClass::Flt);
            f.params.push(r);
        }
        f
    }

    /// The entry block's label.
    pub fn entry_label(&self) -> Label {
        self.blocks[0].label
    }

    /// Allocate a fresh virtual register.
    pub fn new_vreg(&mut self, class: RegClass) -> Reg {
        let r = Reg::virt(class, self.next_vreg);
        self.next_vreg += 1;
        r
    }

    /// Number of virtual registers ever allocated (ids are `0..count`).
    pub fn vreg_count(&self) -> u32 {
        self.next_vreg
    }

    /// Allocate a fresh instruction id (for passes that build instructions
    /// directly rather than via [`Function::push`]).
    pub fn new_inst_id(&mut self) -> InstId {
        let id = InstId(self.next_inst);
        self.next_inst += 1;
        id
    }

    /// Append a new empty block and return its label.
    pub fn add_block(&mut self) -> Label {
        let label = Label(self.next_label);
        self.next_label += 1;
        self.blocks.push(Block {
            label,
            insts: Vec::new(),
        });
        label
    }

    /// Index of the block with `label` in layout order.
    ///
    /// # Panics
    ///
    /// Panics if no block has that label.
    pub fn block_index(&self, label: Label) -> usize {
        self.blocks
            .iter()
            .position(|b| b.label == label)
            .unwrap_or_else(|| panic!("no block labelled {label} in {}", self.name))
    }

    /// The block with `label`.
    pub fn block(&self, label: Label) -> &Block {
        &self.blocks[self.block_index(label)]
    }

    /// The block with `label`, mutably.
    pub fn block_mut(&mut self, label: Label) -> &mut Block {
        let i = self.block_index(label);
        &mut self.blocks[i]
    }

    /// Append an RTL to the block labelled `label`, returning its id.
    pub fn push(&mut self, label: Label, kind: InstKind) -> InstId {
        debug_assert!(
            self.block(label).terminator().is_none(),
            "pushing past a terminator in block {label}"
        );
        let id = self.new_inst_id();
        self.block_mut(label).insts.push(Inst { id, kind });
        id
    }

    /// Successors of the block at `index` (block indices, taken target
    /// first). A block without a terminator falls through to the next block
    /// in layout order.
    pub fn successors(&self, index: usize) -> Vec<usize> {
        let block = &self.blocks[index];
        match block.insts.last() {
            Some(last) if last.kind.is_terminator() => {
                let mut out = Vec::with_capacity(2);
                for t in last.kind.targets() {
                    let i = self.block_index(t);
                    if !out.contains(&i) {
                        out.push(i);
                    }
                }
                out
            }
            _ if index + 1 < self.blocks.len() => vec![index + 1],
            _ => Vec::new(),
        }
    }

    /// Predecessor lists for every block, indexed in layout order.
    pub fn predecessors(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for i in 0..self.blocks.len() {
            for s in self.successors(i) {
                preds[s].push(i);
            }
        }
        preds
    }

    /// Iterate over every instruction in layout order.
    pub fn insts(&self) -> impl Iterator<Item = &Inst> {
        self.blocks.iter().flat_map(|b| b.insts.iter())
    }

    /// Iterate mutably over every instruction in layout order.
    pub fn insts_mut(&mut self) -> impl Iterator<Item = &mut Inst> {
        self.blocks.iter_mut().flat_map(|b| b.insts.iter_mut())
    }

    /// Total instruction count (Nops included).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Remove `Nop` instructions and unreachable blocks, preserving labels.
    pub fn compact(&mut self) {
        for b in &mut self.blocks {
            b.insts.retain(|i| i.kind != InstKind::Nop);
        }
        // Drop unreachable blocks (keep entry).
        let n = self.blocks.len();
        if n == 0 {
            return;
        }
        let mut reachable = vec![false; n];
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            if reachable[i] {
                continue;
            }
            reachable[i] = true;
            for s in self.successors(i) {
                stack.push(s);
            }
        }
        // A block that is unreachable but fallen *into* can't exist since
        // fallthrough is a successor edge; safe to drop them.
        let mut idx = 0;
        self.blocks.retain(|_| {
            let keep = reachable[idx];
            idx += 1;
            keep
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Operand, RExpr};

    #[test]
    fn entry_block_and_params() {
        let f = Function::new("f", 2, 1);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[0].class, RegClass::Int);
        assert_eq!(f.params[2].class, RegClass::Flt);
    }

    #[test]
    fn successors_fallthrough_and_branch() {
        let mut f = Function::new("f", 0, 0);
        let b0 = f.entry_label();
        let b1 = f.add_block();
        let b2 = f.add_block();
        // b0: branch to b2, else b1
        f.push(
            b0,
            InstKind::Branch {
                class: RegClass::Int,
                when: true,
                target: b2,
                els: b1,
            },
        );
        // b1: jump to b0
        f.push(b1, InstKind::Jump { target: b0 });
        // b2: ret
        f.push(b2, InstKind::Ret);
        assert_eq!(f.successors(0), vec![2, 1]);
        assert_eq!(f.successors(1), vec![0]);
        assert_eq!(f.successors(2), Vec::<usize>::new());
        let preds = f.predecessors();
        assert_eq!(preds[0], vec![1]);
        assert_eq!(preds[1], vec![0]);
        assert_eq!(preds[2], vec![0]);
    }

    #[test]
    fn empty_block_falls_through() {
        let mut f = Function::new("f", 0, 0);
        let _b1 = f.add_block();
        assert_eq!(f.successors(0), vec![1]);
    }

    #[test]
    fn compact_removes_nops_and_unreachable() {
        let mut f = Function::new("f", 0, 0);
        let b0 = f.entry_label();
        let dead = f.add_block();
        let live = f.add_block();
        f.push(b0, InstKind::Jump { target: live });
        f.push(dead, InstKind::Ret);
        f.push(live, InstKind::Nop);
        f.push(live, InstKind::Ret);
        f.compact();
        assert_eq!(f.blocks.len(), 2);
        assert_eq!(f.blocks[1].label, live);
        assert_eq!(f.blocks[1].insts.len(), 1);
    }

    #[test]
    fn inst_ids_are_unique() {
        let mut f = Function::new("f", 0, 0);
        let b = f.entry_label();
        let v = f.new_vreg(RegClass::Int);
        let i1 = f.push(
            b,
            InstKind::Assign {
                dst: v,
                src: RExpr::Op(Operand::Imm(1)),
            },
        );
        let i2 = f.push(
            b,
            InstKind::Assign {
                dst: v,
                src: RExpr::Op(Operand::Imm(2)),
            },
        );
        assert_ne!(i1, i2);
    }
}
