//! Operands and right-hand-side expressions of RTLs.

use crate::module::SymId;
use crate::ops::{AutoMode, BinOp, UnOp, Width};
use crate::reg::Reg;

/// A leaf operand of an RTL expression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// A register (reading FIFO register 0/1 dequeues from the unit's input
    /// FIFO on the WM).
    Reg(Reg),
    /// Integer immediate.
    Imm(i64),
    /// Floating-point immediate.
    FImm(f64),
}

impl Operand {
    /// The register, if this operand is one.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }

    /// The integer immediate, if this operand is one.
    pub fn imm(self) -> Option<i64> {
        match self {
            Operand::Imm(v) => Some(v),
            _ => None,
        }
    }

    /// Is this a constant (integer or float immediate)?
    pub fn is_const(self) -> bool {
        matches!(self, Operand::Imm(_) | Operand::FImm(_))
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Operand {
        Operand::Imm(v)
    }
}

impl From<f64> for Operand {
    fn from(v: f64) -> Operand {
        Operand::FImm(v)
    }
}

/// The right-hand side of an assignment RTL.
///
/// `Dual` is the WM two-operation form: "most instructions encode two
/// operations in a single 32-bit word … `R0 := (R1 op1 R2) op2 R3`". The
/// operation in parentheses is the *inner* operator, executed by ALU1; the
/// outer operator is executed by ALU2.
#[derive(Debug, Clone, PartialEq)]
pub enum RExpr {
    /// Plain copy or constant: `dst := a`.
    Op(Operand),
    /// Unary operation: `dst := op a`.
    Un(UnOp, Operand),
    /// Single binary operation: `dst := (a) op b`.
    Bin(BinOp, Operand, Operand),
    /// WM dual operation: `dst := (a inner b) outer c`.
    Dual {
        inner: BinOp,
        a: Operand,
        b: Operand,
        outer: BinOp,
        c: Operand,
    },
}

impl RExpr {
    /// Iterate over the leaf operands of the expression.
    pub fn operands(&self) -> impl Iterator<Item = Operand> + '_ {
        let slots: [Option<Operand>; 3] = match *self {
            RExpr::Op(a) => [Some(a), None, None],
            RExpr::Un(_, a) => [Some(a), None, None],
            RExpr::Bin(_, a, b) => [Some(a), Some(b), None],
            RExpr::Dual { a, b, c, .. } => [Some(a), Some(b), Some(c)],
        };
        slots.into_iter().flatten()
    }

    /// Iterate over the registers read by the expression.
    pub fn regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.operands().filter_map(Operand::reg)
    }

    /// Replace every occurrence of register `from` with operand `to`.
    pub fn substitute(&mut self, from: Reg, to: Operand) {
        let fix = |op: &mut Operand| {
            if *op == Operand::Reg(from) {
                *op = to;
            }
        };
        match self {
            RExpr::Op(a) | RExpr::Un(_, a) => fix(a),
            RExpr::Bin(_, a, b) => {
                fix(a);
                fix(b);
            }
            RExpr::Dual { a, b, c, .. } => {
                fix(a);
                fix(b);
                fix(c);
            }
        }
    }

    /// Is this a plain register-to-register copy? Returns the source.
    pub fn as_copy(&self) -> Option<Reg> {
        match self {
            RExpr::Op(Operand::Reg(r)) => Some(*r),
            _ => None,
        }
    }
}

/// A generic (pre-expansion / scalar-target) memory reference:
/// `[sym + base + (index << scale) + disp]`.
///
/// The WM form splits a reference into an address computation executed by
/// the IEU and a FIFO transfer; this structured form is what the front end
/// produces and what the scalar machines of Table I execute directly.
#[derive(Debug, Clone, PartialEq)]
pub struct MemRef {
    /// Static base symbol (a global), if any.
    pub sym: Option<SymId>,
    /// Dynamic base register, if any.
    pub base: Option<Reg>,
    /// Scaled index register: `index << scale`.
    pub index: Option<(Reg, u8)>,
    /// Constant displacement in bytes.
    pub disp: i64,
    /// Access width.
    pub width: Width,
    /// Auto-increment/-decrement mode (scalar target instruction selection).
    pub auto: AutoMode,
}

impl MemRef {
    /// A reference to a global symbol plus displacement.
    pub fn sym(sym: SymId, disp: i64, width: Width) -> MemRef {
        MemRef {
            sym: Some(sym),
            base: None,
            index: None,
            disp,
            width,
            auto: AutoMode::None,
        }
    }

    /// A reference through a base register.
    pub fn base(base: Reg, disp: i64, width: Width) -> MemRef {
        MemRef {
            sym: None,
            base: Some(base),
            index: None,
            disp,
            width,
            auto: AutoMode::None,
        }
    }

    /// Registers read to form the address (base and index).
    pub fn regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.base.into_iter().chain(self.index.map(|(r, _)| r))
    }

    /// Registers *written* by the access (auto-increment modifies the base).
    pub fn auto_def(&self) -> Option<Reg> {
        if self.auto == AutoMode::None {
            None
        } else {
            self.base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::RegClass;

    fn r(n: u32) -> Reg {
        Reg::virt(RegClass::Int, n)
    }

    #[test]
    fn operand_accessors() {
        assert_eq!(Operand::Imm(4).imm(), Some(4));
        assert_eq!(Operand::Imm(4).reg(), None);
        assert!(Operand::FImm(1.5).is_const());
        assert!(!Operand::Reg(r(0)).is_const());
        let o: Operand = r(3).into();
        assert_eq!(o.reg(), Some(r(3)));
    }

    #[test]
    fn expr_operand_iteration() {
        let e = RExpr::Dual {
            inner: BinOp::Shl,
            a: r(1).into(),
            b: Operand::Imm(3),
            outer: BinOp::Add,
            c: r(2).into(),
        };
        let regs: Vec<Reg> = e.regs().collect();
        assert_eq!(regs, vec![r(1), r(2)]);
        assert_eq!(e.operands().count(), 3);
    }

    #[test]
    fn substitution() {
        let mut e = RExpr::Bin(BinOp::Add, r(1).into(), r(1).into());
        e.substitute(r(1), Operand::Imm(9));
        assert_eq!(e, RExpr::Bin(BinOp::Add, Operand::Imm(9), Operand::Imm(9)));
    }

    #[test]
    fn copy_detection() {
        assert_eq!(RExpr::Op(Operand::Reg(r(4))).as_copy(), Some(r(4)));
        assert_eq!(RExpr::Op(Operand::Imm(4)).as_copy(), None);
    }

    #[test]
    fn memref_regs_and_auto() {
        let mut m = MemRef::base(r(1), 8, Width::D8);
        m.index = Some((r(2), 3));
        let regs: Vec<Reg> = m.regs().collect();
        assert_eq!(regs, vec![r(1), r(2)]);
        assert_eq!(m.auto_def(), None);
        m.auto = AutoMode::PostInc;
        assert_eq!(m.auto_def(), Some(r(1)));
    }
}
