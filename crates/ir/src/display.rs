//! Paper-style pretty printing of RTLs.
//!
//! The printer mimics the listings in Figures 4–7 of the paper: a mnemonic
//! column followed by the RTL in assignment notation, e.g.
//!
//! ```text
//! l64f    r31 := (r22<<3) + r24
//! double  f22 := (f0-f23) * f20
//! SinD    f1,r19,r24,8
//! JumpIF  L20
//! ```

use std::fmt;

use crate::expr::{MemRef, Operand, RExpr};
use crate::func::Function;
use crate::inst::{Inst, InstKind};
use crate::module::Module;
use crate::ops::AutoMode;
use crate::reg::{Reg, RegClass};

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
            Operand::FImm(v) => write!(f, "{v:?}"),
        }
    }
}

impl fmt::Display for RExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RExpr::Op(a) => write!(f, "{a}"),
            RExpr::Un(op, a) => write!(f, "{op}{a}"),
            RExpr::Bin(op, a, b) => write!(f, "({a}) {op} {b}"),
            RExpr::Dual {
                inner,
                a,
                b,
                outer,
                c,
            } => write!(f, "({a}{inner}{b}) {outer} {c}"),
        }
    }
}

/// Prints a [`MemRef`] with symbol names resolved through an optional module.
struct MemDisplay<'a> {
    mem: &'a MemRef,
    module: Option<&'a Module>,
}

impl fmt::Display for MemDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.mem;
        write!(f, "M{}[", m.width)?;
        let mut first = true;
        let sep = |f: &mut fmt::Formatter<'_>, first: &mut bool| -> fmt::Result {
            if !*first {
                write!(f, " + ")?;
            }
            *first = false;
            Ok(())
        };
        if let Some(sym) = m.sym {
            sep(f, &mut first)?;
            match self.module {
                Some(module) => write!(f, "_{}", module.sym_name(sym))?,
                None => write!(f, "_{sym}")?,
            }
        }
        if let Some(base) = m.base {
            sep(f, &mut first)?;
            write!(f, "{base}")?;
            match m.auto {
                AutoMode::None => {}
                AutoMode::PostInc => write!(f, "@+")?,
                AutoMode::PreDec => write!(f, "@-")?,
            }
        }
        if let Some((idx, scale)) = m.index {
            sep(f, &mut first)?;
            if scale == 0 {
                write!(f, "{idx}")?;
            } else {
                write!(f, "{idx}<<{scale}")?;
            }
        }
        if m.disp != 0 || first {
            sep(f, &mut first)?;
            write!(f, "{}", m.disp)?;
        }
        write!(f, "]")
    }
}

/// The mnemonic column for an instruction (may be empty, as for integer
/// assignments in the paper's listings).
pub(crate) fn mnemonic(kind: &InstKind) -> String {
    match kind {
        InstKind::Assign { dst, .. } => {
            if dst.class == RegClass::Flt {
                "double".into()
            } else {
                String::new()
            }
        }
        InstKind::LoadAddr { .. } => "lea".into(),
        InstKind::Compare { .. } => String::new(),
        InstKind::Jump { .. } => "Jump".into(),
        InstKind::Branch { when, .. } => {
            if *when {
                "JumpIT".into()
            } else {
                "JumpIF".into()
            }
        }
        InstKind::BranchStream { fifo, .. } => format!("jNI{fifo}"),
        InstKind::Call { .. } => "call".into(),
        InstKind::Ret => "ret".into(),
        InstKind::GLoad { mem, .. } => format!("ld{}", mem.width),
        InstKind::GStore { mem, .. } => format!("st{}", mem.width),
        InstKind::WLoad { fifo, width, .. } => {
            let suffix = if fifo.class == RegClass::Flt { "f" } else { "" };
            format!("l{width}{suffix}")
        }
        InstKind::WStore { unit, width, .. } => {
            let suffix = if *unit == RegClass::Flt { "f" } else { "" };
            format!("s{width}{suffix}")
        }
        InstKind::StreamIn { width, .. } => format!("Sin{}", stream_suffix(*width)),
        InstKind::StreamOut { width, .. } => format!("Sout{}", stream_suffix(*width)),
        InstKind::StreamGather { width, .. } => format!("Sga{}", stream_suffix(*width)),
        InstKind::StreamScatter { width, .. } => format!("Ssc{}", stream_suffix(*width)),
        InstKind::StreamStop { .. } => "Sstop".into(),
        InstKind::ChanSend { .. } => "Csend".into(),
        InstKind::ChanRecv { .. } => "Crecv".into(),
        InstKind::StreamSend { .. } => "Ssend".into(),
        InstKind::StreamRecv { .. } => "Srecv".into(),
        InstKind::VStreamIn { .. } => "SinV".into(),
        InstKind::VStreamOut { .. } => "SoutV".into(),
        InstKind::VLoad { .. } => "vld".into(),
        InstKind::VStore { .. } => "vst".into(),
        InstKind::VecBin { .. } => "vop".into(),
        InstKind::VecBroadcast { .. } => "vsplat".into(),
        InstKind::BranchVec { .. } => "jNIv".into(),
        InstKind::Nop => "nop".into(),
    }
}

fn stream_suffix(width: crate::ops::Width) -> &'static str {
    match width {
        crate::ops::Width::B1 => "8",
        crate::ops::Width::W4 => "32",
        crate::ops::Width::D8 => "D",
    }
}

/// Render the RTL body (everything after the mnemonic column).
pub(crate) fn body(kind: &InstKind, module: Option<&Module>) -> String {
    let zero = |class: RegClass| Reg::zero(class);
    match kind {
        InstKind::Assign { dst, src } => format!("{dst} := {src}"),
        InstKind::LoadAddr { dst, sym, disp } => {
            let name = match module {
                Some(m) => format!("_{}", m.sym_name(*sym)),
                None => format!("_{sym}"),
            };
            if *disp == 0 {
                format!("{dst} := {name}")
            } else {
                format!("{dst} := {name}+{disp}")
            }
        }
        InstKind::Compare { class, op, a, b } => {
            format!("{} := ({a} {op} {b})", zero(*class))
        }
        InstKind::Jump { target } => format!("{target}"),
        InstKind::Branch { target, .. } => format!("{target}"),
        InstKind::BranchStream { target, .. } => format!("{target}"),
        InstKind::Call { callee, args, ret } => {
            let name = match module {
                Some(m) => format!("_{}", m.sym_name(*callee)),
                None => format!("_{callee}"),
            };
            let args = args
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join(",");
            match ret {
                Some(r) => format!("{r} := {name}({args})"),
                None => format!("{name}({args})"),
            }
        }
        InstKind::Ret => String::new(),
        InstKind::GLoad { dst, mem } => {
            format!("{dst} := {}", MemDisplay { mem, module })
        }
        InstKind::GStore { src, mem } => {
            format!("{} := {src}", MemDisplay { mem, module })
        }
        InstKind::WLoad { addr, .. } => {
            format!("{} := {addr}", zero(RegClass::Int))
        }
        InstKind::WStore { addr, .. } => {
            format!("{} := {addr}", zero(RegClass::Int))
        }
        InstKind::StreamIn {
            fifo,
            base,
            count,
            stride,
            ..
        }
        | InstKind::StreamOut {
            fifo,
            base,
            count,
            stride,
            ..
        } => {
            let count = match count {
                Some(c) => c.to_string(),
                None => "inf".to_string(),
            };
            format!("{fifo},{base},{count},{stride}")
        }
        InstKind::StreamGather {
            fifo,
            base,
            shift,
            ibase,
            istride,
            count,
            ..
        } => format!("{fifo},{base}+(idx<<{shift}) [{ibase},{count},{istride}]"),
        InstKind::StreamScatter {
            fifo,
            base,
            shift,
            ibase,
            istride,
            count,
            ..
        } => format!("{fifo}out,{base}+(idx<<{shift}) [{ibase},{count},{istride}]"),
        InstKind::StreamStop { fifo } => format!("{fifo}"),
        InstKind::ChanSend { peer, src, .. } => format!("t{peer},{src}"),
        InstKind::ChanRecv { peer, dst } => format!("{dst} := t{peer}"),
        InstKind::StreamSend { peer, fifo, count } => format!("t{peer},{fifo},{count}"),
        InstKind::StreamRecv {
            peer, fifo, count, ..
        } => format!("{fifo},t{peer},{count}"),
        InstKind::VStreamIn {
            port,
            base,
            count,
            stride,
            vectors,
        } => format!("p{port},{base},{count},{stride} ({vectors} vectors)"),
        InstKind::VStreamOut {
            base,
            count,
            stride,
        } => format!("{base},{count},{stride}"),
        InstKind::VLoad { vreg, port } => format!("v{vreg} := p{port}"),
        InstKind::VStore { vreg } => format!("vout := v{vreg}"),
        InstKind::VecBin { op, dst, a, b } => format!("v{dst} := v{a} {op} v{b}"),
        InstKind::VecBroadcast { dst, value } => format!("v{dst} := {value:?}"),
        InstKind::BranchVec { target, .. } => format!("{target}"),
        InstKind::Nop => String::new(),
    }
}

impl fmt::Display for InstKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = mnemonic(self);
        let b = body(self, None);
        if m.is_empty() {
            write!(f, "{b}")
        } else if b.is_empty() {
            write!(f, "{m}")
        } else {
            write!(f, "{m:<7} {b}")
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)
    }
}

/// A paper-style listing of a function, with symbol names resolved if a
/// module is supplied. Produced by [`Function::display`].
pub struct FuncDisplay<'a> {
    func: &'a Function,
    module: Option<&'a Module>,
}

impl fmt::Display for FuncDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "_{}:", self.func.name)?;
        for (bi, block) in self.func.blocks.iter().enumerate() {
            if bi != 0 {
                writeln!(f, "{}:", block.label)?;
            }
            for inst in &block.insts {
                let m = mnemonic(&inst.kind);
                let b = body(&inst.kind, self.module);
                writeln!(f, "    {m:<8}{b}")?;
            }
        }
        Ok(())
    }
}

impl Function {
    /// A paper-style listing. Pass the module to resolve symbol names
    /// (`_x`, `_y`, ...) as in the paper's figures.
    pub fn display<'a>(&'a self, module: Option<&'a Module>) -> FuncDisplay<'a> {
        FuncDisplay { func: self, module }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::DataFifo;
    use crate::ops::{BinOp, CmpOp, Width};

    #[test]
    fn dual_op_prints_like_the_paper() {
        // l64f r31 := (r22<<3) + r24   (Figure 4, line 10 style)
        let k = InstKind::WLoad {
            fifo: DataFifo::new(RegClass::Flt, 0),
            addr: RExpr::Dual {
                inner: BinOp::Shl,
                a: Reg::int(22).into(),
                b: Operand::Imm(3),
                outer: BinOp::Add,
                c: Reg::int(24).into(),
            },
            width: Width::D8,
        };
        assert_eq!(k.to_string(), "l64f    r31 := (r22<<3) + r24");
    }

    #[test]
    fn compare_prints_like_the_paper() {
        let k = InstKind::Compare {
            class: RegClass::Int,
            op: CmpOp::Ge,
            a: Operand::Imm(2),
            b: Reg::int(23).into(),
        };
        assert_eq!(k.to_string(), "r31 := (2 >= r23)");
    }

    #[test]
    fn fp_assign_prints_double_mnemonic() {
        let k = InstKind::Assign {
            dst: Reg::flt(20),
            src: RExpr::Op(Operand::Reg(Reg::flt(0))),
        };
        assert_eq!(k.to_string(), "double  f20 := f0");
    }

    #[test]
    fn stream_prints_like_the_paper() {
        let k = InstKind::StreamIn {
            fifo: DataFifo::new(RegClass::Flt, 1),
            base: Reg::int(19).into(),
            count: Some(Reg::int(24).into()),
            stride: Operand::Imm(8),
            width: Width::D8,
            tested: true,
        };
        assert_eq!(k.to_string(), "SinD    f1,r19,r24,8");
    }

    #[test]
    fn function_listing_contains_labels() {
        let mut f = Function::new("loop5", 0, 0);
        let entry = f.entry_label();
        let l = f.add_block();
        f.push(entry, InstKind::Jump { target: l });
        f.push(l, InstKind::Ret);
        let s = f.display(None).to_string();
        assert!(s.starts_with("_loop5:"), "{s}");
        assert!(s.contains("L1:"), "{s}");
    }

    #[test]
    fn memref_display() {
        let mut mem = MemRef::base(Reg::int(3), 0, Width::D8);
        mem.auto = AutoMode::PostInc;
        let k = InstKind::GLoad {
            dst: Reg::flt(2),
            mem,
        };
        assert_eq!(k.to_string(), "ld64    f2 := M64[r3@+]");
    }
}
