//! Modules: a set of functions plus global data.

use crate::func::Function;

/// Identifier of a symbol (global datum or function) within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymId(pub u32);

impl std::fmt::Display for SymId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sym{}", self.0)
    }
}

/// What a global symbol names.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalKind {
    /// A data object of `size` bytes with optional initializer bytes
    /// (zero-filled beyond `init.len()`).
    Data {
        size: u64,
        align: u64,
        init: Vec<u8>,
    },
    /// A function, by index into [`Module::functions`].
    Func(usize),
    /// A simulator-provided builtin (I/O, etc.), dispatched by name.
    Builtin,
}

/// A named global symbol.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Source-level name (listings print it with a leading underscore).
    pub name: String,
    /// What the symbol names.
    pub kind: GlobalKind,
    /// Data symbols only: the loader maps read-only data on write-protected
    /// pages, so stores through a stray pointer fault instead of silently
    /// corrupting constants.
    pub readonly: bool,
}

/// A compiled module: global symbols and functions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Symbol table; [`SymId`] indexes into it.
    pub globals: Vec<Global>,
    /// Function bodies; `GlobalKind::Func` points into this.
    pub functions: Vec<Function>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Add a data global, returning its symbol.
    pub fn add_data(
        &mut self,
        name: impl Into<String>,
        size: u64,
        align: u64,
        init: Vec<u8>,
    ) -> SymId {
        assert!(init.len() as u64 <= size, "initializer larger than object");
        let id = SymId(self.globals.len() as u32);
        self.globals.push(Global {
            name: name.into(),
            kind: GlobalKind::Data { size, align, init },
            readonly: false,
        });
        id
    }

    /// Add a read-only data global (constant tables, literals). The
    /// simulator loader places it on write-protected pages.
    pub fn add_rodata(
        &mut self,
        name: impl Into<String>,
        size: u64,
        align: u64,
        init: Vec<u8>,
    ) -> SymId {
        let id = self.add_data(name, size, align, init);
        self.globals[id.0 as usize].readonly = true;
        id
    }

    /// Declare a function by name with an empty placeholder body, returning
    /// its symbol. Use [`Module::define_function`] to install the real body.
    /// Returns the existing symbol if the name is already declared.
    pub fn declare_function(&mut self, name: &str) -> SymId {
        if let Some(id) = self.lookup(name) {
            return id;
        }
        let id = SymId(self.globals.len() as u32);
        let idx = self.functions.len();
        self.functions.push(Function::new(name, 0, 0));
        self.globals.push(Global {
            name: name.to_string(),
            kind: GlobalKind::Func(idx),
            readonly: false,
        });
        id
    }

    /// Install the body of a previously declared function.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not name a function.
    pub fn define_function(&mut self, id: SymId, func: Function) {
        match self.global(id).kind {
            GlobalKind::Func(i) => self.functions[i] = func,
            _ => panic!("{id} does not name a function"),
        }
    }

    /// Add a function, returning its symbol.
    pub fn add_function(&mut self, func: Function) -> SymId {
        let id = SymId(self.globals.len() as u32);
        self.globals.push(Global {
            name: func.name.clone(),
            kind: GlobalKind::Func(self.functions.len()),
            readonly: false,
        });
        self.functions.push(func);
        id
    }

    /// Add (or find) a simulator builtin such as `putchar`.
    pub fn add_builtin(&mut self, name: impl Into<String>) -> SymId {
        let name = name.into();
        if let Some(id) = self.lookup(&name) {
            return id;
        }
        let id = SymId(self.globals.len() as u32);
        self.globals.push(Global {
            name,
            kind: GlobalKind::Builtin,
            readonly: false,
        });
        id
    }

    /// Find a symbol by name.
    pub fn lookup(&self, name: &str) -> Option<SymId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| SymId(i as u32))
    }

    /// The global named by `id`.
    pub fn global(&self, id: SymId) -> &Global {
        &self.globals[id.0 as usize]
    }

    /// The symbol's name.
    pub fn sym_name(&self, id: SymId) -> &str {
        &self.global(id).name
    }

    /// The function a symbol names, if it names one.
    pub fn function_of(&self, id: SymId) -> Option<&Function> {
        match self.global(id).kind {
            GlobalKind::Func(i) => Some(&self.functions[i]),
            _ => None,
        }
    }

    /// The function named `name`, if present.
    pub fn function_named(&self, name: &str) -> Option<&Function> {
        self.lookup(name).and_then(|id| self.function_of(id))
    }

    /// Mutable function lookup by name.
    pub fn function_named_mut(&mut self, name: &str) -> Option<&mut Function> {
        let idx = match self.lookup(name).map(|id| self.global(id).kind.clone()) {
            Some(GlobalKind::Func(i)) => i,
            _ => return None,
        };
        Some(&mut self.functions[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_and_lookup() {
        let mut m = Module::new();
        let x = m.add_data("x", 800_000, 8, vec![]);
        let f = m.add_function(Function::new("kernel", 1, 0));
        assert_eq!(m.lookup("x"), Some(x));
        assert_eq!(m.lookup("kernel"), Some(f));
        assert_eq!(m.lookup("missing"), None);
        assert_eq!(m.sym_name(x), "x");
        assert!(m.function_of(f).is_some());
        assert!(m.function_of(x).is_none());
        assert!(m.function_named("kernel").is_some());
    }

    #[test]
    fn builtins_are_deduplicated() {
        let mut m = Module::new();
        let a = m.add_builtin("putchar");
        let b = m.add_builtin("putchar");
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "initializer larger")]
    fn initializer_size_checked() {
        let mut m = Module::new();
        m.add_data("x", 2, 1, vec![0; 4]);
    }
}
