//! Property: the content-addressed artifact cache is invisible.
//!
//! For a random job (source × optimizer level × engine × memory model),
//! the payload rendered by a cold run, the payload read back from the
//! on-disk cache, and the payload of an entirely fresh re-run are all
//! bit-identical. This is the contract that lets `wmd` answer `cached:
//! true` without any asterisk — and it leans on the repo-wide invariant
//! that all three engines are deterministic and bit-exact.

use proptest::prelude::*;

use wm_serve::cache::ArtifactCache;
use wm_serve::job::{execute, ModuleCache};
use wm_serve::proto::JobRequest;
use wm_stream::sim::{CancelToken, Engine, MemModel};
use wm_stream::JobSpec;

/// Tiny sources spanning the interesting execution shapes: a scalar
/// loop (recurrence-optimizable), a streaming array kernel, a
/// floating-point reduction, and an I/O-producing program.
const SOURCES: [&str; 4] = [
    "int main() { int i; int s; s = 0; for (i = 0; i < 40; i++) s += i; return s; }",
    "int a[48]; int b[48];
     int main() {
         int i; int s;
         for (i = 0; i < 48; i++) { a[i] = i; b[i] = 3 * i; }
         s = 0;
         for (i = 0; i < 48; i++) s += a[i] * b[i];
         return s;
     }",
    "double x[32];
     double main() {
         int i; double s;
         for (i = 0; i < 32; i++) x[i] = i * 0.5;
         s = 0.0;
         for (i = 0; i < 32; i++) s += x[i] * x[i];
         return s;
     }",
    "int main() { putchar(119); putchar(109); putchar(10); return 7; }",
];

const ENGINES: [Engine; 3] = [Engine::Cycle, Engine::Event, Engine::Compiled];
const MEMS: [&str; 3] = ["flat", "cache", "banked"];

fn job(source_ix: usize, opt_full: bool, engine_ix: usize, mem_ix: usize) -> JobRequest {
    let mut spec = JobSpec::new(SOURCES[source_ix]);
    if !opt_full {
        spec.opts.streaming = false;
    }
    spec.config.engine = ENGINES[engine_ix];
    spec.config.mem_model = MemModel::parse(MEMS[mem_ix]).unwrap();
    JobRequest {
        id: "prop".to_string(),
        spec,
        deadline_ms: None,
        no_cache: false,
        chaos: None,
    }
}

proptest! {
    #[test]
    fn cached_payloads_are_bit_identical_to_fresh_runs(
        source_ix in 0usize..4,
        opt_bit in 0usize..2,
        engine_ix in 0usize..3,
        mem_ix in 0usize..3,
    ) {
        let opt_full = opt_bit == 1;
        let dir = std::env::temp_dir().join(format!(
            "wmd-prop-{}-{}-{}-{}-{}",
            std::process::id(), source_ix, opt_bit, engine_ix, mem_ix
        ));
        let (cache, _) = ArtifactCache::open(&dir).unwrap();
        let modules = ModuleCache::new(16);

        let req = job(source_ix, opt_full, engine_ix, mem_ix);
        let key = ArtifactCache::key_of(&req.spec.cache_key_material());

        // Cold run, stored through the real write path (temp + rename).
        let cold = execute(&req, &CancelToken::new(), false, &modules).unwrap();
        cache.store(&key, &cold).unwrap();

        // Read back through the verifying read path.
        let replay = cache.lookup(&key).expect("entry written a moment ago");
        prop_assert_eq!(&replay, &cold, "cache round-trip changed bytes");

        // A fresh pipeline run (new module memo, new token) must render
        // the very same bytes: determinism is what makes caching sound.
        let fresh = execute(&req, &CancelToken::new(), false, &ModuleCache::new(16)).unwrap();
        prop_assert_eq!(&fresh, &cold, "re-execution diverged from cached payload");

        std::fs::remove_dir_all(&dir).ok();
    }
}
