//! Chaos/soak test for the `wmd` daemon, driving the real binary over
//! its stdio (and Unix-socket) transports.
//!
//! The scenarios mirror the failure modes the service is built to
//! absorb: worker panics at either pipeline stage, injected machine
//! faults, deadline-busting programs, a wedged worker that never polls
//! its cancellation token, overload, malformed requests, cache-file
//! corruption under a live daemon, and an unclean kill followed by a
//! restart over the same cache directory. The invariant under all of
//! them: **every job gets exactly one terminal response, the daemon
//! stays up, and cache hits are bit-identical to fresh runs.**

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

use wm_stream::json::{self, Value};

const GOOD_SUM: &str =
    "int main() { int i; int s; s = 0; for (i = 0; i < 40; i++) s += i; return s; }";
const GOOD_DOT: &str = "int a[32]; int b[32];
int main() {
    int i; int s;
    for (i = 0; i < 32; i++) { a[i] = i; b[i] = i + 1; }
    s = 0;
    for (i = 0; i < 32; i++) s += a[i] * b[i];
    return s;
}";
const SLOW_LOOP: &str =
    "int main() { int i; int s; s = 0; for (i = 0; i < 100000000; i++) s += i; return s; }";

/// A `wmd` child with line-oriented send/recv over its stdio pipes.
struct Daemon {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
    cache_dir: PathBuf,
}

impl Daemon {
    fn spawn(tag: &str, extra_args: &[&str]) -> Daemon {
        let cache_dir = std::env::temp_dir().join(format!("wmd-soak-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&cache_dir).ok();
        Daemon::spawn_with_dir(cache_dir, extra_args)
    }

    /// Spawn over an existing cache directory (crash-recovery tests).
    fn spawn_with_dir(cache_dir: PathBuf, extra_args: &[&str]) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_wmd"));
        cmd.arg("--cache-dir")
            .arg(&cache_dir)
            .args(extra_args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        let mut child = cmd.spawn().expect("spawn wmd");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Daemon {
            child,
            stdin,
            stdout,
            cache_dir,
        }
    }

    fn send(&mut self, line: &str) {
        self.stdin.write_all(line.as_bytes()).unwrap();
        self.stdin.write_all(b"\n").unwrap();
        self.stdin.flush().unwrap();
    }

    fn recv(&mut self) -> Value {
        let mut line = String::new();
        let n = self.stdout.read_line(&mut line).unwrap();
        assert!(n > 0, "daemon closed stdout unexpectedly");
        json::parse(line.trim_end()).unwrap_or_else(|e| panic!("bad response line {line:?}: {e}"))
    }

    fn recv_n(&mut self, n: usize) -> Vec<Value> {
        (0..n).map(|_| self.recv()).collect()
    }

    /// Close stdin, drain remaining stdout, and reap the child.
    /// Returns (exit-success, captured stderr).
    fn finish(mut self) -> (bool, String) {
        drop(self.stdin);
        let mut rest = String::new();
        self.stdout.read_to_string(&mut rest).unwrap();
        assert!(
            rest.trim().is_empty(),
            "unexpected unread responses at shutdown: {rest}"
        );
        let status = self.child.wait().unwrap();
        let mut err = String::new();
        if let Some(mut stderr) = self.child.stderr.take() {
            stderr.read_to_string(&mut err).unwrap();
        }
        let dir = self.cache_dir.clone();
        std::fs::remove_dir_all(dir).ok();
        (status.success(), err)
    }
}

fn job(id: &str, source: &str, extra: &str) -> String {
    let comma = if extra.is_empty() { "" } else { ", " };
    format!(
        "{{\"id\": \"{id}\", \"source\": \"{}\"{comma}{extra}}}",
        json::escape(source)
    )
}

fn field<'v>(v: &'v Value, path: &[&str]) -> Option<&'v Value> {
    let mut cur = v;
    for p in path {
        cur = cur.get(p)?;
    }
    Some(cur)
}

fn id_of(v: &Value) -> Option<String> {
    field(v, &["id"])
        .and_then(Value::as_str)
        .map(str::to_string)
}

fn status_of(v: &Value) -> &str {
    field(v, &["status"]).and_then(Value::as_str).unwrap_or("")
}

fn class_of(v: &Value) -> &str {
    field(v, &["error", "class"])
        .and_then(Value::as_str)
        .unwrap_or("")
}

/// The single `<key>.wmd` entry files currently in a cache directory.
fn cache_entries(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "wmd"))
                .collect()
        })
        .unwrap_or_default();
    out.sort();
    out
}

#[test]
fn mixed_chaos_batch_gets_exactly_one_response_per_job() {
    let mut d = Daemon::spawn(
        "mixed",
        &[
            "--jobs",
            "4",
            "--chaos",
            "--retries",
            "1",
            "--backoff-ms",
            "1",
            "--stuck-grace-ms",
            "100",
        ],
    );

    // Phase 1: everything that can go wrong, plus healthy jobs mixed in.
    let batch = vec![
        job("good-sum", GOOD_SUM, ""),
        job("good-dot", GOOD_DOT, "\"engine\": \"compiled\""),
        job("bad-compile", "int main( {", ""),
        job("boom-compile", GOOD_SUM, "\"chaos\": \"panic-compile\""),
        job("boom-simulate", GOOD_SUM, "\"chaos\": \"panic-simulate\""),
        job(
            "faulted",
            GOOD_DOT,
            "\"inject\": \"scu:0:2\", \"opt\": \"full\"",
        ),
        job("too-slow", SLOW_LOOP, "\"deadline_ms\": 100"),
        job(
            "wedged",
            GOOD_SUM,
            "\"chaos\": \"sleep-simulate\", \"deadline_ms\": 50",
        ),
        "{\"id\": \"no-source\"}".to_string(),
        "this is not json".to_string(),
    ];
    let n = batch.len();
    for line in &batch {
        d.send(line);
    }
    let responses = d.recv_n(n);

    // Exactly one terminal response per id; the garbage line answers
    // with a null id.
    let mut by_id: HashMap<String, &Value> = HashMap::new();
    let mut anonymous = 0usize;
    for r in &responses {
        match id_of(r) {
            Some(id) => {
                assert!(
                    by_id.insert(id.clone(), r).is_none(),
                    "duplicate response for job {id}"
                );
            }
            None => anonymous += 1,
        }
    }
    assert_eq!(anonymous, 1, "the unparseable line gets one id-less reply");
    assert_eq!(by_id.len(), n - 1);

    // Healthy jobs succeed with correct results.
    for (id, want) in [("good-sum", 780i64), ("good-dot", 10912i64)] {
        let r = by_id[id];
        assert_eq!(status_of(r), "ok", "{id}: {r:?}");
        assert_eq!(
            field(r, &["result", "ret_int"]).and_then(Value::as_i64),
            Some(want),
            "{id} returned the wrong value"
        );
    }

    // Failures come back with the right class, and nothing else died.
    assert_eq!(class_of(by_id["bad-compile"]), "compile");
    assert_eq!(class_of(by_id["boom-compile"]), "panic");
    assert_eq!(class_of(by_id["boom-simulate"]), "panic");
    assert_eq!(class_of(by_id["no-source"]), "bad-request");
    assert_eq!(class_of(by_id["faulted"]), "sim");
    assert_eq!(
        field(by_id["faulted"], &["attempts"]).and_then(Value::as_u64),
        Some(2),
        "injected faults are transient: retried once, then reported"
    );
    assert_eq!(class_of(by_id["too-slow"]), "deadline");
    assert_eq!(
        field(by_id["too-slow"], &["error", "stuck"]).and_then(Value::as_bool),
        Some(false)
    );
    assert_eq!(class_of(by_id["wedged"]), "deadline");
    assert_eq!(
        field(by_id["wedged"], &["error", "stuck"]).and_then(Value::as_bool),
        Some(true),
        "a worker that never polls its token is answered by the watchdog"
    );

    // Phase 2: the daemon survived all of it. A duplicate of good-sum is
    // served from the artifact cache, bit-identical to the fresh run.
    d.send("{\"op\": \"ping\"}");
    assert_eq!(
        field(&d.recv(), &["op"]).and_then(Value::as_str),
        Some("pong")
    );
    d.send(&job("good-sum-again", GOOD_SUM, ""));
    let hit = d.recv();
    assert_eq!(status_of(&hit), "ok");
    assert_eq!(
        field(&hit, &["cached"]).and_then(Value::as_bool),
        Some(true),
        "duplicate job must be a cache hit: {hit:?}"
    );
    assert_eq!(
        format!("{:?}", field(&hit, &["result"]).unwrap()),
        format!("{:?}", field(by_id["good-sum"], &["result"]).unwrap()),
        "cache hit diverged from the fresh run"
    );

    d.send("{\"op\": \"stats\"}");
    let stats = d.recv();
    assert_eq!(field(&stats, &["panics"]).and_then(Value::as_u64), Some(2));
    assert_eq!(field(&stats, &["stuck"]).and_then(Value::as_u64), Some(1));
    assert!(field(&stats, &["cache_hits"]).and_then(Value::as_u64) >= Some(1));

    let (ok, stderr) = d.finish();
    assert!(ok, "daemon must exit cleanly; stderr: {stderr}");
    assert!(
        stderr.contains("contained panic"),
        "contained panics are logged: {stderr}"
    );
}

#[test]
fn cache_corruption_under_a_live_daemon_is_detected_and_healed() {
    let mut d = Daemon::spawn("corrupt", &["--jobs", "2"]);

    d.send(&job("c1", GOOD_DOT, ""));
    let cold = d.recv();
    assert_eq!(status_of(&cold), "ok");
    assert_eq!(
        field(&cold, &["cached"]).and_then(Value::as_bool),
        Some(false)
    );

    d.send(&job("c2", GOOD_DOT, ""));
    let warm = d.recv();
    assert_eq!(
        field(&warm, &["cached"]).and_then(Value::as_bool),
        Some(true)
    );

    // Flip one payload byte in the on-disk entry while the daemon runs.
    let entries = cache_entries(&d.cache_dir);
    assert_eq!(entries.len(), 1, "one job, one artifact");
    let mut bytes = std::fs::read(&entries[0]).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x20;
    std::fs::write(&entries[0], &bytes).unwrap();

    // The checksum catches it: recompute, don't serve garbage.
    d.send(&job("c3", GOOD_DOT, ""));
    let healed = d.recv();
    assert_eq!(status_of(&healed), "ok");
    assert_eq!(
        field(&healed, &["cached"]).and_then(Value::as_bool),
        Some(false),
        "corrupt entry must not be served: {healed:?}"
    );
    assert_eq!(
        format!("{:?}", field(&healed, &["result"]).unwrap()),
        format!("{:?}", field(&cold, &["result"]).unwrap())
    );

    // And the heal sticks: the rewritten entry serves hits again.
    d.send(&job("c4", GOOD_DOT, ""));
    assert_eq!(
        field(&d.recv(), &["cached"]).and_then(Value::as_bool),
        Some(true)
    );

    let (ok, stderr) = d.finish();
    assert!(ok);
    assert!(
        stderr.contains("failed verification"),
        "corruption detection is logged: {stderr}"
    );
}

#[test]
fn scrub_recovers_the_cache_after_a_hard_kill() {
    let mut d = Daemon::spawn("kill", &["--jobs", "2"]);
    let dir = d.cache_dir.clone();

    d.send(&job("k1", GOOD_SUM, ""));
    d.send(&job("k2", GOOD_DOT, ""));
    let first = d.recv_n(2);
    assert!(first.iter().all(|r| status_of(r) == "ok"));
    let results: HashMap<String, String> = first
        .iter()
        .map(|r| {
            (
                id_of(r).unwrap(),
                format!("{:?}", field(r, &["result"]).unwrap()),
            )
        })
        .collect();

    // SIGKILL — no drop handlers, no flushing, nothing graceful.
    d.child.kill().unwrap();
    d.child.wait().unwrap();

    // Simulate debris from a crash mid-write: a stray temp file and one
    // truncated entry.
    let entries = cache_entries(&dir);
    assert_eq!(entries.len(), 2);
    std::fs::write(dir.join("deadbeef.tmp-999-0"), b"partial write").unwrap();
    let victim = &entries[0];
    let bytes = std::fs::read(victim).unwrap();
    std::fs::write(victim, &bytes[..bytes.len() / 2]).unwrap();

    // A fresh daemon over the same directory scrubs the debris and keeps
    // serving: the intact entry hits, the truncated one recomputes.
    let mut d2 = Daemon::spawn_with_dir(dir.clone(), &["--jobs", "2"]);

    d2.send(&job("k1b", GOOD_SUM, ""));
    d2.send(&job("k2b", GOOD_DOT, ""));
    let second = d2.recv_n(2);
    let mut hits = 0;
    for r in &second {
        assert_eq!(status_of(r), "ok", "{r:?}");
        let id = id_of(r).unwrap();
        let orig = &results[&id[..id.len() - 1]];
        assert_eq!(
            &format!("{:?}", field(r, &["result"]).unwrap()),
            orig,
            "post-crash result diverged for {id}"
        );
        if field(r, &["cached"]).and_then(Value::as_bool) == Some(true) {
            hits += 1;
        }
    }
    assert_eq!(hits, 1, "intact entry hits, truncated entry recomputes");

    assert!(
        !std::fs::read_dir(&dir)
            .unwrap()
            .any(|e| { e.unwrap().file_name().to_string_lossy().contains(".tmp-") }),
        "startup scrub removes stray temp files"
    );

    let (ok, _) = d2.finish();
    assert!(ok);
}

#[test]
fn overload_sheds_excess_jobs_but_answers_every_one() {
    let mut d = Daemon::spawn(
        "overload",
        &["--jobs", "1", "--queue-limit", "2", "--retries", "0"],
    );

    // One slow job to pin the single worker, then a burst behind it.
    d.send(&job(
        "slow",
        "int main() { int i; int s; s = 0; for (i = 0; i < 500000; i++) s += i; return s; }",
        "\"engine\": \"cycle\", \"no_cache\": true",
    ));
    let burst = 10;
    for i in 0..burst {
        d.send(&job(&format!("b{i}"), GOOD_SUM, "\"no_cache\": true"));
    }
    let responses = d.recv_n(burst + 1);

    let mut ok_count = 0;
    let mut shed = 0;
    for r in &responses {
        match status_of(r) {
            "ok" => ok_count += 1,
            "error" => {
                assert_eq!(
                    class_of(r),
                    "overloaded",
                    "only shedding errors expected: {r:?}"
                );
                shed += 1;
            }
            other => panic!("unexpected status {other}: {r:?}"),
        }
    }
    assert_eq!(ok_count + shed, burst + 1);
    assert!(ok_count >= 1, "the pinned worker still finishes real work");
    assert!(shed >= 1, "a full queue must shed, not stall");

    // Still alive and accepting work after the storm.
    d.send("{\"op\": \"ping\"}");
    assert_eq!(
        field(&d.recv(), &["op"]).and_then(Value::as_str),
        Some("pong")
    );
    let (ok, _) = d.finish();
    assert!(ok);
}

#[test]
fn socket_transport_round_trips_and_shuts_down() {
    use std::os::unix::net::UnixStream;

    let sock = std::env::temp_dir().join(format!("wmd-soak-sock-{}.sock", std::process::id()));
    std::fs::remove_file(&sock).ok();
    let cache = std::env::temp_dir().join(format!("wmd-soak-sockcache-{}", std::process::id()));
    std::fs::remove_dir_all(&cache).ok();

    let mut child = Command::new(env!("CARGO_BIN_EXE_wmd"))
        .arg("--socket")
        .arg(&sock)
        .arg("--cache-dir")
        .arg(&cache)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    // Wait for the listener to come up.
    let deadline = Instant::now() + Duration::from_secs(10);
    let stream = loop {
        match UnixStream::connect(&sock) {
            Ok(s) => break s,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("socket never came up: {e}"),
        }
    };

    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(b"{\"op\": \"ping\"}\n").unwrap();
    writer
        .write_all(format!("{}\n", job("s1", GOOD_SUM, "")).as_bytes())
        .unwrap();
    writer.write_all(b"{\"op\": \"shutdown\"}\n").unwrap();
    writer.flush().unwrap();

    let mut lines = Vec::new();
    let mut buf = String::new();
    while reader.read_line(&mut buf).unwrap() > 0 {
        lines.push(json::parse(buf.trim_end()).unwrap());
        buf.clear();
    }
    let ops: Vec<&str> = lines
        .iter()
        .filter_map(|v| field(v, &["op"]).and_then(Value::as_str))
        .collect();
    assert!(ops.contains(&"pong") && ops.contains(&"bye"), "{ops:?}");
    let s1 = lines
        .iter()
        .find(|v| id_of(v).as_deref() == Some("s1"))
        .expect("job answered before the socket closed");
    assert_eq!(status_of(s1), "ok");
    assert_eq!(
        field(s1, &["result", "ret_int"]).and_then(Value::as_i64),
        Some(780)
    );

    let status = child.wait().unwrap();
    assert!(status.success(), "shutdown op exits 0");
    std::fs::remove_file(&sock).ok();
    std::fs::remove_dir_all(&cache).ok();
}
