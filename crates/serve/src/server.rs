//! Connection handling: newline-delimited JSON over stdio or a Unix
//! socket, one writer thread per connection, graceful drain on EOF.
//!
//! The drain protocol is structural rather than counted: every job
//! holds a clone of its connection's reply `Sender`, so the writer
//! thread's channel closes exactly when the reader has hit EOF *and*
//! every job submitted from that connection has produced its terminal
//! response. Joining the writer *is* the drain barrier.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::time::Instant;

use crate::cache::{ArtifactCache, ScrubReport};
use crate::pool::{Counters, Pool, PoolConfig};
use crate::proto::{self, ControlOp, ErrorClass, Request};

/// Daemon configuration, assembled by `wmd`'s argument parser.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Pool tuning (workers, queue limit, retry policy, deadlines).
    pub pool: PoolConfig,
    /// Artifact-cache directory; `None` disables the cache entirely.
    pub cache_dir: Option<PathBuf>,
}

/// A running daemon: pool plus cache plus uptime clock.
pub struct Server {
    pool: Arc<Pool>,
    started: Instant,
    scrub: ScrubReport,
    workers: usize,
}

impl Server {
    /// Open the cache (scrubbing it), start the pool.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from cache-directory creation.
    pub fn new(cfg: ServerConfig) -> io::Result<Server> {
        let (cache, scrub) = match &cfg.cache_dir {
            Some(dir) => {
                let (c, report) = ArtifactCache::open(dir)?;
                if report.removed_corrupt + report.removed_temp > 0 {
                    eprintln!(
                        "wmd: cache scrub at {}: kept {}, removed {} corrupt, {} temp",
                        dir.display(),
                        report.kept,
                        report.removed_corrupt,
                        report.removed_temp
                    );
                }
                (Some(c), report)
            }
            None => (None, ScrubReport::default()),
        };
        let workers = cfg.pool.workers;
        Ok(Server {
            pool: Arc::new(Pool::new(cfg.pool, cache)),
            started: Instant::now(),
            scrub,
            workers,
        })
    }

    /// The scrub report from startup (what a previous crash left behind).
    pub fn scrub_report(&self) -> ScrubReport {
        self.scrub
    }

    /// Serve one connection on stdin/stdout; returns at EOF or after a
    /// `shutdown` op, with every accepted job answered.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from the reader; write errors end the writer
    /// thread silently (the peer is gone).
    pub fn serve_stdio(self) -> io::Result<()> {
        let (tx, rx) = channel::<String>();
        let writer = std::thread::spawn(move || {
            let stdout = io::stdout();
            let mut out = stdout.lock();
            for line in rx {
                if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
                    return; // peer closed stdout; drain the channel and go
                }
            }
        });
        let stdin = io::stdin();
        self.handle_reader(stdin.lock(), &tx);
        drop(tx);
        let _ = writer.join(); // the drain barrier (see module docs)
        Ok(())
    }

    /// Serve connections on a Unix socket until a client sends
    /// `{"op": "shutdown"}`; that connection is drained, then the
    /// process exits.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from binding or accepting.
    pub fn serve_socket(self, path: &Path) -> io::Result<()> {
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        eprintln!("wmd: listening on {}", path.display());
        let server = Arc::new(self);
        for stream in listener.incoming() {
            let stream = stream?;
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                if server.serve_stream(stream) {
                    // Drained shutdown: the requesting connection has all
                    // its answers; other connections lose their transport,
                    // which is the documented semantics of `shutdown`.
                    std::process::exit(0);
                }
            });
        }
        Ok(())
    }

    /// Serve one accepted socket connection. Returns whether the client
    /// requested daemon shutdown.
    fn serve_stream(&self, stream: UnixStream) -> bool {
        let reader = match stream.try_clone() {
            Ok(s) => BufReader::new(s),
            Err(_) => return false,
        };
        let (tx, rx) = channel::<String>();
        let writer = std::thread::spawn(move || {
            let mut out = stream;
            for line in rx {
                if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
                    return;
                }
            }
        });
        let shutdown = self.handle_reader(reader, &tx);
        drop(tx);
        let _ = writer.join();
        shutdown
    }

    /// The request loop. Returns whether a `shutdown` op was received.
    fn handle_reader(&self, reader: impl BufRead, tx: &Sender<String>) -> bool {
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            match proto::parse_request(&line) {
                Err((id, msg)) => {
                    Counters::bump(&self.pool.counters().bad_requests);
                    let _ = tx.send(proto::error_line(
                        id.as_deref(),
                        0,
                        &ErrorClass::BadRequest(msg),
                    ));
                }
                Ok(Request::Control(ControlOp::Ping)) => {
                    let _ = tx.send("{\"op\": \"pong\"}".to_string());
                }
                Ok(Request::Control(ControlOp::Stats)) => {
                    let _ = tx.send(self.stats_line());
                }
                Ok(Request::Control(ControlOp::Shutdown)) => {
                    let _ = tx.send("{\"op\": \"bye\"}".to_string());
                    return true;
                }
                Ok(Request::Job(job)) => self.pool.submit(*job, tx.clone()),
            }
        }
        false
    }

    /// The `{"op": "stats"}` response document.
    fn stats_line(&self) -> String {
        let c = self.pool.counters();
        let g = |f: &std::sync::atomic::AtomicU64| f.load(Ordering::Relaxed);
        format!(
            "{{\"op\": \"stats\", \"uptime_ms\": {}, \"workers\": {}, \"queue\": {}, \
             \"received\": {}, \"ok\": {}, \"errors\": {}, \"panics\": {}, \"retries\": {}, \
             \"shed\": {}, \"degraded\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"stuck\": {}, \"bad_requests\": {}, \"scrub_removed\": {}}}",
            self.started.elapsed().as_millis(),
            self.workers,
            self.pool.queue_len(),
            g(&c.received),
            g(&c.ok),
            g(&c.errors),
            g(&c.panics),
            g(&c.retries),
            g(&c.shed),
            g(&c.degraded),
            g(&c.cache_hits),
            g(&c.cache_misses),
            g(&c.stuck),
            g(&c.bad_requests),
            self.scrub.removed_corrupt + self.scrub.removed_temp,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serve_lines(cfg: ServerConfig, input: &str) -> Vec<String> {
        let server = Server::new(cfg).unwrap();
        let (tx, rx) = channel::<String>();
        server.handle_reader(BufReader::new(input.as_bytes()), &tx);
        drop(tx);
        drop(server); // drains the pool; all replies land first
        rx.into_iter().collect()
    }

    #[test]
    fn pings_and_stats_and_jobs_interleave() {
        let input = concat!(
            "{\"op\": \"ping\"}\n",
            "{\"id\": \"a\", \"source\": \"int main() { return 4; }\"}\n",
            "this is not json\n",
            "{\"op\": \"stats\"}\n",
        );
        let lines = serve_lines(ServerConfig::default(), input);
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().any(|l| l.contains("\"pong\"")));
        assert!(lines.iter().any(|l| l.contains("\"bad-request\"")));
        assert!(lines.iter().any(|l| l.contains("\"op\": \"stats\"")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"id\": \"a\"") && l.contains("\"status\": \"ok\"")));
    }

    #[test]
    fn shutdown_op_stops_reading_but_answers_prior_jobs() {
        let input = concat!(
            "{\"id\": \"before\", \"source\": \"int main() { return 1; }\"}\n",
            "{\"op\": \"shutdown\"}\n",
            "{\"id\": \"after\", \"source\": \"int main() { return 2; }\"}\n",
        );
        let lines = serve_lines(ServerConfig::default(), input);
        assert!(lines.iter().any(|l| l.contains("\"id\": \"before\"")));
        assert!(lines.iter().any(|l| l.contains("\"bye\"")));
        assert!(
            !lines.iter().any(|l| l.contains("\"id\": \"after\"")),
            "lines after shutdown are not read: {lines:?}"
        );
    }
}
