//! The `wmd` wire protocol: newline-delimited JSON, one request and one
//! terminal response per line.
//!
//! A client writes one JSON object per line. Job requests carry an `id`
//! (echoed back, never interpreted) and a `source`, plus optional
//! optimizer, machine-configuration and scheduling fields. Control
//! requests carry an `op` instead (`ping`, `stats`, `shutdown`).
//!
//! The daemon guarantees **exactly one terminal response per job line**,
//! in completion order (not submission order): either
//! `{"id": ..., "status": "ok", ...}` with the result payload, or
//! `{"id": ..., "status": "error", "error": {"class": ...}, ...}`. Lines
//! that do not parse at all get an `"error"` response with
//! `"class": "bad-request"` and a null id.
//!
//! The full schema is documented in `DESIGN.md` § "Service and
//! supervision".

use wm_stream::json::{self, Value};
use wm_stream::sim::{Engine, FaultPlan, MemModel, SimError};
use wm_stream::{JobSpec, OptOptions};

/// A deterministic panic-injection point, enabled only when the daemon
/// runs with `--chaos`. This exists so the soak tests (and an operator
/// probing a deployment) can prove the supervision story without
/// crafting inputs that break the real compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosPoint {
    /// Panic inside the compile stage.
    PanicCompile,
    /// Panic inside the simulate stage.
    PanicSimulate,
    /// Sleep 300ms inside the simulate stage *without* polling the
    /// cancellation token — a model of a wedged worker, for proving the
    /// watchdog's stuck-claim path end to end.
    SleepSimulate,
}

/// A parsed job request: the spec plus its scheduling envelope.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Client-chosen id, echoed in the response.
    pub id: String,
    /// What to compile and run.
    pub spec: JobSpec,
    /// Per-job wall-clock deadline (overrides the daemon default).
    pub deadline_ms: Option<u64>,
    /// Bypass the artifact cache for this job (both lookup and store).
    pub no_cache: bool,
    /// Panic injection point (honored only under `--chaos`).
    pub chaos: Option<ChaosPoint>,
}

/// A parsed control request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlOp {
    /// Liveness probe; answered with `{"op": "pong"}`.
    Ping,
    /// Counter snapshot; answered with `{"op": "stats", ...}`.
    Stats,
    /// Stop accepting input on this connection, drain, exit.
    Shutdown,
}

/// Any request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// A compile-and-simulate job.
    Job(Box<JobRequest>),
    /// A control operation.
    Control(ControlOp),
}

/// Parse one request line.
///
/// # Errors
///
/// Returns `(maybe_id, message)`: the job id if one could be extracted
/// (so the error response can still be correlated) and a human-readable
/// description of what was wrong.
pub fn parse_request(line: &str) -> Result<Request, (Option<String>, String)> {
    let v = json::parse(line).map_err(|e| (None, format!("malformed JSON: {e}")))?;
    let id = v
        .get("id")
        .and_then(Value::as_str)
        .map(std::string::ToString::to_string);
    match parse_request_value(&v) {
        Ok(r) => Ok(r),
        Err(msg) => Err((id, msg)),
    }
}

fn parse_request_value(v: &Value) -> Result<Request, String> {
    if let Some(op) = v.get("op") {
        let op = op.as_str().ok_or("`op` must be a string")?;
        return match op {
            "ping" => Ok(Request::Control(ControlOp::Ping)),
            "stats" => Ok(Request::Control(ControlOp::Stats)),
            "shutdown" => Ok(Request::Control(ControlOp::Shutdown)),
            other => Err(format!("unknown op `{other}`")),
        };
    }
    let id = v
        .get("id")
        .and_then(Value::as_str)
        .ok_or("missing required string field `id`")?
        .to_string();
    let source = v
        .get("source")
        .and_then(Value::as_str)
        .ok_or("missing required string field `source`")?
        .to_string();

    let mut spec = JobSpec::new(source);
    spec.opts = parse_opts(v)?;

    if let Some(e) = v.get("engine") {
        let s = e.as_str().ok_or("`engine` must be a string")?;
        spec.config = spec.config.with_engine(Engine::parse(s)?);
    }
    if let Some(m) = v.get("mem") {
        let s = m.as_str().ok_or("`mem` must be a string")?;
        spec.config = spec.config.with_mem_model(MemModel::parse(s)?);
    }
    if let Some(n) = field_u64(v, "mem_latency")? {
        spec.config = spec.config.with_mem_latency(n);
    }
    if let Some(n) = field_u64(v, "mem_ports")? {
        let ports = u32::try_from(n).map_err(|_| "`mem_ports` out of range")?;
        if ports == 0 {
            return Err("`mem_ports` must be positive".to_string());
        }
        spec.config = spec.config.with_mem_ports(ports);
    }
    if let Some(n) = field_u64(v, "fifo")? {
        if n == 0 {
            return Err("`fifo` must be positive".to_string());
        }
        spec.config = spec.config.with_fifo_capacity(n as usize);
    }
    if let Some(n) = field_u64(v, "max_cycles")? {
        spec.config = spec.config.with_max_cycles(n);
    }
    if let Some(n) = field_u64(v, "tiles")? {
        if !(1..=8).contains(&n) {
            return Err("`tiles` must be in 1..=8".to_string());
        }
        spec.config = spec.config.with_tiles(n as usize);
        spec.opts = spec.opts.with_tiles(n as usize);
    }
    if let Some(i) = v.get("inject") {
        let s = i.as_str().ok_or("`inject` must be a string")?;
        spec.config = spec.config.with_fault_plan(FaultPlan::parse(s)?);
    }
    if let Some(e) = v.get("entry") {
        spec.entry = e.as_str().ok_or("`entry` must be a string")?.to_string();
    }
    if let Some(a) = v.get("args") {
        let arr = a.as_arr().ok_or("`args` must be an array of integers")?;
        spec.args = arr
            .iter()
            .map(|x| x.as_i64().ok_or("`args` must be an array of integers"))
            .collect::<Result<_, _>>()?;
    }

    let deadline_ms = field_u64(v, "deadline_ms")?;
    let no_cache = field_bool(v, "no_cache")?;
    let chaos =
        match v.get("chaos") {
            None => None,
            Some(c) => match c.as_str() {
                Some("panic-compile") => Some(ChaosPoint::PanicCompile),
                Some("panic-simulate") => Some(ChaosPoint::PanicSimulate),
                Some("sleep-simulate") => Some(ChaosPoint::SleepSimulate),
                _ => return Err(
                    "`chaos` must be \"panic-compile\", \"panic-simulate\" or \"sleep-simulate\""
                        .to_string(),
                ),
            },
        };

    Ok(Request::Job(Box::new(JobRequest {
        id,
        spec,
        deadline_ms,
        no_cache,
        chaos,
    })))
}

fn parse_opts(v: &Value) -> Result<OptOptions, String> {
    let mut opts = match v.get("opt") {
        None => OptOptions::all(),
        Some(o) => match o.as_str() {
            Some("none") => OptOptions::none(),
            Some("classical") => OptOptions::all().without_recurrence().without_streaming(),
            Some("recurrence") => OptOptions::all().without_streaming(),
            Some("full") => OptOptions::all(),
            Some("modulo") => OptOptions::all().with_modulo(),
            _ => {
                return Err(
                    "`opt` must be one of none, classical, recurrence, full, modulo".to_string(),
                )
            }
        },
    };
    if field_bool(v, "noalias")? {
        opts = opts.assume_noalias();
    }
    if field_bool(v, "vectorize")? {
        opts = opts.with_vectorization();
    }
    if field_bool(v, "speculative_streams")? {
        opts = opts.with_speculative_streams();
    }
    Ok(opts)
}

fn field_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn field_bool(v: &Value, key: &str) -> Result<bool, String> {
    match v.get(key) {
        None => Ok(false),
        Some(x) => x
            .as_bool()
            .ok_or_else(|| format!("`{key}` must be a boolean")),
    }
}

/// Why a job failed, as it appears on the wire.
#[derive(Debug)]
pub enum ErrorClass {
    /// The source did not compile.
    Compile(String),
    /// The simulation terminated abnormally (fault, deadlock, timeout).
    Sim(SimError),
    /// A worker panicked in `stage` ("compile" or "simulate"); the panic
    /// payload is carried verbatim.
    Panic {
        /// Pipeline stage that panicked.
        stage: &'static str,
        /// Stringified panic payload.
        payload: String,
    },
    /// The per-job wall-clock deadline elapsed. `stuck: true` means the
    /// watchdog had to answer for a worker that did not observe its
    /// cancellation token within the grace period.
    Deadline {
        /// The deadline that was exceeded.
        deadline_ms: u64,
        /// Whether the watchdog claimed the response from a stuck worker.
        stuck: bool,
    },
    /// The daemon shed this job at admission because the queue was full.
    Overloaded {
        /// Queue depth observed at admission.
        queued: usize,
        /// The configured `--queue-limit`.
        limit: usize,
    },
    /// The request line itself was invalid.
    BadRequest(String),
}

impl ErrorClass {
    /// Stable wire name of the class.
    pub fn name(&self) -> &'static str {
        match self {
            ErrorClass::Compile(_) => "compile",
            ErrorClass::Sim(_) => "sim",
            ErrorClass::Panic { .. } => "panic",
            ErrorClass::Deadline { .. } => "deadline",
            ErrorClass::Overloaded { .. } => "overloaded",
            ErrorClass::BadRequest(_) => "bad-request",
        }
    }

    fn body_json(&self) -> String {
        match self {
            ErrorClass::Compile(msg) => {
                format!(", \"detail\": \"{}\"", json::escape(msg))
            }
            ErrorClass::Sim(e) => format!(", \"sim\": {}", e.to_json()),
            ErrorClass::Panic { stage, payload } => format!(
                ", \"stage\": \"{stage}\", \"payload\": \"{}\"",
                json::escape(payload)
            ),
            ErrorClass::Deadline { deadline_ms, stuck } => {
                format!(", \"deadline_ms\": {deadline_ms}, \"stuck\": {stuck}")
            }
            ErrorClass::Overloaded { queued, limit } => {
                format!(", \"queued\": {queued}, \"limit\": {limit}")
            }
            ErrorClass::BadRequest(msg) => {
                format!(", \"detail\": \"{}\"", json::escape(msg))
            }
        }
    }
}

fn id_json(id: Option<&str>) -> String {
    match id {
        Some(id) => format!("\"{}\"", json::escape(id)),
        None => "null".to_string(),
    }
}

/// Render a terminal success line. `result_payload` is the
/// cache-controlled document produced by [`crate::job::result_payload`]
/// — on a cache hit the stored bytes are spliced in verbatim, which is
/// what makes hit/miss bit-identity a protocol property rather than a
/// hope.
pub fn ok_line(
    id: &str,
    cached: bool,
    degraded: bool,
    attempts: u32,
    wall_ms: f64,
    result_payload: &str,
) -> String {
    format!(
        "{{\"id\": {}, \"status\": \"ok\", \"cached\": {cached}, \"degraded\": {degraded}, \
         \"attempts\": {attempts}, \"wall_ms\": {wall_ms:.3}, \"result\": {result_payload}}}",
        id_json(Some(id))
    )
}

/// Render a terminal error line.
pub fn error_line(id: Option<&str>, attempts: u32, class: &ErrorClass) -> String {
    format!(
        "{{\"id\": {}, \"status\": \"error\", \"attempts\": {attempts}, \
         \"error\": {{\"class\": \"{}\"{}}}}}",
        id_json(id),
        class.name(),
        class.body_json()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_job() {
        let r = parse_request(r#"{"id": "j1", "source": "int main() { return 3; }"}"#).unwrap();
        let Request::Job(j) = r else {
            panic!("expected a job")
        };
        assert_eq!(j.id, "j1");
        assert_eq!(j.spec.entry, "main");
        assert!(!j.no_cache);
        assert!(j.chaos.is_none());
        assert!(j.deadline_ms.is_none());
    }

    #[test]
    fn parses_the_full_envelope() {
        let r = parse_request(
            r#"{"id": "j2", "source": "int f(int n) { return n; }", "opt": "classical",
                "noalias": true, "engine": "compiled", "mem": "banked:banks=4",
                "mem_latency": 9, "fifo": 16, "entry": "f", "args": [7],
                "deadline_ms": 250, "no_cache": true, "inject": "drop:3"}"#,
        )
        .unwrap();
        let Request::Job(j) = r else {
            panic!("expected a job")
        };
        assert_eq!(j.spec.entry, "f");
        assert_eq!(j.spec.args, vec![7]);
        assert_eq!(j.deadline_ms, Some(250));
        assert!(j.no_cache);
        assert_eq!(j.spec.config.engine.name(), "compiled");
        assert_eq!(j.spec.config.mem_model.name(), "banked");
        assert!(!j.spec.config.fault_plan.is_empty());
    }

    #[test]
    fn parses_the_modulo_opt_level() {
        let r =
            parse_request(r#"{"id": "j3", "source": "int main() { return 1; }", "opt": "modulo"}"#)
                .unwrap();
        let Request::Job(j) = r else {
            panic!("expected a job")
        };
        assert!(j.spec.opts.modulo, "opt=modulo enables the scheduler");
        assert!(j.spec.opts.streaming, "modulo rides on the full pipeline");
        // The flag participates in the cache key (distinct artifacts).
        let mut plain = j.spec.clone();
        plain.opts.modulo = false;
        assert_ne!(
            j.spec.cache_key_material(),
            plain.cache_key_material(),
            "modulo jobs must not alias full-opt cache entries"
        );
        let (_, msg) =
            parse_request(r#"{"id": "j4", "source": "int main(){return 1;}", "opt": "maximal"}"#)
                .unwrap_err();
        assert!(msg.contains("modulo"), "error message lists modulo: {msg}");
    }

    #[test]
    fn parses_control_ops() {
        assert!(matches!(
            parse_request(r#"{"op": "ping"}"#),
            Ok(Request::Control(ControlOp::Ping))
        ));
        assert!(matches!(
            parse_request(r#"{"op": "shutdown"}"#),
            Ok(Request::Control(ControlOp::Shutdown))
        ));
        assert!(parse_request(r#"{"op": "reboot"}"#).is_err());
    }

    #[test]
    fn bad_requests_keep_the_id_when_possible() {
        let (id, msg) = parse_request(r#"{"id": "j9", "engine": "event"}"#).unwrap_err();
        assert_eq!(id.as_deref(), Some("j9"));
        assert!(msg.contains("source"));
        let (id, _) = parse_request("not json at all").unwrap_err();
        assert!(id.is_none());
    }

    #[test]
    fn response_lines_are_single_line_json() {
        let line = error_line(
            Some("x\ny"),
            2,
            &ErrorClass::Panic {
                stage: "simulate",
                payload: "boom\nbang".to_string(),
            },
        );
        assert!(!line.contains('\n'));
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("class"))
                .and_then(Value::as_str),
            Some("panic")
        );
        assert_eq!(v.get("attempts").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn chaos_points_require_known_names() {
        let r = parse_request(r#"{"id": "c", "source": "s", "chaos": "panic-compile"}"#).unwrap();
        let Request::Job(j) = r else {
            panic!("expected a job")
        };
        assert_eq!(j.chaos, Some(ChaosPoint::PanicCompile));
        assert!(parse_request(r#"{"id": "c", "source": "s", "chaos": "segfault"}"#).is_err());
    }
}
