//! # wm-serve — the `wmd` compile-and-simulate daemon
//!
//! A long-running service wrapping the `wm-stream` pipeline: clients
//! submit batches of `{source, optimizer options, machine configuration,
//! engine, memory model}` jobs as newline-delimited JSON (over stdio or
//! a Unix socket) and receive one terminal response per job, streamed
//! back as each completes.
//!
//! What the daemon adds over `wmcc` in a loop:
//!
//! * **Supervision** ([`pool`]) — every job attempt runs inside
//!   `catch_unwind` on a worker from a shared-queue pool; a panic
//!   becomes a structured `{"class": "panic", "stage": ...}` response
//!   and the worker survives to take the next job.
//! * **Deadlines** — per-job wall-clock deadlines enforced through the
//!   simulator's cooperative [`wm_stream::sim::CancelToken`], with a
//!   watchdog that answers for workers stuck past deadline + grace.
//! * **Retry and load shedding** — transient failures (injected faults,
//!   deadline overruns) retry with capped exponential backoff; a full
//!   queue sheds with an explicit `overloaded` response; a half-full
//!   queue degrades `compiled`-engine jobs to the `event` engine (bit-
//!   identical results, cheaper setup).
//! * **A crash-safe artifact cache** ([`cache`]) — results are stored
//!   content-addressed by the SHA-256 ([`hash`]) of the job's canonical
//!   key material, written atomically (temp file + rename) with an
//!   embedded checksum that is verified on every read and scrubbed at
//!   startup. A cache hit returns the stored bytes verbatim, so it is
//!   bit-identical to the fresh run that produced it.
//!
//! The wire protocol is specified in [`proto`] and documented in
//! `DESIGN.md` § "Service and supervision"; `README.md` has a
//! quick-start.

pub mod cache;
pub mod hash;
pub mod job;
pub mod pool;
pub mod proto;
pub mod server;

pub use cache::{ArtifactCache, ScrubReport};
pub use pool::{Counters, Pool, PoolConfig};
pub use server::{Server, ServerConfig};
