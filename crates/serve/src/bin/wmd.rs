//! `wmd` — the WM compile-and-simulate daemon.

use std::path::PathBuf;
use std::process::ExitCode;

use wm_serve::{PoolConfig, Server, ServerConfig};

const USAGE: &str = r#"wmd — supervised WM compile-and-simulate daemon

USAGE:
    wmd [OPTIONS]

Serves newline-delimited JSON jobs on stdin/stdout (default) or a Unix
socket. One request per line; one terminal response per job, streamed in
completion order. See DESIGN.md "Service and supervision" for the schema.

OPTIONS:
    --jobs N             worker threads (default 4)
    --queue-limit N      shed jobs with `overloaded` beyond this queue
                         depth; degrade compiled->event at half (default 256)
    --retries N          extra attempts for transient failures (default 1)
    --backoff-ms N       base retry backoff, doubled per attempt (default 10)
    --deadline-ms N      default per-job wall-clock deadline (default: none)
    --stuck-grace-ms N   watchdog answers for workers this long past
                         deadline (default 2000)
    --cache-dir DIR      artifact cache directory (default .wmd-cache)
    --no-cache           disable the artifact cache entirely
    --chaos              honor `chaos` panic-injection fields in requests
    --socket PATH        serve a Unix socket instead of stdio
    --help               this text

EXIT STATUS:
    0  clean shutdown (stdin EOF or a `shutdown` op)
    1  I/O failure starting or running the server
    2  usage error
"#;

struct Options {
    cfg: ServerConfig,
    socket: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut cfg = ServerConfig {
        pool: PoolConfig::default(),
        cache_dir: Some(PathBuf::from(".wmd-cache")),
    };
    let mut socket = None;
    let mut args = std::env::args().skip(1);
    let num = |args: &mut dyn Iterator<Item = String>, flag: &str| -> Result<u64, String> {
        args.next()
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse::<u64>()
            .map_err(|_| format!("{flag} needs an integer"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                let n = num(&mut args, "--jobs")?;
                if n == 0 {
                    return Err("--jobs must be positive".to_string());
                }
                cfg.pool.workers = n as usize;
            }
            "--queue-limit" => cfg.pool.queue_limit = num(&mut args, "--queue-limit")? as usize,
            "--retries" => {
                cfg.pool.retries = u32::try_from(num(&mut args, "--retries")?)
                    .map_err(|_| "--retries too large")?;
            }
            "--backoff-ms" => cfg.pool.backoff_ms = num(&mut args, "--backoff-ms")?,
            "--deadline-ms" => {
                cfg.pool.default_deadline_ms = Some(num(&mut args, "--deadline-ms")?)
            }
            "--stuck-grace-ms" => cfg.pool.stuck_grace_ms = num(&mut args, "--stuck-grace-ms")?,
            "--cache-dir" => {
                cfg.cache_dir = Some(PathBuf::from(
                    args.next().ok_or("--cache-dir needs a value")?,
                ));
            }
            "--no-cache" => cfg.cache_dir = None,
            "--chaos" => cfg.pool.chaos = true,
            "--socket" => {
                socket = Some(PathBuf::from(args.next().ok_or("--socket needs a value")?))
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(Options { cfg, socket })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("wmd: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    // Panics are contained per-attempt by the pool; keep the default
    // hook's multi-line backtrace noise out of the daemon log.
    std::panic::set_hook(Box::new(|info| {
        eprintln!("wmd: contained panic: {info}");
    }));
    let server = match Server::new(opts.cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("wmd: failed to start: {e}");
            return ExitCode::from(1);
        }
    };
    let result = match &opts.socket {
        Some(path) => server.serve_socket(path),
        None => server.serve_stdio(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("wmd: {e}");
            ExitCode::from(1)
        }
    }
}
