//! Executing one job attempt: compile (memoized), simulate (cancellable),
//! render the result payload — with every stage fenced by
//! [`catch_unwind`] so a panic anywhere in the pipeline becomes a
//! structured [`ExecFailure::Panic`] instead of a dead worker.

use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use wm_stream::sim::{CancelToken, SimError};
use wm_stream::{Compiled, JobSpec, RunResult};

use crate::hash::sha256_hex;
use crate::proto::{ChaosPoint, JobRequest};

/// A failed job attempt. Deadline classification happens in the pool
/// (a [`SimError::Cancelled`] is a deadline exactly when the job had
/// one); everything else is classified here.
#[derive(Debug)]
pub enum ExecFailure {
    /// The source did not compile.
    Compile(String),
    /// The simulation terminated abnormally (fault, deadlock, timeout,
    /// cancellation).
    Sim(SimError),
    /// A stage panicked; the payload is the stringified panic message.
    Panic {
        /// Which stage panicked: `"compile"` or `"simulate"`.
        stage: &'static str,
        /// Stringified panic payload.
        payload: String,
    },
}

/// A bounded memo of compiled modules keyed by the SHA-256 of
/// `(source, optimizer options)`. Distinct jobs that share a source —
/// the same program swept over machine configurations, or retried
/// attempts — compile once. On overflow the whole map is dropped:
/// compilation is cheap enough that simple-and-correct beats LRU
/// bookkeeping here.
#[derive(Debug)]
pub struct ModuleCache {
    map: Mutex<HashMap<String, Arc<Compiled>>>,
    cap: usize,
}

impl ModuleCache {
    /// A memo holding at most `cap` modules.
    pub fn new(cap: usize) -> ModuleCache {
        ModuleCache {
            map: Mutex::new(HashMap::new()),
            cap,
        }
    }

    fn get_or_compile(&self, spec: &JobSpec) -> Result<Arc<Compiled>, wm_stream::Error> {
        let key = sha256_hex(format!("{}\x00{:?}", spec.source, spec.opts).as_bytes());
        if let Some(hit) = self.map.lock().unwrap().get(&key) {
            return Ok(Arc::clone(hit));
        }
        let compiled = Arc::new(spec.compile()?);
        let mut map = self.map.lock().unwrap();
        if map.len() >= self.cap {
            map.clear();
        }
        map.insert(key, Arc::clone(&compiled));
        Ok(compiled)
    }
}

fn panic_payload(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run one attempt of `req` to a rendered result payload.
///
/// # Errors
///
/// Returns [`ExecFailure`] for compile errors, simulator errors and
/// panics in either stage. Panics never escape this function.
pub fn execute(
    req: &JobRequest,
    token: &CancelToken,
    chaos_enabled: bool,
    modules: &ModuleCache,
) -> Result<String, ExecFailure> {
    let chaos = if chaos_enabled { req.chaos } else { None };
    let spec = &req.spec;

    let compiled = catch_unwind(AssertUnwindSafe(|| {
        if chaos == Some(ChaosPoint::PanicCompile) {
            panic!("chaos: injected compile-stage panic");
        }
        if chaos.is_some() {
            // Chaos jobs bypass the memo so the injected simulate-stage
            // panic below fires inside a real (uncached) pipeline run.
            spec.compile().map(Arc::new)
        } else {
            modules.get_or_compile(spec)
        }
    }))
    .map_err(|p| ExecFailure::Panic {
        stage: "compile",
        payload: panic_payload(p.as_ref()),
    })?
    .map_err(|e| ExecFailure::Compile(e.to_string()))?;

    let run = catch_unwind(AssertUnwindSafe(|| {
        if chaos == Some(ChaosPoint::PanicSimulate) {
            panic!("chaos: injected simulate-stage panic");
        }
        if chaos == Some(ChaosPoint::SleepSimulate) {
            // A worker wedged somewhere that cannot observe the token:
            // the watchdog must answer for it (stuck: true) and the
            // eventual result must be discarded, not duplicated.
            std::thread::sleep(std::time::Duration::from_millis(300));
        }
        spec.simulate(&compiled, Some(token))
    }))
    .map_err(|p| ExecFailure::Panic {
        stage: "simulate",
        payload: panic_payload(p.as_ref()),
    })?
    .map_err(ExecFailure::Sim)?;

    Ok(result_payload(&run))
}

/// Render a run into the canonical single-line result document — the
/// exact bytes that are cached and spliced into `ok` responses. Two runs
/// of the same job must render identically (the engines are bit-exact
/// and [`wm_stream::sim::Stats::to_json`] is deterministic), which is
/// what the cache-identity property test pins down.
pub fn result_payload(r: &RunResult) -> String {
    let ret_flt = if r.ret_flt.is_finite() {
        format!("{:?}", r.ret_flt)
    } else {
        // NaN/inf are not JSON numbers; encode as a string.
        format!("\"{:?}\"", r.ret_flt)
    };
    format!(
        "{{\"cycles\": {}, \"instructions\": {}, \"ret_int\": {}, \"ret_flt\": {ret_flt}, \
         \"output\": \"{}\", \"engine\": \"{}\", \"stats\": {}}}",
        r.cycles,
        r.stats.instructions(),
        r.ret_int,
        wm_stream::json::escape(&String::from_utf8_lossy(&r.output)),
        r.engine.name(),
        r.perf.to_json().replace('\n', "")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_stream::json;

    fn req(source: &str) -> JobRequest {
        JobRequest {
            id: "t".to_string(),
            spec: JobSpec::new(source),
            deadline_ms: None,
            no_cache: false,
            chaos: None,
        }
    }

    #[test]
    fn executes_and_renders_valid_json() {
        let modules = ModuleCache::new(8);
        let payload = execute(
            &req("int main() { return 6 * 7; }"),
            &CancelToken::new(),
            false,
            &modules,
        )
        .unwrap();
        let v = json::parse(&payload).unwrap();
        assert_eq!(v.get("ret_int").and_then(json::Value::as_i64), Some(42));
        assert!(v.get("cycles").and_then(json::Value::as_u64).unwrap() > 0);
        assert!(v.get("stats").and_then(|s| s.get("cycles")).is_some());
    }

    #[test]
    fn chaos_panics_are_contained_per_stage() {
        let modules = ModuleCache::new(8);
        for (point, stage) in [
            (ChaosPoint::PanicCompile, "compile"),
            (ChaosPoint::PanicSimulate, "simulate"),
        ] {
            let mut r = req("int main() { return 0; }");
            r.chaos = Some(point);
            let e = execute(&r, &CancelToken::new(), true, &modules).unwrap_err();
            let ExecFailure::Panic { stage: s, payload } = e else {
                panic!("expected a panic failure, got {e:?}");
            };
            assert_eq!(s, stage);
            assert!(payload.contains("chaos"));
        }
    }

    #[test]
    fn chaos_is_inert_unless_enabled() {
        let modules = ModuleCache::new(8);
        let mut r = req("int main() { return 1; }");
        r.chaos = Some(ChaosPoint::PanicSimulate);
        assert!(execute(&r, &CancelToken::new(), false, &modules).is_ok());
    }

    #[test]
    fn module_memo_reuses_compiles_without_changing_results() {
        let modules = ModuleCache::new(8);
        let r =
            req("int main() { int i; int s; s = 0; for (i = 0; i < 30; i++) s += i; return s; }");
        let a = execute(&r, &CancelToken::new(), false, &modules).unwrap();
        let b = execute(&r, &CancelToken::new(), false, &modules).unwrap();
        assert_eq!(a, b, "memoized compile must not perturb the payload");
        assert_eq!(modules.map.lock().unwrap().len(), 1);
    }

    #[test]
    fn payload_is_single_line() {
        let modules = ModuleCache::new(8);
        let payload = execute(
            &req("int main() { putchar(104); putchar(10); return 0; }"),
            &CancelToken::new(),
            false,
            &modules,
        )
        .unwrap();
        assert!(!payload.contains('\n'), "payload embeds in one wire line");
    }
}
