//! The supervised worker pool.
//!
//! Jobs enter a shared queue; a fixed set of workers claim work from it
//! (work "stealing" degenerates to claiming off one shared deque — the
//! generalization of `perf --jobs`' atomic-counter loop to a dynamic job
//! stream). Every attempt runs under [`crate::job::execute`], which
//! fences panics, and under a fresh [`CancelToken`] that a watchdog
//! thread cancels when the job's wall-clock deadline passes.
//!
//! # Exactly-once responses
//!
//! Each job carries a `claimed` flag. Whoever flips it first — the
//! worker finishing the attempt, or the watchdog giving up on a stuck
//! worker — owns the (single) terminal response. The loser drops its
//! result. This is what keeps "a worker wedged in the simulator" from
//! ever wedging the *client*: the watchdog answers after
//! `deadline + grace`, and if the worker later comes back, its late
//! result is discarded rather than duplicated.
//!
//! # Retry and shedding
//!
//! Transient failures — deadline overruns, and simulator errors from
//! jobs that carry a fault-injection plan — are retried with capped
//! exponential backoff. Deterministic failures (compile errors, panics,
//! faults with no injection in play) are not. Admission control sheds
//! jobs with an `overloaded` response when the queue is full, and
//! degrades `compiled`-engine jobs to the cheaper-to-set-up `event`
//! engine when it is half full (the engines are bit-identical, so
//! degradation changes setup cost, never results).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wm_stream::sim::{CancelToken, Engine, SimError};

use crate::cache::ArtifactCache;
use crate::job::{execute, ExecFailure, ModuleCache};
use crate::proto::{self, ErrorClass, JobRequest};

/// Pool tuning, set from `wmd`'s command line.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker thread count.
    pub workers: usize,
    /// Queue depth at which jobs are shed with `overloaded`.
    pub queue_limit: usize,
    /// Extra attempts after the first for transient failures.
    pub retries: u32,
    /// Base backoff; attempt `n` waits `backoff_ms << (n-1)`.
    pub backoff_ms: u64,
    /// How long past its deadline a worker may run before the watchdog
    /// claims the response and marks the worker stuck.
    pub stuck_grace_ms: u64,
    /// Default per-job deadline when the request does not set one.
    pub default_deadline_ms: Option<u64>,
    /// Honor `chaos` fields in requests.
    pub chaos: bool,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            workers: 4,
            queue_limit: 256,
            retries: 1,
            backoff_ms: 10,
            stuck_grace_ms: 2_000,
            default_deadline_ms: None,
            chaos: false,
        }
    }
}

/// Monotonic event counters, snapshotted by `{"op": "stats"}`.
#[derive(Debug, Default)]
pub struct Counters {
    /// Job lines received (before admission control).
    pub received: AtomicU64,
    /// Terminal `ok` responses.
    pub ok: AtomicU64,
    /// Terminal `error` responses (all classes).
    pub errors: AtomicU64,
    /// Attempts that panicked.
    pub panics: AtomicU64,
    /// Attempts re-queued by the retry policy.
    pub retries: AtomicU64,
    /// Jobs shed at admission.
    pub shed: AtomicU64,
    /// Jobs degraded compiled→event at admission.
    pub degraded: AtomicU64,
    /// Artifact-cache hits.
    pub cache_hits: AtomicU64,
    /// Artifact-cache misses (lookups that went on to execute).
    pub cache_misses: AtomicU64,
    /// Responses the watchdog had to claim from stuck workers.
    pub stuck: AtomicU64,
    /// Request lines that failed to parse.
    pub bad_requests: AtomicU64,
}

impl Counters {
    /// Increment one counter.
    pub fn bump(field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }

    /// Value of one counter (test/reporting convenience).
    pub fn get(field: &AtomicU64) -> u64 {
        field.load(Ordering::Relaxed)
    }
}

struct QueuedJob {
    req: JobRequest,
    reply: Sender<String>,
    claimed: Arc<AtomicBool>,
    degraded: bool,
}

struct Inflight {
    token: CancelToken,
    started: Instant,
    deadline: Option<Duration>,
    deadline_ms: u64,
    claimed: Arc<AtomicBool>,
    reply: Sender<String>,
    id: String,
    attempt: u32,
}

struct Shared {
    cfg: PoolConfig,
    queue: Mutex<VecDeque<QueuedJob>>,
    available: Condvar,
    shutdown: AtomicBool,
    drained: AtomicBool,
    inflight: Vec<Mutex<Option<Inflight>>>,
    counters: Counters,
    cache: Option<ArtifactCache>,
    modules: ModuleCache,
}

/// Claim the right to send the terminal response. True for exactly one
/// caller per job.
fn claim(flag: &AtomicBool) -> bool {
    !flag.swap(true, Ordering::SeqCst)
}

/// The pool: workers, watchdog, queue and counters.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl Pool {
    /// Start `cfg.workers` workers and the watchdog.
    pub fn new(cfg: PoolConfig, cache: Option<ArtifactCache>) -> Pool {
        let shared = Arc::new(Shared {
            inflight: (0..cfg.workers).map(|_| Mutex::new(None)).collect(),
            cfg,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            drained: AtomicBool::new(false),
            counters: Counters::default(),
            cache,
            modules: ModuleCache::new(128),
        });
        let workers = (0..shared.cfg.workers)
            .map(|i| {
                let s = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("wmd-worker-{i}"))
                    .spawn(move || worker_loop(&s, i))
                    .expect("spawn worker")
            })
            .collect();
        let watchdog = {
            let s = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("wmd-watchdog".to_string())
                    .spawn(move || watchdog_loop(&s))
                    .expect("spawn watchdog"),
            )
        };
        Pool {
            shared,
            workers,
            watchdog,
        }
    }

    /// The event counters.
    pub fn counters(&self) -> &Counters {
        &self.shared.counters
    }

    /// Current queue depth (pending, not yet claimed by a worker).
    pub fn queue_len(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    /// Admit a job: shed, degrade or enqueue. Always results in exactly
    /// one terminal response on `reply`, eventually.
    pub fn submit(&self, mut req: JobRequest, reply: Sender<String>) {
        let s = &self.shared;
        Counters::bump(&s.counters.received);
        let queued = self.queue_len();
        if queued >= s.cfg.queue_limit {
            Counters::bump(&s.counters.shed);
            Counters::bump(&s.counters.errors);
            let line = proto::error_line(
                Some(&req.id),
                0,
                &ErrorClass::Overloaded {
                    queued,
                    limit: s.cfg.queue_limit,
                },
            );
            let _ = reply.send(line);
            return;
        }
        let mut degraded = false;
        if queued >= s.cfg.queue_limit / 2 && req.spec.config.engine == Engine::Compiled {
            req.spec.config = req.spec.config.clone().with_engine(Engine::Event);
            degraded = true;
            Counters::bump(&s.counters.degraded);
        }
        let job = QueuedJob {
            req,
            reply,
            claimed: Arc::new(AtomicBool::new(false)),
            degraded,
        };
        s.queue.lock().unwrap().push_back(job);
        s.available.notify_one();
    }

    /// Stop accepting the *queue* as infinite: workers finish everything
    /// already queued, then exit; the watchdog exits. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Only after every worker has drained and exited may the watchdog
        // go: a stuck worker must never lose its supervisor.
        self.shared.drained.store(true, Ordering::SeqCst);
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(s: &Arc<Shared>, index: usize) {
    loop {
        let job = {
            let mut q = s.queue.lock().unwrap();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if s.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = s.available.wait(q).unwrap();
            }
        };
        run_job(s, index, job);
    }
}

/// Is this failure worth retrying? Deadline overruns always are (the
/// machine may simply have been busy); simulator errors only when the
/// job injects faults (the paper's transient-fault story — a dropped
/// response or jitter plan models an unreliable memory part, and rerun
/// semantics are what a supervisor owes such parts). Compile errors and
/// panics are deterministic: retrying them wastes the client's deadline.
fn is_transient(class: &ErrorClass, injecting: bool) -> bool {
    match class {
        ErrorClass::Deadline { .. } => true,
        ErrorClass::Sim(_) => injecting,
        _ => false,
    }
}

fn run_job(s: &Arc<Shared>, index: usize, job: QueuedJob) {
    let QueuedJob {
        req,
        reply,
        claimed,
        degraded,
    } = job;
    let deadline_ms = req.deadline_ms.or(s.cfg.default_deadline_ms);
    let cacheable = !req.no_cache && req.chaos.is_none();
    let key = cacheable.then(|| ArtifactCache::key_of(&req.spec.cache_key_material()));

    if let (Some(cache), Some(key)) = (s.cache.as_ref(), key.as_deref()) {
        let lookup_start = Instant::now();
        if let Some(payload) = cache.lookup(key) {
            Counters::bump(&s.counters.cache_hits);
            if claim(&claimed) {
                Counters::bump(&s.counters.ok);
                let wall_ms = lookup_start.elapsed().as_secs_f64() * 1e3;
                let _ = reply.send(proto::ok_line(
                    &req.id, true, degraded, 0, wall_ms, &payload,
                ));
            }
            return;
        }
        Counters::bump(&s.counters.cache_misses);
    }

    let injecting = !req.spec.config.fault_plan.is_empty();
    let total_attempts = s.cfg.retries + 1;
    let mut attempt: u32 = 1;
    loop {
        let token = CancelToken::new();
        let started = Instant::now();
        *s.inflight[index].lock().unwrap() = Some(Inflight {
            token: token.clone(),
            started,
            deadline: deadline_ms.map(Duration::from_millis),
            deadline_ms: deadline_ms.unwrap_or(0),
            claimed: Arc::clone(&claimed),
            reply: reply.clone(),
            id: req.id.clone(),
            attempt,
        });
        let result = execute(&req, &token, s.cfg.chaos, &s.modules);
        *s.inflight[index].lock().unwrap() = None;
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;

        match result {
            Ok(payload) => {
                if let (Some(cache), Some(key)) = (s.cache.as_ref(), key.as_deref()) {
                    if let Err(e) = cache.store(key, &payload) {
                        eprintln!("wmd: cache store failed for {key}: {e}");
                    }
                }
                if claim(&claimed) {
                    Counters::bump(&s.counters.ok);
                    let _ = reply.send(proto::ok_line(
                        &req.id, false, degraded, attempt, wall_ms, &payload,
                    ));
                }
                return;
            }
            Err(failure) => {
                if matches!(failure, ExecFailure::Panic { .. }) {
                    Counters::bump(&s.counters.panics);
                }
                let class = classify(failure, deadline_ms);
                // A claimed flag here means the watchdog already answered
                // (stuck path): drop the late result, don't retry.
                if claimed.load(Ordering::SeqCst) {
                    return;
                }
                if is_transient(&class, injecting) && attempt < total_attempts {
                    Counters::bump(&s.counters.retries);
                    let backoff = s.cfg.backoff_ms << (attempt - 1);
                    std::thread::sleep(Duration::from_millis(backoff));
                    attempt += 1;
                    continue;
                }
                if claim(&claimed) {
                    Counters::bump(&s.counters.errors);
                    let _ = reply.send(proto::error_line(Some(&req.id), attempt, &class));
                }
                return;
            }
        }
    }
}

/// Map an attempt failure to its wire class. A cancellation is a
/// deadline overrun precisely when the job had a deadline — nothing else
/// cancels job tokens.
fn classify(failure: ExecFailure, deadline_ms: Option<u64>) -> ErrorClass {
    match failure {
        ExecFailure::Compile(msg) => ErrorClass::Compile(msg),
        ExecFailure::Sim(SimError::Cancelled { .. }) => ErrorClass::Deadline {
            deadline_ms: deadline_ms.unwrap_or(0),
            stuck: false,
        },
        ExecFailure::Sim(e) => ErrorClass::Sim(e),
        ExecFailure::Panic { stage, payload } => ErrorClass::Panic { stage, payload },
    }
}

/// Tick every few milliseconds: cancel tokens past their deadline, and
/// answer for workers that have overrun deadline + grace (stuck in a
/// stage that cannot observe the token, e.g. a wedged compile). The
/// claimed flag makes the race with a late-finishing worker safe.
fn watchdog_loop(s: &Arc<Shared>) {
    const TICK: Duration = Duration::from_millis(5);
    loop {
        // `drained` is set only after every worker has exited, so the
        // watchdog provably outlives every attempt it supervises.
        if s.drained.load(Ordering::SeqCst) {
            return;
        }
        for slot in &s.inflight {
            let guard = slot.lock().unwrap();
            let Some(inf) = guard.as_ref() else { continue };
            let Some(deadline) = inf.deadline else {
                continue;
            };
            let elapsed = inf.started.elapsed();
            if elapsed >= deadline {
                inf.token.cancel();
            }
            if elapsed >= deadline + Duration::from_millis(s.cfg.stuck_grace_ms)
                && claim(&inf.claimed)
            {
                Counters::bump(&s.counters.stuck);
                Counters::bump(&s.counters.errors);
                let line = proto::error_line(
                    Some(&inf.id),
                    inf.attempt,
                    &ErrorClass::Deadline {
                        deadline_ms: inf.deadline_ms,
                        stuck: true,
                    },
                );
                let _ = inf.reply.send(line);
                eprintln!(
                    "wmd: watchdog answered for stuck job {} ({}ms past its {}ms deadline)",
                    inf.id,
                    (elapsed - deadline).as_millis(),
                    inf.deadline_ms
                );
            }
        }
        std::thread::sleep(TICK);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use wm_stream::json::{self, Value};
    use wm_stream::JobSpec;

    fn req(id: &str, source: &str) -> JobRequest {
        JobRequest {
            id: id.to_string(),
            spec: JobSpec::new(source),
            deadline_ms: None,
            no_cache: false,
            chaos: None,
        }
    }

    fn small_pool(cfg: PoolConfig) -> Pool {
        Pool::new(cfg, None)
    }

    fn status(line: &str) -> (String, String) {
        let v = json::parse(line).unwrap();
        (
            v.get("id")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            v.get("status").and_then(Value::as_str).unwrap().to_string(),
        )
    }

    #[test]
    fn runs_jobs_and_replies_exactly_once_each() {
        let mut pool = small_pool(PoolConfig {
            workers: 3,
            ..PoolConfig::default()
        });
        let (tx, rx) = channel();
        for i in 0..12 {
            pool.submit(
                req(&format!("j{i}"), "int main() { return 5; }"),
                tx.clone(),
            );
        }
        drop(tx);
        pool.shutdown();
        let lines: Vec<String> = rx.into_iter().collect();
        assert_eq!(lines.len(), 12);
        let mut ids: Vec<String> = lines.iter().map(|l| status(l).0).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 12, "one response per id");
        assert!(lines.iter().all(|l| status(l).1 == "ok"));
    }

    #[test]
    fn a_panicking_job_reports_and_spares_its_siblings() {
        let mut pool = small_pool(PoolConfig {
            workers: 2,
            chaos: true,
            ..PoolConfig::default()
        });
        let (tx, rx) = channel();
        let mut bad = req("bad", "int main() { return 0; }");
        bad.chaos = Some(crate::proto::ChaosPoint::PanicSimulate);
        pool.submit(bad, tx.clone());
        for i in 0..6 {
            pool.submit(
                req(&format!("ok{i}"), "int main() { return 2; }"),
                tx.clone(),
            );
        }
        drop(tx);
        pool.shutdown();
        let lines: Vec<String> = rx.into_iter().collect();
        assert_eq!(lines.len(), 7);
        let failures: Vec<&String> = lines.iter().filter(|l| status(l).1 == "error").collect();
        assert_eq!(failures.len(), 1);
        let v = json::parse(failures[0]).unwrap();
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("class"))
                .and_then(Value::as_str),
            Some("panic")
        );
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("stage"))
                .and_then(Value::as_str),
            Some("simulate")
        );
        assert_eq!(Counters::get(&pool.counters().panics), 1);
    }

    #[test]
    fn deadlines_cancel_long_jobs_and_count_attempts() {
        let mut pool = small_pool(PoolConfig {
            workers: 1,
            retries: 1,
            backoff_ms: 1,
            ..PoolConfig::default()
        });
        let (tx, rx) = channel();
        let mut slow = req(
            "slow",
            "int main() { int i; int s; s = 0; for (i = 0; i < 1000000000; i++) s += i; return s; }",
        );
        slow.deadline_ms = Some(30);
        pool.submit(slow, tx.clone());
        drop(tx);
        pool.shutdown();
        let line = rx.into_iter().next().unwrap();
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("class"))
                .and_then(Value::as_str),
            Some("deadline")
        );
        assert_eq!(
            v.get("attempts").and_then(Value::as_u64),
            Some(2),
            "deadline failures are transient: retried once, then reported"
        );
    }

    #[test]
    fn injected_faults_are_retried_then_reported() {
        let mut pool = small_pool(PoolConfig {
            workers: 1,
            retries: 2,
            backoff_ms: 1,
            ..PoolConfig::default()
        });
        let (tx, rx) = channel();
        let mut r = req(
            "faulty",
            "int a[32]; int main() { int i; int s; s = 0;
             for (i = 0; i < 32; i++) a[i] = i;
             for (i = 0; i < 32; i++) s += a[i]; return s; }",
        );
        r.spec.config = r
            .spec
            .config
            .clone()
            .with_fault_plan(wm_stream::sim::FaultPlan::parse("scu:0:2").unwrap());
        pool.submit(r, tx.clone());
        drop(tx);
        pool.shutdown();
        let line = rx.into_iter().next().unwrap();
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
        assert_eq!(v.get("attempts").and_then(Value::as_u64), Some(3));
        assert_eq!(Counters::get(&pool.counters().retries), 2);
    }

    #[test]
    fn overload_sheds_with_a_terminal_response() {
        // Zero-size queue: every submission sheds, deterministically.
        let mut pool = small_pool(PoolConfig {
            workers: 1,
            queue_limit: 0,
            ..PoolConfig::default()
        });
        let (tx, rx) = channel();
        pool.submit(req("shed-me", "int main() { return 0; }"), tx.clone());
        drop(tx);
        pool.shutdown();
        let line = rx.into_iter().next().unwrap();
        let v = json::parse(&line).unwrap();
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("class"))
                .and_then(Value::as_str),
            Some("overloaded")
        );
        assert_eq!(Counters::get(&pool.counters().shed), 1);
    }

    #[test]
    fn degrades_compiled_jobs_under_pressure() {
        // queue_limit 2 → half-full threshold is 1: with a single busy
        // worker, the second job is admitted at depth >= 1 and degrades.
        let mut pool = small_pool(PoolConfig {
            workers: 1,
            queue_limit: 2,
            ..PoolConfig::default()
        });
        let (tx, rx) = channel();
        let mut first = req(
            "first",
            "int main() { int i; int s; s = 0; for (i = 0; i < 200000; i++) s += i; return s; }",
        );
        first.spec.config = first.spec.config.clone().with_engine(Engine::Compiled);
        let mut second = first.clone();
        second.id = "second".to_string();
        pool.submit(first, tx.clone());
        pool.submit(second, tx.clone());
        drop(tx);
        pool.shutdown();
        let lines: Vec<String> = rx.into_iter().collect();
        assert_eq!(lines.len(), 2);
        let degraded: Vec<bool> = lines
            .iter()
            .map(|l| {
                json::parse(l)
                    .unwrap()
                    .get("degraded")
                    .and_then(Value::as_bool)
                    .unwrap()
            })
            .collect();
        assert!(degraded.iter().any(|d| *d), "one job degraded: {lines:?}");
        // Bit-identity across engines: both report the same cycle count.
        let cycles: Vec<u64> = lines
            .iter()
            .map(|l| {
                json::parse(l)
                    .unwrap()
                    .get("result")
                    .and_then(|r| r.get("cycles"))
                    .and_then(Value::as_u64)
                    .unwrap()
            })
            .collect();
        assert_eq!(cycles[0], cycles[1]);
    }

    #[test]
    fn cache_hits_are_bit_identical_and_counted() {
        let dir = std::env::temp_dir().join(format!("wmd-pool-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (cache, _) = ArtifactCache::open(&dir).unwrap();
        let mut pool = Pool::new(
            PoolConfig {
                workers: 2,
                ..PoolConfig::default()
            },
            Some(cache),
        );
        let (tx, rx) = channel();
        let source =
            "int main() { int i; int s; s = 0; for (i = 0; i < 64; i++) s += i; return s; }";
        pool.submit(req("cold", source), tx.clone());
        // Wait for the cold run to land before submitting the hit, so the
        // test is deterministic rather than racing the store.
        let cold = rx.recv().unwrap();
        pool.submit(req("warm", source), tx.clone());
        let warm = rx.recv().unwrap();
        drop(tx);
        pool.shutdown();
        let vc = json::parse(&cold).unwrap();
        let vw = json::parse(&warm).unwrap();
        assert_eq!(vc.get("cached").and_then(Value::as_bool), Some(false));
        assert_eq!(vw.get("cached").and_then(Value::as_bool), Some(true));
        assert_eq!(
            vc.get("result"),
            vw.get("result"),
            "cache hit must be bit-identical to the fresh run"
        );
        assert_eq!(Counters::get(&pool.counters().cache_hits), 1);
        assert_eq!(Counters::get(&pool.counters().cache_misses), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
