//! The crash-safe, content-addressed artifact cache.
//!
//! One entry per completed job, keyed by the SHA-256 of the job's
//! [`cache_key_material`](wm_stream::JobSpec::cache_key_material). The
//! stored payload is the rendered result document — the exact bytes the
//! daemon splices into an `ok` response — so a cache hit is bit-identical
//! to the fresh run that produced it by construction.
//!
//! # On-disk format
//!
//! `<dir>/<key>.wmd`, where `<key>` is 64 hex chars:
//!
//! ```text
//! wmd-cache-v1 <key> <sha256(payload)> <payload-byte-length>\n
//! <payload bytes>
//! ```
//!
//! # Crash safety and integrity
//!
//! Writes go to a `*.tmp-<pid>-<seq>` file in the same directory, are
//! flushed with `sync_all`, and land via [`std::fs::rename`] — atomic on
//! POSIX, so a reader (or a crash) sees either the old state or the
//! complete new entry, never a torn one. Every read re-verifies the
//! header: schema tag, key-vs-filename agreement, payload length and
//! checksum. Anything that fails verification is treated as a miss and
//! deleted. [`ArtifactCache::open`] scrubs the directory: leftover temp
//! files (a crash mid-write) and corrupt entries (torn by an unclean
//! shutdown, or tampered with) are removed and counted in the
//! [`ScrubReport`].

use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::hash::sha256_hex;

const SCHEMA: &str = "wmd-cache-v1";
const ENTRY_EXT: &str = "wmd";

static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// What [`ArtifactCache::open`] found and fixed in the cache directory.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScrubReport {
    /// Entries that verified clean and were kept.
    pub kept: usize,
    /// Entries removed because header/length/checksum verification failed.
    pub removed_corrupt: usize,
    /// Temp files removed (interrupted writes from a previous process).
    pub removed_temp: usize,
}

/// A directory of verified, atomically-written result payloads.
#[derive(Debug)]
pub struct ArtifactCache {
    dir: PathBuf,
}

impl ArtifactCache {
    /// Open (creating if needed) and scrub the cache directory.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from directory creation or listing; per-entry
    /// errors during the scrub are handled by deleting the entry, not by
    /// failing the open.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<(ArtifactCache, ScrubReport)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let cache = ArtifactCache { dir };
        let report = cache.scrub()?;
        Ok((cache, report))
    }

    /// The directory this cache lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The hex key for a job's canonical key material.
    pub fn key_of(material: &str) -> String {
        sha256_hex(material.as_bytes())
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.{ENTRY_EXT}"))
    }

    /// Look up a payload by key, verifying integrity. Corrupt entries are
    /// deleted and reported as a miss — the daemon then recomputes and
    /// rewrites them, which is the recovery path the soak test exercises.
    pub fn lookup(&self, key: &str) -> Option<String> {
        let path = self.entry_path(key);
        match read_verified(&path, Some(key)) {
            Ok(payload) => Some(payload),
            Err(VerifyError::Missing) => None,
            Err(e) => {
                // Corrupt: scrub it now so the directory converges back to
                // a verified state without waiting for a restart.
                let reason = match &e {
                    VerifyError::Corrupt(r) => (*r).to_string(),
                    VerifyError::Io(io) => io.to_string(),
                    VerifyError::Missing => unreachable!(),
                };
                eprintln!("wmd: cache entry {key} failed verification ({reason}); removed");
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Store a payload under a key: temp file, checksum header, fsync,
    /// atomic rename.
    ///
    /// # Errors
    ///
    /// Returns I/O errors; the daemon treats a failed store as a
    /// non-fatal event (the job result is still returned to the client).
    pub fn store(&self, key: &str, payload: &str) -> io::Result<()> {
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!("{key}.tmp-{}-{seq}", std::process::id()));
        let header = format!(
            "{SCHEMA} {key} {} {}\n",
            sha256_hex(payload.as_bytes()),
            payload.len()
        );
        let result = (|| {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(header.as_bytes())?;
            f.write_all(payload.as_bytes())?;
            f.sync_all()?;
            fs::rename(&tmp, self.entry_path(key))
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// Remove temp litter and corrupt entries; count survivors.
    fn scrub(&self) -> io::Result<ScrubReport> {
        let mut report = ScrubReport::default();
        for entry in fs::read_dir(&self.dir)? {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.contains(".tmp-") {
                if fs::remove_file(&path).is_ok() {
                    report.removed_temp += 1;
                }
                continue;
            }
            if !name.ends_with(&format!(".{ENTRY_EXT}")) {
                continue; // not ours; leave it alone
            }
            let key = name.trim_end_matches(&format!(".{ENTRY_EXT}"));
            match read_verified(&path, Some(key)) {
                Ok(_) => report.kept += 1,
                Err(_) => {
                    if fs::remove_file(&path).is_ok() {
                        report.removed_corrupt += 1;
                    }
                }
            }
        }
        Ok(report)
    }
}

#[derive(Debug)]
enum VerifyError {
    Missing,
    Io(io::Error),
    Corrupt(&'static str),
}

/// Read and verify one entry. `expect_key` additionally pins the header
/// key to the filename, so a renamed entry cannot answer for the wrong
/// job.
fn read_verified(path: &Path, expect_key: Option<&str>) -> Result<String, VerifyError> {
    let mut f = match fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(VerifyError::Missing),
        Err(e) => return Err(VerifyError::Io(e)),
    };
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes).map_err(VerifyError::Io)?;
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or(VerifyError::Corrupt("no header line"))?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| VerifyError::Corrupt("non-UTF-8 header"))?;
    let fields: Vec<&str> = header.split(' ').collect();
    let [schema, key, checksum, len] = fields.as_slice() else {
        return Err(VerifyError::Corrupt("bad header field count"));
    };
    if *schema != SCHEMA {
        return Err(VerifyError::Corrupt("unknown schema"));
    }
    if let Some(expect) = expect_key {
        if *key != expect {
            return Err(VerifyError::Corrupt("key does not match filename"));
        }
    }
    let payload = &bytes[newline + 1..];
    let expected_len: usize = len
        .parse()
        .map_err(|_| VerifyError::Corrupt("bad length field"))?;
    if payload.len() != expected_len {
        return Err(VerifyError::Corrupt("length mismatch"));
    }
    if sha256_hex(payload) != *checksum {
        return Err(VerifyError::Corrupt("checksum mismatch"));
    }
    String::from_utf8(payload.to_vec()).map_err(|_| VerifyError::Corrupt("non-UTF-8 payload"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("wmd-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn round_trips_a_payload() {
        let (cache, report) = ArtifactCache::open(tmpdir("roundtrip")).unwrap();
        assert_eq!(report, ScrubReport::default());
        let key = ArtifactCache::key_of("job material");
        assert_eq!(cache.lookup(&key), None);
        cache.store(&key, "{\"cycles\": 7}").unwrap();
        assert_eq!(cache.lookup(&key).as_deref(), Some("{\"cycles\": 7}"));
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn corruption_is_detected_and_healed() {
        let (cache, _) = ArtifactCache::open(tmpdir("corrupt")).unwrap();
        let key = ArtifactCache::key_of("x");
        cache.store(&key, "payload-bytes").unwrap();
        let path = cache.dir().join(format!("{key}.{ENTRY_EXT}"));
        // Flip a payload byte without changing the length.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(cache.lookup(&key), None, "corrupt entry must miss");
        assert!(!path.exists(), "corrupt entry must be deleted");
        // Store again: heals.
        cache.store(&key, "payload-bytes").unwrap();
        assert_eq!(cache.lookup(&key).as_deref(), Some("payload-bytes"));
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn truncation_is_detected() {
        let (cache, _) = ArtifactCache::open(tmpdir("truncate")).unwrap();
        let key = ArtifactCache::key_of("y");
        cache.store(&key, "0123456789").unwrap();
        let path = cache.dir().join(format!("{key}.{ENTRY_EXT}"));
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert_eq!(cache.lookup(&key), None);
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn scrub_removes_temp_litter_and_corrupt_entries() {
        let dir = tmpdir("scrub");
        {
            let (cache, _) = ArtifactCache::open(&dir).unwrap();
            cache.store(&ArtifactCache::key_of("good"), "good").unwrap();
            cache.store(&ArtifactCache::key_of("bad"), "bad").unwrap();
        }
        // Simulate a crash: a stray temp file and a torn entry.
        fs::write(dir.join("deadbeef.tmp-1-0"), b"partial").unwrap();
        let bad = dir.join(format!("{}.{ENTRY_EXT}", ArtifactCache::key_of("bad")));
        fs::write(&bad, b"wmd-cache-v1 torn\n").unwrap();
        let (cache, report) = ArtifactCache::open(&dir).unwrap();
        assert_eq!(report.kept, 1);
        assert_eq!(report.removed_corrupt, 1);
        assert_eq!(report.removed_temp, 1);
        assert_eq!(
            cache.lookup(&ArtifactCache::key_of("good")).as_deref(),
            Some("good")
        );
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn wrong_key_under_a_filename_is_rejected() {
        let (cache, _) = ArtifactCache::open(tmpdir("renamed")).unwrap();
        let a = ArtifactCache::key_of("a");
        let b = ArtifactCache::key_of("b");
        cache.store(&a, "payload-for-a").unwrap();
        fs::rename(
            cache.dir().join(format!("{a}.{ENTRY_EXT}")),
            cache.dir().join(format!("{b}.{ENTRY_EXT}")),
        )
        .unwrap();
        assert_eq!(cache.lookup(&b), None, "renamed entry must not answer");
        fs::remove_dir_all(cache.dir()).unwrap();
    }
}
